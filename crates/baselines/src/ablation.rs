//! The "Parallel" ablation strategy of Figure 9.
//!
//! The paper decomposes GraphPipe's gain into (1) parallel execution of
//! stages and (2) the larger micro-batch size enabled by the reduced memory
//! footprint. The "Parallel" strategy isolates (1): it uses GraphPipe's
//! topology-aware partitioner but pins the micro-batch size to the one the
//! SPP baseline chose. ("It is not possible to evaluate the strategy only
//! with larger micro-batch size since the reduced pipeline depth from
//! parallel stage execution enables larger micro-batch size", §7.4.)

use crate::pipedream::PipeDreamPlanner;
use gp_cluster::Cluster;
use gp_ir::SpModel;
use gp_partition::{GraphPipePlanner, Plan, PlanError, PlanOptions, Planner};

/// Plans the "Parallel" ablation strategy: GPP stage graph, SPP micro-batch
/// size.
///
/// # Errors
///
/// Fails if either the SPP baseline or the constrained GraphPipe search
/// finds no feasible strategy.
///
/// # Examples
///
/// ```
/// use gp_cluster::Cluster;
/// use gp_ir::zoo::{self, CandleUnoConfig};
///
/// let model = zoo::candle_uno(&CandleUnoConfig::default());
/// let cluster = Cluster::summit_like(8);
/// let plan = gp_baselines::parallel_ablation(&model, &cluster, 1024)?;
/// assert!(plan.pipeline_depth() <= plan.stage_graph.len());
/// # Ok::<(), gp_partition::PlanError>(())
/// ```
pub fn parallel_ablation(
    model: &SpModel,
    cluster: &Cluster,
    mini_batch: u64,
) -> Result<Plan, PlanError> {
    let spp = PipeDreamPlanner::new().plan(model, cluster, mini_batch)?;
    let b = spp.max_micro_batch();
    let opts = PlanOptions::default().with_forced_micro_batch(b);
    GraphPipePlanner::with_options(opts).plan(model, cluster, mini_batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_ir::zoo::{self, CandleUnoConfig};

    #[test]
    fn ablation_inherits_spp_micro_batch() {
        let model = zoo::candle_uno(&CandleUnoConfig::default());
        let cluster = Cluster::summit_like(8);
        let spp = PipeDreamPlanner::new()
            .plan(&model, &cluster, 1024)
            .unwrap();
        let par = parallel_ablation(&model, &cluster, 1024).unwrap();
        assert_eq!(par.max_micro_batch(), spp.max_micro_batch());
    }
}
