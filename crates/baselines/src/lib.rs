//! # gp-baselines — sequential pipeline-parallel baselines
//!
//! The planners GraphPipe is evaluated against in §7:
//!
//! * [`PipeDreamPlanner`] — operator-granularity DP over the linearized
//!   model (covers the partitioning/scheduling space of DAPPLE, PipeDream
//!   and the SPP configurations of Alpa, per §7.1);
//! * [`PiperPlanner`] — downset-lattice DP allowing cross-branch stages,
//!   whose exponential blow-up on many-branch models reproduces the "✗"
//!   entries of Table 1;
//! * [`parallel_ablation`] — the "Parallel" strategy of Figure 9 (GPP
//!   partition, SPP micro-batch size).
//!
//! All planners emit the same [`gp_partition::Plan`] type and run on the
//! same simulator/runtime, exactly as the paper executes every planner's
//! strategies on the same distributed runtime.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod ablation;
mod pipedream;
mod piper;

pub use ablation::parallel_ablation;
pub use pipedream::PipeDreamPlanner;
pub use piper::PiperPlanner;
