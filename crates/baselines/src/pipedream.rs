//! The PipeDream baseline planner (Narayanan et al., SOSP'19 / ICML'21).
//!
//! PipeDream linearizes the DNN into a single operator chain and partitions
//! it into *sequential* stages with optional data-parallel replication per
//! stage, running the synchronous 1F1B schedule (the configuration the
//! GraphPipe paper compares against: "PipeDream with the operator
//! granularity ... covers the pipeline partitioning and scheduling
//! strategies of all baseline SPP approaches", §7.1).
//!
//! The planner is a dynamic program over chain suffixes that minimizes the
//! bottleneck stage's Time-Per-Sample subject to the 1F1B memory constraint
//! (a stage at distance `p` from the sink keeps `p + 1` micro-batches in
//! flight). Because the model is linearized first, parallel branches are
//! pipelined one after another — the missed opportunity GPP exploits.
//!
//! gp-lint: deterministic — this module's outputs feed plan
//! fingerprints or the artifact codec; `cargo xtask lint` scans it for
//! nondeterminism hazards (DESIGN.md §"Determinism lint").

use gp_cluster::{Cluster, DeviceRange};
use gp_cost::{CostModel, Pass, BYTES_PER_PARAM_STATE};
use gp_ir::{Graph, OpId, SpModel};
use gp_obs::ClockHandle;
use gp_partition::{Plan, PlanError, PlanOptions, Planner, SearchStats};
use gp_sched::{assign_in_flight, schedule_tasks, Stage, StageGraph, StageId};

/// A reconstructed stage on the linearized chain: `(first op index,
/// one-past-last op index, device count)`.
type ChainCut = (u32, u32, u32);

/// Sequential-pipeline planner at operator granularity.
///
/// # Examples
///
/// ```
/// use gp_cluster::Cluster;
/// use gp_ir::zoo::{self, MmtConfig};
/// use gp_baselines::PipeDreamPlanner;
/// use gp_partition::Planner;
///
/// let model = zoo::mmt(&MmtConfig::two_branch());
/// let plan = PipeDreamPlanner::new().plan(&model, &Cluster::summit_like(4), 64)?;
/// // SPP: pipeline depth equals the stage count.
/// assert_eq!(plan.pipeline_depth(), plan.stage_graph.len());
/// # Ok::<(), gp_partition::PlanError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct PipeDreamPlanner {
    options: PlanOptions,
    /// Wall-clock seam: feeds only `SearchStats.wall`, which fingerprints
    /// exclude. Injectable for deterministic timing under test.
    clock: ClockHandle,
}

/// One Pareto entry of the suffix DP: a partition of the chain suffix with
/// its bottleneck TPS and stage count, plus back-pointers for
/// reconstruction.
#[derive(Debug, Clone, Copy)]
struct Entry {
    tps: f64,
    depth: u32,
    /// Split position: the suffix's first stage is `[i..j)`.
    j: u32,
    /// Devices given to the first stage.
    d1: u32,
    /// Index of the chosen entry in `f(j, d - d1)`.
    child: u32,
}

/// Per-prefix aggregate costs of the linearized chain.
struct Prefix {
    fwd: Vec<f64>,
    bwd: Vec<f64>,
    params: Vec<u64>,
    act: Vec<u64>,
    /// `cut[c]`: activation bytes per sample crossing position `c` (the live
    /// set a sequential pipeline must hand from stage to stage).
    cut: Vec<u64>,
}

impl Prefix {
    fn build(graph: &Graph, cost: &CostModel, order: &[OpId], b: u64) -> Prefix {
        let n = order.len();
        let mut pos = vec![0usize; graph.len()];
        for (i, &op) in order.iter().enumerate() {
            pos[op.index()] = i;
        }
        let (mut fwd, mut bwd) = (vec![0.0; n + 1], vec![0.0; n + 1]);
        let (mut params, mut act) = (vec![0u64; n + 1], vec![0u64; n + 1]);
        for (i, &op) in order.iter().enumerate() {
            fwd[i + 1] = fwd[i] + cost.op_time(graph, op, b, Pass::Forward);
            bwd[i + 1] = bwd[i] + cost.op_time(graph, op, b, Pass::Backward);
            params[i + 1] =
                params[i] + graph.node(op).kind.param_count() * gp_ir::BYTES_PER_ELEMENT;
            act[i + 1] = act[i] + graph.stashed_bytes(op);
        }
        // diff[c] accumulates edge contributions: an edge (u, v) is live
        // across every cut strictly between u and v.
        let mut diff = vec![0i64; n + 2];
        for (u, v) in graph.edges() {
            let (pu, pv) = (pos[u.index()], pos[v.index()]);
            debug_assert!(pu < pv, "linearization must be topological");
            let bytes = graph.node(u).output_bytes() as i64;
            diff[pu + 1] += bytes;
            diff[pv + 1] -= bytes;
        }
        let mut cut = vec![0u64; n + 1];
        let mut acc = 0i64;
        for c in 0..=n {
            acc += diff[c];
            cut[c] = acc as u64;
        }
        Prefix {
            fwd,
            bwd,
            params,
            act,
            cut,
        }
    }
}

impl PipeDreamPlanner {
    /// Planner with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Planner with explicit options.
    pub fn with_options(options: PlanOptions) -> Self {
        PipeDreamPlanner {
            options,
            ..Self::default()
        }
    }

    /// Replace the wall-clock source (tests inject a manual clock).
    pub fn with_clock(mut self, clock: ClockHandle) -> Self {
        self.clock = clock;
        self
    }

    /// Runs the suffix DP for one micro-batch size; returns the cut
    /// positions and device counts of the best partition, with its
    /// estimated bottleneck TPS.
    #[allow(clippy::too_many_arguments)]
    fn dp(
        &self,
        graph: &Graph,
        cost: &CostModel,
        order: &[OpId],
        devices: u32,
        b: u64,
        mini_batch: u64,
        evals: &mut u64,
    ) -> Option<(Vec<ChainCut>, f64)> {
        let n = order.len() as u32;
        let pre = Prefix::build(graph, cost, order, b);
        let mem_budget = cost.memory_budget();
        let link = cost.default_boundary_link();
        // f[i][d] = Pareto entries for partitioning ops [i..n) over d devices.
        let mut f: Vec<Vec<Vec<Entry>>> =
            vec![vec![Vec::new(); devices as usize + 1]; n as usize + 1];
        f[n as usize][0].push(Entry {
            tps: 0.0,
            depth: 0,
            j: n,
            d1: 0,
            child: 0,
        });
        for i in (0..n).rev() {
            for d in 1..=devices {
                let mut front: Vec<Entry> = Vec::new();
                for j in i + 1..=n {
                    let seg_fwd = pre.fwd[j as usize] - pre.fwd[i as usize];
                    let seg_bwd = pre.bwd[j as usize] - pre.bwd[i as usize];
                    let seg_params = pre.params[j as usize] - pre.params[i as usize];
                    let seg_act = pre.act[j as usize] - pre.act[i as usize];
                    let comm_bytes = pre.cut[i as usize] + pre.cut[j as usize];
                    for d1 in 1..=d {
                        let d_rest = d - d1;
                        if f[j as usize][d_rest as usize].is_empty() {
                            continue;
                        }
                        *evals += 1;
                        let m = (mini_batch / b).max(1);
                        let d_eff = m as f64 / m.div_ceil(d1 as u64) as f64;
                        let tps_stage = (seg_fwd + seg_bwd) / (b as f64 * d_eff)
                            + comm_bytes as f64 / link.bandwidth
                            + 2.0 * link.latency / b as f64
                            + cost.allreduce_time(seg_params, &DeviceRange::new(0, d1))
                                / mini_batch as f64;
                        for (ci, child) in f[j as usize][d_rest as usize].clone().iter().enumerate()
                        {
                            // 1F1B: this stage sits child.depth stages from
                            // the sink and keeps depth+1 micro-batches.
                            let in_flight = (child.depth as u64 + 1) * b;
                            let mem = seg_params / gp_ir::BYTES_PER_ELEMENT * BYTES_PER_PARAM_STATE
                                + seg_act
                                    * CostModel::in_flight_per_replica(in_flight, b, d1 as usize);
                            if mem > mem_budget {
                                continue;
                            }
                            let cand = Entry {
                                tps: tps_stage.max(child.tps),
                                depth: child.depth + 1,
                                j,
                                d1,
                                child: ci as u32,
                            };
                            insert_pareto(&mut front, cand);
                        }
                    }
                }
                f[i as usize][d as usize] = front;
            }
        }
        // Best entry at the source with all devices in use.
        let best = f[0][devices as usize]
            .iter()
            .cloned()
            .min_by(|a, b| a.tps.total_cmp(&b.tps))?;
        // Reconstruct (start, end, devices) triples.
        let mut cuts = Vec::new();
        let (mut i, mut d, mut e) = (0u32, devices, best);
        loop {
            cuts.push((i, e.j, e.d1));
            if e.j == n {
                break;
            }
            let next = f[e.j as usize][(d - e.d1) as usize][e.child as usize];
            i = e.j;
            d -= e.d1;
            e = next;
        }
        debug_assert_eq!(i, cuts.last().unwrap().0);
        Some((cuts, best.tps))
    }
}

/// Keeps `front` minimal under (tps, depth) dominance.
fn insert_pareto(front: &mut Vec<Entry>, cand: Entry) {
    if front
        .iter()
        .any(|e| e.tps <= cand.tps && e.depth <= cand.depth)
    {
        return;
    }
    front.retain(|e| !(cand.tps <= e.tps && cand.depth <= e.depth));
    front.push(cand);
}

impl Planner for PipeDreamPlanner {
    fn name(&self) -> &str {
        "pipedream"
    }

    fn plan(&self, model: &SpModel, cluster: &Cluster, mini_batch: u64) -> Result<Plan, PlanError> {
        let start = self.clock.now_nanos();
        let graph = model.graph();
        let cost = CostModel::new(cluster);
        let order = model.linearize();
        let devices = cluster.device_count() as u32;
        let b_all = self.options.micro_batch_sizes(mini_batch);
        if b_all.is_empty() {
            return Err(PlanError::Infeasible(
                "no micro-batch size candidates divide the mini-batch".to_string(),
            ));
        }
        let mut stats = SearchStats::default();
        let mut best: Option<(Vec<ChainCut>, f64, u64)> = None;
        for &b in &b_all {
            stats.configs_tried += 1;
            let mut evals = 0u64;
            if let Some((cuts, tps)) =
                self.dp(graph, &cost, &order, devices, b, mini_batch, &mut evals)
            {
                let better = match &best {
                    None => true,
                    Some((_, cur, _)) => tps < *cur,
                };
                if better {
                    best = Some((cuts, tps, b));
                }
            }
            stats.dp_evals += evals;
            if stats.dp_evals > self.options.eval_budget {
                return Err(PlanError::SearchExplosion {
                    evals: stats.dp_evals,
                });
            }
        }
        let (cuts, _, b) = best.ok_or_else(|| {
            PlanError::Infeasible(
                "no sequential partition fits the device memory budget".to_string(),
            )
        })?;
        let mut cursor = 0u32;
        let stages: Vec<Stage> = cuts
            .iter()
            .enumerate()
            .map(|(idx, &(i, j, d1))| {
                let devices = DeviceRange::new(cursor, d1);
                cursor += d1;
                Stage {
                    id: StageId(idx as u32),
                    ops: order[i as usize..j as usize].to_vec(),
                    devices,
                    micro_batch: b,
                    kfkb: 1,
                }
            })
            .collect();
        let stage_graph = StageGraph::new_sequential(graph, cluster, stages, mini_batch)
            .map_err(|e| PlanError::Internal(e.to_string()))?;
        let in_flight = assign_in_flight(&stage_graph);
        let schedule = schedule_tasks(&stage_graph, &in_flight);
        stats.wall = self.clock.since(start);
        let mut plan = Plan {
            stage_graph,
            in_flight,
            schedule,
            bottleneck_tps: 0.0,
            peak_memory_bytes: 0,
            path: model.path(),
            stats,
        };
        let (tps, mem) = plan.measure(graph, &cost);
        plan.bottleneck_tps = tps;
        plan.peak_memory_bytes = mem;
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_ir::zoo::{self, CandleUnoConfig, MmtConfig};

    #[test]
    fn sequential_stages_use_all_devices() {
        let model = zoo::mlp_chain(8, 512);
        let plan = PipeDreamPlanner::new()
            .plan(&model, &Cluster::summit_like(4), 32)
            .unwrap();
        let total: usize = plan.stage_graph.stages().map(|s| s.dp_degree()).sum();
        assert_eq!(total, 4);
        plan.schedule.validate_c4(&plan.stage_graph).unwrap();
    }

    #[test]
    fn pipeline_depth_equals_stage_count() {
        // The SPP hallmark: linearization makes the pipeline as deep as it
        // is long, even for branchy models.
        let model = zoo::candle_uno(&CandleUnoConfig::default());
        let plan = PipeDreamPlanner::new()
            .plan(&model, &Cluster::summit_like(8), 1024)
            .unwrap();
        assert_eq!(plan.pipeline_depth(), plan.stage_graph.len());
    }

    #[test]
    fn stages_are_contiguous_in_linearized_order() {
        let model = zoo::mmt(&MmtConfig::two_branch());
        let plan = PipeDreamPlanner::new()
            .plan(&model, &Cluster::summit_like(4), 64)
            .unwrap();
        let order = model.linearize();
        let mut cursor = 0;
        for s in plan.stage_graph.stages() {
            assert_eq!(s.ops[..], order[cursor..cursor + s.ops.len()]);
            cursor += s.ops.len();
        }
        assert_eq!(cursor, order.len());
    }

    #[test]
    fn in_flight_grows_towards_the_source() {
        let model = zoo::mlp_chain(8, 512);
        let plan = PipeDreamPlanner::new()
            .plan(&model, &Cluster::summit_like(4), 32)
            .unwrap();
        let n = plan.stage_graph.len();
        if n >= 2 {
            let first = plan.in_flight.samples(StageId(0));
            let last = plan.in_flight.samples(StageId(n as u32 - 1));
            assert!(first > last);
        }
    }

    #[test]
    fn infeasible_memory_reported() {
        let model = zoo::mmt(&MmtConfig::default());
        let cluster = Cluster::summit_like(4).with_memory_capacity(1 << 20);
        let err = PipeDreamPlanner::new()
            .plan(&model, &cluster, 64)
            .unwrap_err();
        assert!(matches!(err, PlanError::Infeasible(_)));
    }

    #[test]
    fn pareto_insert_prunes_dominated() {
        let mk = |tps: f64, depth: u32| Entry {
            tps,
            depth,
            j: 0,
            d1: 0,
            child: 0,
        };
        let mut front = Vec::new();
        insert_pareto(&mut front, mk(1.0, 4));
        insert_pareto(&mut front, mk(2.0, 2)); // trades tps for depth: kept
        insert_pareto(&mut front, mk(3.0, 5)); // dominated: dropped
        insert_pareto(&mut front, mk(0.5, 1)); // dominates everything
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].depth, 1);
    }
}
