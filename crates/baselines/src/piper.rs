//! The Piper baseline planner (Tarnawski et al., NeurIPS'21).
//!
//! Piper is a multidimensional planner for *sequential* pipelines whose
//! stages may span multiple branches: a stage is the difference of two
//! *downsets* (predecessor-closed sets) of the layer graph, and the planner
//! dynamically programs over the downset lattice. Its `O(|D|^2)` running
//! time is what the GraphPipe paper measures in Table 1 — and the reason it
//! "cannot generate training strategies for DLRM and CANDLE-Uno, since its
//! time and space complexity increases exponentially with respect to the
//! number of parallel branches" (§7.1). This implementation reproduces that
//! behaviour honestly: the downset enumeration and the pair loop are
//! budgeted, and exceeding either budget returns
//! [`PlanError::SearchExplosion`] (rendered as "✗" by the harness).
//!
//! Faithful simplifications (see DESIGN.md §"Baseline simplifications"):
//!
//! * the planner works on *layer units* — short runs of consecutive chain
//!   operators — matching Piper's layer-graph granularity (PipeDream is the
//!   operator-granularity baseline);
//! * per-stage device counts are powers of two, as in Piper's
//!   tensor/data-parallel configuration enumeration.

use gp_cluster::{Cluster, DeviceRange};
use gp_cost::{CostModel, Pass, BYTES_PER_PARAM_STATE};
use gp_ir::{Graph, OpId, SpBlock, SpModel};
use gp_obs::ClockHandle;
use gp_partition::{Plan, PlanError, PlanOptions, Planner, SearchStats};
use gp_sched::{assign_in_flight, schedule_tasks, Stage, StageGraph, StageId};
use std::collections::{BTreeSet, HashMap};

/// Downset-lattice planner for sequential pipelines with cross-branch
/// stages.
///
/// # Examples
///
/// ```
/// use gp_cluster::Cluster;
/// use gp_ir::zoo::{self, DlrmConfig};
/// use gp_baselines::PiperPlanner;
/// use gp_partition::{PlanError, Planner};
///
/// // Eight-plus-branch models blow up Piper's downset lattice (Table 1 "✗").
/// let model = zoo::dlrm(&DlrmConfig::default());
/// let err = PiperPlanner::new().plan(&model, &Cluster::summit_like(4), 256);
/// assert!(matches!(err, Err(PlanError::SearchExplosion { .. })));
/// ```
#[derive(Debug, Clone)]
pub struct PiperPlanner {
    options: PlanOptions,
    /// Operators grouped per layer unit.
    unit_ops: usize,
    /// Abort once the lattice exceeds this many downsets.
    downset_cap: usize,
    /// Wall-clock seam: feeds only `SearchStats.wall`, which fingerprints
    /// exclude. Injectable for deterministic timing under test.
    clock: ClockHandle,
}

impl Default for PiperPlanner {
    fn default() -> Self {
        PiperPlanner {
            options: PlanOptions::default(),
            unit_ops: 4,
            downset_cap: 10_000,
            clock: ClockHandle::default(),
        }
    }
}

/// A reconstructed stage in bitset form: `(outer downset, inner downset,
/// device count)` — the stage's units are `outer \ inner`.
type DownsetCut = (u128, u128, u32);

/// One Pareto entry of the suffix DP (see `pipedream.rs` for the scheme).
#[derive(Debug, Clone, Copy)]
struct Entry {
    tps: f64,
    depth: u32,
    /// Index of the superset downset this entry extends.
    parent: u32,
    /// Devices of the first suffix stage.
    d1: u32,
    /// Entry index within the parent's Pareto front.
    child: u32,
}

struct UnitGraph {
    /// Operators of each unit, in topological order.
    units: Vec<Vec<OpId>>,
    /// Unit-level predecessor lists.
    preds: Vec<Vec<u32>>,
}

impl UnitGraph {
    /// Groups runs of consecutive chain leaves into units of at most
    /// `unit_ops` operators, preserving the SP structure.
    fn build(model: &SpModel, unit_ops: usize) -> UnitGraph {
        let mut units: Vec<Vec<OpId>> = Vec::new();
        fn walk(block: &SpBlock, unit_ops: usize, units: &mut Vec<Vec<OpId>>) {
            match block {
                SpBlock::Leaf(op) => units.push(vec![*op]),
                SpBlock::Chain(items) => {
                    let mut run: Vec<OpId> = Vec::new();
                    for item in items {
                        match item {
                            SpBlock::Leaf(op) => {
                                run.push(*op);
                                if run.len() >= unit_ops {
                                    units.push(std::mem::take(&mut run));
                                }
                            }
                            other => {
                                if !run.is_empty() {
                                    units.push(std::mem::take(&mut run));
                                }
                                walk(other, unit_ops, units);
                            }
                        }
                    }
                    if !run.is_empty() {
                        units.push(run);
                    }
                }
                SpBlock::Branches(items) => {
                    for item in items {
                        walk(item, unit_ops, units);
                    }
                }
            }
        }
        walk(model.root(), unit_ops, &mut units);
        let graph = model.graph();
        let mut unit_of = vec![u32::MAX; graph.len()];
        for (u, ops) in units.iter().enumerate() {
            for op in ops {
                unit_of[op.index()] = u as u32;
            }
        }
        let mut preds = vec![Vec::new(); units.len()];
        for (a, b) in graph.edges() {
            let (ua, ub) = (unit_of[a.index()], unit_of[b.index()]);
            if ua != ub && !preds[ub as usize].contains(&ua) {
                preds[ub as usize].push(ua);
            }
        }
        UnitGraph { units, preds }
    }
}

/// Per-downset cost aggregates at a fixed micro-batch size.
struct DownsetCosts {
    time: Vec<f64>,
    params: Vec<u64>,
    act: Vec<u64>,
    /// Live activation bytes crossing the downset boundary, per sample.
    cut: Vec<u64>,
}

impl PiperPlanner {
    /// Planner with default options (layer units of 4 operators, 10k
    /// downset cap).
    pub fn new() -> Self {
        Self::default()
    }

    /// Planner with explicit options.
    pub fn with_options(options: PlanOptions) -> Self {
        PiperPlanner {
            options,
            ..Self::default()
        }
    }

    /// Overrides the layer-unit coarsening (operators per unit). Larger
    /// units shrink the downset lattice at the cost of partition
    /// granularity.
    pub fn with_unit_ops(mut self, unit_ops: usize) -> Self {
        self.unit_ops = unit_ops.max(1);
        self
    }

    /// Overrides the downset-count cap that triggers
    /// [`PlanError::SearchExplosion`].
    pub fn with_downset_cap(mut self, cap: usize) -> Self {
        self.downset_cap = cap.max(1);
        self
    }

    /// Replace the wall-clock source (tests inject a manual clock).
    pub fn with_clock(mut self, clock: ClockHandle) -> Self {
        self.clock = clock;
        self
    }

    /// Enumerates all downsets of the unit graph (bitset form), capped.
    fn enumerate_downsets(&self, ug: &UnitGraph) -> Result<Vec<u128>, PlanError> {
        let n = ug.units.len();
        if n > 127 {
            return Err(PlanError::SearchExplosion { evals: 1 << 62 });
        }
        let pred_mask: Vec<u128> = ug
            .preds
            .iter()
            .map(|ps| ps.iter().fold(0u128, |m, &p| m | (1 << p)))
            .collect();
        // Membership-only set; BTreeSet keeps the module free of
        // iteration-order hazards (`gp-lint: deterministic`).
        let mut seen: BTreeSet<u128> = BTreeSet::new();
        let mut stack = vec![0u128];
        seen.insert(0);
        let mut out = Vec::new();
        while let Some(d) = stack.pop() {
            out.push(d);
            if out.len() > self.downset_cap {
                return Err(PlanError::SearchExplosion {
                    evals: out.len() as u64,
                });
            }
            for (u, &pm) in pred_mask.iter().enumerate() {
                let bit = 1u128 << u;
                if d & bit == 0 && pm & !d == 0 {
                    let next = d | bit;
                    if seen.insert(next) {
                        stack.push(next);
                    }
                }
            }
        }
        Ok(out)
    }

    fn downset_costs(
        &self,
        graph: &Graph,
        cost: &CostModel,
        ug: &UnitGraph,
        downsets: &[u128],
        b: u64,
    ) -> DownsetCosts {
        let n = ug.units.len();
        let mut unit_time = vec![0.0f64; n];
        let mut unit_params = vec![0u64; n];
        let mut unit_act = vec![0u64; n];
        for (u, ops) in ug.units.iter().enumerate() {
            for &op in ops {
                unit_time[u] += cost.op_time(graph, op, b, Pass::Forward)
                    + cost.op_time(graph, op, b, Pass::Backward);
                unit_params[u] += graph.node(op).kind.param_count() * gp_ir::BYTES_PER_ELEMENT;
                unit_act[u] += graph.stashed_bytes(op);
            }
        }
        // Unit-level edge list with live bytes.
        let mut unit_of = vec![u32::MAX; graph.len()];
        for (u, ops) in ug.units.iter().enumerate() {
            for op in ops {
                unit_of[op.index()] = u as u32;
            }
        }
        let mut edges: Vec<(u32, u32, u64)> = Vec::new();
        for (a, bb) in graph.edges() {
            let (ua, ub) = (unit_of[a.index()], unit_of[bb.index()]);
            if ua != ub {
                edges.push((ua, ub, graph.node(a).output_bytes()));
            }
        }
        let mut time = Vec::with_capacity(downsets.len());
        let mut params = Vec::with_capacity(downsets.len());
        let mut act = Vec::with_capacity(downsets.len());
        let mut cut = Vec::with_capacity(downsets.len());
        for &d in downsets {
            let mut t = 0.0;
            let (mut p, mut a) = (0u64, 0u64);
            for u in 0..n {
                if d & (1 << u) != 0 {
                    t += unit_time[u];
                    p += unit_params[u];
                    a += unit_act[u];
                }
            }
            let mut c = 0u64;
            for &(ua, ub, bytes) in &edges {
                if d & (1 << ua) != 0 && d & (1 << ub) == 0 {
                    c += bytes;
                }
            }
            time.push(t);
            params.push(p);
            act.push(a);
            cut.push(c);
        }
        DownsetCosts {
            time,
            params,
            act,
            cut,
        }
    }

    /// Suffix DP over the downset lattice for one micro-batch size.
    #[allow(clippy::too_many_arguments)]
    fn dp(
        &self,
        cost: &CostModel,
        downsets: &[u128],
        costs: &DownsetCosts,
        devices: u32,
        b: u64,
        mini_batch: u64,
        evals: &mut u64,
    ) -> Result<Option<(Vec<DownsetCut>, f64)>, PlanError> {
        let full: u128 = *downsets
            .iter()
            .max_by_key(|d| d.count_ones())
            .expect("lattice contains the full set");
        // Order: descending popcount, so supersets are finalized first.
        let mut order: Vec<u32> = (0..downsets.len() as u32).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(downsets[i as usize].count_ones()));
        let index_of: HashMap<u128, u32> = downsets
            .iter()
            .enumerate()
            .map(|(i, &d)| (d, i as u32))
            .collect();
        let d_choices: Vec<u32> = (0..)
            .map(|e| 1u32 << e)
            .take_while(|&p| p <= devices)
            .collect();
        let mem_budget = cost.memory_budget();
        let link = cost.default_boundary_link();
        // g[downset][d] = Pareto front for partitioning the complement.
        let mut g: Vec<Vec<Vec<Entry>>> =
            vec![vec![Vec::new(); devices as usize + 1]; downsets.len()];
        g[index_of[&full] as usize][0].push(Entry {
            tps: 0.0,
            depth: 0,
            parent: u32::MAX,
            d1: 0,
            child: 0,
        });
        for (pi, &i2) in order.iter().enumerate() {
            let d2 = downsets[i2 as usize];
            // Transitions into every strict subset processed later.
            for &i1 in &order[pi + 1..] {
                let d1set = downsets[i1 as usize];
                if d1set & !d2 != 0 {
                    continue; // not a subset
                }
                *evals += 1;
                if *evals > self.options.eval_budget {
                    return Err(PlanError::SearchExplosion { evals: *evals });
                }
                let stage_time = costs.time[i2 as usize] - costs.time[i1 as usize];
                let stage_params = costs.params[i2 as usize] - costs.params[i1 as usize];
                let stage_act = costs.act[i2 as usize] - costs.act[i1 as usize];
                let comm_bytes = costs.cut[i1 as usize] + costs.cut[i2 as usize];
                for &dd in &d_choices {
                    let m = (mini_batch / b).max(1);
                    let d_eff = m as f64 / m.div_ceil(dd as u64) as f64;
                    let tps_stage = stage_time / (b as f64 * d_eff)
                        + comm_bytes as f64 / link.bandwidth
                        + 2.0 * link.latency / b as f64
                        + cost.allreduce_time(stage_params, &DeviceRange::new(0, dd))
                            / mini_batch as f64;
                    for d_rest in 0..=devices.saturating_sub(dd) {
                        if g[i2 as usize][d_rest as usize].is_empty() {
                            continue;
                        }
                        for ci in 0..g[i2 as usize][d_rest as usize].len() {
                            let child = g[i2 as usize][d_rest as usize][ci];
                            let in_flight = (child.depth as u64 + 1) * b;
                            let mem = stage_params / gp_ir::BYTES_PER_ELEMENT
                                * BYTES_PER_PARAM_STATE
                                + stage_act
                                    * CostModel::in_flight_per_replica(in_flight, b, dd as usize);
                            if mem > mem_budget {
                                continue;
                            }
                            let cand = Entry {
                                tps: tps_stage.max(child.tps),
                                depth: child.depth + 1,
                                parent: i2,
                                d1: dd,
                                child: ci as u32,
                            };
                            let front = &mut g[i1 as usize][(d_rest + dd) as usize];
                            insert_pareto(front, cand);
                        }
                    }
                }
            }
        }
        let empty_idx = index_of[&0] as usize;
        let Some(best) = g[empty_idx][devices as usize]
            .iter()
            .cloned()
            .min_by(|a, b| a.tps.total_cmp(&b.tps))
        else {
            return Ok(None);
        };
        // Reconstruct stages from the source: (from_set, to_set, devices).
        let mut stages = Vec::new();
        let (mut idx, mut d, mut e) = (empty_idx, devices, best);
        while e.parent != u32::MAX {
            let from = downsets[idx];
            let to = downsets[e.parent as usize];
            stages.push((from, to, e.d1));
            idx = e.parent as usize;
            d -= e.d1;
            e = g[idx][d as usize][e.child as usize];
        }
        Ok(Some((stages, best.tps)))
    }
}

/// Keeps `front` minimal under (tps, depth) dominance.
fn insert_pareto(front: &mut Vec<Entry>, cand: Entry) {
    if front
        .iter()
        .any(|e| e.tps <= cand.tps && e.depth <= cand.depth)
    {
        return;
    }
    front.retain(|e| !(cand.tps <= e.tps && cand.depth <= e.depth));
    front.push(cand);
}

impl Planner for PiperPlanner {
    fn name(&self) -> &str {
        "piper"
    }

    fn plan(&self, model: &SpModel, cluster: &Cluster, mini_batch: u64) -> Result<Plan, PlanError> {
        let start = self.clock.now_nanos();
        let graph = model.graph();
        let cost = CostModel::new(cluster);
        let devices = cluster.device_count() as u32;
        let ug = UnitGraph::build(model, self.unit_ops);
        let downsets = self.enumerate_downsets(&ug)?;
        let b_all = self.options.micro_batch_sizes(mini_batch);
        if b_all.is_empty() {
            return Err(PlanError::Infeasible(
                "no micro-batch size candidates divide the mini-batch".to_string(),
            ));
        }
        let mut stats = SearchStats {
            dp_states: downsets.len() as u64,
            ..SearchStats::default()
        };
        let mut best: Option<(Vec<DownsetCut>, f64, u64)> = None;
        let mut evals = 0u64;
        for &b in &b_all {
            stats.configs_tried += 1;
            let costs = self.downset_costs(graph, &cost, &ug, &downsets, b);
            if let Some((cuts, tps)) =
                self.dp(&cost, &downsets, &costs, devices, b, mini_batch, &mut evals)?
            {
                let better = match &best {
                    None => true,
                    Some((_, cur, _)) => tps < *cur,
                };
                if better {
                    best = Some((cuts, tps, b));
                }
            }
        }
        stats.dp_evals = evals;
        let (cuts, _, b) = best.ok_or_else(|| {
            PlanError::Infeasible("no downset partition fits the device memory budget".to_string())
        })?;
        let mut cursor = 0u32;
        let stages: Vec<Stage> = cuts
            .iter()
            .enumerate()
            .map(|(idx, &(from, to, d1))| {
                let mut ops: Vec<OpId> = Vec::new();
                for (u, unit) in ug.units.iter().enumerate() {
                    if to & (1 << u) != 0 && from & (1 << u) == 0 {
                        ops.extend_from_slice(unit);
                    }
                }
                ops.sort_unstable();
                let devices = DeviceRange::new(cursor, d1);
                cursor += d1;
                Stage {
                    id: StageId(idx as u32),
                    ops,
                    devices,
                    micro_batch: b,
                    kfkb: 1,
                }
            })
            .collect();
        let stage_graph = StageGraph::new_sequential(graph, cluster, stages, mini_batch)
            .map_err(|e| PlanError::Internal(e.to_string()))?;
        let in_flight = assign_in_flight(&stage_graph);
        let schedule = schedule_tasks(&stage_graph, &in_flight);
        stats.wall = self.clock.since(start);
        let mut plan = Plan {
            stage_graph,
            in_flight,
            schedule,
            bottleneck_tps: 0.0,
            peak_memory_bytes: 0,
            path: model.path(),
            stats,
        };
        let (tps, mem) = plan.measure(graph, &cost);
        plan.bottleneck_tps = tps;
        plan.peak_memory_bytes = mem;
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_ir::zoo::{self, CandleUnoConfig, MmtConfig};

    #[test]
    fn unit_graph_groups_chain_runs() {
        let model = zoo::mlp_chain(8, 64);
        // 1 input + 16 layer ops + loss = 18 ops -> units of <= 4.
        let ug = UnitGraph::build(&model, 4);
        assert!(ug.units.iter().all(|u| u.len() <= 4));
        let total: usize = ug.units.iter().map(Vec::len).sum();
        assert_eq!(total, model.graph().len());
        // Chain units form a path.
        for (u, preds) in ug.preds.iter().enumerate() {
            assert!(preds.len() <= 1, "unit {u} has {preds:?}");
        }
    }

    #[test]
    fn downsets_of_a_path_are_prefixes() {
        let model = zoo::mlp_chain(4, 32);
        let planner = PiperPlanner::new();
        let ug = UnitGraph::build(&model, 4);
        let ds = planner.enumerate_downsets(&ug).unwrap();
        // A path of n units has exactly n + 1 downsets.
        assert_eq!(ds.len(), ug.units.len() + 1);
    }

    #[test]
    fn downsets_multiply_across_branches() {
        let model = zoo::candle_uno(&CandleUnoConfig::with_branches(2));
        let planner = PiperPlanner::new();
        let ug = UnitGraph::build(&model, 4);
        let ds = planner.enumerate_downsets(&ug).unwrap();
        // Two independent branches multiply their prefix counts.
        assert!(ds.len() > ug.units.len() + 1);
    }

    #[test]
    fn plans_two_branch_mmt() {
        let model = zoo::mmt(&MmtConfig::two_branch());
        let plan = PiperPlanner::new()
            .plan(&model, &Cluster::summit_like(4), 64)
            .unwrap();
        // Sequential pipeline: depth equals stage count.
        assert_eq!(plan.pipeline_depth(), plan.stage_graph.len());
        plan.schedule.validate_c4(&plan.stage_graph).unwrap();
    }

    #[test]
    fn eight_branch_models_explode() {
        let model = zoo::candle_uno(&CandleUnoConfig::default());
        let planner = PiperPlanner {
            options: PlanOptions {
                eval_budget: 10_000_000,
                ..PlanOptions::default()
            },
            ..PiperPlanner::default()
        };
        let err = planner
            .plan(&model, &Cluster::summit_like(4), 4096)
            .unwrap_err();
        assert!(matches!(err, PlanError::SearchExplosion { .. }), "{err:?}");
    }
}
