//! Criterion micro-benchmark of the §6 scheduler: in-flight assignment and
//! kFkB task-order generation over a planned strategy.

use criterion::{criterion_group, criterion_main, Criterion};
use graphpipe::prelude::*;
use graphpipe::sched::{assign_in_flight, compute_in_flight, schedule_tasks};
use std::hint::black_box;

fn bench_scheduler(c: &mut Criterion) {
    let model = zoo::candle_uno(&zoo::CandleUnoConfig::default());
    let cluster = Cluster::summit_like(16);
    let plan = GraphPipePlanner::new()
        .plan(&model, &cluster, 16384)
        .unwrap();
    c.bench_function("scheduler/assign_in_flight", |b| {
        b.iter(|| black_box(assign_in_flight(&plan.stage_graph)))
    });
    let table = assign_in_flight(&plan.stage_graph);
    c.bench_function("scheduler/schedule_tasks", |b| {
        b.iter(|| black_box(schedule_tasks(&plan.stage_graph, &table)))
    });
    c.bench_function("scheduler/compute_in_flight", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for k in 1..=4u64 {
                for bb in [1u64, 2, 4, 8, 16] {
                    acc = acc.wrapping_add(black_box(compute_in_flight(k, bb, 1, 8, 64)));
                }
            }
            acc
        })
    });
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
