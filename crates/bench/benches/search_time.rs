//! Criterion micro-benchmark of planner search time (the Table 1 quantity)
//! on the two-branch MMT at 4 GPUs.

use criterion::{criterion_group, criterion_main, Criterion};
use graphpipe::prelude::*;
use std::hint::black_box;

fn bench_planners(c: &mut Criterion) {
    let model = zoo::mmt(&zoo::MmtConfig::two_branch());
    let cluster = Cluster::summit_like(4);
    let mut group = c.benchmark_group("search_time/mmt2@4gpu");
    group.sample_size(10);
    group.bench_function("graphpipe", |bench| {
        bench.iter(|| black_box(GraphPipePlanner::new().plan(&model, &cluster, 64)).unwrap())
    });
    group.bench_function("pipedream", |bench| {
        bench.iter(|| black_box(PipeDreamPlanner::new().plan(&model, &cluster, 64)).unwrap())
    });
    group.bench_function("piper", |bench| {
        bench.iter(|| black_box(PiperPlanner::new().plan(&model, &cluster, 64)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_planners);
criterion_main!(benches);
