//! Criterion micro-benchmark of the discrete-event simulator executing one
//! training iteration of a planned strategy.

use criterion::{criterion_group, criterion_main, Criterion};
use graphpipe::prelude::*;
use std::hint::black_box;

fn bench_simulator(c: &mut Criterion) {
    let model = zoo::mmt(&zoo::MmtConfig::default());
    let cluster = Cluster::summit_like(8);
    let plan = GraphPipePlanner::new().plan(&model, &cluster, 128).unwrap();
    c.bench_function("simulator/mmt@8gpu", |b| {
        b.iter(|| black_box(graphpipe::simulate_plan(&model, &cluster, &plan)).unwrap())
    });
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
