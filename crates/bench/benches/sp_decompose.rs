//! Criterion micro-benchmark of model construction, SP validation and
//! linearization (the gp-ir substrate).

use criterion::{criterion_group, criterion_main, Criterion};
use graphpipe::prelude::*;
use std::hint::black_box;

fn bench_ir(c: &mut Criterion) {
    c.bench_function("ir/build_mmt", |b| {
        b.iter(|| black_box(zoo::mmt(&zoo::MmtConfig::default())))
    });
    let model = zoo::mmt(&zoo::MmtConfig::default());
    c.bench_function("ir/linearize_mmt", |b| {
        b.iter(|| black_box(model.linearize()))
    });
    c.bench_function("ir/topo_order_mmt", |b| {
        b.iter(|| black_box(model.graph().topo_order()))
    });
}

criterion_group!(benches, bench_ir);
criterion_main!(benches);
