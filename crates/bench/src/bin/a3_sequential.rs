//! Appendix A.3: on a *sequential* Transformer (no branches) all three
//! planners should match — GraphPipe's advantage comes only from topology.

use gp_bench::harness::{paper_mini_batch, row, run_cell};
use graphpipe::prelude::*;
use graphpipe::PlannerKind;

fn main() {
    let model = zoo::sequential_transformer(32, &zoo::MmtConfig::default());
    println!("# Appendix A.3: sequential Transformer parity (samples/s)\n");
    println!(
        "{}",
        row(&[
            "GPUs".into(),
            "Piper".into(),
            "PipeDream".into(),
            "GraphPipe".into(),
            "GP/PD".into(),
        ])
    );
    println!("{}", row(&vec!["---".to_string(); 5]));
    for devices in [4usize, 8, 16, 32] {
        let mini_batch = paper_mini_batch("mmt", devices);
        let cluster = Cluster::summit_like(devices);
        let piper = run_cell(&model, &cluster, mini_batch, PlannerKind::Piper);
        let pd = run_cell(&model, &cluster, mini_batch, PlannerKind::PipeDream);
        let gp = run_cell(&model, &cluster, mini_batch, PlannerKind::GraphPipe);
        let ratio = match (gp.throughput, pd.throughput) {
            (Some(g), Some(p)) => format!("{:.3}", g / p),
            _ => "-".into(),
        };
        println!(
            "{}",
            row(&[
                devices.to_string(),
                piper.fmt_throughput(),
                pd.fmt_throughput(),
                gp.fmt_throughput(),
                ratio,
            ])
        );
    }
}
