//! Figure 5: per-stage micro-batch sizes and schedules. A three-stage chain
//! whose stages prefer micro-batches of (2, 2, 4): the universal size-4
//! schedule keeps 12 samples in flight at stage 1; per-stage sizes reduce
//! that to 10 while keeping the sink at full compute efficiency.
//!
//! This regenerates the figure's in-flight counts *exactly* from the
//! Table 2 ComputeInFlight implementation.

use graphpipe::cluster::{Cluster, DeviceRange};
use graphpipe::ir::zoo;
use graphpipe::sched::{assign_in_flight, schedule_tasks, Stage, StageGraph, StageId};

fn build(b: [u64; 3]) -> (gp_ir::SpModel, Cluster, StageGraph) {
    let model = zoo::mlp_chain(6, 32);
    let cluster = Cluster::tiny_test(3);
    let ops = model.linearize();
    let cuts = [0, 5, 9, ops.len()];
    let stages = (0..3)
        .map(|i| Stage {
            id: StageId(i as u32),
            ops: ops[cuts[i]..cuts[i + 1]].to_vec(),
            devices: DeviceRange::new(i as u32, 1),
            micro_batch: b[i],
            kfkb: 1,
        })
        .collect();
    let sg = StageGraph::new(model.graph(), &cluster, stages, 12).unwrap();
    (model, cluster, sg)
}

fn main() {
    println!("# Figure 5: universal vs per-stage micro-batch sizes (B = 12)\n");
    for (label, sizes) in [
        ("universal micro-batch 4", [4u64, 4, 4]),
        ("per-stage micro-batches (2, 2, 4)", [2, 2, 4]),
    ] {
        let (_, _, sg) = build(sizes);
        let inflight = assign_in_flight(&sg);
        let schedule = schedule_tasks(&sg, &inflight);
        println!("## {label}");
        for s in sg.stages() {
            let tasks: Vec<String> = schedule
                .stage(s.id)
                .tasks
                .iter()
                .map(|t| t.to_string())
                .collect();
            println!(
                "  {}: b={} in-flight={:>2} samples | {}",
                s.id,
                s.micro_batch,
                inflight.samples(s.id),
                tasks.join(" ")
            );
        }
        println!(
            "  stage-1 in-flight samples: {}\n",
            inflight.samples(StageId(0))
        );
    }
    println!("paper: 12 in-flight samples (universal) vs 10 (per-stage).");
}
