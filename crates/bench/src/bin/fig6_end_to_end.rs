//! Figure 6: end-to-end training throughput (samples/s) of GraphPipe,
//! PipeDream, and Piper on MMT, DLRM, and CANDLE-Uno as the device count
//! scales, with the Appendix A.2 mini-batch sizes and micro-batch sweep.
//!
//! Expected shape (paper): GraphPipe >= the SPP baselines at all but one
//! configuration, the gap widening with device count; Piper cannot produce
//! strategies for the 8-branch models (printed as "✗").

use gp_bench::harness::{paper_mini_batch, paper_models, row, run_cell};
use graphpipe::prelude::*;
use graphpipe::PlannerKind;

fn main() {
    let kinds = [
        PlannerKind::GraphPipe,
        PlannerKind::PipeDream,
        PlannerKind::Piper,
    ];
    println!("# Figure 6: end-to-end throughput (samples/s, simulated V100 cluster)\n");
    for (name, model) in paper_models() {
        println!("## {name}\n");
        println!(
            "{}",
            row(&[
                "GPUs".into(),
                "B".into(),
                "GraphPipe".into(),
                "PipeDream".into(),
                "Piper".into(),
                "GP/PD".into(),
                "depth GP".into(),
                "depth PD".into(),
            ])
        );
        println!("{}", row(&vec!["---".to_string(); 8]));
        for devices in [4usize, 8, 16, 32] {
            let mini_batch = paper_mini_batch(name, devices);
            let cluster = Cluster::summit_like(devices);
            let cells: Vec<_> = kinds
                .iter()
                .map(|&k| run_cell(&model, &cluster, mini_batch, k))
                .collect();
            let speedup = match (cells[0].throughput, cells[1].throughput) {
                (Some(gp), Some(pd)) => format!("{:.2}x", gp / pd),
                _ => "-".into(),
            };
            println!(
                "{}",
                row(&[
                    devices.to_string(),
                    mini_batch.to_string(),
                    cells[0].fmt_throughput(),
                    cells[1].fmt_throughput(),
                    cells[2].fmt_throughput(),
                    speedup,
                    cells[0].depth.map_or("-".into(), |d| d.to_string()),
                    cells[1].depth.map_or("-".into(), |d| d.to_string()),
                ])
            );
        }
        println!();
    }
}
