//! Figure 7 (left): throughput vs. number of parallel branches on
//! CANDLE-Uno at 4/8/16 GPUs, normalized to PipeDream.
//!
//! Expected shape (paper): the GraphPipe advantage grows with the branch
//! count, reaching about 2x at 16 branches.

use gp_bench::harness::{paper_mini_batch, row, run_cell};
use graphpipe::prelude::*;
use graphpipe::PlannerKind;

fn main() {
    println!("# Figure 7 (left): normalized throughput vs branch count (CANDLE-Uno)\n");
    println!(
        "{}",
        row(&[
            "branches".into(),
            "GPUs".into(),
            "GraphPipe".into(),
            "PipeDream".into(),
            "normalized".into(),
            "depth GP".into(),
            "depth PD".into(),
        ])
    );
    println!("{}", row(&vec!["---".to_string(); 7]));
    for branches in [2usize, 4, 8, 16] {
        let model = zoo::candle_uno(&zoo::CandleUnoConfig::with_branches(branches));
        for devices in [4usize, 8, 16] {
            let mini_batch = paper_mini_batch("candle-uno", devices);
            let cluster = Cluster::summit_like(devices);
            let gp = run_cell(&model, &cluster, mini_batch, PlannerKind::GraphPipe);
            let pd = run_cell(&model, &cluster, mini_batch, PlannerKind::PipeDream);
            let norm = match (gp.throughput, pd.throughput) {
                (Some(g), Some(p)) => format!("{:.2}x", g / p),
                _ => "-".into(),
            };
            println!(
                "{}",
                row(&[
                    branches.to_string(),
                    devices.to_string(),
                    gp.fmt_throughput(),
                    pd.fmt_throughput(),
                    norm,
                    gp.depth.map_or("-".into(), |d| d.to_string()),
                    pd.depth.map_or("-".into(), |d| d.to_string()),
                ])
            );
        }
    }
}
