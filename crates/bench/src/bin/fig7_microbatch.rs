//! Figure 7 (right): throughput vs. *fixed* micro-batch size for the
//! four-branch MMT with mini-batch 128 on 8 GPUs.
//!
//! Expected shape (paper): GraphPipe beats SPP at every micro-batch size —
//! with identical operational intensity the gap is pure pipeline-depth
//! reduction.

use gp_bench::harness::row;
use graphpipe::prelude::*;
use graphpipe::PlannerKind;

fn main() {
    let model = zoo::mmt(&zoo::MmtConfig::default());
    let cluster = Cluster::summit_like(8);
    let mini_batch = 128;
    println!("# Figure 7 (right): throughput vs micro-batch size (MMT, B=128, 8 GPUs)\n");
    println!(
        "{}",
        row(&[
            "micro-batch".into(),
            "GraphPipe".into(),
            "PipeDream".into(),
            "GP/PD".into(),
        ])
    );
    println!("{}", row(&vec!["---".to_string(); 4]));
    for b in [1u64, 2, 4, 8, 16, 32] {
        let mut cells = Vec::new();
        for kind in [PlannerKind::GraphPipe, PlannerKind::PipeDream] {
            let opts = PlanOptions::default().with_forced_micro_batch(b);
            let cell = graphpipe::planner(kind, opts)
                .plan(&model, &cluster, mini_batch)
                .ok()
                .and_then(|plan| {
                    graphpipe::simulate_plan(&model, &cluster, &plan)
                        .ok()
                        .map(|r| r.throughput)
                });
            cells.push(cell);
        }
        let fmt = |v: Option<f64>| v.map_or("✗".to_string(), |t| format!("{t:.0}"));
        let ratio = match (cells[0], cells[1]) {
            (Some(g), Some(p)) => format!("{:.2}x", g / p),
            _ => "-".into(),
        };
        println!(
            "{}",
            row(&[b.to_string(), fmt(cells[0]), fmt(cells[1]), ratio])
        );
    }
}
