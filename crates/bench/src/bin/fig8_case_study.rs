//! Figure 8 + §7.5 case study: the synthetic two-branch Transformer on 8
//! devices. GraphPipe and SPP find the same model partition, but GraphPipe
//! pipelines the two branches concurrently: depth 4 instead of 8, and the
//! freed activation memory admits a larger micro-batch.
//!
//! Prints both pipeline schedules as ASCII Gantt charts and decomposes the
//! end-to-end gain into its two sources (paper: ~10% + ~10% = ~20%).

use graphpipe::prelude::*;

fn main() {
    let model = zoo::case_study(&zoo::MmtConfig::default());
    // §7.5: "it is common practice for the system to operate close to
    // memory limits" — a 384 MiB budget makes wide weight replication
    // infeasible, producing the paper's one-layer-per-device partition.
    let cluster = Cluster::summit_like(8).with_memory_capacity(384 << 20);
    let mini_batch = 128;
    let opts = PlanOptions::default();

    let gpp = graphpipe::evaluate(
        &model,
        &cluster,
        mini_batch,
        graphpipe::PlannerKind::GraphPipe,
        &opts,
    )
    .expect("GraphPipe plans the case study");
    let spp = graphpipe::evaluate(
        &model,
        &cluster,
        mini_batch,
        graphpipe::PlannerKind::PipeDream,
        &opts,
    )
    .expect("PipeDream plans the case study");
    // "Parallel": GPP partition pinned to SPP's micro-batch size.
    let par_plan = parallel_ablation(&model, &cluster, mini_batch).expect("ablation plans");
    let par = graphpipe::simulate_plan(&model, &cluster, &par_plan).expect("simulates");

    println!("# Figure 8 / §7.5 case study: two-branch Transformer on 8 GPUs\n");
    println!("## SPP (PipeDream) strategy");
    println!("{}", spp.plan.describe());
    println!(
        "depth {}, micro-batch {}, throughput {:.0} samples/s\n",
        spp.plan.pipeline_depth(),
        spp.plan.max_micro_batch(),
        spp.report.throughput
    );
    println!("{}", render_gantt(&spp.report, &spp.plan.stage_graph, 100));

    println!("## GraphPipe strategy");
    println!("{}", gpp.plan.describe());
    println!(
        "depth {}, micro-batch {}, throughput {:.0} samples/s\n",
        gpp.plan.pipeline_depth(),
        gpp.plan.max_micro_batch(),
        gpp.report.throughput
    );
    println!("{}", render_gantt(&gpp.report, &gpp.plan.stage_graph, 100));

    let g_par = par.throughput / spp.report.throughput;
    let g_all = gpp.report.throughput / spp.report.throughput;
    println!("## Gain decomposition (§7.5)");
    println!(
        "parallel-stage execution only (same micro-batch): {:.1}%",
        (g_par - 1.0) * 100.0
    );
    println!(
        "plus larger micro-batch ({} -> {}):             {:.1}%",
        spp.plan.max_micro_batch(),
        gpp.plan.max_micro_batch(),
        (g_all - 1.0) * 100.0
    );
    println!("\npaper: ~10% from concurrent branches, ~20% total; depth 8 (SPP) vs 4 (GPP).");
}
