//! Figure 9: ablation at 32 GPUs. "Parallel" allows concurrent stage
//! execution at the SPP micro-batch size; "GraphPipe" additionally takes
//! the larger micro-batch the reduced footprint admits.
//!
//! Expected shape (paper): Parallel = 1.12-1.40x over SPP, GraphPipe =
//! 1.25-1.61x.

use gp_bench::harness::{paper_mini_batch, paper_models, row, run_cell};
use graphpipe::prelude::*;
use graphpipe::PlannerKind;

fn main() {
    let devices = 32usize;
    let cluster = Cluster::summit_like(devices);
    println!("# Figure 9: ablation at 32 GPUs (normalized to PipeDream)\n");
    println!(
        "{}",
        row(&[
            "model".into(),
            "SPP".into(),
            "Parallel".into(),
            "GraphPipe".into(),
            "Parallel gain".into(),
            "GraphPipe gain".into(),
        ])
    );
    println!("{}", row(&vec!["---".to_string(); 6]));
    for (name, model) in paper_models() {
        let mini_batch = paper_mini_batch(name, devices);
        let spp = run_cell(&model, &cluster, mini_batch, PlannerKind::PipeDream);
        let gpp = run_cell(&model, &cluster, mini_batch, PlannerKind::GraphPipe);
        let par = parallel_ablation(&model, &cluster, mini_batch)
            .ok()
            .and_then(|p| graphpipe::simulate_plan(&model, &cluster, &p).ok())
            .map(|r| r.throughput);
        let fmt = |v: Option<f64>| v.map_or("✗".to_string(), |t| format!("{t:.0}"));
        let gain = |v: Option<f64>| match (v, spp.throughput) {
            (Some(a), Some(b)) => format!("{:.2}x", a / b),
            _ => "-".into(),
        };
        println!(
            "{}",
            row(&[
                name.to_string(),
                spp.fmt_throughput(),
                fmt(par),
                gpp.fmt_throughput(),
                gain(par),
                gain(gpp.throughput),
            ])
        );
    }
}
