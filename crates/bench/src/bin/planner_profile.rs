//! Planner performance profile: search wall time and DP-search counters
//! for every zoo model at 8/16/32/64/128 GPUs, emitted as
//! `BENCH_planner.json`.
//!
//! This is the perf-trajectory artifact for the ROADMAP's "partition hot
//! path" item: run it before and after planner changes and diff the wall
//! times (the counters are deterministic and double as a drift check).
//! When a committed `BENCH_planner.json` exists, each cell also carries
//! that baseline's wall and the resulting speedup, so the before/after
//! story is readable from the artifact alone.
//!
//! Beam policy: cells below 128 GPUs run the exhaustive search (beam
//! unbounded — bit-compatible with every earlier profile); 128-GPU cells
//! run with the default scale beam ([`DEFAULT_SCALE_BEAM`]) so the sweep
//! meets the ROADMAP's "under 1s/cell at 128 GPUs" target.
//!
//! Flags:
//!
//! * `--smoke` — small fixed-budget subset with pinned plan fingerprints;
//!   exits non-zero when any fingerprint drifts (CI uses this);
//! * `--parallel N` — plan with [`ParallelPlanner`] over `N` threads
//!   instead of the sequential planner (plans are identical by
//!   construction; only the wall time moves);
//! * `--beam W` — beam width for every cell (`0` = unbounded), overriding
//!   the per-device-count policy;
//! * `--warm` — plan each cell twice (cold, then warm-started from the
//!   cold plan) and report the warm wall; fingerprints are unchanged by
//!   construction;
//! * `--models a,b` / `--gpus 8,16` — restrict the sweep;
//! * `--out PATH` — where to write the JSON (default `BENCH_planner.json`).

use gp_bench::harness::{harness_options, paper_mini_batch};
use graphpipe::prelude::*;
use graphpipe::serve::fingerprint::plan_fingerprint;
use graphpipe::serve::json::Json;
use std::fmt::Write as _;
use std::time::Instant;

/// Beam width applied at 128+ GPUs unless `--beam` overrides it. Eight
/// device-split candidates around the work-proportional pivot keep every
/// zoo model under the 1s/cell target while the golden table pins the
/// makespan delta vs. exhaustive search.
const DEFAULT_SCALE_BEAM: u32 = 8;

/// Device count at which the default beam kicks in.
const SCALE_BEAM_THRESHOLD: usize = 128;

struct CellResult {
    model: &'static str,
    gpus: usize,
    mini_batch: u64,
    wall_secs: f64,
    stats: SearchStats,
    stages: usize,
    depth: usize,
    fingerprint: String,
    /// Beam width the cell ran with (`None` = unbounded).
    beam_width: Option<u32>,
    /// Whether the reported wall is a warm-started plan.
    warm_start: bool,
    /// Wall of the same `(model, gpus)` cell in the committed profile,
    /// when one existed before this run.
    baseline_wall_secs: Option<f64>,
}

/// The smoke subset: cheap cells with pinned plan fingerprints, plus one
/// 128-GPU cell exercising the beam + warm-start path at scale. The
/// fingerprint is the gp-serve artifact fingerprint of the produced plan
/// (stage graph + in-flight + schedule, wall-clock excluded), so any
/// behaviour change in the planner shows up as drift here before the
/// golden tables are even consulted. Entries: (model, gpus, beam width
/// with 0 = unbounded, warm-start, pinned fingerprint).
const SMOKE_CELLS: &[(&str, usize, u32, bool, &str)] = &[
    ("mmt", 8, 0, false, "dbe8f9292f23daa2c5112aba6cdc24ba"),
    ("dlrm", 8, 0, false, "f336e9529283a14591873c7cf2635b27"),
    (
        "candle-uno",
        8,
        0,
        false,
        "fba1571a980719c51f9d01f9b9395f08",
    ),
    (
        "candle-uno-full",
        8,
        0,
        false,
        "850498fc6a04cb51a9cd5c868102ac2c",
    ),
    ("moe", 8, 0, false, "78f0d19fb603f82016a6c888640ddc79"),
    (
        "moe",
        128,
        DEFAULT_SCALE_BEAM,
        true,
        "b379539cbdd0b2d983d2b925c921d470",
    ),
];

/// Eval budget for the smoke run: far above the smoke cells' real cost
/// yet a hard ceiling against search regressions.
const SMOKE_EVAL_BUDGET: u64 = 12_000_000;

fn model_by_name(name: &str) -> SpModel {
    match name {
        "mmt" => zoo::mmt(&zoo::MmtConfig::default()),
        "dlrm" => zoo::dlrm(&zoo::DlrmConfig::default()),
        "candle-uno" => zoo::candle_uno(&zoo::CandleUnoConfig::default()),
        "candle-uno-full" => zoo::candle_uno(&zoo::CandleUnoConfig::full()),
        "moe" => zoo::moe(&zoo::MoeConfig::default()),
        other => panic!("unknown model {other}"),
    }
}

fn plan_once(
    model: &SpModel,
    cluster: &Cluster,
    mini_batch: u64,
    opts: &PlanOptions,
    parallel: usize,
    warm: Option<WarmStart>,
) -> Result<Plan, PlanError> {
    if parallel > 1 {
        let mut p = ParallelPlanner::with_options(opts.clone(), parallel);
        if let Some(w) = warm {
            p = p.with_warm_start(w);
        }
        p.plan(model, cluster, mini_batch)
    } else {
        let mut p = GraphPipePlanner::with_options(opts.clone());
        if let Some(w) = warm {
            p = p.with_warm_start(w);
        }
        p.plan(model, cluster, mini_batch)
    }
}

fn run_cell(
    name: &'static str,
    gpus: usize,
    opts: &PlanOptions,
    parallel: usize,
    warm: bool,
) -> CellResult {
    let model = model_by_name(name);
    let cluster = Cluster::summit_like(gpus);
    let mini_batch = paper_mini_batch(name, gpus);
    let warm_hint = if warm {
        // Seed from a cold plan of the same cell: the warm walk must land
        // on the identical strategy, so only the wall below changes.
        let cold = plan_once(&model, &cluster, mini_batch, opts, parallel, None)
            .unwrap_or_else(|e| panic!("{name}@{gpus} (cold): {e}"));
        Some(WarmStart::from_plan(&cold, gpus as u32, gpus as u32))
    } else {
        None
    };
    let t0 = Instant::now();
    let plan = plan_once(&model, &cluster, mini_batch, opts, parallel, warm_hint)
        .unwrap_or_else(|e| panic!("{name}@{gpus}: {e}"));
    let wall_secs = t0.elapsed().as_secs_f64();
    CellResult {
        model: name,
        gpus,
        mini_batch,
        wall_secs,
        stats: plan.stats,
        stages: plan.stage_graph.len(),
        depth: plan.pipeline_depth(),
        fingerprint: plan_fingerprint(&plan).to_string(),
        beam_width: opts.beam_width,
        warm_start: warm,
        baseline_wall_secs: None,
    }
}

/// Wall times of the committed profile, keyed `(model, gpus)`. Only
/// sequential (parallelism == 1) profiles count as baselines — parallel
/// walls are not comparable across thread counts.
fn load_baseline(path: &str) -> Vec<(String, usize, f64)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let Ok(doc) = Json::parse(&text) else {
        return Vec::new();
    };
    if doc.get("parallelism").and_then(Json::as_u64) != Some(1) {
        return Vec::new();
    }
    let Some(cells) = doc.get("cells").and_then(Json::as_arr) else {
        return Vec::new();
    };
    cells
        .iter()
        .filter_map(|c| {
            Some((
                c.get("model")?.as_str()?.to_string(),
                c.get("gpus")?.as_u64()? as usize,
                c.get("wall_secs")?.as_f64()?,
            ))
        })
        .collect()
}

fn emit_json(results: &[CellResult], parallel: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"planner_profile\",\n");
    let _ = writeln!(out, "  \"parallelism\": {},", parallel.max(1));
    out.push_str("  \"cells\": [\n");
    for (i, r) in results.iter().enumerate() {
        let s = &r.stats;
        let _ = write!(
            out,
            "    {{\"model\": \"{}\", \"gpus\": {}, \"mini_batch\": {}, \
             \"wall_secs\": {:.6}, \"dp_evals\": {}, \"dp_states\": {}, \
             \"memo_hits\": {}, \"memo_misses\": {}, \"memo_hit_rate\": {:.4}, \
             \"work_bound_prunes\": {}, \"memory_prunes\": {}, \
             \"beam_width\": {}, \"beam_prunes\": {}, \"eval_batches\": {}, \
             \"warm_start\": {}, \
             \"binary_iters\": {}, \"configs_tried\": {}, \
             \"stages\": {}, \"depth\": {}, \"fingerprint\": \"{}\"",
            r.model,
            r.gpus,
            r.mini_batch,
            r.wall_secs,
            s.dp_evals,
            s.dp_states,
            s.memo_hits,
            s.memo_misses,
            s.memo_hit_rate(),
            s.work_bound_prunes,
            s.memory_prunes,
            r.beam_width.unwrap_or(0),
            s.beam_prunes,
            s.eval_batches,
            r.warm_start,
            s.binary_iters,
            s.configs_tried,
            r.stages,
            r.depth,
            r.fingerprint,
        );
        if let Some(base) = r.baseline_wall_secs {
            let _ = write!(
                out,
                ", \"baseline_wall_secs\": {:.6}, \"speedup\": {:.2}",
                base,
                base / r.wall_secs.max(1e-9),
            );
        }
        out.push('}');
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut parallel = 1usize;
    let mut beam_override: Option<u32> = None;
    let mut warm = false;
    let mut models: Vec<String> = vec![
        "mmt".into(),
        "dlrm".into(),
        "candle-uno".into(),
        "candle-uno-full".into(),
        "moe".into(),
    ];
    let mut gpus: Vec<usize> = vec![8, 16, 32, 64, 128];
    let mut out_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--parallel" => {
                parallel = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--parallel N");
            }
            "--beam" => {
                beam_override = Some(it.next().and_then(|v| v.parse().ok()).expect("--beam W"));
            }
            "--warm" => warm = true,
            "--models" => {
                models = it
                    .next()
                    .expect("--models a,b")
                    .split(',')
                    .map(str::to_string)
                    .collect();
            }
            "--gpus" => {
                gpus = it
                    .next()
                    .expect("--gpus 8,16")
                    .split(',')
                    .map(|v| v.parse().expect("gpu count"))
                    .collect();
            }
            "--out" => out_path = Some(it.next().expect("--out PATH").clone()),
            other => panic!("unknown flag {other}"),
        }
    }
    // The tracked perf-trajectory artifact for full sweeps; the smoke
    // variant stays out of the checkout (CI runs it on every push).
    let out_path = out_path.unwrap_or_else(|| {
        if smoke {
            "target/planner_smoke.json".to_string()
        } else {
            "BENCH_planner.json".to_string()
        }
    });

    let static_names: &[&'static str] = &["mmt", "dlrm", "candle-uno", "candle-uno-full", "moe"];
    let as_static = |m: &str| -> &'static str {
        static_names
            .iter()
            .copied()
            .find(|s| *s == m)
            .unwrap_or_else(|| panic!("unknown model {m}"))
    };
    // Per-cell options: `--beam 0` forces unbounded, `--beam W` forces a
    // beam, no flag applies the scale policy.
    let cell_options = |base: &PlanOptions, g: usize| -> PlanOptions {
        let beam = match beam_override {
            Some(0) => None,
            Some(w) => Some(w),
            None => (g >= SCALE_BEAM_THRESHOLD).then_some(DEFAULT_SCALE_BEAM),
        };
        let mut o = base.clone();
        o.beam_width = beam;
        o
    };

    if smoke {
        let base = PlanOptions {
            eval_budget: SMOKE_EVAL_BUDGET,
            ..harness_options()
        };
        let mut drifted = false;
        let mut results = Vec::new();
        for &(name, g, beam, warm_cell, expected) in SMOKE_CELLS {
            let mut opts = base.clone();
            opts.beam_width = (beam != 0).then_some(beam);
            let r = run_cell(as_static(name), g, &opts, parallel, warm_cell);
            let ok = r.fingerprint == expected;
            println!(
                "{:<16} gpus={:<3} beam={:<2} warm={:<5} wall={:.3}s evals={} hit-rate={:.1}% fp={} {}",
                r.model,
                r.gpus,
                beam,
                warm_cell,
                r.wall_secs,
                r.stats.dp_evals,
                r.stats.memo_hit_rate() * 100.0,
                r.fingerprint,
                if ok { "ok" } else { "DRIFT" },
            );
            if !ok {
                eprintln!("  expected {expected}");
                drifted = true;
            }
            results.push(r);
        }
        std::fs::write(&out_path, emit_json(&results, parallel)).expect("write json");
        if drifted {
            eprintln!("plan fingerprint drift detected (see above)");
            std::process::exit(1);
        }
        println!("smoke ok: {} cells, fingerprints stable", results.len());
        return;
    }

    // Committed walls, read before this run overwrites the artifact.
    let baseline = load_baseline(&out_path);
    let opts = harness_options();
    let mut results = Vec::new();
    for m in &models {
        let name = as_static(m);
        for &g in &gpus {
            let cell_opts = cell_options(&opts, g);
            let mut r = run_cell(name, g, &cell_opts, parallel, warm);
            if parallel <= 1 {
                r.baseline_wall_secs = baseline
                    .iter()
                    .find(|(bm, bg, _)| bm == name && *bg == g)
                    .map(|&(_, _, w)| w);
            }
            let speedup = r
                .baseline_wall_secs
                .map(|b| format!(" speedup={:.2}x", b / r.wall_secs.max(1e-9)))
                .unwrap_or_default();
            println!(
                "{:<16} gpus={:<3} wall={:>8.3}s evals={:>10} states={:>8} hit-rate={:.1}% stages={} depth={}{}",
                r.model,
                r.gpus,
                r.wall_secs,
                r.stats.dp_evals,
                r.stats.dp_states,
                r.stats.memo_hit_rate() * 100.0,
                r.stages,
                r.depth,
                speedup,
            );
            results.push(r);
        }
    }
    std::fs::write(&out_path, emit_json(&results, parallel)).expect("write json");
    println!("wrote {out_path}");
}
