//! Planner performance profile: search wall time and DP-search counters
//! for every zoo model at 8/16/32/64 GPUs, emitted as `BENCH_planner.json`.
//!
//! This is the perf-trajectory artifact for the ROADMAP's "partition hot
//! path" item: run it before and after planner changes and diff the wall
//! times (the counters are deterministic and double as a drift check).
//!
//! Flags:
//!
//! * `--smoke` — small fixed-budget subset with pinned plan fingerprints;
//!   exits non-zero when any fingerprint drifts (CI uses this);
//! * `--parallel N` — plan with [`ParallelPlanner`] over `N` threads
//!   instead of the sequential planner (plans are identical by
//!   construction; only the wall time moves);
//! * `--models a,b` / `--gpus 8,16` — restrict the sweep;
//! * `--out PATH` — where to write the JSON (default `BENCH_planner.json`).

use gp_bench::harness::{harness_options, paper_mini_batch};
use graphpipe::prelude::*;
use graphpipe::serve::fingerprint::plan_fingerprint;
use std::fmt::Write as _;
use std::time::Instant;

struct CellResult {
    model: &'static str,
    gpus: usize,
    mini_batch: u64,
    wall_secs: f64,
    stats: SearchStats,
    stages: usize,
    depth: usize,
    fingerprint: String,
}

/// The smoke subset: cheap cells with pinned plan fingerprints. The
/// fingerprint is the gp-serve artifact fingerprint of the produced plan
/// (stage graph + in-flight + schedule, wall-clock excluded), so any
/// behaviour change in the planner shows up as drift here before the
/// golden tables are even consulted.
const SMOKE_CELLS: &[(&str, usize, &str)] = &[
    ("mmt", 8, "dbe8f9292f23daa2c5112aba6cdc24ba"),
    ("dlrm", 8, "f336e9529283a14591873c7cf2635b27"),
    ("candle-uno", 8, "fba1571a980719c51f9d01f9b9395f08"),
    ("candle-uno-full", 8, "850498fc6a04cb51a9cd5c868102ac2c"),
    ("moe", 8, "78f0d19fb603f82016a6c888640ddc79"),
];

/// Eval budget for the smoke run: far above the smoke cells' real cost
/// (~300k evals total) yet a hard ceiling against search regressions.
const SMOKE_EVAL_BUDGET: u64 = 4_000_000;

fn model_by_name(name: &str) -> SpModel {
    match name {
        "mmt" => zoo::mmt(&zoo::MmtConfig::default()),
        "dlrm" => zoo::dlrm(&zoo::DlrmConfig::default()),
        "candle-uno" => zoo::candle_uno(&zoo::CandleUnoConfig::default()),
        "candle-uno-full" => zoo::candle_uno(&zoo::CandleUnoConfig::full()),
        "moe" => zoo::moe(&zoo::MoeConfig::default()),
        other => panic!("unknown model {other}"),
    }
}

fn run_cell(name: &'static str, gpus: usize, opts: &PlanOptions, parallel: usize) -> CellResult {
    let model = model_by_name(name);
    let cluster = Cluster::summit_like(gpus);
    let mini_batch = paper_mini_batch(name, gpus);
    let t0 = Instant::now();
    let plan = if parallel > 1 {
        ParallelPlanner::with_options(opts.clone(), parallel).plan(&model, &cluster, mini_batch)
    } else {
        GraphPipePlanner::with_options(opts.clone()).plan(&model, &cluster, mini_batch)
    }
    .unwrap_or_else(|e| panic!("{name}@{gpus}: {e}"));
    let wall_secs = t0.elapsed().as_secs_f64();
    CellResult {
        model: name,
        gpus,
        mini_batch,
        wall_secs,
        stats: plan.stats,
        stages: plan.stage_graph.len(),
        depth: plan.pipeline_depth(),
        fingerprint: plan_fingerprint(&plan).to_string(),
    }
}

fn emit_json(results: &[CellResult], parallel: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"planner_profile\",\n");
    let _ = writeln!(out, "  \"parallelism\": {},", parallel.max(1));
    out.push_str("  \"cells\": [\n");
    for (i, r) in results.iter().enumerate() {
        let s = &r.stats;
        let _ = write!(
            out,
            "    {{\"model\": \"{}\", \"gpus\": {}, \"mini_batch\": {}, \
             \"wall_secs\": {:.6}, \"dp_evals\": {}, \"dp_states\": {}, \
             \"memo_hits\": {}, \"memo_hit_rate\": {:.4}, \
             \"work_bound_prunes\": {}, \"memory_prunes\": {}, \
             \"binary_iters\": {}, \"configs_tried\": {}, \
             \"stages\": {}, \"depth\": {}, \"fingerprint\": \"{}\"}}",
            r.model,
            r.gpus,
            r.mini_batch,
            r.wall_secs,
            s.dp_evals,
            s.dp_states,
            s.memo_hits,
            s.memo_hit_rate(),
            s.work_bound_prunes,
            s.memory_prunes,
            s.binary_iters,
            s.configs_tried,
            r.stages,
            r.depth,
            r.fingerprint,
        );
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut parallel = 1usize;
    let mut models: Vec<String> = vec![
        "mmt".into(),
        "dlrm".into(),
        "candle-uno".into(),
        "candle-uno-full".into(),
        "moe".into(),
    ];
    let mut gpus: Vec<usize> = vec![8, 16, 32, 64];
    let mut out_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--parallel" => {
                parallel = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--parallel N");
            }
            "--models" => {
                models = it
                    .next()
                    .expect("--models a,b")
                    .split(',')
                    .map(str::to_string)
                    .collect();
            }
            "--gpus" => {
                gpus = it
                    .next()
                    .expect("--gpus 8,16")
                    .split(',')
                    .map(|v| v.parse().expect("gpu count"))
                    .collect();
            }
            "--out" => out_path = Some(it.next().expect("--out PATH").clone()),
            other => panic!("unknown flag {other}"),
        }
    }
    // The tracked perf-trajectory artifact for full sweeps; the smoke
    // variant stays out of the checkout (CI runs it on every push).
    let out_path = out_path.unwrap_or_else(|| {
        if smoke {
            "target/planner_smoke.json".to_string()
        } else {
            "BENCH_planner.json".to_string()
        }
    });

    let static_names: &[&'static str] = &["mmt", "dlrm", "candle-uno", "candle-uno-full", "moe"];
    let as_static = |m: &str| -> &'static str {
        static_names
            .iter()
            .copied()
            .find(|s| *s == m)
            .unwrap_or_else(|| panic!("unknown model {m}"))
    };

    if smoke {
        let opts = PlanOptions {
            eval_budget: SMOKE_EVAL_BUDGET,
            ..harness_options()
        };
        let mut drifted = false;
        let mut results = Vec::new();
        for &(name, g, expected) in SMOKE_CELLS {
            let r = run_cell(as_static(name), g, &opts, parallel);
            let ok = r.fingerprint == expected;
            println!(
                "{:<16} gpus={:<2} wall={:.3}s evals={} hit-rate={:.1}% fp={} {}",
                r.model,
                r.gpus,
                r.wall_secs,
                r.stats.dp_evals,
                r.stats.memo_hit_rate() * 100.0,
                r.fingerprint,
                if ok { "ok" } else { "DRIFT" },
            );
            if !ok {
                eprintln!("  expected {expected}");
                drifted = true;
            }
            results.push(r);
        }
        std::fs::write(&out_path, emit_json(&results, parallel)).expect("write json");
        if drifted {
            eprintln!("plan fingerprint drift detected (see above)");
            std::process::exit(1);
        }
        println!("smoke ok: {} cells, fingerprints stable", results.len());
        return;
    }

    let opts = harness_options();
    let mut results = Vec::new();
    for m in &models {
        let name = as_static(m);
        for &g in &gpus {
            let r = run_cell(name, g, &opts, parallel);
            println!(
                "{:<16} gpus={:<2} wall={:>8.3}s evals={:>10} states={:>8} hit-rate={:.1}% stages={} depth={}",
                r.model,
                r.gpus,
                r.wall_secs,
                r.stats.dp_evals,
                r.stats.dp_states,
                r.stats.memo_hit_rate() * 100.0,
                r.stages,
                r.depth,
            );
            results.push(r);
        }
    }
    std::fs::write(&out_path, emit_json(&results, parallel)).expect("write json");
    println!("wrote {out_path}");
}
