//! Load generator for the distributed plan-serving layer (`gp-fleet`).
//!
//! Replays a mixed zoo workload — including the full 21-branch CANDLE-Uno
//! and the Mixture-of-Experts wide-branch model — against a
//! [`FleetService`] from thousands of client threads spread across a
//! tenant mix, then prints throughput, shard cache behaviour, and
//! admission counters.
//!
//! ```text
//! serve_load [--requests N] [--clients C] [--tenants T] [--workers W]
//!            [--cache CAP] [--shards S] [--store DIR] [--quota Q]
//!            [--depth D] [--assert-hits] [--out PATH]
//! ```
//!
//! Defaults: 4096 requests from 2048 client threads across 6 tenants
//! (class mix standard/batch/premium, round-robin) against 4 planner
//! workers, an 8-shard 32-entry cache, and no persistent store. `--quota`
//! sets a per-tenant in-flight token limit and `--depth` a miss-backlog
//! shed threshold (both unbounded by default, so the smoke assertions see
//! no refusals). With `--assert-hits` the binary exits non-zero unless
//! (a) repeat requests were served from a shard, the store, or an
//! in-flight join, (b) single-flight deduplication held — the planner ran
//! exactly once per distinct *(request, tenant-tier)* pair (unless a
//! pre-populated `--store` served some of them), and (c) every latency
//! histogram has monotone percentiles (p50 ≤ p90 ≤ p99 ≤ max). This is
//! the CI smoke check.
//!
//! Tenant tiers rewrite search budgets, so the same zoo request planned
//! for a `batch` tenant and a `premium` tenant are *different* cache
//! entries — `distinct` in the output counts (request, tier) pairs, not
//! requests. Latencies are wall-clock and machine-dependent — the
//! committed `BENCH_serve.json` is a shape reference, not a golden.

use graphpipe::fleet::{
    AdmissionConfig, FleetConfig, FleetService, FleetStats, TenantClass, TenantSpec,
};
use graphpipe::obs::{HistogramSnapshot, Telemetry};
use graphpipe::prelude::*;
use graphpipe::serve::PlanRequest;
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::sync::Arc;

struct Args {
    requests: usize,
    clients: usize,
    tenants: usize,
    workers: usize,
    cache: usize,
    shards: usize,
    store: Option<String>,
    quota: Option<u32>,
    depth: Option<usize>,
    assert_hits: bool,
    out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        requests: 4096,
        clients: 2048,
        tenants: 6,
        workers: 4,
        cache: 32,
        shards: 8,
        store: None,
        quota: None,
        depth: None,
        assert_hits: false,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut num = |name: &str| -> usize {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} expects a positive integer"))
        };
        match flag.as_str() {
            "--requests" => args.requests = num("--requests"),
            "--clients" => args.clients = num("--clients"),
            "--tenants" => args.tenants = num("--tenants"),
            "--workers" => args.workers = num("--workers"),
            "--cache" => args.cache = num("--cache"),
            "--shards" => args.shards = num("--shards"),
            "--quota" => args.quota = Some(num("--quota") as u32),
            "--depth" => args.depth = Some(num("--depth")),
            "--store" => args.store = Some(it.next().expect("--store expects a directory")),
            "--assert-hits" => args.assert_hits = true,
            "--out" => args.out = Some(it.next().expect("--out expects a path")),
            other => panic!("unknown flag {other}; see the module docs"),
        }
    }
    assert!(args.requests > 0 && args.clients > 0 && args.tenants > 0);
    args
}

/// The tenant-class cycle: one third standard, one third batch, one third
/// premium — a realistic mix of tiers hitting the same fleet.
const CLASS_CYCLE: [TenantClass; 3] = [
    TenantClass::Standard,
    TenantClass::Batch,
    TenantClass::Premium,
];

fn tenant_name(t: usize) -> String {
    format!("tenant-{t}")
}

fn tenant_class(t: usize) -> TenantClass {
    CLASS_CYCLE[t % CLASS_CYCLE.len()]
}

/// The request mix: every model family in the zoo, at the paper's 8-GPU
/// operating points where they exist.
fn workload() -> Vec<PlanRequest> {
    let opts = PlanOptions {
        max_micro_batches: 128,
        ..PlanOptions::default()
    };
    let eight = Cluster::summit_like(8);
    let mix: Vec<(SpModel, u64)> = vec![
        (zoo::mmt(&zoo::MmtConfig::two_branch()), 128),
        (zoo::dlrm(&zoo::DlrmConfig::default()), 512),
        (zoo::candle_uno(&zoo::CandleUnoConfig::default()), 8192),
        // The full 21-branch CANDLE-Uno (ROADMAP "new workloads").
        (zoo::candle_uno(&zoo::CandleUnoConfig::full()), 8192),
        // The MoE-style wide-branch model (shared trunk, 8 experts).
        (zoo::moe(&zoo::MoeConfig::default()), 256),
        (
            zoo::sequential_transformer(8, &zoo::MmtConfig::default()),
            64,
        ),
    ];
    mix.into_iter()
        .map(|(model, mini_batch)| {
            PlanRequest::new(Arc::new(model), eight.clone(), mini_batch).with_options(opts.clone())
        })
        .collect()
}

/// Distinct (mix index, tenant tier) pairs the replay will actually
/// submit — the exact number of planner runs single-flight dedup allows.
fn expected_distinct(args: &Args, mix_len: usize) -> u64 {
    let mut pairs = BTreeSet::new();
    for i in 0..args.requests {
        let tenant = (i % args.clients) % args.tenants;
        pairs.insert((i % mix_len, tenant_class(tenant).name()));
    }
    pairs.len() as u64
}

/// One histogram as a JSON object, nanosecond fields verbatim from the
/// snapshot.
fn hist_json(h: &HistogramSnapshot) -> String {
    format!(
        "{{\"count\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}, \
         \"mean_ns\": {:.1}}}",
        h.count,
        h.p50,
        h.p90,
        h.p99,
        h.max,
        h.mean(),
    )
}

fn emit_json(args: &Args, distinct: u64, wall: f64, stats: &FleetStats) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"serve_load\",");
    let _ = writeln!(
        out,
        "  \"requests\": {}, \"distinct\": {}, \"clients\": {}, \"tenants\": {}, \
         \"workers\": {}, \"cache\": {}, \"shards\": {},",
        args.requests, distinct, args.clients, args.tenants, args.workers, args.cache, args.shards
    );
    let _ = writeln!(
        out,
        "  \"wall_secs\": {:.6}, \"throughput_rps\": {:.1}, \"shard_hit_rate\": {:.4}, \
         \"shed_rate\": {:.4},",
        wall,
        args.requests as f64 / wall,
        stats.hit_rate(),
        stats.shed_rate()
    );
    let _ = writeln!(
        out,
        "  \"shard_hits\": {}, \"store_hits\": {}, \"store_rejects\": {}, \"joins\": {}, \
         \"misses\": {},",
        stats.shard_hits, stats.store_hits, stats.store_rejects, stats.joins, stats.misses
    );
    let _ = writeln!(
        out,
        "  \"shed\": {}, \"quota_refusals\": {}, \"planner_runs\": {}, \"warm_starts\": {}, \
         \"retries\": {}, \"cache_evictions\": {},",
        stats.shed,
        stats.quota_refusals,
        stats.planner_runs,
        stats.warm_starts,
        stats.retries,
        stats.cache_evictions
    );
    let _ = writeln!(out, "  \"latency\": {{");
    let _ = writeln!(out, "    \"queue_wait\": {},", hist_json(&stats.queue_wait));
    let _ = writeln!(out, "    \"worker_rtt\": {}", hist_json(&stats.worker_rtt));
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "}}");
    out
}

/// Percentiles of a latency histogram must not decrease as the quantile
/// rises — the shape invariant the CI smoke pins.
fn assert_monotone(label: &str, h: &HistogramSnapshot) {
    assert!(
        h.p50 <= h.p90 && h.p90 <= h.p99 && h.p99 <= h.max,
        "{label} percentiles not monotone: p50 {} p90 {} p99 {} max {}",
        h.p50,
        h.p90,
        h.p99,
        h.max
    );
}

fn main() {
    let args = parse_args();
    let mix = workload();
    let distinct = expected_distinct(&args, mix.len());

    let admission = AdmissionConfig {
        default_spec: TenantSpec::default(),
        tenants: (0..args.tenants)
            .map(|t| {
                (
                    tenant_name(t),
                    TenantSpec {
                        class: tenant_class(t),
                        tokens: args.quota,
                    },
                )
            })
            .collect(),
        max_queue_depth: args.depth,
    };
    let fleet = Arc::new(
        FleetService::start(FleetConfig {
            shards: args.shards,
            cache_capacity: args.cache,
            local_workers: args.workers,
            remote_workers: Vec::new(),
            store: args.store.as_ref().map(Into::into),
            admission,
            telemetry: Telemetry::enabled(),
        })
        .expect("open fleet store"),
    );
    let store_preloaded = fleet.store().map_or(0, |s| s.len());

    println!(
        "# serve_load: {} requests ({} distinct request×tier pairs) from {} clients \
         across {} tenants, {} workers, {} shards, cache {}{}",
        args.requests,
        distinct,
        args.clients,
        args.tenants,
        args.workers,
        args.shards,
        args.cache,
        match &args.store {
            Some(dir) => format!(", store {dir} ({store_preloaded} preloaded)"),
            None => String::new(),
        }
    );

    let t0 = std::time::Instant::now();
    let mut clients = Vec::new();
    for c in 0..args.clients {
        let fleet = Arc::clone(&fleet);
        let tenant = tenant_name(c % args.tenants);
        // Client c replays requests c, c+C, c+2C, ... round-robin over the
        // mix, so identical requests arrive concurrently from the start.
        let mine: Vec<PlanRequest> = (c..args.requests)
            .step_by(args.clients)
            .map(|i| mix[i % mix.len()].clone())
            .collect();
        if mine.is_empty() {
            continue;
        }
        // 2048 clients at the default thread stack would reserve gigabytes;
        // the client loop needs almost none.
        let handle = std::thread::Builder::new()
            .stack_size(256 * 1024)
            .spawn(move || {
                for request in mine {
                    fleet
                        .submit(&tenant, request)
                        .expect("admission is unbounded in replay mode")
                        .wait()
                        .expect("zoo requests are plannable");
                }
            })
            .expect("spawn client thread");
        clients.push(handle);
    }
    for client in clients {
        client.join().expect("client thread");
    }
    let wall = t0.elapsed().as_secs_f64();
    let stats = fleet.stats();

    println!("\n{}", stats.render());
    println!(
        "wall {:.3} s  throughput {:.0} req/s  shard-hit-rate {:.1}%  shed-rate {:.1}%",
        wall,
        args.requests as f64 / wall,
        stats.hit_rate() * 100.0,
        stats.shed_rate() * 100.0
    );

    if let Some(path) = &args.out {
        std::fs::write(path, emit_json(&args, distinct, wall, &stats))
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }

    if args.assert_hits {
        assert_eq!(
            stats.requests, args.requests as u64,
            "request accounting mismatch"
        );
        assert!(
            stats.shard_hits + stats.store_hits + stats.joins > 0,
            "expected nonzero shard/store hits or joins:\n{}",
            stats.render()
        );
        let ran = stats.planner_runs;
        let cap = distinct.min(args.requests as u64);
        if store_preloaded == 0 {
            assert_eq!(
                ran,
                cap,
                "single-flight dedup violated: planner must run exactly once per \
                 distinct (request, tier) pair:\n{}",
                stats.render()
            );
        } else {
            assert!(
                ran <= cap,
                "planner ran more than once per distinct pair despite the store:\n{}",
                stats.render()
            );
        }
        // A fully warm store can satisfy every miss without the pool, in
        // which case both histograms are legitimately empty.
        if stats.planner_runs > 0 {
            assert!(
                stats.queue_wait.count > 0 && stats.worker_rtt.count > 0,
                "fleet recorded no latencies:\n{}",
                stats.render()
            );
        }
        assert_monotone("queue wait", &stats.queue_wait);
        assert_monotone("worker rtt", &stats.worker_rtt);
        println!("serve-smoke assertions passed");
    }
}
