//! Load generator for the plan-serving subsystem (`gp-serve`).
//!
//! Replays a mixed zoo workload — including the full 21-branch CANDLE-Uno
//! and the Mixture-of-Experts wide-branch model — against a
//! [`PlanService`] at configurable concurrency, then prints throughput and
//! cache behaviour.
//!
//! ```text
//! serve_load [--requests N] [--concurrency C] [--workers W] [--cache CAP]
//!            [--assert-hits] [--out PATH]
//! ```
//!
//! Defaults: 256 requests from 64 client threads against 4 planner
//! workers and a 32-entry cache. With `--assert-hits` the binary exits
//! non-zero unless (a) repeat requests were served from the cache or
//! joined in flight, (b) single-flight deduplication held, i.e. the
//! planner ran exactly once per *distinct* request in the mix, and (c)
//! every recorded latency histogram has monotone percentiles
//! (p50 ≤ p90 ≤ p99 ≤ max). This is the CI smoke check.
//!
//! The service runs with `gp-obs` telemetry enabled, so the printed stats
//! include hit/miss/queue-wait latency histograms; `--out PATH` writes
//! them as JSON (the committed `BENCH_serve.json`). Latencies are
//! wall-clock and therefore machine-dependent — the committed file is a
//! shape reference, not a golden.

use graphpipe::obs::{HistogramSnapshot, Telemetry};
use graphpipe::prelude::*;
use graphpipe::serve::{PlanRequest, PlanService, ServeStats};
use std::fmt::Write as _;
use std::sync::Arc;

struct Args {
    requests: usize,
    concurrency: usize,
    workers: usize,
    cache: usize,
    assert_hits: bool,
    out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        requests: 256,
        concurrency: 64,
        workers: 4,
        cache: 32,
        assert_hits: false,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut num = |name: &str| -> usize {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} expects a positive integer"))
        };
        match flag.as_str() {
            "--requests" => args.requests = num("--requests"),
            "--concurrency" => args.concurrency = num("--concurrency"),
            "--workers" => args.workers = num("--workers"),
            "--cache" => args.cache = num("--cache"),
            "--assert-hits" => args.assert_hits = true,
            "--out" => args.out = Some(it.next().expect("--out expects a path")),
            other => panic!("unknown flag {other}; see the module docs"),
        }
    }
    assert!(args.requests > 0 && args.concurrency > 0);
    args
}

/// The request mix: every model family in the zoo, at the paper's 8-GPU
/// operating points where they exist.
fn workload() -> Vec<PlanRequest> {
    let opts = PlanOptions {
        max_micro_batches: 128,
        ..PlanOptions::default()
    };
    let eight = Cluster::summit_like(8);
    let mix: Vec<(SpModel, u64)> = vec![
        (zoo::mmt(&zoo::MmtConfig::two_branch()), 128),
        (zoo::dlrm(&zoo::DlrmConfig::default()), 512),
        (zoo::candle_uno(&zoo::CandleUnoConfig::default()), 8192),
        // The full 21-branch CANDLE-Uno (ROADMAP "new workloads").
        (zoo::candle_uno(&zoo::CandleUnoConfig::full()), 8192),
        // The MoE-style wide-branch model (shared trunk, 8 experts).
        (zoo::moe(&zoo::MoeConfig::default()), 256),
        (
            zoo::sequential_transformer(8, &zoo::MmtConfig::default()),
            64,
        ),
    ];
    mix.into_iter()
        .map(|(model, mini_batch)| {
            PlanRequest::new(Arc::new(model), eight.clone(), mini_batch).with_options(opts.clone())
        })
        .collect()
}

/// One histogram as a JSON object, nanosecond fields verbatim from the
/// snapshot.
fn hist_json(h: &HistogramSnapshot) -> String {
    format!(
        "{{\"count\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}, \
         \"mean_ns\": {:.1}}}",
        h.count,
        h.p50,
        h.p90,
        h.p99,
        h.max,
        h.mean(),
    )
}

fn emit_json(args: &Args, distinct: u64, wall: f64, stats: &ServeStats) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"serve_load\",");
    let _ = writeln!(
        out,
        "  \"requests\": {}, \"distinct\": {}, \"concurrency\": {}, \"workers\": {}, \
         \"cache\": {},",
        args.requests, distinct, args.concurrency, args.workers, args.cache
    );
    let _ = writeln!(
        out,
        "  \"wall_secs\": {:.6}, \"throughput_rps\": {:.1}, \"hit_rate\": {:.4},",
        wall,
        args.requests as f64 / wall,
        stats.hit_rate()
    );
    let _ = writeln!(
        out,
        "  \"hits\": {}, \"joins\": {}, \"misses\": {}, \"planner_runs\": {}, \
         \"planner_errors\": {}, \"cache_evictions\": {},",
        stats.hits,
        stats.joins,
        stats.misses,
        stats.planner_runs,
        stats.planner_errors,
        stats.cache_evictions
    );
    let _ = writeln!(out, "  \"latency\": {{");
    let _ = writeln!(out, "    \"hit\": {},", hist_json(&stats.hit_latency));
    let _ = writeln!(out, "    \"miss\": {},", hist_json(&stats.miss_latency));
    let _ = writeln!(out, "    \"queue_wait\": {}", hist_json(&stats.queue_wait));
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "}}");
    out
}

/// Percentiles of a latency histogram must not decrease as the quantile
/// rises — the shape invariant the CI smoke pins.
fn assert_monotone(label: &str, h: &HistogramSnapshot) {
    assert!(
        h.p50 <= h.p90 && h.p90 <= h.p99 && h.p99 <= h.max,
        "{label} percentiles not monotone: p50 {} p90 {} p99 {} max {}",
        h.p50,
        h.p90,
        h.p99,
        h.max
    );
}

fn main() {
    let args = parse_args();
    let mix = workload();
    let distinct = mix.len() as u64;
    let service = Arc::new(PlanService::with_telemetry(
        args.workers,
        args.cache,
        Telemetry::enabled(),
    ));

    println!(
        "# serve_load: {} requests ({} distinct) from {} client threads, {} workers, cache {}",
        args.requests, distinct, args.concurrency, args.workers, args.cache
    );

    let t0 = std::time::Instant::now();
    let mut clients = Vec::new();
    for c in 0..args.concurrency {
        let service = Arc::clone(&service);
        // Client c replays requests c, c+C, c+2C, ... round-robin over the
        // mix, so identical requests arrive concurrently from the start.
        let mine: Vec<PlanRequest> = (c..args.requests)
            .step_by(args.concurrency)
            .map(|i| mix[i % mix.len()].clone())
            .collect();
        clients.push(std::thread::spawn(move || {
            for request in mine {
                service.plan(request).expect("zoo requests are plannable");
            }
        }));
    }
    for client in clients {
        client.join().expect("client thread");
    }
    let wall = t0.elapsed().as_secs_f64();
    let stats = service.stats();

    println!("\n{stats}\n");
    println!(
        "wall {:.3} s  throughput {:.0} req/s  hit-rate {:.1}%",
        wall,
        args.requests as f64 / wall,
        stats.hit_rate() * 100.0
    );

    if let Some(path) = &args.out {
        std::fs::write(path, emit_json(&args, distinct, wall, &stats))
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }

    if args.assert_hits {
        assert_eq!(
            stats.requests, args.requests as u64,
            "request accounting mismatch"
        );
        assert!(
            stats.hits + stats.joins > 0,
            "expected nonzero cache hits/joins: {stats}"
        );
        assert_eq!(
            stats.planner_runs,
            distinct.min(args.requests as u64),
            "single-flight dedup violated: planner must run exactly once \
             per distinct request: {stats}"
        );
        assert!(
            stats.hit_latency.count > 0 && stats.miss_latency.count > 0,
            "telemetry recorded no latencies: {stats}"
        );
        assert_monotone("hit latency", &stats.hit_latency);
        assert_monotone("miss latency", &stats.miss_latency);
        assert_monotone("queue wait", &stats.queue_wait);
        println!("serve-smoke assertions passed");
    }
}
