//! Simulator performance profile: wall time, span counts, and report
//! fingerprints for scaled pipeline strategies, emitted as
//! `BENCH_sim.json`.
//!
//! This is the perf-trajectory artifact for the ROADMAP's "scale the
//! simulator" item: the paper's scalability claims (Figures 6–9) rest on
//! evaluating schedules far beyond the planner's 8–64 GPU operating
//! points, so this harness drives `gp-sim` directly — it builds scaled
//! strategies over the zoo by hand (contiguous chunks of the linearized
//! model, data-parallel replicas filling the device count) instead of
//! paying for a 512-GPU planner search, and sweeps
//! {64, 256, 512, 1024} devices x {1k, 10k} micro-batches.
//!
//! Flags:
//!
//! * `--smoke` — small fixed cells with pinned report fingerprints; exits
//!   non-zero when any fingerprint drifts (CI uses this);
//! * `--parallel N` — simulate with `N` relaxation workers (reports are
//!   byte-identical by construction; only the wall time moves);
//! * `--models a,b` / `--devices 64,256` / `--micro-batches 1000` —
//!   restrict the sweep;
//! * `--baseline PATH` — a previous `BENCH_sim.json`; matching cells gain
//!   `baseline_wall_secs` and `speedup` fields;
//! * `--out PATH` — where to write the JSON (default `BENCH_sim.json`).
//!
//! Memory caveat: `rss_hwm_kb_process` is the *process* high-water mark
//! (`VmHWM`), which only ever rises — once an early cell pushes it up,
//! later (smaller) cells repeat the same number; it must not be read as a
//! per-cell cost. `rss_hwm_delta_kb` is the amount *this* cell raised the
//! watermark (0 when a previous cell's peak still dominates), and
//! `report_bytes` is the deterministic, engine-independent share.

use graphpipe::prelude::*;
use graphpipe::sched::{assign_in_flight, schedule_tasks, Stage, StageGraph, StageId};
use graphpipe::sim::SimReport;
use std::fmt::Write as _;
use std::time::Instant;

/// Per-stage micro-batch size of the scaled strategies. Small enough that
/// 10k micro-batches stay a plausible mini-batch, large enough to keep
/// per-task durations off the kernel-overhead floor.
const MICRO_BATCH: u64 = 4;

/// The smoke subset: cheap cells with pinned report fingerprints
/// ([`SimReport::fingerprint`] folds every scalar bit pattern and every
/// timeline span, so any engine behaviour change shows up as drift here
/// before the golden table is even consulted).
const SMOKE_CELLS: &[(&str, usize, u64, &str)] = &[
    ("mmt", 64, 256, "7e93113acf323336"),
    ("dlrm", 64, 256, "abd1cbb0bea72312"),
    ("candle-uno", 64, 256, "e19b0876c4d64435"),
    ("candle-uno-full", 64, 256, "cc54596f9374a5ac"),
    ("moe", 64, 256, "1b70bd53f50bff2a"),
];

struct CellResult {
    model: &'static str,
    devices: usize,
    micro_batches: u64,
    stages: usize,
    spans: usize,
    wall_secs: f64,
    makespan: f64,
    fingerprint: String,
    report_bytes: usize,
    rss_hwm_kb_process: u64,
    rss_hwm_delta_kb: u64,
    baseline_wall_secs: Option<f64>,
}

fn model_by_name(name: &str) -> SpModel {
    match name {
        "mmt" => zoo::mmt(&zoo::MmtConfig::default()),
        "dlrm" => zoo::dlrm(&zoo::DlrmConfig::default()),
        "candle-uno" => zoo::candle_uno(&zoo::CandleUnoConfig::default()),
        "candle-uno-full" => zoo::candle_uno(&zoo::CandleUnoConfig::full()),
        "moe" => zoo::moe(&zoo::MoeConfig::default()),
        other => panic!("unknown model {other}"),
    }
}

/// Builds a scaled strategy for `devices` GPUs: the linearized model cut
/// into equal contiguous chunks (convex by construction — any path between
/// two ops of a chunk stays between them in topological order), each chunk
/// replicated data-parallel over `devices / stages` GPUs, 1F1B schedules
/// from the §6 in-flight assignment. This is *not* a planner output — it
/// is a deterministic, memory-oblivious strategy whose only job is to
/// exercise the simulator at scale.
fn scaled_strategy(
    model: &SpModel,
    cluster: &Cluster,
    micro_batches: u64,
) -> (StageGraph, graphpipe::sched::PipelineSchedule) {
    let devices = cluster.device_count();
    let ops = model.linearize();
    let mut nstages = devices.min(64);
    while nstages > ops.len() {
        nstages /= 2;
    }
    assert!(
        devices.is_multiple_of(nstages),
        "device counts must be powers of two >= 64"
    );
    let dp = (devices / nstages) as u32;
    let mini_batch = MICRO_BATCH * micro_batches;
    let stages: Vec<Stage> = (0..nstages)
        .map(|i| {
            let lo = i * ops.len() / nstages;
            let hi = (i + 1) * ops.len() / nstages;
            Stage {
                id: StageId(i as u32),
                ops: ops[lo..hi].to_vec(),
                devices: DeviceRange::new(i as u32 * dp, dp),
                micro_batch: MICRO_BATCH,
                kfkb: 1,
            }
        })
        .collect();
    let sg = StageGraph::new(model.graph(), cluster, stages, mini_batch)
        .expect("scaled strategies are valid stage graphs");
    let schedule = schedule_tasks(&sg, &assign_in_flight(&sg));
    (sg, schedule)
}

/// `VmHWM` from `/proc/self/status` in KiB — the process peak-RSS
/// watermark (0 where unavailable). Monotone across cells: it never
/// falls, so by itself it reads as the sweep's high-water trajectory,
/// not a per-cell cost — cells report it alongside the per-cell delta
/// (see the module docs).
fn rss_high_water_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find(|l| l.starts_with("VmHWM:")).and_then(|l| {
                l.split_whitespace()
                    .nth(1)
                    .and_then(|v| v.parse::<u64>().ok())
            })
        })
        .unwrap_or(0)
}

/// Bytes held by the report itself (timeline + per-device vectors) — the
/// deterministic share of the memory cost, engine-independent.
fn report_bytes(report: &SimReport) -> usize {
    report.timeline.capacity() * std::mem::size_of::<graphpipe::sim::TaskSpan>()
        + report.per_device_busy.capacity() * std::mem::size_of::<f64>()
        + report.peak_memory_bytes.capacity() * std::mem::size_of::<u64>()
}

fn run_cell(name: &'static str, devices: usize, micro_batches: u64, parallel: usize) -> CellResult {
    let model = model_by_name(name);
    let cluster = Cluster::summit_like(devices);
    let (sg, schedule) = scaled_strategy(&model, &cluster, micro_batches);
    let options = graphpipe::sim::SimOptions::default().with_parallelism(parallel);
    let hwm_before = rss_high_water_kb();
    let t0 = Instant::now();
    let report = graphpipe::sim::simulate_with(model.graph(), &cluster, &sg, &schedule, &options)
        .unwrap_or_else(|e| panic!("{name}@{devices}x{micro_batches}: {e}"));
    let wall_secs = t0.elapsed().as_secs_f64();
    let hwm_after = rss_high_water_kb();
    CellResult {
        model: name,
        devices,
        micro_batches,
        stages: sg.len(),
        spans: report.timeline.len(),
        wall_secs,
        makespan: report.iteration_time,
        fingerprint: format!("{:016x}", report.fingerprint()),
        report_bytes: report_bytes(&report),
        rss_hwm_kb_process: hwm_after,
        rss_hwm_delta_kb: hwm_after.saturating_sub(hwm_before),
        baseline_wall_secs: None,
    }
}

/// Pulls `(model, devices, micro_batches) -> wall_secs` out of a previous
/// `BENCH_sim.json`. The emitter writes one cell per line, so a line-wise
/// field scan is enough — no JSON parser needed offline.
fn parse_baseline(text: &str) -> Vec<(String, usize, u64, f64)> {
    let field = |line: &str, key: &str| -> Option<String> {
        let pat = format!("\"{key}\": ");
        let start = line.find(&pat)? + pat.len();
        let rest = &line[start..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim().trim_matches('"').to_string())
    };
    text.lines()
        .filter(|l| l.contains("\"model\""))
        .filter_map(|l| {
            Some((
                field(l, "model")?,
                field(l, "devices")?.parse().ok()?,
                field(l, "micro_batches")?.parse().ok()?,
                field(l, "wall_secs")?.parse().ok()?,
            ))
        })
        .collect()
}

fn emit_json(results: &[CellResult], parallel: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"sim_profile\",\n");
    let _ = writeln!(out, "  \"parallelism\": {},", parallel.max(1));
    out.push_str("  \"cells\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"model\": \"{}\", \"devices\": {}, \"micro_batches\": {}, \
             \"stages\": {}, \"spans\": {}, \"wall_secs\": {:.6}, \
             \"makespan\": {:.9e}, \"fingerprint\": \"{}\", \
             \"report_bytes\": {}, \"rss_hwm_kb_process\": {}, \"rss_hwm_delta_kb\": {}",
            r.model,
            r.devices,
            r.micro_batches,
            r.stages,
            r.spans,
            r.wall_secs,
            r.makespan,
            r.fingerprint,
            r.report_bytes,
            r.rss_hwm_kb_process,
            r.rss_hwm_delta_kb,
        );
        if let Some(base) = r.baseline_wall_secs {
            let _ = write!(
                out,
                ", \"baseline_wall_secs\": {:.6}, \"speedup\": {:.2}",
                base,
                base / r.wall_secs.max(1e-12),
            );
        }
        out.push('}');
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut parallel = 1usize;
    let mut models: Vec<String> = vec![
        "mmt".into(),
        "dlrm".into(),
        "candle-uno".into(),
        "candle-uno-full".into(),
        "moe".into(),
    ];
    let mut devices: Vec<usize> = vec![64, 256, 512, 1024];
    let mut micro_batches: Vec<u64> = vec![1_000, 10_000];
    let mut baseline_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--parallel" => {
                parallel = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--parallel N");
            }
            "--models" => {
                models = it
                    .next()
                    .expect("--models a,b")
                    .split(',')
                    .map(str::to_string)
                    .collect();
            }
            "--devices" => {
                devices = it
                    .next()
                    .expect("--devices 64,256")
                    .split(',')
                    .map(|v| v.parse().expect("device count"))
                    .collect();
            }
            "--micro-batches" => {
                micro_batches = it
                    .next()
                    .expect("--micro-batches 1000,10000")
                    .split(',')
                    .map(|v| v.parse().expect("micro-batch count"))
                    .collect();
            }
            "--baseline" => baseline_path = Some(it.next().expect("--baseline PATH").clone()),
            "--out" => out_path = Some(it.next().expect("--out PATH").clone()),
            other => panic!("unknown flag {other}"),
        }
    }
    // The tracked perf-trajectory artifact for full sweeps; the smoke
    // variant stays out of the checkout (CI runs it on every push).
    let out_path = out_path.unwrap_or_else(|| {
        if smoke {
            "target/sim_smoke.json".to_string()
        } else {
            "BENCH_sim.json".to_string()
        }
    });
    let baseline: Vec<(String, usize, u64, f64)> = baseline_path
        .map(|p| parse_baseline(&std::fs::read_to_string(&p).expect("read baseline")))
        .unwrap_or_default();

    let static_names: &[&'static str] = &["mmt", "dlrm", "candle-uno", "candle-uno-full", "moe"];
    let as_static = |m: &str| -> &'static str {
        static_names
            .iter()
            .copied()
            .find(|s| *s == m)
            .unwrap_or_else(|| panic!("unknown model {m}"))
    };

    if smoke {
        let mut drifted = false;
        let mut results = Vec::new();
        for &(name, d, m, expected) in SMOKE_CELLS {
            let r = run_cell(as_static(name), d, m, parallel);
            let ok = r.fingerprint == expected;
            println!(
                "{:<16} devices={:<4} mbs={:<5} wall={:.3}s spans={} fp={} {}",
                r.model,
                r.devices,
                r.micro_batches,
                r.wall_secs,
                r.spans,
                r.fingerprint,
                if ok { "ok" } else { "DRIFT" },
            );
            if !ok {
                eprintln!("  expected {expected}");
                drifted = true;
            }
            results.push(r);
        }
        std::fs::write(&out_path, emit_json(&results, parallel)).expect("write json");
        if drifted {
            eprintln!("sim report fingerprint drift detected (see above)");
            std::process::exit(1);
        }
        println!("smoke ok: {} cells, fingerprints stable", results.len());
        return;
    }

    let mut results = Vec::new();
    for m in &models {
        let name = as_static(m);
        for &d in &devices {
            for &mb in &micro_batches {
                let mut r = run_cell(name, d, mb, parallel);
                r.baseline_wall_secs = baseline
                    .iter()
                    .find(|(bm, bd, bmb, _)| bm == name && *bd == d && *bmb == mb)
                    .map(|&(_, _, _, w)| w);
                println!(
                    "{:<16} devices={:<4} mbs={:<5} wall={:>8.3}s spans={:>8} makespan={:.6e} fp={}{}",
                    r.model,
                    r.devices,
                    r.micro_batches,
                    r.wall_secs,
                    r.spans,
                    r.makespan,
                    r.fingerprint,
                    match r.baseline_wall_secs {
                        Some(b) => format!(" speedup={:.2}x", b / r.wall_secs.max(1e-12)),
                        None => String::new(),
                    },
                );
                results.push(r);
            }
        }
    }
    std::fs::write(&out_path, emit_json(&results, parallel)).expect("write json");
    println!("wrote {out_path}");
}
