//! Table 1: planner search times (seconds) for Piper, PipeDream, and
//! GraphPipe on the two-branch MMT, DLRM, and CANDLE-Uno at 4-32 GPUs.
//!
//! Expected shape (paper): GraphPipe fastest everywhere; Piper slowest and
//! "✗" (search explosion) on the 8-branch DLRM/CANDLE-Uno models.

use gp_bench::harness::{harness_options, paper_mini_batch, row};
use graphpipe::prelude::*;
use std::time::Instant;

fn time_plan(planner: &dyn Planner, model: &SpModel, cluster: &Cluster, b: u64) -> Option<f64> {
    time_plan_stats(planner, model, cluster, b).map(|(t, _)| t)
}

fn time_plan_stats(
    planner: &dyn Planner,
    model: &SpModel,
    cluster: &Cluster,
    b: u64,
) -> Option<(f64, SearchStats)> {
    let t0 = Instant::now();
    match planner.plan(model, cluster, b) {
        Ok(plan) => Some((t0.elapsed().as_secs_f64(), plan.stats)),
        Err(PlanError::SearchExplosion { .. }) => None,
        Err(other) => {
            eprintln!("warning: {} failed: {other}", planner.name());
            None
        }
    }
}

fn main() {
    // §7.2: the search-time comparison uses the *two-branch* MMT.
    let models: Vec<(&str, SpModel)> = vec![
        ("mmt(2-branch)", zoo::mmt(&zoo::MmtConfig::two_branch())),
        ("dlrm", zoo::dlrm(&zoo::DlrmConfig::default())),
        (
            "candle-uno",
            zoo::candle_uno(&zoo::CandleUnoConfig::default()),
        ),
    ];
    println!("# Table 1: solution search times (seconds)\n");
    println!(
        "{}",
        row(&[
            "model".into(),
            "GPUs".into(),
            "Piper".into(),
            "PipeDream".into(),
            "GraphPipe".into(),
            "Piper/GP".into(),
            "PD/GP".into(),
        ])
    );
    println!("{}", row(&vec!["---".to_string(); 7]));
    let mut counter_rows: Vec<String> = Vec::new();
    for (name, model) in &models {
        for devices in [4usize, 8, 16, 32] {
            let lookup = if *name == "mmt(2-branch)" {
                "mmt"
            } else {
                name
            };
            let mini_batch = paper_mini_batch(lookup, devices);
            let cluster = Cluster::summit_like(devices);
            let opts = harness_options();
            let gp_cell = time_plan_stats(
                &GraphPipePlanner::with_options(opts.clone()),
                model,
                &cluster,
                mini_batch,
            );
            let gp = gp_cell.as_ref().map(|&(t, _)| t);
            if let Some((_, s)) = &gp_cell {
                counter_rows.push(row(&[
                    name.to_string(),
                    devices.to_string(),
                    s.dp_evals.to_string(),
                    s.dp_states.to_string(),
                    s.memo_hits.to_string(),
                    format!("{:.1}%", s.memo_hit_rate() * 100.0),
                    s.work_bound_prunes.to_string(),
                    s.memory_prunes.to_string(),
                ]));
            }
            let pd = time_plan(
                &PipeDreamPlanner::with_options(opts.clone()),
                model,
                &cluster,
                mini_batch,
            );
            // §7.2 analyses Piper at operator granularity (|D| >= k^n over
            // operators), which is what its search time is charged for.
            let piper = time_plan(
                &PiperPlanner::with_options(opts.clone()).with_unit_ops(1),
                model,
                &cluster,
                mini_batch,
            );
            let fmt = |v: Option<f64>| v.map_or("✗".to_string(), |t| format!("{t:.3}"));
            let ratio = |num: Option<f64>, den: Option<f64>| match (num, den) {
                (Some(n), Some(d)) if d > 0.0 => format!("{:.1}x", n / d),
                _ => "-".to_string(),
            };
            println!(
                "{}",
                row(&[
                    name.to_string(),
                    devices.to_string(),
                    fmt(piper),
                    fmt(pd),
                    fmt(gp),
                    ratio(piper, gp),
                    ratio(pd, gp),
                ])
            );
        }
    }
    // The §5 search-cost accounting behind GraphPipe's column: how much of
    // the work the memo absorbed and the bounds pruned.
    println!("\n# GraphPipe search counters\n");
    println!(
        "{}",
        row(&[
            "model".into(),
            "GPUs".into(),
            "dp_evals".into(),
            "dp_states".into(),
            "memo_hits".into(),
            "hit-rate".into(),
            "work-bound prunes".into(),
            "memory prunes".into(),
        ])
    );
    println!("{}", row(&vec!["---".to_string(); 8]));
    for r in counter_rows {
        println!("{r}");
    }
}
