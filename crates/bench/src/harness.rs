//! Shared helpers for the table/figure harness binaries.

use graphpipe::prelude::*;
use graphpipe::PlannerKind;

/// The paper's mini-batch sizes per model and device count (Appendix A.2):
/// "we use the following ranges of mini-batch sizes for each device count
/// such that the system operates close to the memory limit".
pub fn paper_mini_batch(model: &str, devices: usize) -> u64 {
    let idx = match devices {
        4 => 0,
        8 => 1,
        16 => 2,
        32 => 3,
        64 => 4,
        128 => 5,
        other => panic!("no paper configuration for {other} devices"),
    };
    // The 64- and 128-GPU columns extrapolate A.2's doubling pattern (the
    // paper stops at 32); `planner_profile` uses them for the scaling
    // sweep.
    match model {
        "mmt" => [64, 128, 256, 512, 1024, 2048][idx],
        "dlrm" => [256, 512, 1024, 2048, 4096, 8192][idx],
        "candle-uno" | "candle-uno-full" => [4096, 8192, 16384, 32768, 65536, 131072][idx],
        "moe" => [128, 256, 512, 1024, 2048, 4096][idx],
        other => panic!("unknown model {other}"),
    }
}

/// Plan options used by the harness: the A.2 sweep caps the number of
/// micro-batches per mini-batch so huge mini-batches stay tractable.
pub fn harness_options() -> PlanOptions {
    PlanOptions {
        max_micro_batches: 128,
        ..PlanOptions::default()
    }
}

/// Result of evaluating one (planner, model, devices) cell.
pub struct Cell {
    /// Simulated training throughput, samples/s; `None` when the planner
    /// could not produce a strategy (the paper's "✗").
    pub throughput: Option<f64>,
    /// Pipeline depth of the chosen strategy.
    pub depth: Option<usize>,
    /// Chosen (maximum) micro-batch size.
    pub micro_batch: Option<u64>,
}

impl Cell {
    /// Renders the throughput or `✗`.
    pub fn fmt_throughput(&self) -> String {
        match self.throughput {
            Some(t) => format!("{t:.0}"),
            None => "✗".to_string(),
        }
    }
}

/// Evaluates a planner on a model at the harness options — a thin shim
/// over [`Session::compare`], which owns the per-planner evaluation policy
/// (A.2 micro-batch sweep for GraphPipe/PipeDream, coarse-unit single run
/// for Piper).
pub fn run_cell(model: &SpModel, cluster: &Cluster, mini_batch: u64, kind: PlannerKind) -> Cell {
    let session = Session::builder()
        .model(model.clone())
        .cluster(cluster.clone())
        .mini_batch(mini_batch)
        .options(harness_options())
        .build()
        .expect("harness sessions are well-formed");
    let comparison = session.compare(&[kind]);
    let row = &comparison.rows()[0];
    Cell {
        throughput: row.throughput,
        depth: row.depth,
        micro_batch: row.micro_batch,
    }
}

/// The three evaluation models at their paper configurations.
pub fn paper_models() -> Vec<(&'static str, SpModel)> {
    vec![
        ("mmt", zoo::mmt(&zoo::MmtConfig::default())),
        ("dlrm", zoo::dlrm(&zoo::DlrmConfig::default())),
        (
            "candle-uno",
            zoo::candle_uno(&zoo::CandleUnoConfig::default()),
        ),
    ]
}

/// Prints a markdown-style table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}
