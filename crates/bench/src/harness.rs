//! Shared helpers for the table/figure harness binaries.

use graphpipe::prelude::*;
use graphpipe::PlannerKind;

/// The paper's mini-batch sizes per model and device count (Appendix A.2):
/// "we use the following ranges of mini-batch sizes for each device count
/// such that the system operates close to the memory limit".
pub fn paper_mini_batch(model: &str, devices: usize) -> u64 {
    let idx = match devices {
        4 => 0,
        8 => 1,
        16 => 2,
        32 => 3,
        64 => 4,
        other => panic!("no paper configuration for {other} devices"),
    };
    // The 64-GPU column extrapolates A.2's doubling pattern (the paper
    // stops at 32); `planner_profile` uses it for the scaling sweep.
    match model {
        "mmt" => [64, 128, 256, 512, 1024][idx],
        "dlrm" => [256, 512, 1024, 2048, 4096][idx],
        "candle-uno" | "candle-uno-full" => [4096, 8192, 16384, 32768, 65536][idx],
        "moe" => [128, 256, 512, 1024, 2048][idx],
        other => panic!("unknown model {other}"),
    }
}

/// Plan options used by the harness: the A.2 sweep caps the number of
/// micro-batches per mini-batch so huge mini-batches stay tractable.
pub fn harness_options() -> PlanOptions {
    PlanOptions {
        max_micro_batches: 128,
        ..PlanOptions::default()
    }
}

/// Result of evaluating one (planner, model, devices) cell.
pub struct Cell {
    /// Simulated training throughput, samples/s; `None` when the planner
    /// could not produce a strategy (the paper's "✗").
    pub throughput: Option<f64>,
    /// Pipeline depth of the chosen strategy.
    pub depth: Option<usize>,
    /// Chosen (maximum) micro-batch size.
    pub micro_batch: Option<u64>,
}

impl Cell {
    /// Renders the throughput or `✗`.
    pub fn fmt_throughput(&self) -> String {
        match self.throughput {
            Some(t) => format!("{t:.0}"),
            None => "✗".to_string(),
        }
    }
}

/// Evaluates a planner on a model with the A.2 micro-batch sweep
/// (GraphPipe/PipeDream) or the planner's internal sweep (Piper, whose
/// downset DP is too expensive to re-run per forced micro-batch size).
pub fn run_cell(model: &SpModel, cluster: &Cluster, mini_batch: u64, kind: PlannerKind) -> Cell {
    let opts = harness_options();
    let outcome: Result<(Plan, SimReport), PlanError> = match kind {
        PlannerKind::Piper => {
            let planner = PiperPlanner::with_options(opts).with_unit_ops(8);
            planner.plan(model, cluster, mini_batch).and_then(|plan| {
                graphpipe::simulate_plan(model, cluster, &plan)
                    .map(|r| (plan, r))
                    .map_err(|e| PlanError::Internal(e.to_string()))
            })
        }
        _ => graphpipe::evaluate(model, cluster, mini_batch, kind, &opts)
            .map(|res| (res.plan, res.report)),
    };
    match outcome {
        Ok((plan, report)) => Cell {
            throughput: Some(report.throughput),
            depth: Some(plan.pipeline_depth()),
            micro_batch: Some(plan.max_micro_batch()),
        },
        Err(_) => Cell {
            throughput: None,
            depth: None,
            micro_batch: None,
        },
    }
}

/// The three evaluation models at their paper configurations.
pub fn paper_models() -> Vec<(&'static str, SpModel)> {
    vec![
        ("mmt", zoo::mmt(&zoo::MmtConfig::default())),
        ("dlrm", zoo::dlrm(&zoo::DlrmConfig::default())),
        (
            "candle-uno",
            zoo::candle_uno(&zoo::CandleUnoConfig::default()),
        ),
    ]
}

/// Prints a markdown-style table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}
