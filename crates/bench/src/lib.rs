//! # gp-bench — benchmark harnesses for the GraphPipe evaluation
//!
//! One binary per table/figure of the paper (see `src/bin/`), plus
//! Criterion micro-benchmarks (`benches/`). Shared helpers live here.

#![forbid(unsafe_code)]

pub mod harness;
