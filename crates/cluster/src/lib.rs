//! # gp-cluster — device-topology substrate
//!
//! GraphPipe's planner takes "a device topology graph where each node
//! represents a device with a memory budget and each edge a communication
//! link with a bandwidth" (§3). This crate models that input: device
//! profiles (a V100-like default matching the paper's Summit testbed),
//! hierarchical interconnects (NVLink within a node, InfiniBand across
//! nodes) and contiguous device ranges used for stage assignment.
//!
//! # Examples
//!
//! ```
//! use gp_cluster::{Cluster, DeviceId};
//!
//! // Summit-like: 4 GPUs per node, NVLink inside, InfiniBand across.
//! let cluster = Cluster::summit_like(8);
//! assert_eq!(cluster.device_count(), 8);
//! let intra = cluster.link(DeviceId(0), DeviceId(1)).bandwidth;
//! let inter = cluster.link(DeviceId(0), DeviceId(4)).bandwidth;
//! assert!(intra > inter);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a device (GPU) in a [`Cluster`]; dense indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DeviceId(pub u32);

impl DeviceId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gpu{}", self.0)
    }
}

/// Static performance profile of one accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Marketing name, for reports.
    pub name: String,
    /// Peak floating-point throughput in FLOP/s achievable by large,
    /// well-shaped kernels.
    pub peak_flops: f64,
    /// Device memory bandwidth in bytes/s (roofline ceiling for
    /// bandwidth-bound operators).
    pub mem_bandwidth: f64,
    /// Device memory capacity in bytes (the `M_v` budget of §3).
    pub mem_capacity: u64,
    /// Fixed per-kernel launch overhead in seconds.
    pub kernel_overhead: f64,
    /// Micro-batch size at which compute efficiency reaches half of its
    /// asymptote; models "larger micro-batches improve operational
    /// intensity" (§2). Efficiency is `b / (b + half_sat)`.
    pub efficiency_half_sat: f64,
}

impl DeviceProfile {
    /// A V100-like profile matching the paper's Summit nodes
    /// (16 GiB HBM2, ~15.7 TFLOP/s fp32, ~900 GB/s memory bandwidth).
    pub fn v100() -> Self {
        DeviceProfile {
            name: "V100-like".to_string(),
            peak_flops: 15.7e12,
            mem_bandwidth: 900.0e9,
            mem_capacity: 16 * (1 << 30),
            kernel_overhead: 10.0e-6,
            efficiency_half_sat: 2.0,
        }
    }

    /// A deliberately tiny profile so unit tests can trigger memory limits
    /// with toy models.
    pub fn tiny_test() -> Self {
        DeviceProfile {
            name: "tiny-test".to_string(),
            peak_flops: 1.0e9,
            mem_bandwidth: 1.0e9,
            mem_capacity: 1 << 20,
            kernel_overhead: 1.0e-6,
            efficiency_half_sat: 2.0,
        }
    }

    /// Batch-dependent compute-efficiency multiplier in `(0, 1)`.
    ///
    /// Saturates towards 1 as the micro-batch grows; at
    /// `efficiency_half_sat` samples the device reaches 50% of peak.
    pub fn efficiency(&self, micro_batch: u64) -> f64 {
        let b = micro_batch as f64;
        b / (b + self.efficiency_half_sat)
    }
}

/// A point-to-point interconnect profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkProfile {
    /// Sustained bandwidth in bytes/s.
    pub bandwidth: f64,
    /// Fixed per-message latency in seconds (the affine intercept of the
    /// paper's communication extrapolation, §5).
    pub latency: f64,
}

impl LinkProfile {
    /// NVLink-like intra-node link (~150 GB/s effective per direction).
    pub fn nvlink() -> Self {
        LinkProfile {
            bandwidth: 150.0e9,
            latency: 3.0e-6,
        }
    }

    /// EDR InfiniBand-like inter-node link (100 Gb/s = 12.5 GB/s).
    pub fn infiniband_edr() -> Self {
        LinkProfile {
            bandwidth: 12.5e9,
            latency: 10.0e-6,
        }
    }

    /// Time in seconds to move `bytes` across this link.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }
}

/// A homogeneous accelerator cluster with a two-level interconnect.
///
/// Devices are grouped into nodes of `gpus_per_node`; devices within a node
/// communicate over `intra_link`, devices in different nodes over
/// `inter_link`. This matches the Summit configuration of the paper's
/// evaluation (2 POWER9 + 4 V100 per node, NVLink within, EDR IB across).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    profile: DeviceProfile,
    num_devices: usize,
    gpus_per_node: usize,
    intra_link: LinkProfile,
    inter_link: LinkProfile,
}

impl Cluster {
    /// Creates a cluster from explicit parts.
    ///
    /// # Panics
    ///
    /// Panics if `num_devices == 0` or `gpus_per_node == 0`.
    pub fn new(
        profile: DeviceProfile,
        num_devices: usize,
        gpus_per_node: usize,
        intra_link: LinkProfile,
        inter_link: LinkProfile,
    ) -> Self {
        assert!(num_devices > 0, "cluster needs at least one device");
        assert!(gpus_per_node > 0, "nodes need at least one GPU");
        Cluster {
            profile,
            num_devices,
            gpus_per_node,
            intra_link,
            inter_link,
        }
    }

    /// A Summit-like cluster of `num_devices` V100s, 4 per node.
    pub fn summit_like(num_devices: usize) -> Self {
        Cluster::new(
            DeviceProfile::v100(),
            num_devices,
            4,
            LinkProfile::nvlink(),
            LinkProfile::infiniband_edr(),
        )
    }

    /// A small cluster with the [`DeviceProfile::tiny_test`] profile, for
    /// unit tests.
    pub fn tiny_test(num_devices: usize) -> Self {
        Cluster::new(
            DeviceProfile::tiny_test(),
            num_devices,
            4,
            LinkProfile::nvlink(),
            LinkProfile::infiniband_edr(),
        )
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.num_devices
    }

    /// All device ids.
    pub fn devices(&self) -> impl Iterator<Item = DeviceId> {
        (0..self.num_devices as u32).map(DeviceId)
    }

    /// The shared device profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Returns a copy of this cluster with a different per-device memory
    /// capacity (used to sweep memory pressure in tests and ablations).
    pub fn with_memory_capacity(mut self, bytes: u64) -> Self {
        self.profile.mem_capacity = bytes;
        self
    }

    /// Devices per node (the intra-node group size).
    pub fn gpus_per_node(&self) -> usize {
        self.gpus_per_node
    }

    /// The intra-node (e.g. NVLink) link profile.
    pub fn intra_link(&self) -> LinkProfile {
        self.intra_link
    }

    /// The inter-node (e.g. InfiniBand) link profile.
    pub fn inter_link(&self) -> LinkProfile {
        self.inter_link
    }

    /// The node index hosting a device.
    #[inline]
    pub fn node_of(&self, d: DeviceId) -> usize {
        d.index() / self.gpus_per_node
    }

    /// The link profile between two devices.
    ///
    /// Same-device transfers are free (`bandwidth = +inf`): the runtime
    /// keeps activations in device memory.
    #[inline]
    pub fn link(&self, a: DeviceId, b: DeviceId) -> LinkProfile {
        if a == b {
            LinkProfile {
                bandwidth: f64::INFINITY,
                latency: 0.0,
            }
        } else if self.node_of(a) == self.node_of(b) {
            self.intra_link
        } else {
            self.inter_link
        }
    }

    /// The slowest link among all pairs in a contiguous device range —
    /// the bottleneck for allreduce inside a data-parallel stage.
    #[inline]
    pub fn bottleneck_link(&self, devices: &DeviceRange) -> LinkProfile {
        if devices.len() <= 1 {
            return LinkProfile {
                bandwidth: f64::INFINITY,
                latency: 0.0,
            };
        }
        self.link(devices.first(), devices.last())
    }
}

/// A contiguous, non-empty range of devices assigned to one pipeline stage.
///
/// Contiguity keeps data-parallel replicas topologically close, which is how
/// the paper assigns devices on Summit; it also makes device partitions
/// (condition C3 of §3) trivial to verify.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DeviceRange {
    start: u32,
    len: u32,
}

impl DeviceRange {
    /// Creates the range `[start, start + len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`; every stage needs at least one device (C3).
    #[inline]
    pub fn new(start: u32, len: u32) -> Self {
        assert!(len > 0, "a stage requires at least one device");
        DeviceRange { start, len }
    }

    /// Number of devices in the range (the stage's data-parallel degree).
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Always false; ranges are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// First device.
    #[inline]
    pub fn first(&self) -> DeviceId {
        DeviceId(self.start)
    }

    /// Last device.
    #[inline]
    pub fn last(&self) -> DeviceId {
        DeviceId(self.start + self.len - 1)
    }

    /// Iterates over the devices in the range.
    pub fn iter(&self) -> impl Iterator<Item = DeviceId> {
        (self.start..self.start + self.len).map(DeviceId)
    }

    /// Whether `d` belongs to this range.
    pub fn contains(&self, d: DeviceId) -> bool {
        d.0 >= self.start && d.0 < self.start + self.len
    }

    /// Whether two ranges share any device.
    pub fn overlaps(&self, other: &DeviceRange) -> bool {
        self.start < other.start + other.len && other.start < self.start + self.len
    }
}

impl fmt::Display for DeviceRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len == 1 {
            write!(f, "gpu{}", self.start)
        } else {
            write!(f, "gpu{}-{}", self.start, self.start + self.len - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summit_topology_links() {
        let c = Cluster::summit_like(8);
        assert_eq!(c.link(DeviceId(0), DeviceId(3)), LinkProfile::nvlink());
        assert_eq!(
            c.link(DeviceId(3), DeviceId(4)),
            LinkProfile::infiniband_edr()
        );
        assert_eq!(c.node_of(DeviceId(3)), 0);
        assert_eq!(c.node_of(DeviceId(4)), 1);
    }

    #[test]
    fn same_device_link_is_free() {
        let c = Cluster::summit_like(4);
        let l = c.link(DeviceId(2), DeviceId(2));
        assert_eq!(l.latency, 0.0);
        assert_eq!(l.transfer_time(1 << 30), 0.0);
    }

    #[test]
    fn transfer_time_is_affine() {
        let l = LinkProfile {
            bandwidth: 1e9,
            latency: 1e-6,
        };
        let t1 = l.transfer_time(1_000_000);
        let t2 = l.transfer_time(2_000_000);
        assert!((t2 - t1 - 1e-3).abs() < 1e-9);
        assert!((t1 - (1e-6 + 1e-3)).abs() < 1e-12);
    }

    #[test]
    fn efficiency_saturates() {
        let p = DeviceProfile::v100();
        assert!(p.efficiency(1) < p.efficiency(4));
        assert!(p.efficiency(4) < p.efficiency(64));
        assert!(p.efficiency(1 << 20) > 0.99);
        let half = p.efficiency_half_sat as u64;
        assert!((p.efficiency(half) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn device_range_basics() {
        let r = DeviceRange::new(4, 4);
        assert_eq!(r.len(), 4);
        assert_eq!(r.first(), DeviceId(4));
        assert_eq!(r.last(), DeviceId(7));
        assert!(r.contains(DeviceId(5)));
        assert!(!r.contains(DeviceId(8)));
        assert_eq!(r.iter().count(), 4);
        assert_eq!(r.to_string(), "gpu4-7");
        assert_eq!(DeviceRange::new(3, 1).to_string(), "gpu3");
    }

    #[test]
    fn device_range_overlap() {
        let a = DeviceRange::new(0, 4);
        let b = DeviceRange::new(4, 4);
        let c = DeviceRange::new(3, 2);
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&c));
        assert!(b.overlaps(&c));
    }

    #[test]
    fn bottleneck_link_spans_nodes() {
        let c = Cluster::summit_like(8);
        let within = DeviceRange::new(0, 4);
        let across = DeviceRange::new(2, 4);
        assert_eq!(c.bottleneck_link(&within), LinkProfile::nvlink());
        assert_eq!(c.bottleneck_link(&across), LinkProfile::infiniband_edr());
        let single = DeviceRange::new(0, 1);
        assert_eq!(c.bottleneck_link(&single).latency, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_range_panics() {
        let _ = DeviceRange::new(0, 0);
    }

    #[test]
    fn with_memory_capacity_overrides() {
        let c = Cluster::summit_like(4).with_memory_capacity(123);
        assert_eq!(c.profile().mem_capacity, 123);
    }
}
