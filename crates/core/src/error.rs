//! The unified facade error: one `graphpipe::Error` for the whole
//! plan → simulate → execute → serve pipeline.
//!
//! Every subsystem keeps its own precise error enum ([`PlanError`],
//! [`SimError`], [`ExecError`], [`ServeError`], [`ArtifactError`]) — those
//! carry the diagnostic payloads and stay the right types for code that
//! works *inside* one layer. This enum is the facade-level sum of all of
//! them, so applications, examples, and the [`crate::Session`] API
//! propagate a single error type end-to-end with `?` instead of wiring
//! `Box<dyn std::error::Error>` by hand.
//!
//! Conversions are lossless: every variant wraps the subsystem error
//! verbatim and [`std::error::Error::source`] chains to it. The one
//! deliberate normalization is [`From<ServeError>`]: a served request that
//! failed *in the planner* converts to [`Error::Plan`], so cached and
//! uncached planning paths fail identically.

use gp_exec::ExecError;
use gp_partition::PlanError;
use gp_serve::artifact::ArtifactError;
use gp_serve::ServeError;
use gp_sim::SimError;
use std::fmt;

/// Any failure the GraphPipe facade can report.
///
/// # Examples
///
/// ```
/// use graphpipe::Error;
/// use graphpipe::partition::PlanError;
///
/// let err: Error = PlanError::SearchExplosion { evals: 7 }.into();
/// assert!(err.to_string().contains("7"));
/// assert!(std::error::Error::source(&err).is_some());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A planner failed to produce a strategy.
    Plan(PlanError),
    /// The discrete-event simulator rejected a strategy.
    Sim(SimError),
    /// The threaded training runtime failed.
    Exec(ExecError),
    /// The plan service failed for a non-planner reason (e.g. shutdown).
    Serve(ServeError),
    /// A plan artifact failed to decode or validate.
    Artifact(ArtifactError),
    /// The static verifier ([`gp_verify`]) rejected a plan at a session
    /// trust boundary; the error names the violated invariant.
    Verify(gp_verify::VerifyError),
    /// The request itself was malformed (builder misuse, impossible
    /// configuration) before any subsystem ran.
    Invalid(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Plan(e) => write!(f, "planning failed: {e}"),
            Error::Sim(e) => write!(f, "simulation failed: {e}"),
            Error::Exec(e) => write!(f, "execution failed: {e}"),
            Error::Serve(e) => write!(f, "plan service failed: {e}"),
            Error::Artifact(e) => write!(f, "plan artifact rejected: {e}"),
            Error::Verify(e) => write!(f, "plan verification failed: {e}"),
            Error::Invalid(why) => write!(f, "invalid request: {why}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Plan(e) => Some(e),
            Error::Sim(e) => Some(e),
            Error::Exec(e) => Some(e),
            Error::Serve(e) => Some(e),
            Error::Artifact(e) => Some(e),
            Error::Verify(e) => Some(e),
            Error::Invalid(_) => None,
        }
    }
}

impl From<PlanError> for Error {
    fn from(e: PlanError) -> Self {
        Error::Plan(e)
    }
}

impl From<SimError> for Error {
    fn from(e: SimError) -> Self {
        Error::Sim(e)
    }
}

impl From<ExecError> for Error {
    fn from(e: ExecError) -> Self {
        Error::Exec(e)
    }
}

impl From<ServeError> for Error {
    fn from(e: ServeError) -> Self {
        match e {
            // Planner failures are planner failures no matter which path —
            // direct, cached, or single-flight — surfaced them.
            ServeError::Plan(plan) => Error::Plan(plan),
            other => Error::Serve(other),
        }
    }
}

impl From<ArtifactError> for Error {
    fn from(e: ArtifactError) -> Self {
        Error::Artifact(e)
    }
}

impl From<gp_verify::VerifyError> for Error {
    fn from(e: gp_verify::VerifyError) -> Self {
        Error::Verify(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_planner_failures_normalize_to_plan() {
        let inner = PlanError::Infeasible("memory".into());
        let via_serve: Error = ServeError::Plan(inner.clone()).into();
        let direct: Error = inner.into();
        assert_eq!(via_serve, direct);
        assert!(matches!(via_serve, Error::Plan(_)));
        // Non-planner serve failures keep their own variant.
        let stopped: Error = ServeError::ServiceStopped.into();
        assert!(matches!(stopped, Error::Serve(ServeError::ServiceStopped)));
    }
}
