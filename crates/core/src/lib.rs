//! # graphpipe — graph pipeline parallelism for DNN training
//!
//! A faithful reproduction of *GraphPipe: Improving Performance and
//! Scalability of DNN Training with Graph Pipeline Parallelism* (ASPLOS
//! 2025). GraphPipe partitions a DNN into a **DAG of pipeline stages** —
//! instead of the sequential chain used by PipeDream-style systems —
//! preserving the model's parallel branches. Independent branches execute
//! concurrently, shrinking the pipeline depth, which cuts both warm-up
//! bubbles and the activation memory held for in-flight micro-batches; the
//! freed memory admits larger micro-batches and better device utilization.
//!
//! This crate is the user-facing facade over the workspace:
//!
//! * [`ir`] — computation-graph IR, series-parallel structure, model zoo;
//! * [`cluster`] — device profiles and interconnect topology;
//! * [`cost`] — roofline cost/memory/communication models;
//! * [`sched`] — the §6 micro-batch scheduler (`ComputeInFlight`, kFkB);
//! * [`partition`] — the §5 partitioner (binary search + SP decomposition);
//! * [`baselines`] — PipeDream and Piper planners, the Figure 9 ablation;
//! * [`sim`] — the discrete-event execution simulator (timing);
//! * [`exec`] — the threaded runtime with real tensor math (semantics);
//! * [`tensor`] — the minimal f32 tensor library underneath `exec`.
//!
//! # Quickstart
//!
//! ```
//! use graphpipe::prelude::*;
//!
//! // The paper's CANDLE-Uno model on a Summit-like 8-GPU cluster.
//! let model = zoo::candle_uno(&zoo::CandleUnoConfig::default());
//! let cluster = Cluster::summit_like(8);
//!
//! // Plan with GraphPipe and with the sequential baseline...
//! let gpp = GraphPipePlanner::new().plan(&model, &cluster, 1024)?;
//! let spp = PipeDreamPlanner::new().plan(&model, &cluster, 1024)?;
//!
//! // ...and execute both strategies on the same simulated runtime.
//! let t_gpp = graphpipe::simulate_plan(&model, &cluster, &gpp)?.throughput;
//! let t_spp = graphpipe::simulate_plan(&model, &cluster, &spp)?.throughput;
//! assert!(t_gpp >= t_spp); // branches pay off (Figure 6c)
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Computation-graph IR and model zoo (re-export of `gp-ir`).
pub mod ir {
    pub use gp_ir::*;
}
/// Device topology substrate (re-export of `gp-cluster`).
pub mod cluster {
    pub use gp_cluster::*;
}
/// Cost, memory and communication models (re-export of `gp-cost`).
pub mod cost {
    pub use gp_cost::*;
}
/// Micro-batch scheduler (re-export of `gp-sched`).
pub mod sched {
    pub use gp_sched::*;
}
/// The GraphPipe partitioner (re-export of `gp-partition`).
pub mod partition {
    pub use gp_partition::*;
}
/// SPP baselines (re-export of `gp-baselines`).
pub mod baselines {
    pub use gp_baselines::*;
}
/// Discrete-event simulator (re-export of `gp-sim`).
pub mod sim {
    pub use gp_sim::*;
}
/// Threaded training runtime (re-export of `gp-exec`).
pub mod exec {
    pub use gp_exec::*;
}
/// Tensor math (re-export of `gp-tensor`).
pub mod tensor {
    pub use gp_tensor::*;
}

/// One-stop imports for examples and applications.
pub mod prelude {
    pub use crate::baselines::{parallel_ablation, PipeDreamPlanner, PiperPlanner};
    pub use crate::cluster::{Cluster, DeviceRange};
    pub use crate::ir::zoo;
    pub use crate::ir::{Graph, OpId, SpModel};
    pub use crate::partition::{
        GraphPipePlanner, ParallelPlanner, Plan, PlanError, PlanOptions, Planner, SearchStats,
    };
    pub use crate::sim::{render_gantt, SimReport};
    pub use crate::{evaluate, planner, simulate_plan, EvalResult, PlannerKind};
}

use gp_cluster::Cluster;
use gp_ir::SpModel;
use gp_partition::{GraphPipePlanner, Plan, PlanError, PlanOptions, Planner};
use gp_sim::{SimError, SimReport};

/// The planners compared throughout the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlannerKind {
    /// GraphPipe (this paper, §5–§6).
    GraphPipe,
    /// PipeDream at operator granularity (SPP baseline).
    PipeDream,
    /// Piper's downset planner (SPP baseline with cross-branch stages).
    Piper,
}

impl PlannerKind {
    /// Display name matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            PlannerKind::GraphPipe => "GraphPipe",
            PlannerKind::PipeDream => "PipeDream",
            PlannerKind::Piper => "Piper",
        }
    }
}

/// Constructs a planner of the given kind with the given options.
pub fn planner(kind: PlannerKind, options: PlanOptions) -> Box<dyn Planner> {
    match kind {
        PlannerKind::GraphPipe => Box::new(GraphPipePlanner::with_options(options)),
        PlannerKind::PipeDream => Box::new(gp_baselines::PipeDreamPlanner::with_options(options)),
        PlannerKind::Piper => Box::new(gp_baselines::PiperPlanner::with_options(options)),
    }
}

/// Simulates one training iteration of a plan on the cluster it was planned
/// for.
///
/// # Errors
///
/// Propagates simulator failures (which indicate an invalid schedule).
pub fn simulate_plan(
    model: &SpModel,
    cluster: &Cluster,
    plan: &Plan,
) -> Result<SimReport, SimError> {
    gp_sim::simulate(model.graph(), cluster, &plan.stage_graph, &plan.schedule)
}

/// Outcome of a micro-batch sweep (Appendix A.2: "we sweep over all
/// possible micro-batch sizes ... to maximize training throughput").
#[derive(Debug)]
pub struct EvalResult {
    /// The best plan found.
    pub plan: Plan,
    /// Its simulated iteration report.
    pub report: SimReport,
    /// Simulated throughput per candidate micro-batch size.
    pub per_micro_batch: Vec<(u64, f64)>,
}

/// Plans with every candidate micro-batch size, simulates each strategy,
/// and returns the best by measured throughput — exactly how the paper
/// selects configurations for Figures 6, 7 and 9.
///
/// # Errors
///
/// Returns the planner's error if *no* candidate yields a feasible plan.
pub fn evaluate(
    model: &SpModel,
    cluster: &Cluster,
    mini_batch: u64,
    kind: PlannerKind,
    options: &PlanOptions,
) -> Result<EvalResult, PlanError> {
    let candidates = options.micro_batch_sizes(mini_batch);
    let mut best: Option<(Plan, SimReport)> = None;
    let mut per_micro_batch = Vec::new();
    let mut last_err = PlanError::Infeasible("no micro-batch candidates".to_string());
    for &b in &candidates {
        let opts = options.clone().with_forced_micro_batch(b);
        match planner(kind, opts).plan(model, cluster, mini_batch) {
            Ok(plan) => {
                let report = match simulate_plan(model, cluster, &plan) {
                    Ok(r) => r,
                    Err(e) => {
                        last_err = PlanError::Internal(e.to_string());
                        continue;
                    }
                };
                per_micro_batch.push((b, report.throughput));
                let better = match &best {
                    None => true,
                    Some((_, cur)) => report.throughput > cur.throughput,
                };
                if better {
                    best = Some((plan, report));
                }
            }
            Err(e) => {
                // Propagate search explosions immediately: retrying other
                // micro-batch sizes would explode identically (Table 1 "✗").
                if matches!(e, PlanError::SearchExplosion { .. }) {
                    return Err(e);
                }
                last_err = e;
            }
        }
    }
    match best {
        Some((plan, report)) => Ok(EvalResult {
            plan,
            report,
            per_micro_batch,
        }),
        None => Err(last_err),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_ir::zoo::{self, CandleUnoConfig, DlrmConfig};

    #[test]
    fn planner_factory_names() {
        for (kind, name) in [
            (PlannerKind::GraphPipe, "graphpipe"),
            (PlannerKind::PipeDream, "pipedream"),
            (PlannerKind::Piper, "piper"),
        ] {
            assert_eq!(planner(kind, PlanOptions::default()).name(), name);
            assert!(!kind.label().is_empty());
        }
    }

    #[test]
    fn evaluate_sweeps_and_picks_best() {
        let model = zoo::candle_uno(&CandleUnoConfig::default());
        let cluster = Cluster::summit_like(4);
        let opts = PlanOptions {
            max_micro_batches: 64,
            ..PlanOptions::default()
        };
        let result = evaluate(&model, &cluster, 1024, PlannerKind::GraphPipe, &opts).unwrap();
        assert!(!result.per_micro_batch.is_empty());
        let best_throughput = result.report.throughput;
        for (_, t) in &result.per_micro_batch {
            assert!(*t <= best_throughput + 1e-9);
        }
    }

    #[test]
    fn evaluate_propagates_piper_explosion() {
        let model = zoo::dlrm(&DlrmConfig::default());
        let cluster = Cluster::summit_like(4);
        let err = evaluate(
            &model,
            &cluster,
            256,
            PlannerKind::Piper,
            &PlanOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, PlanError::SearchExplosion { .. }));
    }
}
