//! # graphpipe — graph pipeline parallelism for DNN training
//!
//! A faithful reproduction of *GraphPipe: Improving Performance and
//! Scalability of DNN Training with Graph Pipeline Parallelism* (ASPLOS
//! 2025). GraphPipe partitions a DNN into a **DAG of pipeline stages** —
//! instead of the sequential chain used by PipeDream-style systems —
//! preserving the model's parallel branches. Independent branches execute
//! concurrently, shrinking the pipeline depth, which cuts both warm-up
//! bubbles and the activation memory held for in-flight micro-batches; the
//! freed memory admits larger micro-batches and better device utilization.
//!
//! This crate implements the user-facing facade over the workspace. Its
//! centerpiece is the typed [`Session`] API ([`session`] module): one
//! entry point from a model to a plan, its simulation, its threaded
//! execution, its serve artifact, and the cached serving path — all
//! returning the single [`Error`] type. The subsystem crates underneath:
//!
//! * [`ir`] — computation-graph IR, series-parallel structure, model zoo;
//! * [`cluster`] — device profiles and interconnect topology;
//! * [`cost`] — roofline cost/memory/communication models;
//! * [`sched`] — the §6 micro-batch scheduler (`ComputeInFlight`, kFkB);
//! * [`partition`] — the §5 partitioner (binary search + SP decomposition);
//! * [`baselines`] — PipeDream and Piper planners, the Figure 9 ablation;
//! * [`sim`] — the discrete-event execution simulator (timing);
//! * [`exec`] — the threaded runtime with real tensor math (semantics);
//! * [`tensor`] — the minimal f32 tensor library underneath `exec`.
//!
//! # Quickstart
//!
//! ```
//! use graphpipe::prelude::*;
//!
//! // A multi-branch model on a Summit-like 4-GPU cluster.
//! let session = Session::builder()
//!     .model(zoo::mmt(&zoo::MmtConfig::tiny()))
//!     .cluster(Cluster::summit_like(4))
//!     .mini_batch(32)
//!     .options(PlanOptions::default().with_max_micro_batches(16))
//!     .build()?;
//!
//! // Plan with GraphPipe, then execute the strategy on the simulator.
//! let strategy = session.plan(PlannerKind::GraphPipe)?;
//! let report = strategy.simulate()?;
//! assert!(report.throughput > 0.0);
//!
//! // Compare against the sequential baseline (Figure 6c: branches pay off).
//! let table = session.compare(&[PlannerKind::GraphPipe, PlannerKind::PipeDream]);
//! assert!(table.speedup(PlannerKind::GraphPipe, PlannerKind::PipeDream).unwrap() >= 1.0);
//! # Ok::<(), graphpipe::Error>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
pub mod session;

pub use error::Error;
pub use session::{
    Comparison, ComparisonRow, EvalResult, PlannedStrategy, Session, SessionBuilder, SessionFleet,
    SessionService, TrainingConfig, TrainingRun,
};

/// Computation-graph IR and model zoo (re-export of `gp-ir`).
pub mod ir {
    pub use gp_ir::*;
}
/// Device topology substrate (re-export of `gp-cluster`).
pub mod cluster {
    pub use gp_cluster::*;
}
/// Cost, memory and communication models (re-export of `gp-cost`).
pub mod cost {
    pub use gp_cost::*;
}
/// Micro-batch scheduler (re-export of `gp-sched`).
pub mod sched {
    pub use gp_sched::*;
}
/// The GraphPipe partitioner (re-export of `gp-partition`).
pub mod partition {
    pub use gp_partition::*;
}
/// SPP baselines (re-export of `gp-baselines`).
pub mod baselines {
    pub use gp_baselines::*;
}
/// Discrete-event simulator (re-export of `gp-sim`).
pub mod sim {
    pub use gp_sim::*;
}
/// Threaded training runtime (re-export of `gp-exec`).
pub mod exec {
    pub use gp_exec::*;
}
/// Tensor math (re-export of `gp-tensor`).
pub mod tensor {
    pub use gp_tensor::*;
}
/// Static plan/schedule invariant verifier (re-export of `gp-verify`).
pub mod verify {
    pub use gp_verify::*;
}
/// Telemetry: spans, metrics, trace export (re-export of `gp-obs`).
pub mod obs {
    pub use gp_obs::*;
}
/// Distributed plan serving: sharded cache, persistent artifact store,
/// remote planner workers, multi-tenant admission (re-export of
/// `gp-fleet`).
pub mod fleet {
    pub use gp_fleet::*;
}

/// One-stop imports for examples and applications.
pub mod prelude {
    pub use crate::baselines::{parallel_ablation, PipeDreamPlanner, PiperPlanner};
    pub use crate::cluster::{Cluster, DeviceRange};
    pub use crate::ir::zoo;
    pub use crate::ir::{DagOptions, Graph, OpId, PlanPath, SpModel};
    pub use crate::obs::{JsonlSink, PerfettoSink, SummarySink, Telemetry, TraceSink};
    pub use crate::partition::{
        GraphPipePlanner, ParallelPlanner, Plan, PlanError, PlanOptions, Planner, SearchStats,
        WarmStart,
    };
    pub use crate::sim::{render_gantt, SimOptions, SimReport};
    pub use crate::verify::{verify_plan, verify_schedule, verify_strategy, VerifyReport};
    pub use crate::{
        evaluate, planner, simulate_plan, Comparison, ComparisonRow, Error, EvalResult,
        PlannedStrategy, PlannerKind, Session, SessionBuilder, SessionFleet, SessionService,
        TrainingConfig, TrainingRun,
    };
}

use gp_cluster::Cluster;
use gp_ir::SpModel;
use gp_partition::{Plan, PlanOptions, Planner};
use gp_serve::ServePlanner;
use gp_sim::SimReport;

/// The planners compared throughout the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlannerKind {
    /// GraphPipe (this paper, §5–§6).
    GraphPipe,
    /// PipeDream at operator granularity (SPP baseline).
    PipeDream,
    /// Piper's downset planner (SPP baseline with cross-branch stages).
    Piper,
}

impl PlannerKind {
    /// Display name matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            PlannerKind::GraphPipe => "GraphPipe",
            PlannerKind::PipeDream => "PipeDream",
            PlannerKind::Piper => "Piper",
        }
    }

    /// The `gp-serve` planner selector for this kind — what
    /// [`Session::request`] puts into the [`gp_serve::PlanRequest`], so
    /// local and served plans share fingerprints.
    pub fn serve_planner(self) -> ServePlanner {
        match self {
            PlannerKind::GraphPipe => ServePlanner::GraphPipe,
            PlannerKind::PipeDream => ServePlanner::PipeDream,
            PlannerKind::Piper => ServePlanner::Piper,
        }
    }
}

impl From<PlannerKind> for ServePlanner {
    fn from(kind: PlannerKind) -> Self {
        kind.serve_planner()
    }
}

/// Constructs a planner of the given kind with the given options.
///
/// Thin shim over the [`Session`] machinery's planner factory — prefer
/// [`Session::plan`], which also fingerprints the request; this remains
/// for code that drives the [`Planner`] trait directly.
pub fn planner(kind: PlannerKind, options: PlanOptions) -> Box<dyn Planner> {
    session::build_planner(kind, options, &gp_obs::Telemetry::disabled(), None)
}

/// Simulates one training iteration of a plan on the cluster it was
/// planned for.
///
/// Thin shim over the [`Session`] machinery — equivalent to
/// [`PlannedStrategy::simulate`] for a strategy bound to `model` and
/// `cluster`, without requiring the plan to have come from a session.
/// Runs the default (sequential) simulator; build a session with
/// [`SessionBuilder::sim_options`] or use
/// [`PlannedStrategy::simulate_with`] for the parallel engine.
///
/// # Errors
///
/// Propagates simulator failures (which indicate an invalid schedule) as
/// [`Error::Sim`].
pub fn simulate_plan(model: &SpModel, cluster: &Cluster, plan: &Plan) -> Result<SimReport, Error> {
    session::simulate_on(
        model,
        cluster,
        plan,
        &gp_sim::SimOptions::default(),
        &gp_obs::Telemetry::disabled(),
    )
}

/// Plans with every candidate micro-batch size, simulates each strategy,
/// and returns the best by measured throughput — exactly how the paper
/// selects configurations for Figures 6, 7 and 9.
///
/// Thin shim over [`Session::evaluate`], which owns the single copy of
/// this sweep; building a [`Session`] directly avoids re-cloning the model
/// per call.
///
/// # Errors
///
/// Returns the planner's error if *no* candidate yields a feasible plan.
pub fn evaluate(
    model: &SpModel,
    cluster: &Cluster,
    mini_batch: u64,
    kind: PlannerKind,
    options: &PlanOptions,
) -> Result<EvalResult, Error> {
    Session::builder()
        .model(model.clone())
        .cluster(cluster.clone())
        .mini_batch(mini_batch)
        .options(options.clone())
        .build()?
        .evaluate(kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_ir::zoo::{self, CandleUnoConfig, DlrmConfig};
    use gp_partition::PlanError;

    #[test]
    fn planner_factory_names() {
        for (kind, name) in [
            (PlannerKind::GraphPipe, "graphpipe"),
            (PlannerKind::PipeDream, "pipedream"),
            (PlannerKind::Piper, "piper"),
        ] {
            assert_eq!(planner(kind, PlanOptions::default()).name(), name);
            assert!(!kind.label().is_empty());
            assert_eq!(ServePlanner::from(kind), kind.serve_planner());
        }
    }

    #[test]
    fn evaluate_sweeps_and_picks_best() {
        let model = zoo::candle_uno(&CandleUnoConfig::default());
        let cluster = Cluster::summit_like(4);
        let opts = PlanOptions {
            max_micro_batches: 64,
            ..PlanOptions::default()
        };
        let result = evaluate(&model, &cluster, 1024, PlannerKind::GraphPipe, &opts).unwrap();
        assert!(!result.per_micro_batch.is_empty());
        let best_throughput = result.report.throughput;
        for (_, t) in &result.per_micro_batch {
            assert!(*t <= best_throughput + 1e-9);
        }
        // The shim produces exactly what the Session produces.
        let session = Session::builder()
            .model(model)
            .cluster(cluster)
            .mini_batch(1024)
            .options(opts)
            .build()
            .unwrap();
        let direct = session.evaluate(PlannerKind::GraphPipe).unwrap();
        assert_eq!(direct.report.throughput, best_throughput);
        assert_eq!(direct.per_micro_batch, result.per_micro_batch);
        assert_eq!(direct.plan.fingerprint(), result.plan.fingerprint());
    }

    #[test]
    fn evaluate_propagates_piper_explosion() {
        let model = zoo::dlrm(&DlrmConfig::default());
        let cluster = Cluster::summit_like(4);
        let err = evaluate(
            &model,
            &cluster,
            256,
            PlannerKind::Piper,
            &PlanOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            Error::Plan(PlanError::SearchExplosion { .. })
        ));
    }
}
