//! The typed `Session` entry point: one handle from model to plan,
//! simulation, execution, artifact, and serving.
//!
//! GraphPipe's pipeline is end-to-end — partition a graph, schedule
//! micro-batches, run the strategy — and this module is the single seam
//! that exposes it that way. A [`Session`] pins the planning problem
//! (`model × cluster × mini-batch × options`); its methods return typed
//! artifacts instead of loose tuples:
//!
//! * [`Session::plan`] → a [`PlannedStrategy`] (an [`Arc<Plan>`] plus the
//!   canonical `gp-serve` request [`Fingerprint`]), which knows how to
//!   [`simulate`](PlannedStrategy::simulate) itself on the timing
//!   substitute, [`execute`](PlannedStrategy::execute) itself on the
//!   threaded `gp-exec` runtime, and persist itself as a lossless
//!   [`artifact`](PlannedStrategy::artifact);
//! * [`Session::evaluate`] → the Appendix A.2 micro-batch sweep (the one
//!   copy of the plan→simulate selection loop — the free
//!   [`crate::evaluate`] is a shim over it);
//! * [`Session::compare`] → a [`Comparison`] that renders the
//!   Figure-6-style planner table the bench harness builds on;
//! * [`Session::serve`] → a [`SessionService`] that hands the *same*
//!   [`PlanRequest`] to `gp-serve`'s cached, single-flight
//!   [`PlanService`], so local and served plans share one fingerprint and
//!   one validation story.
//!
//! # Examples
//!
//! ```
//! use graphpipe::prelude::*;
//!
//! let session = Session::builder()
//!     .model(zoo::mmt(&zoo::MmtConfig::two_branch()))
//!     .cluster(Cluster::summit_like(4))
//!     .mini_batch(64)
//!     .build()?;
//! let strategy = session.plan(PlannerKind::GraphPipe)?;
//! assert!(strategy.simulate()?.throughput > 0.0);
//! # Ok::<(), graphpipe::Error>(())
//! ```

use crate::error::Error;
use crate::PlannerKind;
use gp_baselines::{PipeDreamPlanner, PiperPlanner};
use gp_cluster::Cluster;
use gp_exec::{reference_step, synth_batch, ModelParams};
use gp_fleet::{FleetConfig, FleetService, FleetStats};
use gp_ir::{plan_dag, DagOptions, Graph, PlanPath, SpModel};
use gp_obs::Telemetry;
use gp_partition::{GraphPipePlanner, Plan, PlanError, PlanOptions, Planner, WarmStart};
use gp_serve::{artifact, Fingerprint, PlanRequest, PlanService, ServeStats};
use gp_sim::{SimOptions, SimReport};
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Operator-cluster granularity [`Session::compare`] charges Piper's
/// end-to-end column at (Figure 6 / the bench harness). Piper's downset DP
/// is exponential in unit count, so the throughput comparison coarsens
/// operators into ~8-op units; Table 1 times Piper at unit granularity
/// separately. [`Session::plan`] and [`Session::evaluate`] always run the
/// raw planner.
pub const PIPER_COMPARE_UNIT_OPS: usize = 8;

/// Constructs the planner implementation for a kind/options pair — the one
/// factory shared by [`Session`], the free [`crate::planner`], and
/// everything built on them. A [`WarmStart`] seeds GraphPipe's bracket
/// ladder (the produced plan is identical either way); the baselines have
/// no iterative search to seed and ignore it.
pub(crate) fn build_planner(
    kind: PlannerKind,
    options: PlanOptions,
    telemetry: &Telemetry,
    warm: Option<WarmStart>,
) -> Box<dyn Planner> {
    match kind {
        PlannerKind::GraphPipe => {
            let planner = GraphPipePlanner::with_options(options).with_telemetry(telemetry.clone());
            Box::new(match warm {
                Some(w) => planner.with_warm_start(w),
                None => planner,
            })
        }
        PlannerKind::PipeDream => Box::new(PipeDreamPlanner::with_options(options)),
        PlannerKind::Piper => Box::new(PiperPlanner::with_options(options)),
    }
}

/// Simulates one training iteration of a plan on its cluster — the one
/// copy of the plan→simulate wiring behind [`PlannedStrategy::simulate`]
/// and the free [`crate::simulate_plan`].
pub(crate) fn simulate_on(
    model: &SpModel,
    cluster: &Cluster,
    plan: &Plan,
    sim_options: &SimOptions,
    telemetry: &Telemetry,
) -> Result<SimReport, Error> {
    // Debug builds statically verify every plan handed to the simulator,
    // so a strategy that violates a §3 invariant is caught by name here
    // rather than surfacing as a simulator panic or bogus timings.
    #[cfg(debug_assertions)]
    {
        let report = gp_verify::verify_plan(model.graph(), cluster, plan);
        debug_assert!(report.is_clean(), "simulating an invalid plan: {report}");
    }
    gp_sim::simulate_traced(
        model.graph(),
        cluster,
        &plan.stage_graph,
        &plan.schedule,
        sim_options,
        telemetry,
    )
    .map_err(Error::from)
}

/// Builder for a [`Session`]; obtained from [`Session::builder`].
///
/// `model`, `cluster`, and `mini_batch` are required; `options` defaults
/// to [`PlanOptions::default`]. [`SessionBuilder::build`] validates the
/// combination and returns [`Error::Invalid`] on misuse instead of
/// panicking later.
#[derive(Debug, Clone, Default)]
pub struct SessionBuilder {
    model: Option<Arc<SpModel>>,
    dag: Option<(String, Graph)>,
    dag_options: DagOptions,
    cluster: Option<Cluster>,
    mini_batch: Option<u64>,
    options: PlanOptions,
    sim_options: SimOptions,
    telemetry: Telemetry,
}

impl SessionBuilder {
    /// Sets the model to plan for (an owned [`SpModel`] or an existing
    /// [`Arc<SpModel>`] — sessions share the model, never copy it).
    pub fn model(mut self, model: impl Into<Arc<SpModel>>) -> Self {
        self.model = Some(model.into());
        self
    }

    /// Sets the model from a raw computation [`Graph`] — no hand-authored
    /// SP tree required. [`SessionBuilder::build`] runs the `gp-ir` DAG
    /// ladder (`plan_dag`): exact SP recognition, then SP-ization within
    /// the distortion budget, then the Piper-style clustering fallback.
    /// Which rung was taken is reported by
    /// [`PlannedStrategy::plan_path`] and rides every fingerprint and
    /// artifact. Mutually exclusive with [`SessionBuilder::model`].
    ///
    /// The model is named after the DAG ladder (`"dag"`); to control the
    /// name, call [`gp_ir::plan_dag`] directly and pass the result to
    /// [`SessionBuilder::model`].
    pub fn model_dag(mut self, graph: Graph) -> Self {
        self.dag = Some(("dag".to_string(), graph));
        self
    }

    /// Replaces the DAG ladder's options (distortion budget and
    /// clustering unit size); only meaningful with
    /// [`SessionBuilder::model_dag`].
    pub fn dag_options(mut self, dag_options: DagOptions) -> Self {
        self.dag_options = dag_options;
        self
    }

    /// Sets the target cluster.
    pub fn cluster(mut self, cluster: Cluster) -> Self {
        self.cluster = Some(cluster);
        self
    }

    /// Sets the global mini-batch size (samples per training iteration).
    pub fn mini_batch(mut self, mini_batch: u64) -> Self {
        self.mini_batch = Some(mini_batch);
        self
    }

    /// Replaces the planner search options.
    pub fn options(mut self, options: PlanOptions) -> Self {
        self.options = options;
        self
    }

    /// Replaces the simulator options (defaults to the sequential engine).
    ///
    /// `SimOptions::parallelism` is a pure wall-clock lever: reports are
    /// byte-identical at any worker count, so strategies simulated through
    /// this session stay comparable with every golden table.
    pub fn sim_options(mut self, sim_options: SimOptions) -> Self {
        self.sim_options = sim_options;
        self
    }

    /// Attaches a [`Telemetry`] handle: every plan, sweep, simulation, and
    /// execution run through the session records spans and metrics into
    /// it (defaults to [`Telemetry::disabled`], which costs nothing).
    ///
    /// Telemetry is strictly write-only — plans, reports, fingerprints,
    /// and artifacts are byte-identical with it enabled or disabled
    /// (`tests/observability.rs` holds this line).
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Validates the configuration and produces the [`Session`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Invalid`] when `model`, `cluster`, or `mini_batch`
    /// is missing, when `mini_batch` is zero, when both
    /// [`SessionBuilder::model`] and [`SessionBuilder::model_dag`] were
    /// set, or when a `model_dag` graph fails validation.
    pub fn build(self) -> Result<Session, Error> {
        let model = match (self.model, self.dag) {
            (Some(_), Some(_)) => {
                return Err(Error::Invalid(
                    "set either model() or model_dag(), not both".into(),
                ))
            }
            (Some(model), None) => model,
            (None, Some((name, graph))) => Arc::new(
                plan_dag(name, graph, &self.dag_options)
                    .map_err(|e| Error::Invalid(format!("model DAG is invalid: {e}")))?,
            ),
            (None, None) => return Err(Error::Invalid("session has no model".into())),
        };
        let cluster = self
            .cluster
            .ok_or_else(|| Error::Invalid("session has no cluster".into()))?;
        let mini_batch = self
            .mini_batch
            .ok_or_else(|| Error::Invalid("session has no mini-batch size".into()))?;
        if mini_batch == 0 {
            return Err(Error::Invalid("mini-batch size must be positive".into()));
        }
        Ok(Session {
            model,
            cluster,
            mini_batch,
            options: self.options,
            sim_options: self.sim_options,
            telemetry: self.telemetry,
        })
    }
}

/// A pinned planning problem: `model × cluster × mini-batch × options`.
///
/// The session is cheap to clone (the model is shared behind an [`Arc`])
/// and immutable once built, so every method is `&self` and concurrent use
/// is free. See the [module docs](self) for the method tour.
///
/// # Examples
///
/// ```
/// use graphpipe::prelude::*;
///
/// let session = Session::builder()
///     .model(zoo::mmt(&zoo::MmtConfig::two_branch()))
///     .cluster(Cluster::summit_like(4))
///     .mini_batch(64)
///     .options(PlanOptions::default().with_max_micro_batches(16))
///     .build()?;
/// let strategy = session.plan(PlannerKind::GraphPipe)?;
/// assert_eq!(strategy.fingerprint(), session.request(PlannerKind::GraphPipe).fingerprint());
/// # Ok::<(), graphpipe::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct Session {
    model: Arc<SpModel>,
    cluster: Cluster,
    mini_batch: u64,
    options: PlanOptions,
    sim_options: SimOptions,
    telemetry: Telemetry,
}

impl Session {
    /// Starts building a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// The model this session plans for.
    pub fn model(&self) -> &Arc<SpModel> {
        &self.model
    }

    /// The target cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The global mini-batch size.
    pub fn mini_batch(&self) -> u64 {
        self.mini_batch
    }

    /// The planner search options in effect.
    pub fn options(&self) -> &PlanOptions {
        &self.options
    }

    /// The simulator options strategies planned through this session
    /// simulate with.
    pub fn sim_options(&self) -> &SimOptions {
        &self.sim_options
    }

    /// The telemetry handle session operations record into
    /// ([`Telemetry::disabled`] unless [`SessionBuilder::telemetry`] set
    /// one) — export its spans and metrics with [`Telemetry::export`].
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The canonical `gp-serve` [`PlanRequest`] for this session and
    /// planner choice. [`Session::plan`] and [`SessionService::plan`] both
    /// derive their fingerprints from this exact request, which is what
    /// keeps local and served plans cache-compatible.
    pub fn request(&self, kind: PlannerKind) -> PlanRequest {
        self.request_with(kind, self.options.clone())
    }

    /// [`Session::request`] with the search options replaced — the request
    /// form [`Session::evaluate`] keys its winning strategy by (the
    /// session options with the winning micro-batch size forced).
    pub fn request_with(&self, kind: PlannerKind, options: PlanOptions) -> PlanRequest {
        PlanRequest::new(
            Arc::clone(&self.model),
            self.cluster.clone(),
            self.mini_batch,
        )
        .with_options(options)
        .with_planner(kind.serve_planner())
    }

    fn wrap(&self, kind: PlannerKind, plan: Arc<Plan>) -> PlannedStrategy {
        self.wrap_with(kind, self.options.clone(), plan)
    }

    /// Binds a plan to this session under the fingerprint of the request
    /// that actually produced it — `options` must be the exact options the
    /// planner ran with, so that fingerprint equality keeps implying plan
    /// identity across the local, served, and artifact paths.
    fn wrap_with(
        &self,
        kind: PlannerKind,
        options: PlanOptions,
        plan: Arc<Plan>,
    ) -> PlannedStrategy {
        PlannedStrategy {
            fingerprint: self.request_with(kind, options).fingerprint(),
            model: Arc::clone(&self.model),
            cluster: self.cluster.clone(),
            kind,
            plan,
            sim_options: self.sim_options.clone(),
            telemetry: self.telemetry.clone(),
        }
    }

    /// Runs the chosen planner once, at the session's options, and
    /// statically verifies the result ([`gp_verify::verify_strategy`])
    /// before handing it out — a planner bug surfaces as a named invariant
    /// violation instead of propagating an invalid strategy.
    ///
    /// # Errors
    ///
    /// Propagates the planner's failure as [`Error::Plan`]; a plan the
    /// verifier rejects is [`Error::Verify`].
    pub fn plan(&self, kind: PlannerKind) -> Result<PlannedStrategy, Error> {
        self.plan_seeded(kind, None)
    }

    /// [`Session::plan`] seeded with a [`WarmStart`] — typically derived
    /// from a strategy planned for the same model on a *different* cluster
    /// size or mini-batch ([`PlannedStrategy::warm_start`]). Warm-started
    /// plans are byte-identical to cold ones; only the search effort
    /// (bracket probes, wall-clock) shrinks. Planners without an iterative
    /// search (the baselines) ignore the seed.
    ///
    /// # Errors
    ///
    /// Same as [`Session::plan`].
    pub fn plan_with_warm_start(
        &self,
        kind: PlannerKind,
        warm: WarmStart,
    ) -> Result<PlannedStrategy, Error> {
        self.plan_seeded(kind, Some(warm))
    }

    fn plan_seeded(
        &self,
        kind: PlannerKind,
        warm: Option<WarmStart>,
    ) -> Result<PlannedStrategy, Error> {
        let _span = self.telemetry.span("session.plan");
        let plan = build_planner(kind, self.options.clone(), &self.telemetry, warm).plan(
            &self.model,
            &self.cluster,
            self.mini_batch,
        )?;
        {
            let _verify = self.telemetry.span("session.verify");
            gp_verify::verify_strategy(&self.model, &self.cluster, &plan).into_result()?;
        }
        Ok(self.wrap(kind, Arc::new(plan)))
    }

    /// Plans with every candidate micro-batch size, simulates each
    /// strategy, and returns the best by measured throughput — exactly how
    /// the paper selects configurations for Figures 6, 7 and 9 (Appendix
    /// A.2). This is the single copy of the plan→simulate sweep; the free
    /// [`crate::evaluate`] delegates here.
    ///
    /// The returned strategy is fingerprinted by the *winning* request —
    /// the session options with the winning micro-batch size forced
    /// ([`Session::request_with`]) — since that is the request that
    /// reproduces the plan exactly; the unforced [`Session::request`]
    /// fingerprint keys [`Session::plan`]'s single-shot search instead.
    ///
    /// # Errors
    ///
    /// Returns the planner's error if *no* candidate yields a feasible
    /// plan; search explosions propagate immediately (retrying other
    /// micro-batch sizes would explode identically — Table 1's "✗").
    pub fn evaluate(&self, kind: PlannerKind) -> Result<EvalResult, Error> {
        let _span = self.telemetry.span("session.evaluate");
        let candidates = self.options.micro_batch_sizes(self.mini_batch);
        let mut best: Option<(u64, Arc<Plan>, SimReport)> = None;
        let mut per_micro_batch = Vec::new();
        let mut last_err = PlanError::Infeasible("no micro-batch candidates".to_string());
        for &b in &candidates {
            let _candidate = self.telemetry.span_with("evaluate.candidate", b);
            let opts = self.options.clone().with_forced_micro_batch(b);
            match build_planner(kind, opts, &self.telemetry, None).plan(
                &self.model,
                &self.cluster,
                self.mini_batch,
            ) {
                Ok(plan) => {
                    let report = match simulate_on(
                        &self.model,
                        &self.cluster,
                        &plan,
                        &self.sim_options,
                        &self.telemetry,
                    ) {
                        Ok(r) => r,
                        Err(e) => {
                            last_err = PlanError::Internal(e.to_string());
                            continue;
                        }
                    };
                    per_micro_batch.push((b, report.throughput));
                    let better = match &best {
                        None => true,
                        Some((_, _, cur)) => report.throughput > cur.throughput,
                    };
                    if better {
                        best = Some((b, Arc::new(plan), report));
                    }
                }
                Err(e) => {
                    if matches!(e, PlanError::SearchExplosion { .. }) {
                        return Err(e.into());
                    }
                    last_err = e;
                }
            }
        }
        match best {
            Some((b, plan, report)) => Ok(EvalResult {
                plan: self.wrap_with(kind, self.options.clone().with_forced_micro_batch(b), plan),
                report,
                per_micro_batch,
            }),
            None => Err(last_err.into()),
        }
    }

    /// Evaluates several planners on this session's problem and returns a
    /// [`Comparison`] — the Figure-6-style table of throughput, pipeline
    /// depth, and chosen micro-batch per planner, with planner failures
    /// recorded as the paper's "✗" instead of aborting the table.
    ///
    /// GraphPipe and PipeDream run the full [`Session::evaluate`]
    /// micro-batch sweep; Piper runs once at [`PIPER_COMPARE_UNIT_OPS`]
    /// operator-cluster granularity (its internal DP already sweeps, and
    /// finer units explode on many-branch models — the harness convention
    /// behind Figure 6).
    pub fn compare(&self, kinds: &[PlannerKind]) -> Comparison {
        let _span = self.telemetry.span("session.compare");
        let rows = kinds
            .iter()
            .map(|&kind| {
                // Rows carry plain plans, not `PlannedStrategy`: the Piper
                // arm's `with_unit_ops` coarsening is not representable in
                // `PlanOptions`, so no request fingerprint reproduces that
                // plan and stamping one here would lie.
                let outcome: Result<(Arc<Plan>, SimReport), Error> = match kind {
                    PlannerKind::Piper => PiperPlanner::with_options(self.options.clone())
                        .with_unit_ops(PIPER_COMPARE_UNIT_OPS)
                        .plan(&self.model, &self.cluster, self.mini_batch)
                        .map_err(Error::from)
                        .and_then(|plan| {
                            let report = simulate_on(
                                &self.model,
                                &self.cluster,
                                &plan,
                                &self.sim_options,
                                &self.telemetry,
                            )?;
                            Ok((Arc::new(plan), report))
                        }),
                    _ => self
                        .evaluate(kind)
                        .map(|r| (Arc::clone(r.plan.plan()), r.report)),
                };
                match outcome {
                    Ok((plan, report)) => ComparisonRow {
                        kind,
                        throughput: Some(report.throughput),
                        depth: Some(plan.pipeline_depth()),
                        micro_batch: Some(plan.max_micro_batch()),
                        error: None,
                    },
                    Err(e) => ComparisonRow {
                        kind,
                        throughput: None,
                        depth: None,
                        micro_batch: None,
                        error: Some(e),
                    },
                }
            })
            .collect();
        Comparison {
            mini_batch: self.mini_batch,
            devices: self.cluster.device_count(),
            rows,
        }
    }

    /// Decodes a plan [`artifact`](PlannedStrategy::artifact) against this
    /// session, re-validating the strategy (§3 C1–C4) and — when the
    /// artifact records a fingerprint — checking it against the session's
    /// requests for `kind`: the plain [`Session::request`] (how
    /// [`Session::plan`] keys strategies) *or* the request with the plan's
    /// micro-batch size forced (how [`Session::evaluate`] keys its sweep
    /// winner). The restored strategy keeps the recorded fingerprint.
    ///
    /// # Errors
    ///
    /// [`Error::Artifact`] when the document is malformed or does not
    /// describe a valid strategy for this model and cluster (the error
    /// names the violated invariant); [`Error::Verify`] when the decoded
    /// plan fails the session-level [`gp_verify::verify_strategy`] pass;
    /// [`Error::Invalid`] when the artifact's mini-batch or recorded
    /// fingerprint disagrees with the session.
    pub fn load_artifact(&self, text: &str, kind: PlannerKind) -> Result<PlannedStrategy, Error> {
        let _span = self.telemetry.span("session.load_artifact");
        let (plan, recorded) = artifact::decode_plan(text, self.model.graph(), &self.cluster)?;
        // The codec verified the plan against the graph; the session also
        // holds the SP tree, so run the full strategy-level pass.
        gp_verify::verify_strategy(&self.model, &self.cluster, &plan).into_result()?;
        if plan.stage_graph.mini_batch() != self.mini_batch {
            return Err(Error::Invalid(format!(
                "artifact plans mini-batch {}, session uses {}",
                plan.stage_graph.mini_batch(),
                self.mini_batch
            )));
        }
        let plan = Arc::new(plan);
        let Some(fp) = recorded else {
            return Ok(self.wrap(kind, plan));
        };
        let unforced = self.request(kind).fingerprint();
        let forced = self
            .request_with(
                kind,
                self.options
                    .clone()
                    .with_forced_micro_batch(plan.max_micro_batch()),
            )
            .fingerprint();
        if fp != unforced && fp != forced {
            return Err(Error::Invalid(format!(
                "artifact fingerprint {fp} matches neither this session's request \
                 fingerprint {unforced} nor its micro-batch-{} sweep-winner \
                 fingerprint {forced}",
                plan.max_micro_batch()
            )));
        }
        Ok(PlannedStrategy {
            fingerprint: fp,
            model: Arc::clone(&self.model),
            cluster: self.cluster.clone(),
            kind,
            plan,
            sim_options: self.sim_options.clone(),
            telemetry: self.telemetry.clone(),
        })
    }

    /// Attaches this session to a fresh `gp-serve` [`PlanService`] with
    /// `workers` planner threads and an LRU cache of `cache_capacity`
    /// plans. The returned handle submits this session's canonical
    /// [`Session::request`]s, so served plans carry the same fingerprints
    /// as [`Session::plan`] and identical repeats are cache hits.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0` or `cache_capacity == 0` (the service's
    /// own contract).
    pub fn serve(&self, workers: usize, cache_capacity: usize) -> SessionService {
        SessionService {
            service: PlanService::with_telemetry(workers, cache_capacity, self.telemetry.clone()),
            session: self.clone(),
        }
    }

    /// Attaches this session to a fresh `gp-fleet` [`FleetService`] —
    /// the distributed serving front-end: a sharded plan cache, an
    /// optional persistent artifact store, a pool of local and/or remote
    /// planner workers, and multi-tenant admission control. The handle
    /// submits this session's canonical [`Session::request`]s, so fleet
    /// plans carry the same fingerprints as [`Session::plan`] (unless a
    /// tenant tier rewrites the search options — then the ticket carries
    /// the tier-scoped fingerprint).
    ///
    /// The session's telemetry handle replaces whatever `config.telemetry`
    /// held, so fleet counters land next to the session's own spans.
    ///
    /// # Errors
    ///
    /// [`Error::Invalid`] when `config.store` is set and the store
    /// directory cannot be opened or created.
    pub fn serve_fleet(&self, config: FleetConfig) -> Result<SessionFleet, Error> {
        let config = FleetConfig {
            telemetry: self.telemetry.clone(),
            ..config
        };
        let store = config.store.clone();
        let fleet = FleetService::start(config).map_err(|e| {
            Error::Invalid(format!(
                "cannot open fleet artifact store {}: {e}",
                store
                    .as_deref()
                    .map(|p| p.display().to_string())
                    .unwrap_or_default()
            ))
        })?;
        Ok(SessionFleet {
            fleet,
            session: self.clone(),
        })
    }
}

/// A planned training strategy bound to its session context: the shared
/// [`Plan`], the planner that produced it, and the canonical request
/// [`Fingerprint`] (`gp-serve`'s cache key for the same problem).
///
/// Dereferences to [`Plan`], so every plan accessor
/// (`pipeline_depth()`, `max_micro_batch()`, `stats`, ...) is available
/// directly on the strategy.
#[derive(Debug, Clone)]
pub struct PlannedStrategy {
    model: Arc<SpModel>,
    cluster: Cluster,
    kind: PlannerKind,
    plan: Arc<Plan>,
    fingerprint: Fingerprint,
    sim_options: SimOptions,
    telemetry: Telemetry,
}

impl Deref for PlannedStrategy {
    type Target = Plan;

    fn deref(&self) -> &Plan {
        &self.plan
    }
}

impl PlannedStrategy {
    /// The planner that produced this strategy.
    pub fn kind(&self) -> PlannerKind {
        self.kind
    }

    /// The canonical request fingerprint — identical to what
    /// [`Session::request`] and the serve layer compute for this problem.
    pub fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }

    /// The underlying shared plan.
    pub fn plan(&self) -> &Arc<Plan> {
        &self.plan
    }

    /// The model the strategy was planned for.
    pub fn model(&self) -> &Arc<SpModel> {
        &self.model
    }

    /// Which rung of the DAG fallback ladder produced the strategy's
    /// model: exact SP, SP-ized (with its distortion in bytes), or
    /// clustered (with its unit count). Hand-authored SP models always
    /// report [`PlanPath::ExactSp`].
    pub fn plan_path(&self) -> PlanPath {
        self.plan.path
    }

    /// The cluster the strategy targets.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// A human-readable multi-line summary (stages, placement, schedule
    /// parameters) — [`Plan::describe`] against the bound model.
    pub fn describe(&self) -> String {
        self.plan.describe(self.model.graph())
    }

    /// Simulates one training iteration on the discrete-event timing
    /// substitute (`gp-sim`), with the session's [`SimOptions`].
    ///
    /// # Errors
    ///
    /// [`Error::Sim`] when the schedule deadlocks or is incomplete — both
    /// indicate an invalid strategy.
    pub fn simulate(&self) -> Result<SimReport, Error> {
        let _span = self.telemetry.span("session.simulate");
        simulate_on(
            &self.model,
            &self.cluster,
            &self.plan,
            &self.sim_options,
            &self.telemetry,
        )
    }

    /// [`PlannedStrategy::simulate`] with explicit [`SimOptions`] — e.g.
    /// to turn on the parallel relaxation engine for one large strategy.
    /// The report is byte-identical to [`PlannedStrategy::simulate`]'s at
    /// any worker count.
    ///
    /// # Errors
    ///
    /// Same as [`PlannedStrategy::simulate`].
    pub fn simulate_with(&self, sim_options: &SimOptions) -> Result<SimReport, Error> {
        let _span = self.telemetry.span("session.simulate");
        simulate_on(
            &self.model,
            &self.cluster,
            &self.plan,
            sim_options,
            &self.telemetry,
        )
    }

    /// Trains the strategy for real on the threaded `gp-exec` runtime
    /// (one worker thread per simulated GPU, real f32 tensor math,
    /// synchronous-SGD semantics) with synthetic data, returning the
    /// per-step losses plus a single-device reference loss for the
    /// gradient-equivalence check.
    ///
    /// Intended for CPU-sized models; the cost is real tensor math over
    /// `steps + 1` full mini-batches.
    ///
    /// # Errors
    ///
    /// [`Error::Invalid`] when `config.steps` is zero; [`Error::Exec`]
    /// when a runtime worker fails.
    pub fn execute(&self, config: &TrainingConfig) -> Result<TrainingRun, Error> {
        if config.steps == 0 {
            return Err(Error::Invalid("execute needs at least one step".into()));
        }
        let _span = self.telemetry.span("session.execute");
        let graph = self.model.graph();
        let mini_batch = self.plan.stage_graph.mini_batch();
        let batch = synth_batch(graph, mini_batch, config.data_seed);
        let params0 = ModelParams::init(graph, config.param_seed);
        // Ground truth at the initial parameters: the first distributed
        // step reports its loss *before* applying the update, so
        // `losses[0]` must match this single-device full-batch loss.
        let (reference_loss, _) = reference_step(graph, &params0, &batch, mini_batch);
        let mut params = params0;
        let losses = gp_exec::train_traced(
            graph,
            &self.plan.stage_graph,
            &self.plan.schedule,
            &mut params,
            &batch,
            config.lr,
            config.steps,
            &self.telemetry,
        )?;
        Ok(TrainingRun {
            losses,
            reference_loss,
        })
    }

    /// Encodes the strategy as a versioned, lossless `gp-serve` plan
    /// artifact (JSON), with this strategy's fingerprint recorded in the
    /// header. Decode with [`Session::load_artifact`] (or
    /// `graphpipe::serve::artifact::decode_plan` directly).
    pub fn artifact(&self) -> String {
        artifact::encode_plan(&self.plan, Some(self.fingerprint))
    }

    /// A [`WarmStart`] seed for re-planning this strategy's model on a
    /// cluster with `new_devices` devices — feed it to
    /// [`Session::plan_with_warm_start`]. The throughput hint scales by
    /// the device-count ratio so the bracket walk lands near the new
    /// optimum.
    pub fn warm_start(&self, new_devices: u32) -> WarmStart {
        WarmStart::from_plan(&self.plan, self.cluster.device_count() as u32, new_devices)
    }
}

/// Outcome of a [`Session::evaluate`] micro-batch sweep (Appendix A.2).
#[derive(Debug)]
pub struct EvalResult {
    /// The best strategy found, fingerprinted by the winning
    /// forced-micro-batch request (the request that reproduces this exact
    /// plan — see [`Session::evaluate`]).
    pub plan: PlannedStrategy,
    /// Its simulated iteration report.
    pub report: SimReport,
    /// Simulated throughput per candidate micro-batch size.
    pub per_micro_batch: Vec<(u64, f64)>,
}

/// Configuration for [`PlannedStrategy::execute`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingConfig {
    /// Training iterations to run (must be at least 1).
    pub steps: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// Seed for the synthetic mini-batch.
    pub data_seed: u64,
    /// Seed for the parameter initialization.
    pub param_seed: u64,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        TrainingConfig {
            steps: 4,
            lr: 0.05,
            data_seed: 7,
            param_seed: 42,
        }
    }
}

/// Losses from a [`PlannedStrategy::execute`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingRun {
    /// Per-step training loss (summed over micro-batches), in step order.
    pub losses: Vec<f32>,
    /// Single-device full-batch loss at the initial parameters — the
    /// gradient-equivalence ground truth for `losses[0]`.
    pub reference_loss: f32,
}

impl TrainingRun {
    /// Loss of the first step (computed before any update).
    pub fn first_loss(&self) -> f32 {
        self.losses[0]
    }

    /// Loss of the last step.
    pub fn final_loss(&self) -> f32 {
        *self.losses.last().expect("execute runs at least one step")
    }

    /// Absolute gap between the first distributed loss and the
    /// single-device reference — the "training semantics preserved" check
    /// (§8); expect ~1e-3 relative or better.
    pub fn reference_gap(&self) -> f32 {
        (self.first_loss() - self.reference_loss).abs()
    }

    /// Whether training reduced the loss from the first step to the last.
    pub fn improved(&self) -> bool {
        self.final_loss() < self.first_loss()
    }
}

/// One planner's outcome inside a [`Comparison`].
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// The planner evaluated.
    pub kind: PlannerKind,
    /// Best simulated throughput (samples/s); `None` is the paper's "✗".
    pub throughput: Option<f64>,
    /// Pipeline depth of the chosen strategy.
    pub depth: Option<usize>,
    /// Chosen (maximum) micro-batch size.
    pub micro_batch: Option<u64>,
    /// Why the planner produced no strategy, when it didn't.
    pub error: Option<Error>,
}

/// Outcome of [`Session::compare`]: one [`ComparisonRow`] per requested
/// planner, in request order, plus a Figure-6-style renderer
/// ([`Comparison::render`], also its [`fmt::Display`]).
#[derive(Debug)]
pub struct Comparison {
    mini_batch: u64,
    devices: usize,
    rows: Vec<ComparisonRow>,
}

impl Comparison {
    /// The mini-batch size every planner was evaluated at.
    pub fn mini_batch(&self) -> u64 {
        self.mini_batch
    }

    /// The device count of the session's cluster.
    pub fn devices(&self) -> usize {
        self.devices
    }

    /// All rows, in the order the planners were requested.
    pub fn rows(&self) -> &[ComparisonRow] {
        &self.rows
    }

    /// The row for a planner, if it was part of the comparison.
    pub fn row(&self, kind: PlannerKind) -> Option<&ComparisonRow> {
        self.rows.iter().find(|r| r.kind == kind)
    }

    /// A planner's best throughput, if it produced a strategy.
    pub fn throughput(&self, kind: PlannerKind) -> Option<f64> {
        self.row(kind).and_then(|r| r.throughput)
    }

    /// The first planner failure in the table, if any — for callers that
    /// treat any "✗" as fatal rather than as a rendered outcome (e.g. the
    /// repository examples under CI's examples-smoke step).
    pub fn first_error(&self) -> Option<&Error> {
        self.rows.iter().find_map(|r| r.error.as_ref())
    }

    /// Throughput ratio `numerator / denominator` (e.g. the paper's GP/PD
    /// speedup); `None` unless both planners produced strategies.
    pub fn speedup(&self, numerator: PlannerKind, denominator: PlannerKind) -> Option<f64> {
        match (self.throughput(numerator), self.throughput(denominator)) {
            (Some(n), Some(d)) if d > 0.0 => Some(n / d),
            _ => None,
        }
    }

    /// Renders the Figure-6-style markdown table: one row per planner with
    /// throughput (or "✗"), depth, micro-batch, and the speedup over the
    /// first requested planner; failed planners get a footnote with the
    /// error.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let baseline = self.rows.first().map(|r| r.kind);
        let vs = baseline.map_or("speedup".to_string(), |k| format!("vs {}", k.label()));
        let _ = writeln!(out, "| planner | samples/s | depth | micro-batch | {vs} |");
        let _ = writeln!(out, "| --- | --- | --- | --- | --- |");
        for r in &self.rows {
            let fmt_u64 = |v: Option<u64>| v.map_or("-".to_string(), |x| x.to_string());
            let speedup = baseline
                .and_then(|b| self.speedup(r.kind, b))
                .map_or("-".to_string(), |s| format!("{s:.2}x"));
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {speedup} |",
                r.kind.label(),
                r.throughput.map_or("✗".to_string(), |t| format!("{t:.0}")),
                r.depth.map_or("-".to_string(), |d| d.to_string()),
                fmt_u64(r.micro_batch),
            );
        }
        for r in &self.rows {
            if let Some(e) = &r.error {
                let _ = writeln!(out, "\n✗ {}: {e}", r.kind.label());
            }
        }
        out
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// A [`Session`] bound to a `gp-serve` [`PlanService`]: the cached,
/// single-flight path to the same [`PlannedStrategy`] values
/// [`Session::plan`] computes directly. Obtained from [`Session::serve`].
///
/// # Examples
///
/// ```
/// use graphpipe::prelude::*;
///
/// let session = Session::builder()
///     .model(zoo::mmt(&zoo::MmtConfig::tiny()))
///     .cluster(Cluster::summit_like(4))
///     .mini_batch(32)
///     .build()?;
/// let service = session.serve(2, 16);
/// let first = service.plan(PlannerKind::GraphPipe)?;   // planner runs
/// let again = service.plan(PlannerKind::GraphPipe)?;   // cache hit
/// assert_eq!(first.fingerprint(), again.fingerprint());
/// assert_eq!(service.stats().planner_runs, 1);
/// # Ok::<(), graphpipe::Error>(())
/// ```
pub struct SessionService {
    service: PlanService,
    session: Session,
}

impl SessionService {
    /// Plans (or fetches from cache / joins in flight) via the service.
    ///
    /// # Errors
    ///
    /// Planner failures surface as [`Error::Plan`] — the same variant the
    /// uncached [`Session::plan`] reports; [`Error::Serve`] only for
    /// service-level failures (shutdown).
    pub fn plan(&self, kind: PlannerKind) -> Result<PlannedStrategy, Error> {
        let ticket = self.service.submit(self.session.request(kind));
        let fingerprint = ticket.fingerprint();
        let plan = ticket.wait()?;
        debug_assert_eq!(fingerprint, self.session.request(kind).fingerprint());
        // The service verified the plan before caching it (its own trust
        // boundary); debug builds re-verify against *this* session's model
        // to catch cache-keying bugs that hand back a foreign plan.
        #[cfg(debug_assertions)]
        {
            let report =
                gp_verify::verify_strategy(&self.session.model, &self.session.cluster, &plan);
            debug_assert!(report.is_clean(), "served an invalid plan: {report}");
        }
        Ok(PlannedStrategy {
            model: Arc::clone(&self.session.model),
            cluster: self.session.cluster.clone(),
            kind,
            plan,
            fingerprint,
            sim_options: self.session.sim_options.clone(),
            telemetry: self.session.telemetry.clone(),
        })
    }

    /// The session this handle submits requests for.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The underlying service, for sharing with other sessions or
    /// submitting hand-built [`PlanRequest`]s.
    pub fn service(&self) -> &PlanService {
        &self.service
    }

    /// A snapshot of the service's hit/miss/latency counters.
    pub fn stats(&self) -> ServeStats {
        self.service.stats()
    }

    /// Drains the worker pool and returns the final counters.
    pub fn shutdown(self) -> ServeStats {
        self.service.shutdown()
    }
}

/// A session bound to a `gp-fleet` [`FleetService`]: distributed plan
/// serving with the session's own request fingerprints.
///
/// ```
/// use graphpipe::fleet::FleetConfig;
/// use graphpipe::prelude::*;
///
/// let session = Session::builder()
///     .model(zoo::mmt(&zoo::MmtConfig::tiny()))
///     .cluster(Cluster::summit_like(4))
///     .mini_batch(32)
///     .build()?;
/// let fleet = session.serve_fleet(FleetConfig::default())?;
/// let first = fleet.plan(PlannerKind::GraphPipe)?;   // a worker plans
/// let again = fleet.plan(PlannerKind::GraphPipe)?;   // shard cache hit
/// assert_eq!(first.fingerprint(), again.fingerprint());
/// assert_eq!(fleet.stats().planner_runs, 1);
/// # Ok::<(), graphpipe::Error>(())
/// ```
pub struct SessionFleet {
    fleet: FleetService,
    session: Session,
}

impl SessionFleet {
    /// [`SessionFleet::plan_as`] under the default tenant contract.
    ///
    /// # Errors
    ///
    /// Same as [`SessionFleet::plan_as`].
    pub fn plan(&self, kind: PlannerKind) -> Result<PlannedStrategy, Error> {
        self.plan_as("default", kind)
    }

    /// Plans via the fleet on behalf of `tenant` — the admitted request
    /// may be rewritten to the tenant's tier, in which case the returned
    /// strategy carries the tier-scoped fingerprint from the ticket.
    ///
    /// # Errors
    ///
    /// Planner failures surface as [`Error::Plan`] (the same variant
    /// [`Session::plan`] reports); admission refusals and worker-pool
    /// exhaustion as [`Error::Serve`] wrapping
    /// [`ServeError::Overloaded`](gp_serve::ServeError) or
    /// [`ServeError::WorkerUnavailable`](gp_serve::ServeError).
    pub fn plan_as(&self, tenant: &str, kind: PlannerKind) -> Result<PlannedStrategy, Error> {
        let ticket = self.fleet.submit(tenant, self.session.request(kind))?;
        let fingerprint = ticket.fingerprint();
        let plan = ticket.wait()?;
        // The fleet verified the plan before caching it (worker-side trust
        // boundary); debug builds re-verify against *this* session's model
        // to catch cache-keying bugs that hand back a foreign plan.
        #[cfg(debug_assertions)]
        {
            let report =
                gp_verify::verify_strategy(&self.session.model, &self.session.cluster, &plan);
            debug_assert!(report.is_clean(), "fleet served an invalid plan: {report}");
        }
        Ok(PlannedStrategy {
            model: Arc::clone(&self.session.model),
            cluster: self.session.cluster.clone(),
            kind,
            plan,
            fingerprint,
            sim_options: self.session.sim_options.clone(),
            telemetry: self.session.telemetry.clone(),
        })
    }

    /// The session this handle submits requests for.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The underlying fleet service, for hand-built [`PlanRequest`]s or
    /// store/worker introspection.
    pub fn fleet(&self) -> &FleetService {
        &self.fleet
    }

    /// A snapshot of the fleet's per-shard and admission counters.
    pub fn stats(&self) -> FleetStats {
        self.fleet.stats()
    }

    /// Stops admission, drains queued work, and returns the final
    /// counters.
    pub fn shutdown(mut self) -> FleetStats {
        self.fleet.shutdown();
        self.fleet.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_ir::zoo::{self, MmtConfig};

    fn session() -> Session {
        Session::builder()
            .model(zoo::mmt(&MmtConfig::tiny()))
            .cluster(Cluster::summit_like(4))
            .mini_batch(32)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_rejects_incomplete_sessions() {
        let missing_model = Session::builder()
            .cluster(Cluster::summit_like(4))
            .mini_batch(32)
            .build();
        assert!(matches!(missing_model, Err(Error::Invalid(_))));
        let missing_cluster = Session::builder()
            .model(zoo::mmt(&MmtConfig::tiny()))
            .mini_batch(32)
            .build();
        assert!(matches!(missing_cluster, Err(Error::Invalid(_))));
        let zero_batch = Session::builder()
            .model(zoo::mmt(&MmtConfig::tiny()))
            .cluster(Cluster::summit_like(4))
            .mini_batch(0)
            .build();
        assert!(matches!(zero_batch, Err(Error::Invalid(_))));
    }

    #[test]
    fn plan_fingerprint_matches_request_fingerprint() {
        let s = session();
        for kind in [
            PlannerKind::GraphPipe,
            PlannerKind::PipeDream,
            PlannerKind::Piper,
        ] {
            let strategy = s.plan(kind).unwrap();
            assert_eq!(strategy.fingerprint(), s.request(kind).fingerprint());
            assert_eq!(strategy.kind(), kind);
        }
        // Different planners key different cache entries.
        assert_ne!(
            s.request(PlannerKind::GraphPipe).fingerprint(),
            s.request(PlannerKind::PipeDream).fingerprint()
        );
    }

    #[test]
    fn strategy_derefs_to_plan_and_simulates() {
        let s = session();
        let strategy = s.plan(PlannerKind::GraphPipe).unwrap();
        assert!(strategy.pipeline_depth() >= 1); // via Deref
        assert!(strategy.bottleneck_tps > 0.0);
        assert!(!strategy.describe().is_empty());
        let report = strategy.simulate().unwrap();
        assert!(report.throughput > 0.0);
    }

    #[test]
    fn execute_trains_and_matches_reference() {
        let s = Session::builder()
            .model(zoo::mmt(&MmtConfig::tiny()))
            .cluster(Cluster::summit_like(3).with_memory_capacity(1 << 30))
            .mini_batch(8)
            .build()
            .unwrap();
        let strategy = s.plan(PlannerKind::GraphPipe).unwrap();
        let run = strategy
            .execute(&TrainingConfig {
                steps: 5,
                ..TrainingConfig::default()
            })
            .unwrap();
        assert_eq!(run.losses.len(), 5);
        assert!(run.reference_gap() / run.reference_loss < 1e-3);
        assert!(run.improved(), "{:?}", run.losses);
        let zero_steps = strategy.execute(&TrainingConfig {
            steps: 0,
            ..TrainingConfig::default()
        });
        assert!(matches!(zero_steps, Err(Error::Invalid(_))));
    }

    #[test]
    fn comparison_renders_rows_and_crosses_out_failures() {
        let s = session();
        let c = s.compare(&[PlannerKind::GraphPipe, PlannerKind::PipeDream]);
        assert_eq!(c.rows().len(), 2);
        assert_eq!(c.mini_batch(), 32);
        assert_eq!(c.devices(), 4);
        assert!(c.throughput(PlannerKind::GraphPipe).unwrap() > 0.0);
        assert!(
            c.speedup(PlannerKind::GraphPipe, PlannerKind::PipeDream)
                .unwrap()
                > 0.0
        );
        let text = c.to_string();
        assert!(text.contains("GraphPipe"), "{text}");
        assert!(text.contains("vs GraphPipe"), "{text}");
        // A planner that cannot plan renders as the paper's ✗.
        let doomed = Session::builder()
            .model(zoo::mmt(&MmtConfig::tiny()))
            .cluster(Cluster::summit_like(4))
            .mini_batch(32)
            .options(PlanOptions::default().with_micro_batch_candidates(vec![7]))
            .build()
            .unwrap();
        let c = doomed.compare(&[PlannerKind::GraphPipe]);
        let row = c.row(PlannerKind::GraphPipe).unwrap();
        assert!(row.throughput.is_none());
        assert!(row.error.is_some());
        assert!(c.render().contains('✗'));
    }

    #[test]
    fn warm_started_session_plan_is_identical_to_cold() {
        // Plan at 4 devices, then re-plan the same model at 8 seeded from
        // the first strategy: the warm plan must be byte-identical to the
        // cold plan for 8 devices (only search effort may differ).
        let small = session();
        let seed = small.plan(PlannerKind::GraphPipe).unwrap();
        let big = Session::builder()
            .model(Arc::clone(small.model()))
            .cluster(Cluster::summit_like(8))
            .mini_batch(32)
            .build()
            .unwrap();
        let cold = big.plan(PlannerKind::GraphPipe).unwrap();
        let warm = big
            .plan_with_warm_start(PlannerKind::GraphPipe, seed.warm_start(8))
            .unwrap();
        assert_eq!(warm.fingerprint(), cold.fingerprint());
        assert_eq!(warm.plan().stage_graph, cold.plan().stage_graph);
        assert_eq!(warm.plan().schedule, cold.plan().schedule);
        assert_eq!(warm.bottleneck_tps, cold.bottleneck_tps);
        assert!(warm.stats.binary_iters <= cold.stats.binary_iters);
        // Baselines ignore the seed rather than erroring.
        let baseline = big
            .plan_with_warm_start(PlannerKind::PipeDream, seed.warm_start(8))
            .unwrap();
        assert_eq!(
            baseline.plan().stage_graph,
            big.plan(PlannerKind::PipeDream).unwrap().plan().stage_graph
        );
    }

    #[test]
    fn artifact_round_trips_through_the_session() {
        let s = session();
        let strategy = s.plan(PlannerKind::GraphPipe).unwrap();
        let text = strategy.artifact();
        let restored = s.load_artifact(&text, PlannerKind::GraphPipe).unwrap();
        // Phase walls are measurement, not plan data: the codec never
        // encodes them, so compare with walls zeroed on both sides.
        let mut fresh = (**strategy.plan()).clone();
        let mut decoded = (**restored.plan()).clone();
        fresh.stats.zero_walls();
        decoded.stats.zero_walls();
        assert_eq!(decoded, fresh);
        assert_eq!(restored.fingerprint(), strategy.fingerprint());
        // The recorded fingerprint is planner-tagged: loading it as a
        // different planner's strategy is a mismatch, not a silent rebind.
        let err = s.load_artifact(&text, PlannerKind::PipeDream).unwrap_err();
        assert!(matches!(err, Error::Invalid(_)), "{err}");
    }
}
