//! # gp-cost — analytic cost, communication, and memory models
//!
//! GraphPipe estimates stage Time-Per-Sample "by profiling the execution
//! time of each operator while extrapolating communication latency by affine
//! functions" (§5) and checks per-device memory budgets (Equation 2). With
//! no GPUs available, this crate substitutes profiling with a roofline
//! model over the analytic FLOP/byte counts of `gp-ir`:
//!
//! * **compute time** — `flops / (peak * efficiency(micro_batch))`, where the
//!   saturating efficiency curve reproduces the paper's "larger micro-batches
//!   improve operational intensity" effect (§2, §7.3);
//! * **memory time** — `moved_bytes / mem_bandwidth`; the slower of the two
//!   wins (roofline), plus a fixed kernel overhead;
//! * **communication** — affine `latency + bytes/bandwidth` per transfer,
//!   ring-allreduce for data-parallel weight synchronization;
//! * **memory** — weights + gradients + Adam states (16 bytes/param fp32)
//!   plus stashed activations proportional to the number of in-flight
//!   samples, the quantity GPP minimizes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use gp_cluster::{Cluster, DeviceRange, LinkProfile};
use gp_ir::{Graph, OpId};
use serde::{Deserialize, Serialize};

/// Direction of a pass through (part of) the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pass {
    /// Forward pass.
    Forward,
    /// Backward pass (weight and input gradients).
    Backward,
}

/// Bytes of optimizer state kept per parameter: fp32 weight + gradient +
/// two Adam moments.
pub const BYTES_PER_PARAM_STATE: u64 = 16;

/// Analytic cost model bound to a cluster's device profile.
///
/// # Examples
///
/// ```
/// use gp_cluster::Cluster;
/// use gp_cost::{CostModel, Pass};
/// use gp_ir::zoo::{self, MmtConfig};
///
/// let model = zoo::mmt(&MmtConfig::default());
/// let cluster = Cluster::summit_like(4);
/// let cost = CostModel::new(&cluster);
/// let ops: Vec<_> = model.graph().nodes().map(|n| n.id).collect();
/// let fwd = cost.stage_time(model.graph(), &ops, 4, Pass::Forward);
/// let bwd = cost.stage_time(model.graph(), &ops, 4, Pass::Backward);
/// assert!(bwd > fwd); // backward does roughly twice the work
/// ```
#[derive(Debug, Clone)]
pub struct CostModel {
    cluster: Cluster,
}

impl CostModel {
    /// Binds the model to a cluster (its device profile and links).
    pub fn new(cluster: &Cluster) -> Self {
        CostModel {
            cluster: cluster.clone(),
        }
    }

    /// The cluster this model prices against.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Per-device memory budget in bytes (`M` of Equation 2).
    pub fn memory_budget(&self) -> u64 {
        self.cluster.profile().mem_capacity
    }

    /// Execution time of one operator on one device for a micro-batch of
    /// `micro_batch` samples, in seconds.
    pub fn op_time(&self, graph: &Graph, op: OpId, micro_batch: u64, pass: Pass) -> f64 {
        let p = self.cluster.profile();
        let flops_per_sample = match pass {
            Pass::Forward => graph.forward_flops(op),
            Pass::Backward => graph.backward_flops(op),
        };
        if flops_per_sample == 0 {
            return 0.0;
        }
        let flops = (flops_per_sample * micro_batch) as f64;
        // Moved bytes: inputs + output per sample, plus one read of the
        // weights per kernel launch.
        let node = graph.node(op);
        let io_per_sample: u64 = graph
            .input_shapes(op)
            .iter()
            .map(|s| s.numel() as u64 * gp_ir::BYTES_PER_ELEMENT)
            .sum::<u64>()
            + node.output_bytes();
        let weight_bytes = node.kind.param_count() * gp_ir::BYTES_PER_ELEMENT;
        let moved = (io_per_sample * micro_batch + weight_bytes) as f64
            * match pass {
                Pass::Forward => 1.0,
                Pass::Backward => 2.0,
            };
        let t_compute = flops / (p.peak_flops * p.efficiency(micro_batch));
        let t_memory = moved / p.mem_bandwidth;
        p.kernel_overhead + t_compute.max(t_memory)
    }

    /// Execution time of a set of operators run back-to-back on one device.
    pub fn stage_time(&self, graph: &Graph, ops: &[OpId], micro_batch: u64, pass: Pass) -> f64 {
        ops.iter()
            .map(|&op| self.op_time(graph, op, micro_batch, pass))
            .sum()
    }

    /// Steady-state Time-Per-Sample of a stage (§3): compute per sample on
    /// its data-parallel replicas plus amortized weight synchronization.
    ///
    /// `mini_batch` is the global mini-batch size `B`; the per-iteration
    /// allreduce cost is amortized over it.
    pub fn stage_tps(
        &self,
        graph: &Graph,
        ops: &[OpId],
        micro_batch: u64,
        devices: &DeviceRange,
        mini_batch: u64,
    ) -> f64 {
        assert!(micro_batch > 0 && mini_batch > 0);
        // Micro-batches round-robin over replicas: with m = B/b of them on
        // |D_i| replicas, the slowest replica runs ceil(m/|D_i|) of them, so
        // the effective data-parallel degree is m / ceil(m / |D_i|).
        let m = (mini_batch / micro_batch).max(1);
        let d = m as f64 / m.div_ceil(devices.len() as u64) as f64;
        let t_micro = self.stage_time(graph, ops, micro_batch, Pass::Forward)
            + self.stage_time(graph, ops, micro_batch, Pass::Backward);
        let compute_tps = t_micro / (micro_batch as f64 * d);
        let weight_bytes = self.stage_param_bytes(graph, ops);
        let sync_tps = self.allreduce_time(weight_bytes, devices) / mini_batch as f64;
        compute_tps + sync_tps
    }

    /// Bytes of learnable parameters held by a stage (per replica).
    pub fn stage_param_bytes(&self, graph: &Graph, ops: &[OpId]) -> u64 {
        ops.iter()
            .map(|&op| graph.node(op).kind.param_count() * gp_ir::BYTES_PER_ELEMENT)
            .sum()
    }

    /// Activation bytes a stage must stash per in-flight sample.
    pub fn stage_activation_bytes_per_sample(&self, graph: &Graph, ops: &[OpId]) -> u64 {
        ops.iter().map(|&op| graph.stashed_bytes(op)).sum()
    }

    /// Per-replica in-flight samples: in-flight micro-batches are
    /// distributed round-robin over replicas, so each replica stashes whole
    /// micro-batches.
    #[inline]
    pub fn in_flight_per_replica(
        in_flight_samples: u64,
        micro_batch: u64,
        dp_degree: usize,
    ) -> u64 {
        assert!(dp_degree >= 1 && micro_batch >= 1);
        // Micro-batch sizes are powers of two in practice; a shift-based
        // ceiling division (bit-identical to `div_ceil` for powers of two)
        // keeps this off the planner's integer-divide critical path.
        let whole_micro_batches = if micro_batch.is_power_of_two() {
            (in_flight_samples >> micro_batch.trailing_zeros())
                + u64::from(in_flight_samples & (micro_batch - 1) != 0)
        } else {
            in_flight_samples.div_ceil(micro_batch)
        };
        // 32-bit hardware division is markedly cheaper than 64-bit; the
        // counts here are tiny in practice, so take the narrow path when
        // the operands allow it (identical quotients either way).
        let groups = if whole_micro_batches <= u32::MAX as u64 && dp_degree <= u32::MAX as usize {
            u64::from((whole_micro_batches as u32).div_ceil(dp_degree as u32))
        } else {
            whole_micro_batches.div_ceil(dp_degree as u64)
        };
        groups * micro_batch
    }

    /// Peak per-device memory of a stage: optimizer-state bytes for its
    /// parameters plus stashed activations for `in_flight_samples`, divided
    /// across `dp_degree` replicas in whole micro-batches (weights are
    /// fully replicated).
    pub fn stage_memory_bytes(
        &self,
        graph: &Graph,
        ops: &[OpId],
        in_flight_samples: u64,
        micro_batch: u64,
        dp_degree: usize,
    ) -> u64 {
        let params: u64 = ops
            .iter()
            .map(|&op| graph.node(op).kind.param_count())
            .sum();
        let static_bytes = params * BYTES_PER_PARAM_STATE;
        let act = self.stage_activation_bytes_per_sample(graph, ops);
        static_bytes + act * Self::in_flight_per_replica(in_flight_samples, micro_batch, dp_degree)
    }

    /// Whether a stage fits the per-device budget (Equation 2).
    pub fn stage_fits_memory(
        &self,
        graph: &Graph,
        ops: &[OpId],
        in_flight_samples: u64,
        micro_batch: u64,
        dp_degree: usize,
    ) -> bool {
        self.stage_memory_bytes(graph, ops, in_flight_samples, micro_batch, dp_degree)
            <= self.memory_budget()
    }

    /// Activation bytes crossing from `from_ops` into `to_ops` per sample:
    /// the payload of one inter-stage transfer.
    pub fn crossing_bytes_per_sample(
        &self,
        graph: &Graph,
        from_ops: &[OpId],
        to_ops: &[OpId],
    ) -> u64 {
        let mut member = vec![false; graph.len()];
        for &o in to_ops {
            member[o.index()] = true;
        }
        let mut total = 0;
        for &u in from_ops {
            for &v in graph.succs(u) {
                if member[v.index()] {
                    total += graph.node(u).output_bytes();
                }
            }
        }
        total
    }

    /// Affine point-to-point transfer time.
    pub fn transfer_time(&self, bytes: u64, link: LinkProfile) -> f64 {
        link.transfer_time(bytes)
    }

    /// The link the planner assumes for a not-yet-placed stage boundary:
    /// the inter-node link when the cluster spans nodes, otherwise NVLink.
    /// (The simulator later uses the *actual* link between assigned
    /// devices.)
    #[inline]
    pub fn default_boundary_link(&self) -> LinkProfile {
        let first = gp_cluster::DeviceId(0);
        let last = gp_cluster::DeviceId(self.cluster.device_count() as u32 - 1);
        self.cluster.link(first, last)
    }

    /// Ring-allreduce time for `bytes` across a data-parallel device range:
    /// `2 (d-1)/d * bytes / bw` plus per-step latencies. Zero for a single
    /// device.
    #[inline]
    pub fn allreduce_time(&self, bytes: u64, devices: &DeviceRange) -> f64 {
        let d = devices.len();
        if d <= 1 || bytes == 0 {
            return 0.0;
        }
        let link = self.cluster.bottleneck_link(devices);
        let steps = 2 * (d - 1);
        let payload = 2.0 * (d as f64 - 1.0) / d as f64 * bytes as f64 / link.bandwidth;
        payload + steps as f64 * link.latency
    }

    /// A safe upper bound for the bottleneck-stage TPS used to initialize
    /// the partitioner's binary search (`MAXTPS` in Algorithm 1): the whole
    /// model on one device at micro-batch 1.
    pub fn max_tps(&self, graph: &Graph) -> f64 {
        let ops: Vec<OpId> = graph.nodes().map(|n| n.id).collect();
        let single = DeviceRange::new(0, 1);
        // Mini-batch 1 makes the (zero) allreduce term irrelevant.
        2.0 * self.stage_tps(graph, &ops, 1, &single, 1) + 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_ir::zoo::{self, CandleUnoConfig, MmtConfig};

    fn setup() -> (gp_ir::SpModel, CostModel) {
        let model = zoo::candle_uno(&CandleUnoConfig::tiny());
        let cluster = Cluster::summit_like(4);
        (model, CostModel::new(&cluster))
    }

    #[test]
    fn op_time_positive_and_monotone_in_batch() {
        let (model, cost) = setup();
        let g = model.graph();
        for node in g.nodes() {
            let t1 = cost.op_time(g, node.id, 1, Pass::Forward);
            let t8 = cost.op_time(g, node.id, 8, Pass::Forward);
            assert!(t1 >= 0.0);
            assert!(t8 >= t1, "{}: time must grow with batch", node.name);
        }
    }

    #[test]
    fn per_sample_time_improves_with_batch() {
        // Efficiency saturation: t(b)/b strictly decreases for compute-bound ops.
        let model = zoo::mmt(&MmtConfig::default());
        let cluster = Cluster::summit_like(4);
        let cost = CostModel::new(&cluster);
        let g = model.graph();
        let mha = g
            .nodes()
            .find(|n| matches!(n.kind, gp_ir::OpKind::MultiHeadAttention { .. }))
            .unwrap()
            .id;
        let t2 = cost.op_time(g, mha, 2, Pass::Forward) / 2.0;
        let t8 = cost.op_time(g, mha, 8, Pass::Forward) / 8.0;
        assert!(t8 < t2);
    }

    #[test]
    fn backward_costs_more_than_forward() {
        let (model, cost) = setup();
        let g = model.graph();
        let ops: Vec<OpId> = g.nodes().map(|n| n.id).collect();
        assert!(
            cost.stage_time(g, &ops, 4, Pass::Backward)
                > cost.stage_time(g, &ops, 4, Pass::Forward)
        );
    }

    #[test]
    fn tps_scales_down_with_data_parallelism() {
        let model = zoo::mmt(&MmtConfig::default());
        let cluster = Cluster::summit_like(8);
        let cost = CostModel::new(&cluster);
        let g = model.graph();
        let ops: Vec<OpId> = g.nodes().map(|n| n.id).collect();
        let tps1 = cost.stage_tps(g, &ops, 4, &DeviceRange::new(0, 1), 64);
        let tps4 = cost.stage_tps(g, &ops, 4, &DeviceRange::new(0, 4), 64);
        assert!(tps4 < tps1);
        assert!(tps4 > tps1 / 4.0, "allreduce overhead must be visible");
    }

    #[test]
    fn memory_grows_with_in_flight() {
        let (model, cost) = setup();
        let g = model.graph();
        let ops: Vec<OpId> = g.nodes().map(|n| n.id).collect();
        let m2 = cost.stage_memory_bytes(g, &ops, 2, 1, 1);
        let m8 = cost.stage_memory_bytes(g, &ops, 8, 1, 1);
        assert!(m8 > m2);
        // Data parallelism shares the activation load.
        let m8dp = cost.stage_memory_bytes(g, &ops, 8, 1, 4);
        assert!(m8dp < m8);
    }

    #[test]
    fn memory_budget_enforced() {
        let model = zoo::mmt(&MmtConfig::default());
        let cluster = Cluster::summit_like(4).with_memory_capacity(1 << 20);
        let cost = CostModel::new(&cluster);
        let g = model.graph();
        let ops: Vec<OpId> = g.nodes().map(|n| n.id).collect();
        assert!(!cost.stage_fits_memory(g, &ops, 4, 1, 1));
    }

    #[test]
    fn crossing_bytes_counts_boundary_edges() {
        let (model, cost) = setup();
        let g = model.graph();
        let all: Vec<OpId> = g.nodes().map(|n| n.id).collect();
        // Split: everything except the loss | the loss.
        let (front, back) = all.split_at(all.len() - 1);
        let bytes = cost.crossing_bytes_per_sample(g, front, back);
        // The loss's single input edge carries the head output (1 element).
        assert_eq!(bytes, gp_ir::BYTES_PER_ELEMENT);
        // No edges from back to front.
        assert_eq!(cost.crossing_bytes_per_sample(g, back, front), 0);
    }

    #[test]
    fn allreduce_time_zero_for_single_device() {
        let (_, cost) = setup();
        assert_eq!(cost.allreduce_time(1 << 20, &DeviceRange::new(0, 1)), 0.0);
        let t2 = cost.allreduce_time(1 << 20, &DeviceRange::new(0, 2));
        let t4 = cost.allreduce_time(1 << 20, &DeviceRange::new(0, 4));
        assert!(t2 > 0.0 && t4 > t2);
    }

    #[test]
    fn max_tps_dominates_any_partition() {
        let (model, cost) = setup();
        let g = model.graph();
        let ops: Vec<OpId> = g.nodes().map(|n| n.id).collect();
        let bound = cost.max_tps(g);
        for b in [1u64, 2, 4, 8] {
            let tps = cost.stage_tps(g, &ops, b, &DeviceRange::new(0, 1), 64);
            assert!(tps < bound, "b={b}: {tps} !< {bound}");
        }
    }

    #[test]
    fn default_boundary_link_is_conservative() {
        let cost = CostModel::new(&Cluster::summit_like(8));
        assert_eq!(cost.default_boundary_link(), LinkProfile::infiniband_edr());
        let small = CostModel::new(&Cluster::summit_like(4));
        assert_eq!(small.default_boundary_link(), LinkProfile::nvlink());
    }

    #[test]
    fn zero_cost_ops_take_zero_time() {
        let (model, cost) = setup();
        let g = model.graph();
        let input = g.sources()[0];
        assert_eq!(cost.op_time(g, input, 8, Pass::Forward), 0.0);
    }
}
