//! Synthetic training data for the runtime.

use gp_ir::{Graph, OpId, OpKind};
use gp_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;

/// Generates a full mini-batch for every `Input` operator of a graph.
///
/// Dense inputs get uniform values in `[-1, 1)`. Inputs consumed by an
/// `EmbeddingBag` get integer row indices (stored as f32) drawn uniformly
/// from the table, mirroring DLRM's categorical features.
pub fn synth_batch(graph: &Graph, mini_batch: u64, seed: u64) -> HashMap<OpId, Tensor> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut batch = HashMap::new();
    for node in graph.nodes() {
        if !matches!(node.kind, OpKind::Input) {
            continue;
        }
        let entries = graph
            .succs(node.id)
            .iter()
            .find_map(|&s| match graph.node(s).kind {
                OpKind::EmbeddingBag { entries, .. } => Some(entries),
                _ => None,
            });
        let mut dims = vec![mini_batch as usize];
        dims.extend_from_slice(node.out_shape.dims());
        let tensor = match entries {
            Some(entries) => {
                let numel: usize = dims.iter().product();
                let data = (0..numel)
                    .map(|_| rng.random_range(0..entries) as f32)
                    .collect();
                Tensor::new(dims, data)
            }
            None => Tensor::rand_uniform(dims, 1.0, &mut rng),
        };
        batch.insert(node.id, tensor);
    }
    batch
}

/// Slices rows `[lo, hi)` of every input tensor (micro-batch extraction),
/// reshaping each slice back to `[rows, per-sample dims...]`.
pub fn slice_batch(
    graph: &Graph,
    batch: &HashMap<OpId, Tensor>,
    lo: usize,
    hi: usize,
) -> HashMap<OpId, Tensor> {
    batch
        .iter()
        .map(|(&op, tensor)| {
            let per_sample = graph.node(op).out_shape.numel();
            let sliced = tensor.slice_rows(per_sample, lo, hi);
            let mut dims = vec![hi - lo];
            dims.extend_from_slice(graph.node(op).out_shape.dims());
            (op, sliced.reshape(dims))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_ir::zoo::{self, DlrmConfig};

    #[test]
    fn dense_and_sparse_inputs() {
        let model = zoo::dlrm(&DlrmConfig::tiny());
        let g = model.graph();
        let batch = synth_batch(g, 4, 11);
        let n_inputs = g
            .nodes()
            .filter(|n| matches!(n.kind, OpKind::Input))
            .count();
        assert_eq!(batch.len(), n_inputs);
        // Sparse inputs carry integer indices within the table.
        for node in g.nodes() {
            let is_bag_input = g
                .succs(node.id)
                .iter()
                .any(|&s| matches!(g.node(s).kind, OpKind::EmbeddingBag { .. }));
            if is_bag_input {
                let t = &batch[&node.id];
                assert!(t
                    .data()
                    .iter()
                    .all(|&v| v >= 0.0 && v.fract() == 0.0 && v < 64.0));
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let model = zoo::mlp_chain(2, 8);
        let a = synth_batch(model.graph(), 4, 5);
        let b = synth_batch(model.graph(), 4, 5);
        for (op, t) in &a {
            assert_eq!(t, &b[op]);
        }
    }

    #[test]
    fn slicing_preserves_rows() {
        let model = zoo::mlp_chain(2, 8);
        let g = model.graph();
        let batch = synth_batch(g, 8, 5);
        let lo = slice_batch(g, &batch, 2, 5);
        let input = g.sources()[0];
        assert_eq!(lo[&input].shape(), &[3, 8]);
        assert_eq!(
            lo[&input].data()[0],
            batch[&input].data()[2 * 8],
            "row alignment"
        );
    }
}
