//! # gp-exec — threaded distributed-training runtime with real numerics
//!
//! The GraphPipe paper's third component is a distributed runtime that
//! executes discovered GPP strategies while preserving synchronous training
//! semantics. This crate is that runtime's *semantic* substitute (the
//! timing substitute is `gp-sim`): worker threads play the role of GPUs,
//! crossbeam channels play the role of NVLink/InfiniBand, and real f32
//! tensor math (`gp-tensor`) runs every forward and backward pass in the
//! order prescribed by the strategy's micro-batch schedules.
//!
//! The headline guarantees, enforced by the integration tests:
//!
//! * **gradient equivalence** — a pipelined, data-parallel iteration
//!   produces the same gradients as a single-device full-batch step;
//! * **convergence** — training loss decreases under SGD on every zoo
//!   model;
//! * **schedule conformance** — each replica's execution trace follows its
//!   kFkB task order.
//!
//! # Examples
//!
//! ```
//! use gp_cluster::Cluster;
//! use gp_exec::{synth_batch, train, ModelParams};
//! use gp_ir::zoo::{self, CandleUnoConfig};
//! use gp_partition::{GraphPipePlanner, Planner};
//!
//! let model = zoo::candle_uno(&CandleUnoConfig::tiny());
//! let cluster = Cluster::summit_like(3).with_memory_capacity(1 << 30);
//! let plan = GraphPipePlanner::new().plan(&model, &cluster, 8)?;
//! let mut params = ModelParams::init(model.graph(), 42);
//! let batch = synth_batch(model.graph(), 8, 7);
//! let losses = train(
//!     model.graph(), &plan.stage_graph, &plan.schedule,
//!     &mut params, &batch, 0.05, 4,
//! )?;
//! assert!(losses.last().unwrap() < losses.first().unwrap());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod data;
mod module;
mod reference;
mod runtime;
mod stage;

pub use data::{slice_batch, synth_batch};
pub use module::{op_backward, op_forward, ModelParams, OpCache, OpParams};
pub use reference::{reference_step, reference_train};
pub use runtime::{
    train, train_iteration, train_iteration_traced, train_traced, ExecError, IterationResult,
    TraceEvent,
};
pub use stage::StageRunner;
