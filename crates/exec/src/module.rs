//! Per-operator parameters, forward/backward dispatch, and the SGD update.

use gp_ir::{Graph, Node, Nonlinearity, OpId, OpKind};
use gp_tensor::ops::{self, LayerNormCache, MhaCache, MhaParams};
use gp_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Learnable parameters of one operator.
#[derive(Debug, Clone)]
pub enum OpParams {
    /// Parameter-free operator.
    None,
    /// Dense layer weights.
    Linear {
        /// `[in, out]` weight matrix.
        w: Tensor,
        /// Optional `[out]` bias.
        b: Option<Tensor>,
    },
    /// Multi-head attention projections (boxed: the eight projection
    /// tensors dwarf every other variant).
    Mha(Box<MhaParams>),
    /// Layer-norm scale and shift.
    LayerNorm {
        /// `[dim]` scale.
        gamma: Tensor,
        /// `[dim]` shift.
        beta: Tensor,
    },
    /// Embedding table.
    Embedding {
        /// `[entries, dim]` table.
        table: Tensor,
    },
}

impl OpParams {
    /// Initializes parameters for an operator, deterministically seeded per
    /// operator id so all replicas (and the reference executor) agree.
    pub fn init(node: &Node, seed: u64) -> OpParams {
        let mut rng = StdRng::seed_from_u64(seed ^ (0x9e37_79b9_7f4a_7c15 ^ node.id.0 as u64));
        match node.kind {
            OpKind::Linear {
                in_features,
                out_features,
                bias,
            } => {
                let scale = (1.0 / in_features as f32).sqrt();
                OpParams::Linear {
                    w: Tensor::rand_uniform(vec![in_features, out_features], scale, &mut rng),
                    b: bias.then(|| Tensor::zeros(vec![out_features])),
                }
            }
            OpKind::MultiHeadAttention { hidden, heads, .. } => {
                let scale = (1.0 / hidden as f32).sqrt();
                let mut mat = || Tensor::rand_uniform(vec![hidden, hidden], scale, &mut rng);
                let (wq, wk, wv, wo) = (mat(), mat(), mat(), mat());
                OpParams::Mha(Box::new(MhaParams {
                    wq,
                    wk,
                    wv,
                    wo,
                    bq: Tensor::zeros(vec![hidden]),
                    bk: Tensor::zeros(vec![hidden]),
                    bv: Tensor::zeros(vec![hidden]),
                    bo: Tensor::zeros(vec![hidden]),
                    heads,
                }))
            }
            OpKind::LayerNorm { dim } => OpParams::LayerNorm {
                gamma: Tensor::ones(vec![dim]),
                beta: Tensor::zeros(vec![dim]),
            },
            OpKind::EmbeddingBag { entries, dim, .. } => OpParams::Embedding {
                table: Tensor::rand_uniform(vec![entries, dim], 0.1, &mut rng),
            },
            _ => OpParams::None,
        }
    }

    /// `self -= lr * grad` over every tensor.
    ///
    /// # Panics
    ///
    /// Panics if `grad` has a different variant.
    pub fn sgd_step(&mut self, grad: &OpParams, lr: f32) {
        match (self, grad) {
            (OpParams::None, OpParams::None) => {}
            (OpParams::Linear { w, b }, OpParams::Linear { w: gw, b: gb }) => {
                w.axpy(-lr, gw);
                if let (Some(b), Some(gb)) = (b.as_mut(), gb.as_ref()) {
                    b.axpy(-lr, gb);
                }
            }
            (OpParams::Mha(p), OpParams::Mha(g)) => {
                p.wq.axpy(-lr, &g.wq);
                p.wk.axpy(-lr, &g.wk);
                p.wv.axpy(-lr, &g.wv);
                p.wo.axpy(-lr, &g.wo);
                p.bq.axpy(-lr, &g.bq);
                p.bk.axpy(-lr, &g.bk);
                p.bv.axpy(-lr, &g.bv);
                p.bo.axpy(-lr, &g.bo);
            }
            (
                OpParams::LayerNorm { gamma, beta },
                OpParams::LayerNorm {
                    gamma: gg,
                    beta: gb,
                },
            ) => {
                gamma.axpy(-lr, gg);
                beta.axpy(-lr, gb);
            }
            (OpParams::Embedding { table }, OpParams::Embedding { table: gt }) => {
                table.axpy(-lr, gt);
            }
            (a, b) => panic!("parameter/gradient variant mismatch: {a:?} vs {b:?}"),
        }
    }

    /// `self += other` over every tensor (gradient accumulation).
    ///
    /// # Panics
    ///
    /// Panics if `other` has a different variant.
    pub fn accumulate(&mut self, other: &OpParams) {
        match (self, other) {
            (OpParams::None, OpParams::None) => {}
            (OpParams::Linear { w, b }, OpParams::Linear { w: ow, b: ob }) => {
                w.axpy(1.0, ow);
                if let (Some(b), Some(ob)) = (b.as_mut(), ob.as_ref()) {
                    b.axpy(1.0, ob);
                }
            }
            (OpParams::Mha(p), OpParams::Mha(o)) => {
                p.wq.axpy(1.0, &o.wq);
                p.wk.axpy(1.0, &o.wk);
                p.wv.axpy(1.0, &o.wv);
                p.wo.axpy(1.0, &o.wo);
                p.bq.axpy(1.0, &o.bq);
                p.bk.axpy(1.0, &o.bk);
                p.bv.axpy(1.0, &o.bv);
                p.bo.axpy(1.0, &o.bo);
            }
            (
                OpParams::LayerNorm { gamma, beta },
                OpParams::LayerNorm {
                    gamma: og,
                    beta: ob,
                },
            ) => {
                gamma.axpy(1.0, og);
                beta.axpy(1.0, ob);
            }
            (OpParams::Embedding { table }, OpParams::Embedding { table: ot }) => {
                table.axpy(1.0, ot);
            }
            (a, b) => panic!("accumulate variant mismatch: {a:?} vs {b:?}"),
        }
    }

    /// A zero-valued gradient of the same structure.
    pub fn zeros_like(&self) -> OpParams {
        match self {
            OpParams::None => OpParams::None,
            OpParams::Linear { w, b } => OpParams::Linear {
                w: Tensor::zeros(w.shape().to_vec()),
                b: b.as_ref().map(|b| Tensor::zeros(b.shape().to_vec())),
            },
            OpParams::Mha(p) => OpParams::Mha(Box::new(MhaParams {
                wq: Tensor::zeros(p.wq.shape().to_vec()),
                wk: Tensor::zeros(p.wk.shape().to_vec()),
                wv: Tensor::zeros(p.wv.shape().to_vec()),
                wo: Tensor::zeros(p.wo.shape().to_vec()),
                bq: Tensor::zeros(p.bq.shape().to_vec()),
                bk: Tensor::zeros(p.bk.shape().to_vec()),
                bv: Tensor::zeros(p.bv.shape().to_vec()),
                bo: Tensor::zeros(p.bo.shape().to_vec()),
                heads: p.heads,
            })),
            OpParams::LayerNorm { gamma, beta } => OpParams::LayerNorm {
                gamma: Tensor::zeros(gamma.shape().to_vec()),
                beta: Tensor::zeros(beta.shape().to_vec()),
            },
            OpParams::Embedding { table } => OpParams::Embedding {
                table: Tensor::zeros(table.shape().to_vec()),
            },
        }
    }

    /// Largest absolute difference between two parameter sets, for
    /// equivalence tests.
    ///
    /// # Panics
    ///
    /// Panics if `other` has a different variant.
    pub fn max_abs_diff(&self, other: &OpParams) -> f32 {
        match (self, other) {
            (OpParams::None, OpParams::None) => 0.0,
            (OpParams::Linear { w, b }, OpParams::Linear { w: ow, b: ob }) => {
                let mut d = w.max_abs_diff(ow);
                if let (Some(b), Some(ob)) = (b.as_ref(), ob.as_ref()) {
                    d = d.max(b.max_abs_diff(ob));
                }
                d
            }
            (OpParams::Mha(p), OpParams::Mha(o)) => [
                p.wq.max_abs_diff(&o.wq),
                p.wk.max_abs_diff(&o.wk),
                p.wv.max_abs_diff(&o.wv),
                p.wo.max_abs_diff(&o.wo),
                p.bq.max_abs_diff(&o.bq),
                p.bk.max_abs_diff(&o.bk),
                p.bv.max_abs_diff(&o.bv),
                p.bo.max_abs_diff(&o.bo),
            ]
            .into_iter()
            .fold(0.0, f32::max),
            (
                OpParams::LayerNorm { gamma, beta },
                OpParams::LayerNorm {
                    gamma: og,
                    beta: ob,
                },
            ) => gamma.max_abs_diff(og).max(beta.max_abs_diff(ob)),
            (OpParams::Embedding { table }, OpParams::Embedding { table: ot }) => {
                table.max_abs_diff(ot)
            }
            (a, b) => panic!("diff variant mismatch: {a:?} vs {b:?}"),
        }
    }
}

/// All model parameters, indexed by operator id.
#[derive(Debug, Clone)]
pub struct ModelParams {
    per_op: Vec<OpParams>,
}

impl ModelParams {
    /// Deterministically initializes parameters for a whole graph.
    pub fn init(graph: &Graph, seed: u64) -> ModelParams {
        ModelParams {
            per_op: graph.nodes().map(|n| OpParams::init(n, seed)).collect(),
        }
    }

    /// Parameters of one operator.
    pub fn op(&self, id: OpId) -> &OpParams {
        &self.per_op[id.index()]
    }

    /// Mutable parameters of one operator.
    pub fn op_mut(&mut self, id: OpId) -> &mut OpParams {
        &mut self.per_op[id.index()]
    }

    /// A zero gradient store of the same structure.
    pub fn zeros_like(&self) -> ModelParams {
        ModelParams {
            per_op: self.per_op.iter().map(OpParams::zeros_like).collect(),
        }
    }

    /// Accumulates another gradient store into this one.
    pub fn accumulate(&mut self, other: &ModelParams) {
        for (a, b) in self.per_op.iter_mut().zip(&other.per_op) {
            a.accumulate(b);
        }
    }

    /// Applies one SGD step with the given gradients.
    pub fn sgd_step(&mut self, grads: &ModelParams, lr: f32) {
        for (p, g) in self.per_op.iter_mut().zip(&grads.per_op) {
            p.sgd_step(g, lr);
        }
    }

    /// Largest parameter difference to another store.
    pub fn max_abs_diff(&self, other: &ModelParams) -> f32 {
        self.per_op
            .iter()
            .zip(&other.per_op)
            .map(|(a, b)| a.max_abs_diff(b))
            .fold(0.0, f32::max)
    }
}

/// Forward-pass state an operator keeps for its backward pass.
#[derive(Debug, Clone)]
pub enum OpCache {
    /// Nothing retained.
    None,
    /// Input activation.
    Input(Tensor),
    /// Attention intermediate state.
    Mha(Box<MhaCache>),
    /// Layer-norm statistics.
    LayerNorm(LayerNormCache),
    /// Concat input widths.
    Concat(Vec<usize>),
    /// Embedding-bag indices.
    Bag(Vec<usize>),
    /// Elementwise-add input count (the sum's backward only fans the
    /// output gradient back out).
    Arity(usize),
}

/// Runs one operator forward.
///
/// `inputs` are batch-major activations from the operator's predecessors in
/// order; `mini_batch` is the global `B` used as the loss denominator.
///
/// # Panics
///
/// Panics on arity mismatches, which the validated graph rules out.
pub fn op_forward(
    node: &Node,
    params: &OpParams,
    inputs: &[&Tensor],
    mini_batch: u64,
) -> (Tensor, OpCache) {
    match (&node.kind, params) {
        (OpKind::Input, _) => unreachable!("Input data is injected by the runner"),
        (OpKind::Linear { .. }, OpParams::Linear { w, b }) => {
            let y = ops::linear_fwd(inputs[0], w, b.as_ref());
            (y, OpCache::Input(inputs[0].clone()))
        }
        (OpKind::MultiHeadAttention { seq, hidden, .. }, OpParams::Mha(p)) => {
            let x = inputs[0];
            let batch = x.numel() / (seq * hidden);
            let x3 = x.reshape(vec![batch, *seq, *hidden]);
            let (y, cache) = ops::mha_fwd(&x3, p);
            (y, OpCache::Mha(Box::new(cache)))
        }
        (OpKind::LayerNorm { .. }, OpParams::LayerNorm { gamma, beta }) => {
            let (y, cache) = ops::layernorm_fwd(inputs[0], gamma, beta);
            (y, OpCache::LayerNorm(cache))
        }
        (OpKind::Activation(Nonlinearity::Relu), _) => {
            (ops::relu_fwd(inputs[0]), OpCache::Input(inputs[0].clone()))
        }
        (OpKind::Activation(Nonlinearity::Gelu), _) => {
            (ops::gelu_fwd(inputs[0]), OpCache::Input(inputs[0].clone()))
        }
        (OpKind::EmbeddingBag { dim, bag, entries }, OpParams::Embedding { table }) => {
            let x = inputs[0];
            let batch = x.numel() / bag;
            let indices: Vec<usize> = x
                .data()
                .iter()
                .map(|&v| (v.max(0.0) as usize).min(entries - 1))
                .collect();
            let y = ops::embedding_bag_fwd(table, &indices, batch, *bag);
            debug_assert_eq!(y.shape()[1], bag * dim);
            (y, OpCache::Bag(indices))
        }
        (OpKind::Concat, _) => {
            let cols: Vec<usize> = inputs
                .iter()
                .map(|x| *x.shape().last().expect("non-scalar"))
                .collect();
            let flat: Vec<Tensor> = inputs
                .iter()
                .zip(&cols)
                .map(|(x, &c)| x.reshape(vec![x.rows_for(c), c]))
                .collect();
            let refs: Vec<&Tensor> = flat.iter().collect();
            (ops::concat_fwd(&refs), OpCache::Concat(cols))
        }
        (OpKind::FeatureInteraction { features, dim }, _) => {
            let y = ops::interaction_fwd(inputs[0], *features, *dim);
            (y, OpCache::Input(inputs[0].clone()))
        }
        (OpKind::Loss, _) => {
            let x = inputs[0];
            let loss = ops::l2_loss_fwd(x, mini_batch as f32);
            (Tensor::new(vec![1], vec![loss]), OpCache::Input(x.clone()))
        }
        (OpKind::Add, _) => {
            let mut y = inputs[0].clone();
            for x in &inputs[1..] {
                y.axpy(1.0, x);
            }
            (y, OpCache::Arity(inputs.len()))
        }
        (kind, params) => panic!("op/params mismatch: {kind:?} with {params:?}"),
    }
}

/// Runs one operator backward. `dy` is `None` only for the `Loss` sink,
/// which seeds the gradient itself. Returns gradients w.r.t. each input (in
/// predecessor order) and w.r.t. the operator's parameters.
///
/// # Panics
///
/// Panics on cache/params variant mismatches, which a correct runner rules
/// out.
pub fn op_backward(
    node: &Node,
    params: &OpParams,
    cache: &OpCache,
    dy: Option<&Tensor>,
    mini_batch: u64,
) -> (Vec<Tensor>, OpParams) {
    match (&node.kind, params, cache) {
        (OpKind::Input, ..) => (Vec::new(), OpParams::None),
        (OpKind::Linear { .. }, OpParams::Linear { w, b }, OpCache::Input(x)) => {
            let dy = dy.expect("non-sink ops receive a gradient");
            let (dx, dw, db) = ops::linear_bwd(x, w, dy);
            (
                vec![dx],
                OpParams::Linear {
                    w: dw,
                    b: b.as_ref().map(|_| db),
                },
            )
        }
        (OpKind::MultiHeadAttention { seq, hidden, .. }, OpParams::Mha(p), OpCache::Mha(c)) => {
            let dy = dy.expect("non-sink ops receive a gradient");
            let batch = dy.numel() / (seq * hidden);
            let dy3 = dy.reshape(vec![batch, *seq, *hidden]);
            let (dx, grads) = ops::mha_bwd(c, p, &dy3);
            (vec![dx], OpParams::Mha(Box::new(grads)))
        }
        (OpKind::LayerNorm { .. }, OpParams::LayerNorm { gamma, .. }, OpCache::LayerNorm(c)) => {
            let dy = dy.expect("non-sink ops receive a gradient");
            let (dx, dgamma, dbeta) = ops::layernorm_bwd(c, gamma, dy);
            (
                vec![dx],
                OpParams::LayerNorm {
                    gamma: dgamma,
                    beta: dbeta,
                },
            )
        }
        (OpKind::Activation(Nonlinearity::Relu), _, OpCache::Input(x)) => {
            let dy = dy.expect("non-sink ops receive a gradient");
            (vec![ops::relu_bwd(x, dy)], OpParams::None)
        }
        (OpKind::Activation(Nonlinearity::Gelu), _, OpCache::Input(x)) => {
            let dy = dy.expect("non-sink ops receive a gradient");
            (vec![ops::gelu_bwd(x, dy)], OpParams::None)
        }
        (
            OpKind::EmbeddingBag { entries, dim, bag },
            OpParams::Embedding { .. },
            OpCache::Bag(indices),
        ) => {
            let dy = dy.expect("non-sink ops receive a gradient");
            let batch = indices.len() / bag;
            let dtable = ops::embedding_bag_bwd(dy, indices, *entries, *dim, batch, *bag);
            // The integer index input receives no gradient.
            let dx = Tensor::zeros(vec![batch, *bag]);
            (vec![dx], OpParams::Embedding { table: dtable })
        }
        (OpKind::Concat, _, OpCache::Concat(cols)) => {
            let dy = dy.expect("non-sink ops receive a gradient");
            (ops::concat_bwd(dy, cols), OpParams::None)
        }
        (OpKind::FeatureInteraction { features, dim }, _, OpCache::Input(x)) => {
            let dy = dy.expect("non-sink ops receive a gradient");
            (
                vec![ops::interaction_bwd(x, dy, *features, *dim)],
                OpParams::None,
            )
        }
        (OpKind::Loss, _, OpCache::Input(x)) => {
            debug_assert!(dy.is_none(), "the Loss sink seeds its own gradient");
            (vec![ops::l2_loss_bwd(x, mini_batch as f32)], OpParams::None)
        }
        (OpKind::Add, _, OpCache::Arity(n)) => {
            let dy = dy.expect("non-sink ops receive a gradient");
            (vec![dy.clone(); *n], OpParams::None)
        }
        (kind, _, cache) => panic!("op/cache mismatch: {kind:?} with {cache:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_ir::zoo::{self, MmtConfig};

    #[test]
    fn init_is_deterministic_per_seed() {
        let model = zoo::mmt(&MmtConfig::tiny());
        let a = ModelParams::init(model.graph(), 1);
        let b = ModelParams::init(model.graph(), 1);
        let c = ModelParams::init(model.graph(), 2);
        assert_eq!(a.max_abs_diff(&b), 0.0);
        assert!(a.max_abs_diff(&c) > 0.0);
    }

    #[test]
    fn sgd_moves_towards_negative_gradient() {
        let model = zoo::mlp_chain(1, 4);
        let mut params = ModelParams::init(model.graph(), 7);
        let fc = gp_ir::OpId(1);
        let mut grads = params.zeros_like();
        if let OpParams::Linear { w, .. } = grads.op_mut(fc) {
            w.data_mut()[0] = 1.0;
        }
        let before = match params.op(fc) {
            OpParams::Linear { w, .. } => w.data()[0],
            _ => unreachable!(),
        };
        params.sgd_step(&grads, 0.5);
        let after = match params.op(fc) {
            OpParams::Linear { w, .. } => w.data()[0],
            _ => unreachable!(),
        };
        assert!((before - after - 0.5).abs() < 1e-6);
    }

    #[test]
    fn accumulate_adds() {
        let model = zoo::mlp_chain(1, 4);
        let params = ModelParams::init(model.graph(), 7);
        let mut a = params.zeros_like();
        let mut b = params.zeros_like();
        if let OpParams::Linear { w, .. } = b.op_mut(gp_ir::OpId(1)) {
            w.data_mut()[0] = 2.0;
        }
        a.accumulate(&b);
        a.accumulate(&b);
        if let OpParams::Linear { w, .. } = a.op(gp_ir::OpId(1)) {
            assert_eq!(w.data()[0], 4.0);
        }
    }
}
