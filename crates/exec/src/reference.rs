//! Single-device reference executor: full-batch forward/backward on one
//! thread, used as ground truth for the distributed runtime's
//! gradient-equivalence tests.

use crate::module::{op_backward, op_forward, ModelParams, OpCache};
use gp_ir::{Graph, OpId, OpKind};
use gp_tensor::Tensor;
use std::collections::HashMap;

/// Runs one full-batch forward/backward pass, returning the loss and the
/// weight gradients.
///
/// # Panics
///
/// Panics if `batch` misses data for an `Input` operator.
pub fn reference_step(
    graph: &Graph,
    params: &ModelParams,
    batch: &HashMap<OpId, Tensor>,
    mini_batch: u64,
) -> (f32, ModelParams) {
    let order = graph.topo_order();
    let mut outs: HashMap<OpId, Tensor> = HashMap::new();
    let mut caches: HashMap<OpId, OpCache> = HashMap::new();
    let mut loss = 0.0f32;
    for &op in &order {
        let node = graph.node(op);
        if matches!(node.kind, OpKind::Input) {
            outs.insert(op, batch[&op].clone());
            caches.insert(op, OpCache::None);
            continue;
        }
        let inputs: Vec<&Tensor> = graph.preds(op).iter().map(|p| &outs[p]).collect();
        let (y, cache) = op_forward(node, params.op(op), &inputs, mini_batch);
        if matches!(node.kind, OpKind::Loss) {
            loss += y.data()[0];
        }
        outs.insert(op, y);
        caches.insert(op, cache);
    }
    let mut grads = params.zeros_like();
    let mut dy: HashMap<OpId, Tensor> = HashMap::new();
    for &op in order.iter().rev() {
        let node = graph.node(op);
        if matches!(node.kind, OpKind::Input) {
            continue;
        }
        let is_loss = matches!(node.kind, OpKind::Loss);
        let grad_in = dy.remove(&op);
        assert!(
            grad_in.is_some() || is_loss,
            "operator {op} received no gradient"
        );
        let (dinputs, gparams) = op_backward(
            node,
            params.op(op),
            &caches[&op],
            if is_loss { None } else { grad_in.as_ref() },
            mini_batch,
        );
        grads.op_mut(op).accumulate(&gparams);
        for (&pred, dx) in graph.preds(op).iter().zip(dinputs) {
            match dy.get_mut(&pred) {
                Some(acc) => acc.axpy(1.0, &dx.reshape(acc.shape().to_vec())),
                None => {
                    dy.insert(pred, dx);
                }
            }
        }
    }
    (loss, grads)
}

/// Runs `steps` SGD iterations on a single device, returning the loss after
/// each step (for convergence tests).
pub fn reference_train(
    graph: &Graph,
    params: &mut ModelParams,
    batch: &HashMap<OpId, Tensor>,
    mini_batch: u64,
    lr: f32,
    steps: usize,
) -> Vec<f32> {
    let mut losses = Vec::with_capacity(steps);
    for _ in 0..steps {
        let (loss, grads) = reference_step(graph, params, batch, mini_batch);
        params.sgd_step(&grads, lr);
        losses.push(loss);
    }
    losses
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::synth_batch;
    use gp_ir::zoo::{self, CandleUnoConfig, DlrmConfig, MmtConfig};

    #[test]
    fn loss_decreases_on_every_zoo_model() {
        for (name, model) in [
            ("mlp", zoo::mlp_chain(2, 8)),
            ("mmt", zoo::mmt(&MmtConfig::tiny())),
            ("dlrm", zoo::dlrm(&DlrmConfig::tiny())),
            ("candle", zoo::candle_uno(&CandleUnoConfig::tiny())),
        ] {
            let g = model.graph();
            let mut params = ModelParams::init(g, 1);
            let batch = synth_batch(g, 4, 2);
            let losses = reference_train(g, &mut params, &batch, 4, 0.05, 6);
            assert!(
                losses.last().unwrap() < losses.first().unwrap(),
                "{name}: loss did not decrease: {losses:?}"
            );
            assert!(losses.iter().all(|l| l.is_finite()), "{name}: {losses:?}");
        }
    }

    #[test]
    fn gradients_are_deterministic() {
        let model = zoo::mmt(&MmtConfig::tiny());
        let g = model.graph();
        let params = ModelParams::init(g, 1);
        let batch = synth_batch(g, 4, 2);
        let (l1, g1) = reference_step(g, &params, &batch, 4);
        let (l2, g2) = reference_step(g, &params, &batch, 4);
        assert_eq!(l1, l2);
        assert_eq!(g1.max_abs_diff(&g2), 0.0);
    }
}
