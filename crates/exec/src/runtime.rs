//! The threaded distributed-training runtime.
//!
//! One OS thread per stage *replica* plays the role of one GPU: it executes
//! its stage's task order (from `gp-sched`), exchanges activation and
//! gradient chunks with neighbouring stages over crossbeam channels, and
//! accumulates weight gradients. The main thread plays the role of the
//! synchronous optimizer: it sums replica gradients in a fixed order
//! (deterministic results) and applies SGD — preserving exactly the
//! synchronous-1F1B training semantics the paper's runtime guarantees
//! ("the DNN training semantics is preserved, thus statistical convergence
//! issues do not arise", §8).
//!
//! Chunk routing works in global sample coordinates: replica `r` of a stage
//! with `d` replicas owns micro-batches `mb % d == r`; producers ship whole
//! micro-batch chunks to every consumer replica whose rows overlap, and
//! consumers assemble/sum the intersecting rows. This supports per-stage
//! micro-batch sizes out of the box.

use crate::data::slice_batch;
use crate::module::{ModelParams, OpParams};
use crate::stage::StageRunner;
use crossbeam::channel::{unbounded, Receiver, Sender};
use gp_cost::Pass;
use gp_ir::{Graph, OpId};
use gp_obs::Telemetry;
use gp_sched::{PipelineSchedule, StageGraph, StageId};
use gp_tensor::Tensor;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// What one worker thread hands back: its `(stage, replica)` identity, the
/// accumulated parameter gradients, and the local loss contribution.
type ReplicaResult = ((StageId, u32), HashMap<OpId, OpParams>, f32);

/// Errors raised by the threaded runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A worker thread disconnected unexpectedly (a peer panicked).
    ChannelClosed {
        /// The stage whose worker observed the hang-up.
        stage: StageId,
    },
    /// A worker thread panicked.
    WorkerPanicked,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::ChannelClosed { stage } => {
                write!(f, "worker of stage {stage} lost its peers")
            }
            ExecError::WorkerPanicked => write!(f, "a runtime worker panicked"),
        }
    }
}

impl std::error::Error for ExecError {}

/// One completed task, recorded in the execution trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The stage that ran the task.
    pub stage: StageId,
    /// Replica index within the stage.
    pub replica: u32,
    /// Micro-batch index.
    pub mb: u32,
    /// Forward or backward.
    pub pass: Pass,
}

/// Result of one distributed training iteration.
#[derive(Debug, Clone)]
pub struct IterationResult {
    /// Training loss of the iteration (summed over micro-batches).
    pub loss: f32,
    /// Completion order of all tasks (for schedule-conformance tests).
    pub trace: Vec<TraceEvent>,
}

#[derive(Debug, Clone)]
struct ChunkMsg {
    fwd: bool,
    op: OpId,
    from_stage: StageId,
    row_start: usize,
    data: Tensor,
}

type Buffers = HashMap<OpId, Vec<ChunkMsg>>;

/// Copies the rows of `chunks` intersecting `[lo, hi)` into an accumulator
/// of shape `[hi-lo, per_sample]`, adding when `sum` (gradients) and
/// overwriting when not (activations). Returns covered row count
/// (with multiplicity).
fn assemble(
    chunks: &[ChunkMsg],
    lo: usize,
    hi: usize,
    per_sample: usize,
    sum: bool,
) -> (Tensor, usize) {
    let mut out = Tensor::zeros(vec![hi - lo, per_sample]);
    let mut covered = 0usize;
    for c in chunks {
        let c_rows = c.data.rows_for(per_sample);
        let s = c.row_start.max(lo);
        let e = (c.row_start + c_rows).min(hi);
        if s >= e {
            continue;
        }
        covered += e - s;
        let piece = c
            .data
            .slice_rows(per_sample, s - c.row_start, e - c.row_start);
        if sum {
            out.add_rows(per_sample, s - lo, &piece);
        } else {
            // Overwrite: producer chunks are disjoint.
            out.add_rows(per_sample, s - lo, &piece);
        }
    }
    (out, covered)
}

struct Worker<'a> {
    graph: &'a Graph,
    sg: &'a StageGraph,
    stage: StageId,
    replica: u32,
    rx: Receiver<ChunkMsg>,
    senders: Arc<HashMap<(StageId, u32), Sender<ChunkMsg>>>,
    batch: Arc<HashMap<OpId, Tensor>>,
    trace: Arc<Mutex<Vec<TraceEvent>>>,
    /// External producer ops feeding this stage (op, producer stage).
    ext_inputs: Vec<(OpId, StageId)>,
    /// This stage's ops with external consumers (op, consumer stages).
    ext_outputs: Vec<(OpId, Vec<StageId>)>,
    fwd_buf: Buffers,
    bwd_buf: Buffers,
}

impl<'a> Worker<'a> {
    fn run(
        mut self,
        runner: &mut StageRunner<'a>,
        schedule: &PipelineSchedule,
    ) -> Result<(), ExecError> {
        let stage = self.sg.stage(self.stage);
        let d = stage.dp_degree() as u32;
        let b = stage.micro_batch as usize;
        let tasks: Vec<_> = schedule
            .stage(self.stage)
            .tasks
            .iter()
            .filter(|t| t.mb % d == self.replica)
            .copied()
            .collect();
        for task in tasks {
            let (lo, hi) = (task.mb as usize * b, (task.mb as usize + 1) * b);
            match task.pass {
                Pass::Forward => {
                    let mut external =
                        slice_batch(self.graph, &self.stage_inputs_from_batch(), lo, hi);
                    self.collect_forward_inputs(lo, hi, &mut external)?;
                    runner.forward(task.mb, &external);
                    self.ship_forward_outputs(runner, task.mb, lo, hi);
                }
                Pass::Backward => {
                    let ext_grads = self.collect_backward_grads(lo, hi)?;
                    let upstream = runner.backward(task.mb, &ext_grads);
                    self.ship_backward_grads(&upstream, lo);
                }
            }
            self.trace.lock().push(TraceEvent {
                stage: self.stage,
                replica: self.replica,
                mb: task.mb,
                pass: task.pass,
            });
        }
        Ok(())
    }

    /// The subset of the global batch feeding `Input` ops of this stage.
    fn stage_inputs_from_batch(&self) -> HashMap<OpId, Tensor> {
        let stage = self.sg.stage(self.stage);
        stage
            .ops
            .iter()
            .filter_map(|op| self.batch.get(op).map(|t| (*op, t.clone())))
            .collect()
    }

    fn recv_into_buffers(&mut self) -> Result<(), ExecError> {
        match self.rx.recv() {
            Ok(msg) => {
                let buf = if msg.fwd {
                    &mut self.fwd_buf
                } else {
                    &mut self.bwd_buf
                };
                buf.entry(msg.op).or_default().push(msg);
                Ok(())
            }
            Err(_) => Err(ExecError::ChannelClosed { stage: self.stage }),
        }
    }

    fn collect_forward_inputs(
        &mut self,
        lo: usize,
        hi: usize,
        external: &mut HashMap<OpId, Tensor>,
    ) -> Result<(), ExecError> {
        let needs: Vec<OpId> = self.ext_inputs.iter().map(|&(op, _)| op).collect();
        for op in needs {
            let per_sample = self.graph.node(op).out_shape.numel();
            loop {
                let chunks = self.fwd_buf.get(&op).map(Vec::as_slice).unwrap_or(&[]);
                let (tensor, covered) = assemble(chunks, lo, hi, per_sample, false);
                if covered >= hi - lo {
                    let mut dims = vec![hi - lo];
                    dims.extend_from_slice(self.graph.node(op).out_shape.dims());
                    external.insert(op, tensor.reshape(dims));
                    break;
                }
                self.recv_into_buffers()?;
            }
        }
        Ok(())
    }

    fn ship_forward_outputs(&self, runner: &StageRunner<'_>, mb: u32, lo: usize, hi: usize) {
        for (op, consumers) in &self.ext_outputs {
            let chunk = runner.output(mb, *op).clone();
            for &cons in consumers {
                for replica in self.target_replicas(cons, lo, hi) {
                    let tx = &self.senders[&(cons, replica)];
                    let _ = tx.send(ChunkMsg {
                        fwd: true,
                        op: *op,
                        from_stage: self.stage,
                        row_start: lo,
                        data: chunk.clone(),
                    });
                }
            }
        }
    }

    fn collect_backward_grads(
        &mut self,
        lo: usize,
        hi: usize,
    ) -> Result<HashMap<OpId, Tensor>, ExecError> {
        let mut out = HashMap::new();
        let needs: Vec<(OpId, Vec<StageId>)> = self.ext_outputs.clone();
        for (op, consumers) in needs {
            let per_sample = self.graph.node(op).out_shape.numel();
            loop {
                let chunks = self.bwd_buf.get(&op).map(Vec::as_slice).unwrap_or(&[]);
                // Each consuming stage must cover [lo, hi) exactly once.
                let mut complete = true;
                for &cons in &consumers {
                    let covered: usize = chunks
                        .iter()
                        .filter(|c| c.from_stage == cons)
                        .map(|c| {
                            let rows = c.data.rows_for(per_sample);
                            let s = c.row_start.max(lo);
                            let e = (c.row_start + rows).min(hi);
                            e.saturating_sub(s)
                        })
                        .sum();
                    if covered < hi - lo {
                        complete = false;
                        break;
                    }
                }
                if complete {
                    let (tensor, _) = assemble(chunks, lo, hi, per_sample, true);
                    out.insert(op, tensor);
                    break;
                }
                self.recv_into_buffers()?;
            }
        }
        Ok(out)
    }

    fn ship_backward_grads(&self, upstream: &HashMap<OpId, Tensor>, lo: usize) {
        for (&op, grad) in upstream {
            let producer = self.sg.stage_of(op);
            let rows = grad.rows_for(self.graph.node(op).out_shape.numel());
            for replica in self.target_replicas(producer, lo, lo + rows) {
                let tx = &self.senders[&(producer, replica)];
                let _ = tx.send(ChunkMsg {
                    fwd: false,
                    op,
                    from_stage: self.stage,
                    row_start: lo,
                    data: grad.clone(),
                });
            }
        }
    }

    /// Replicas of `stage` owning micro-batches overlapping rows `[lo, hi)`.
    fn target_replicas(&self, stage: StageId, lo: usize, hi: usize) -> Vec<u32> {
        let s = self.sg.stage(stage);
        let b = s.micro_batch as usize;
        let d = s.dp_degree() as u32;
        let mb_lo = lo / b;
        let mb_hi = hi.div_ceil(b);
        let mut replicas: Vec<u32> = (mb_lo..mb_hi).map(|mb| mb as u32 % d).collect();
        replicas.sort_unstable();
        replicas.dedup();
        replicas
    }
}

/// Runs one distributed training iteration of `plan` with real tensor math,
/// applying a synchronous SGD update to `params`.
///
/// # Errors
///
/// Returns an [`ExecError`] if a worker thread fails.
pub fn train_iteration(
    graph: &Graph,
    sg: &StageGraph,
    schedule: &PipelineSchedule,
    params: &mut ModelParams,
    batch: &HashMap<OpId, Tensor>,
    lr: f32,
) -> Result<IterationResult, ExecError> {
    train_iteration_traced(
        graph,
        sg,
        schedule,
        params,
        batch,
        lr,
        &Telemetry::disabled(),
    )
}

/// [`train_iteration`], emitting telemetry: an `exec.iteration` span, one
/// `exec.replica` span per stage-replica worker thread (parented under
/// the iteration span explicitly, since workers run on their own
/// threads), and per-stage wall-time histograms
/// (`exec.stage<N>.wall_ns`, one sample per replica per iteration).
///
/// Telemetry is write-only: losses, gradients, and the task trace are
/// byte-identical with telemetry enabled or disabled.
#[allow(clippy::too_many_arguments)]
pub fn train_iteration_traced(
    graph: &Graph,
    sg: &StageGraph,
    schedule: &PipelineSchedule,
    params: &mut ModelParams,
    batch: &HashMap<OpId, Tensor>,
    lr: f32,
    telemetry: &Telemetry,
) -> Result<IterationResult, ExecError> {
    let iteration_span = telemetry.span("exec.iteration");
    let iteration_id = iteration_span.id();
    // Replica roster and channels.
    let mut replicas: Vec<(StageId, u32)> = Vec::new();
    for s in sg.stages() {
        for r in 0..s.dp_degree() as u32 {
            replicas.push((s.id, r));
        }
    }
    let mut senders: HashMap<(StageId, u32), Sender<ChunkMsg>> = HashMap::new();
    let mut receivers: HashMap<(StageId, u32), Receiver<ChunkMsg>> = HashMap::new();
    for &(s, r) in &replicas {
        let (tx, rx) = unbounded();
        senders.insert((s, r), tx);
        receivers.insert((s, r), rx);
    }
    let senders = Arc::new(senders);
    let batch = Arc::new(batch.clone());
    let trace = Arc::new(Mutex::new(Vec::new()));

    // Stage-boundary maps.
    let mut in_stage_of: Vec<StageId> = Vec::new();
    for node in graph.nodes() {
        in_stage_of.push(sg.stage_of(node.id));
    }
    let ext_inputs_of = |stage: StageId| -> Vec<(OpId, StageId)> {
        let mut v: Vec<(OpId, StageId)> = Vec::new();
        for op in &sg.stage(stage).ops {
            for &p in graph.preds(*op) {
                let ps = in_stage_of[p.index()];
                if ps != stage && !v.contains(&(p, ps)) {
                    v.push((p, ps));
                }
            }
        }
        v.sort();
        v
    };
    let ext_outputs_of = |stage: StageId| -> Vec<(OpId, Vec<StageId>)> {
        let mut map: HashMap<OpId, Vec<StageId>> = HashMap::new();
        for op in &sg.stage(stage).ops {
            for &succ in graph.succs(*op) {
                let ss = in_stage_of[succ.index()];
                if ss != stage {
                    let list = map.entry(*op).or_default();
                    if !list.contains(&ss) {
                        list.push(ss);
                    }
                }
            }
        }
        let mut v: Vec<(OpId, Vec<StageId>)> = map.into_iter().collect();
        v.sort_by_key(|(op, _)| *op);
        v
    };

    let mut results: Vec<ReplicaResult> = Vec::new();
    let outcome: Result<(), ExecError> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for &(stage, replica) in &replicas {
            let rx = receivers
                .remove(&(stage, replica))
                .expect("receiver exists");
            let worker = Worker {
                graph,
                sg,
                stage,
                replica,
                rx,
                senders: Arc::clone(&senders),
                batch: Arc::clone(&batch),
                trace: Arc::clone(&trace),
                ext_inputs: ext_inputs_of(stage),
                ext_outputs: ext_outputs_of(stage),
                fwd_buf: HashMap::new(),
                bwd_buf: HashMap::new(),
            };
            let params_ref: &ModelParams = params;
            let worker_tele = telemetry.clone();
            let handle = scope.spawn(move || {
                let _replica_span =
                    worker_tele.span_under_with("exec.replica", replica as u64, iteration_id);
                let start_ns = worker_tele.now_nanos();
                let mut runner =
                    StageRunner::new(graph, &sg.stage(stage).ops, params_ref, sg.mini_batch());
                worker.run(&mut runner, schedule)?;
                if let Some(hist) =
                    worker_tele.histogram(&format!("exec.stage{}.wall_ns", stage.index()))
                {
                    hist.record(worker_tele.now_nanos().saturating_sub(start_ns));
                }
                let grads = runner.grads().clone();
                Ok::<_, ExecError>(((stage, replica), grads, runner.loss()))
            });
            handles.push(handle);
        }
        for handle in handles {
            match handle.join() {
                Ok(Ok(res)) => results.push(res),
                Ok(Err(e)) => return Err(e),
                Err(_) => return Err(ExecError::WorkerPanicked),
            }
        }
        Ok(())
    });
    outcome?;

    // Deterministic synchronous update: sum replica gradients in roster
    // order (the data-parallel allreduce), then step.
    results.sort_by_key(|(key, _, _)| *key);
    let mut grads = params.zeros_like();
    let mut loss = 0.0f32;
    for (_, replica_grads, partial_loss) in &results {
        for (&op, g) in replica_grads {
            grads.op_mut(op).accumulate(g);
        }
        loss += partial_loss;
    }
    params.sgd_step(&grads, lr);
    let trace = Arc::try_unwrap(trace)
        .expect("all workers joined")
        .into_inner();
    Ok(IterationResult { loss, trace })
}

/// Runs `steps` distributed training iterations on a fixed batch, returning
/// the per-step losses.
///
/// # Errors
///
/// Propagates worker failures from [`train_iteration`].
pub fn train(
    graph: &Graph,
    sg: &StageGraph,
    schedule: &PipelineSchedule,
    params: &mut ModelParams,
    batch: &HashMap<OpId, Tensor>,
    lr: f32,
    steps: usize,
) -> Result<Vec<f32>, ExecError> {
    train_traced(
        graph,
        sg,
        schedule,
        params,
        batch,
        lr,
        steps,
        &Telemetry::disabled(),
    )
}

/// [`train`], emitting one `exec.step` span per iteration plus everything
/// [`train_iteration_traced`] records. Telemetry is write-only; the
/// returned losses are identical with it enabled or disabled.
///
/// # Errors
///
/// Propagates worker failures from [`train_iteration`].
#[allow(clippy::too_many_arguments)]
pub fn train_traced(
    graph: &Graph,
    sg: &StageGraph,
    schedule: &PipelineSchedule,
    params: &mut ModelParams,
    batch: &HashMap<OpId, Tensor>,
    lr: f32,
    steps: usize,
    telemetry: &Telemetry,
) -> Result<Vec<f32>, ExecError> {
    let mut losses = Vec::with_capacity(steps);
    for step in 0..steps {
        let _step_span = telemetry.span_with("exec.step", step as u64);
        let result = train_iteration_traced(graph, sg, schedule, params, batch, lr, telemetry)?;
        losses.push(result.loss);
    }
    Ok(losses)
}
