//! Stage-local execution: forward/backward over a convex subgraph with
//! per-micro-batch activation stashes.

use crate::module::{op_backward, op_forward, ModelParams, OpCache, OpParams};
use gp_ir::{Graph, OpId, OpKind};
use gp_tensor::Tensor;
use std::collections::HashMap;

/// Per-micro-batch forward state retained until the backward pass.
struct MicroState {
    outs: HashMap<OpId, Tensor>,
    caches: HashMap<OpId, OpCache>,
}

/// Executes one pipeline stage's operators for individual micro-batches,
/// holding parameters, gradients, and in-flight activation stashes.
pub struct StageRunner<'g> {
    graph: &'g Graph,
    ops: Vec<OpId>,
    in_stage: Vec<bool>,
    params: HashMap<OpId, OpParams>,
    grads: HashMap<OpId, OpParams>,
    mini_batch: u64,
    state: HashMap<u32, MicroState>,
    loss_partial: f32,
}

impl<'g> StageRunner<'g> {
    /// Creates a runner for `ops`, cloning their parameters from the
    /// authoritative store.
    pub fn new(graph: &'g Graph, ops: &[OpId], params: &ModelParams, mini_batch: u64) -> Self {
        let mut in_stage = vec![false; graph.len()];
        for &op in ops {
            in_stage[op.index()] = true;
        }
        let stage_params: HashMap<OpId, OpParams> =
            ops.iter().map(|&op| (op, params.op(op).clone())).collect();
        let grads = stage_params
            .iter()
            .map(|(&op, p)| (op, p.zeros_like()))
            .collect();
        StageRunner {
            graph,
            ops: ops.to_vec(),
            in_stage,
            params: stage_params,
            grads,
            mini_batch,
            state: HashMap::new(),
            loss_partial: 0.0,
        }
    }

    /// Number of micro-batches currently stashed (in flight).
    pub fn in_flight(&self) -> usize {
        self.state.len()
    }

    /// Partial loss accumulated by `Loss` operators in this stage.
    pub fn loss(&self) -> f32 {
        self.loss_partial
    }

    /// Accumulated weight gradients.
    pub fn grads(&self) -> &HashMap<OpId, OpParams> {
        &self.grads
    }

    /// Runs the forward pass of micro-batch `mb`.
    ///
    /// `external` maps producer operator ids (both `Input` operators of this
    /// stage and cross-stage producers) to their activations for this
    /// micro-batch's rows.
    ///
    /// # Panics
    ///
    /// Panics if a required external input is missing — the runtime
    /// assembles them before calling.
    pub fn forward(&mut self, mb: u32, external: &HashMap<OpId, Tensor>) {
        let mut outs: HashMap<OpId, Tensor> = HashMap::new();
        let mut caches: HashMap<OpId, OpCache> = HashMap::new();
        for &op in &self.ops {
            let node = self.graph.node(op);
            if matches!(node.kind, OpKind::Input) {
                let data = external
                    .get(&op)
                    .unwrap_or_else(|| panic!("missing input data for {op}"))
                    .clone();
                outs.insert(op, data);
                caches.insert(op, OpCache::None);
                continue;
            }
            let inputs: Vec<&Tensor> = self
                .graph
                .preds(op)
                .iter()
                .map(|p| {
                    outs.get(p).unwrap_or_else(|| {
                        external
                            .get(p)
                            .unwrap_or_else(|| panic!("missing external activation {p} -> {op}"))
                    })
                })
                .collect();
            let (y, cache) = op_forward(node, &self.params[&op], &inputs, self.mini_batch);
            if matches!(node.kind, OpKind::Loss) {
                self.loss_partial += y.data()[0];
            }
            outs.insert(op, y);
            caches.insert(op, cache);
        }
        // Keep cross-stage inputs for the backward pass too.
        for (&op, tensor) in external {
            outs.entry(op).or_insert_with(|| tensor.clone());
        }
        self.state.insert(mb, MicroState { outs, caches });
    }

    /// The stashed output of an operator for a given in-flight micro-batch.
    ///
    /// # Panics
    ///
    /// Panics if the micro-batch is not in flight.
    pub fn output(&self, mb: u32, op: OpId) -> &Tensor {
        &self.state[&mb].outs[&op]
    }

    /// Runs the backward pass of micro-batch `mb`, releasing its stash.
    ///
    /// `external_grads` maps this stage's operator ids to gradients arriving
    /// from consumer stages. Returns gradients for cross-stage *producer*
    /// operators (what must be shipped upstream).
    ///
    /// # Panics
    ///
    /// Panics if `mb` is not in flight.
    pub fn backward(
        &mut self,
        mb: u32,
        external_grads: &HashMap<OpId, Tensor>,
    ) -> HashMap<OpId, Tensor> {
        let state = self
            .state
            .remove(&mb)
            .unwrap_or_else(|| panic!("micro-batch {mb} is not in flight"));
        let mut dy: HashMap<OpId, Tensor> = external_grads.clone();
        let mut upstream: HashMap<OpId, Tensor> = HashMap::new();
        for &op in self.ops.iter().rev() {
            let node = self.graph.node(op);
            if matches!(node.kind, OpKind::Input) {
                continue;
            }
            let grad_in = dy.remove(&op);
            let is_loss = matches!(node.kind, OpKind::Loss);
            assert!(
                grad_in.is_some() || is_loss,
                "operator {op} received no gradient"
            );
            let (dinputs, gparams) = op_backward(
                node,
                &self.params[&op],
                &state.caches[&op],
                if is_loss { None } else { grad_in.as_ref() },
                self.mini_batch,
            );
            self.spread(op, dinputs, &mut dy, &mut upstream);
            self.grads
                .get_mut(&op)
                .expect("stage op")
                .accumulate(&gparams);
        }
        upstream
    }

    fn spread(
        &self,
        op: OpId,
        dinputs: Vec<Tensor>,
        dy: &mut HashMap<OpId, Tensor>,
        upstream: &mut HashMap<OpId, Tensor>,
    ) {
        fn add_or_insert(map: &mut HashMap<OpId, Tensor>, pred: OpId, dx: Tensor) {
            match map.get_mut(&pred) {
                Some(acc) => acc.axpy(1.0, &dx.reshape(acc.shape().to_vec())),
                None => {
                    map.insert(pred, dx);
                }
            }
        }
        for (&pred, dx) in self.graph.preds(op).iter().zip(dinputs) {
            if self.in_stage[pred.index()] {
                add_or_insert(dy, pred, dx);
            } else {
                add_or_insert(upstream, pred, dx);
            }
        }
    }

    /// Synchronizes this runner's parameters from the authoritative store
    /// (used between iterations).
    pub fn refresh_params(&mut self, params: &ModelParams) {
        for (&op, p) in self.params.iter_mut() {
            *p = params.op(op).clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::synth_batch;
    use gp_ir::zoo;

    #[test]
    fn whole_graph_as_one_stage_runs() {
        let model = zoo::mlp_chain(2, 8);
        let g = model.graph();
        let params = ModelParams::init(g, 3);
        let ops: Vec<OpId> = g.nodes().map(|n| n.id).collect();
        let mut runner = StageRunner::new(g, &ops, &params, 4);
        let batch = synth_batch(g, 4, 9);
        runner.forward(0, &batch);
        assert_eq!(runner.in_flight(), 1);
        assert!(runner.loss() > 0.0);
        let upstream = runner.backward(0, &HashMap::new());
        assert!(upstream.is_empty(), "no external producers");
        assert_eq!(runner.in_flight(), 0);
    }

    #[test]
    #[should_panic(expected = "not in flight")]
    fn backward_without_forward_panics() {
        let model = zoo::mlp_chain(1, 4);
        let g = model.graph();
        let params = ModelParams::init(g, 3);
        let ops: Vec<OpId> = g.nodes().map(|n| n.id).collect();
        let mut runner = StageRunner::new(g, &ops, &params, 4);
        let _ = runner.backward(0, &HashMap::new());
    }
}
