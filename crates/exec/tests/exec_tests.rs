//! Integration tests for the threaded runtime: the pipelined, distributed
//! execution must be *semantically identical* to single-device training.

use gp_cluster::{Cluster, DeviceRange};
use gp_cost::Pass;
use gp_exec::{reference_step, synth_batch, train, train_iteration, ModelParams};
use gp_ir::zoo::{self, CandleUnoConfig, DlrmConfig, MmtConfig};
use gp_ir::{OpId, SpModel};
use gp_partition::{GraphPipePlanner, Planner};
use gp_sched::{assign_in_flight, schedule_tasks, Stage, StageGraph, StageId};

/// Builds a hand-rolled stage graph: `cuts` are op-count prefixes, one
/// device per stage unless `dp` widens a stage.
fn manual_stage_graph(
    model: &SpModel,
    cuts: &[usize],
    devices_per_stage: &[u32],
    micro_batch: u64,
    mini_batch: u64,
) -> (Cluster, StageGraph) {
    let ops = model.linearize();
    let total: u32 = devices_per_stage.iter().sum();
    let cluster = Cluster::tiny_test(total as usize);
    let mut stages = Vec::new();
    let mut prev = 0usize;
    let mut dev = 0u32;
    for (i, (&cut, &d)) in cuts.iter().zip(devices_per_stage).enumerate() {
        stages.push(Stage {
            id: StageId(i as u32),
            ops: ops[prev..cut].to_vec(),
            devices: DeviceRange::new(dev, d),
            micro_batch,
            kfkb: 1,
        });
        prev = cut;
        dev += d;
    }
    let sg = StageGraph::new(model.graph(), &cluster, stages, mini_batch).unwrap();
    (cluster, sg)
}

/// Gradient equivalence: pipelined distributed execution == full-batch
/// single-device execution (up to f32 summation-order noise).
fn assert_equivalent(model: &SpModel, sg: &StageGraph, mini_batch: u64) {
    let g = model.graph();
    let schedule = schedule_tasks(sg, &assign_in_flight(sg));
    let batch = synth_batch(g, mini_batch, 99);
    let init = ModelParams::init(g, 5);

    let (ref_loss, ref_grads) = reference_step(g, &init, &batch, mini_batch);

    let mut dist_params = init.clone();
    let result = train_iteration(g, sg, &schedule, &mut dist_params, &batch, 0.0).unwrap();
    assert!(
        (result.loss - ref_loss).abs() / ref_loss.max(1e-6) < 1e-3,
        "loss mismatch: dist {} vs ref {ref_loss}",
        result.loss
    );
    // With lr = 0 parameters are unchanged; compare the gradient step with
    // lr = 1 instead.
    let mut stepped_ref = init.clone();
    stepped_ref.sgd_step(&ref_grads, 1.0);
    let mut stepped_dist = init.clone();
    let _ = train_iteration(g, sg, &schedule, &mut stepped_dist, &batch, 1.0).unwrap();
    let diff = stepped_dist.max_abs_diff(&stepped_ref);
    assert!(diff < 5e-4, "gradient divergence {diff}");
}

#[test]
fn two_stage_chain_is_gradient_equivalent() {
    let model = zoo::mlp_chain(4, 8);
    let n = model.graph().len();
    let (_, sg) = manual_stage_graph(&model, &[n / 2, n], &[1, 1], 2, 8);
    assert_equivalent(&model, &sg, 8);
}

#[test]
fn branchy_model_with_parallel_stages_is_gradient_equivalent() {
    let model = zoo::candle_uno(&CandleUnoConfig::tiny());
    // Branch 0 ops 0..5, branch 1 ops 5..10, merge 10..; stages run the
    // branches concurrently on separate threads.
    let (_, sg) = manual_stage_graph(&model, &[5, 10, model.graph().len()], &[1, 1, 1], 2, 8);
    assert!(sg.pipeline_depth() < sg.len());
    assert_equivalent(&model, &sg, 8);
}

#[test]
fn data_parallel_replicas_are_gradient_equivalent() {
    let model = zoo::mlp_chain(4, 8);
    let n = model.graph().len();
    let (_, sg) = manual_stage_graph(&model, &[n / 2, n], &[2, 2], 2, 8);
    assert_equivalent(&model, &sg, 8);
}

#[test]
fn heterogeneous_micro_batches_are_gradient_equivalent() {
    // Stage 0 runs micro-batches of 2, stage 1 of 4 (Figure 5 situation).
    let model = zoo::mlp_chain(4, 8);
    let ops = model.linearize();
    let n = ops.len();
    let cluster = Cluster::tiny_test(2);
    let stages = vec![
        Stage {
            id: StageId(0),
            ops: ops[..n / 2].to_vec(),
            devices: DeviceRange::new(0, 1),
            micro_batch: 2,
            kfkb: 1,
        },
        Stage {
            id: StageId(1),
            ops: ops[n / 2..].to_vec(),
            devices: DeviceRange::new(1, 1),
            micro_batch: 4,
            kfkb: 1,
        },
    ];
    let sg = StageGraph::new(model.graph(), &cluster, stages, 8).unwrap();
    assert_equivalent(&model, &sg, 8);
}

#[test]
fn mmt_under_planner_strategy_is_gradient_equivalent() {
    let model = zoo::mmt(&MmtConfig::tiny());
    let cluster = Cluster::summit_like(3).with_memory_capacity(1 << 30);
    let plan = GraphPipePlanner::new().plan(&model, &cluster, 8).unwrap();
    assert_equivalent(&model, &plan.stage_graph, 8);
}

#[test]
fn dlrm_under_planner_strategy_is_gradient_equivalent() {
    let model = zoo::dlrm(&DlrmConfig::tiny());
    let cluster = Cluster::summit_like(4).with_memory_capacity(1 << 30);
    let plan = GraphPipePlanner::new().plan(&model, &cluster, 8).unwrap();
    assert_equivalent(&model, &plan.stage_graph, 8);
}

#[test]
fn distributed_training_converges() {
    let model = zoo::candle_uno(&CandleUnoConfig::tiny());
    let g = model.graph();
    let (_, sg) = manual_stage_graph(&model, &[5, 10, g.len()], &[1, 1, 1], 2, 8);
    let schedule = schedule_tasks(&sg, &assign_in_flight(&sg));
    let batch = synth_batch(g, 8, 3);
    let mut params = ModelParams::init(g, 1);
    let losses = train(g, &sg, &schedule, &mut params, &batch, 0.05, 6).unwrap();
    assert!(
        losses.last().unwrap() < losses.first().unwrap(),
        "loss did not decrease: {losses:?}"
    );
}

#[test]
fn execution_trace_follows_the_kfkb_order() {
    let model = zoo::mlp_chain(4, 8);
    let n = model.graph().len();
    let (_, sg) = manual_stage_graph(&model, &[n / 2, n], &[1, 1], 2, 8);
    let schedule = schedule_tasks(&sg, &assign_in_flight(&sg));
    let batch = synth_batch(model.graph(), 8, 3);
    let mut params = ModelParams::init(model.graph(), 1);
    let result = train_iteration(model.graph(), &sg, &schedule, &mut params, &batch, 0.1).unwrap();
    // Per (stage, replica) the trace must equal the replica's slice of the
    // stage's task order.
    for s in sg.stages() {
        for r in 0..s.dp_degree() as u32 {
            let expected: Vec<(u32, Pass)> = schedule
                .stage(s.id)
                .tasks
                .iter()
                .filter(|t| t.mb % s.dp_degree() as u32 == r)
                .map(|t| (t.mb, t.pass))
                .collect();
            let observed: Vec<(u32, Pass)> = result
                .trace
                .iter()
                .filter(|e| e.stage == s.id && e.replica == r)
                .map(|e| (e.mb, e.pass))
                .collect();
            assert_eq!(observed, expected, "stage {} replica {r}", s.id);
        }
    }
}

#[test]
fn per_stage_loss_sums_to_reference() {
    // Loss lives in the last stage only; the runtime must surface it.
    let model = zoo::mlp_chain(2, 8);
    let g = model.graph();
    let n = g.len();
    let (_, sg) = manual_stage_graph(&model, &[n / 2, n], &[1, 1], 4, 8);
    let schedule = schedule_tasks(&sg, &assign_in_flight(&sg));
    let batch = synth_batch(g, 8, 17);
    let params = ModelParams::init(g, 23);
    let (ref_loss, _) = reference_step(g, &params, &batch, 8);
    let mut p = params.clone();
    let result = train_iteration(g, &sg, &schedule, &mut p, &batch, 0.0).unwrap();
    assert!((result.loss - ref_loss).abs() < 1e-4 * ref_loss.max(1.0));
}

#[test]
fn input_ops_consume_batch_rows_in_order() {
    // Two branches with separate inputs: each stage slices its own rows.
    let model = zoo::candle_uno(&CandleUnoConfig::tiny());
    let g = model.graph();
    let (_, sg) = manual_stage_graph(&model, &[5, 10, g.len()], &[1, 1, 1], 4, 8);
    let schedule = schedule_tasks(&sg, &assign_in_flight(&sg));
    let batch = synth_batch(g, 8, 31);
    let mut params = ModelParams::init(g, 3);
    // Smoke: runs to completion with inputs spread across two stages.
    let inputs: Vec<OpId> = g.sources();
    assert_eq!(inputs.len(), 2);
    let result = train_iteration(g, &sg, &schedule, &mut params, &batch, 0.1).unwrap();
    assert!(result.loss.is_finite());
}
