//! Multi-tenant admission control: eval-budget tiers, per-tenant token
//! quotas, and queue-depth shedding.
//!
//! Admission happens *before* fingerprinting. A tenant's class caps the
//! request's [`PlanOptions::eval_budget`] and `beam_width`, which changes
//! the request fingerprint — deliberately, so cache and store entries are
//! scoped to the tier that paid for them: a `Batch` tenant can never be
//! served a plan it did not have the budget to produce, and a `Premium`
//! plan is never downgraded by a cheaper tier's earlier miss.
//!
//! Token quotas bound *concurrency* (in-flight requests per tenant), not
//! rate: a token is taken at submit and returned when the ticket resolves,
//! so one tenant flooding the queue cannot starve the others. Queue-depth
//! shedding bounds the *global* backlog: when the miss queue is longer
//! than the configured maximum, new misses are refused with
//! [`ServeError::Overloaded`](gp_serve::ServeError) rather than queued
//! into a latency cliff. Cache and store hits are never shed — they cost
//! no planner time.

use gp_partition::PlanOptions;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Service tier, ordered cheapest to most capable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum TenantClass {
    /// Throughput tier: smallest search budget, narrow beam.
    Batch,
    /// The default tier: the budget most zoo-scale searches need.
    #[default]
    Standard,
    /// Latency-insensitive quality tier: whatever the request asked for.
    Premium,
}

impl TenantClass {
    /// Stable name for stats and bench output.
    pub fn name(self) -> &'static str {
        match self {
            TenantClass::Batch => "batch",
            TenantClass::Standard => "standard",
            TenantClass::Premium => "premium",
        }
    }

    /// Parses a class name (as accepted by `serve_load --tenants`).
    pub fn parse(text: &str) -> Option<TenantClass> {
        match text {
            "batch" => Some(TenantClass::Batch),
            "standard" => Some(TenantClass::Standard),
            "premium" => Some(TenantClass::Premium),
            _ => None,
        }
    }

    /// Caps `options` to this tier: eval budget and beam width are
    /// clamped down, never raised. `Premium` passes everything through.
    pub fn apply(self, options: &mut PlanOptions) {
        let (budget_cap, beam_cap) = match self {
            TenantClass::Batch => (20_000_000, 4),
            TenantClass::Standard => (80_000_000, 8),
            TenantClass::Premium => return,
        };
        options.eval_budget = options.eval_budget.min(budget_cap);
        options.beam_width = Some(match options.beam_width {
            Some(w) => w.min(beam_cap),
            None => beam_cap,
        });
    }
}

/// One tenant's admission contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSpec {
    /// The tier whose caps apply to this tenant's requests.
    pub class: TenantClass,
    /// Maximum in-flight requests; `None` means unbounded.
    pub tokens: Option<u32>,
}

impl Default for TenantSpec {
    fn default() -> Self {
        TenantSpec {
            class: TenantClass::Standard,
            tokens: None,
        }
    }
}

/// Fleet-wide admission policy.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AdmissionConfig {
    /// The contract for tenants not listed in `tenants`.
    pub default_spec: TenantSpec,
    /// Named tenants with explicit contracts.
    pub tenants: Vec<(String, TenantSpec)>,
    /// Shed new planner work when the miss queue is deeper than this;
    /// `None` disables shedding.
    pub max_queue_depth: Option<usize>,
}

impl AdmissionConfig {
    /// The contract governing `tenant`.
    pub fn spec(&self, tenant: &str) -> &TenantSpec {
        self.tenants
            .iter()
            .find(|(name, _)| name == tenant)
            .map(|(_, spec)| spec)
            .unwrap_or(&self.default_spec)
    }
}

/// Runtime token accounting for all tenants.
///
/// Tokens are concurrency permits: [`AdmissionControl::admit`] takes one
/// and returns a guard; dropping the guard returns the token. Guard-based
/// release means a token can never leak on an error path.
pub struct AdmissionControl {
    config: AdmissionConfig,
    in_flight: Arc<Mutex<BTreeMap<String, u32>>>,
}

/// A held admission token; returns itself to the tenant's pool on drop.
#[derive(Debug)]
pub struct AdmissionToken {
    tenant: Option<String>,
    in_flight: Arc<Mutex<BTreeMap<String, u32>>>,
}

impl Drop for AdmissionToken {
    fn drop(&mut self) {
        if let Some(tenant) = self.tenant.take() {
            let mut held = self.in_flight.lock();
            if let Some(count) = held.get_mut(&tenant) {
                *count -= 1;
                if *count == 0 {
                    held.remove(&tenant);
                }
            }
        }
    }
}

/// Why admission refused a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuotaExceeded {
    /// The tenant that hit its quota.
    pub tenant: String,
    /// In-flight requests the tenant already holds.
    pub in_flight: usize,
}

impl AdmissionControl {
    /// Admission control over `config`.
    pub fn new(config: AdmissionConfig) -> Self {
        AdmissionControl {
            config,
            in_flight: Arc::new(Mutex::new(BTreeMap::new())),
        }
    }

    /// The policy this control enforces.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Rewrites `options` to the tenant's tier and takes an in-flight
    /// token.
    ///
    /// # Errors
    ///
    /// [`QuotaExceeded`] when the tenant is already at its token limit;
    /// `options` is still rewritten (the rewrite is deterministic and the
    /// caller may retry).
    pub fn admit(
        &self,
        tenant: &str,
        options: &mut PlanOptions,
    ) -> Result<AdmissionToken, QuotaExceeded> {
        let spec = self.config.spec(tenant);
        spec.class.apply(options);
        if let Some(limit) = spec.tokens {
            let mut held = self.in_flight.lock();
            let count = held.entry(tenant.to_string()).or_insert(0);
            if *count >= limit {
                return Err(QuotaExceeded {
                    tenant: tenant.to_string(),
                    in_flight: *count as usize,
                });
            }
            *count += 1;
            Ok(AdmissionToken {
                tenant: Some(tenant.to_string()),
                in_flight: Arc::clone(&self.in_flight),
            })
        } else {
            Ok(AdmissionToken {
                tenant: None,
                in_flight: Arc::clone(&self.in_flight),
            })
        }
    }

    /// Tokens currently held by `tenant`.
    pub fn held(&self, tenant: &str) -> usize {
        self.in_flight.lock().get(tenant).copied().unwrap_or(0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_clamp_down_but_never_up() {
        let mut batch = PlanOptions::default();
        TenantClass::Batch.apply(&mut batch);
        assert_eq!(batch.eval_budget, 20_000_000);
        assert_eq!(batch.beam_width, Some(4));

        // A request already below the cap keeps its own budget.
        let mut modest = PlanOptions {
            eval_budget: 1_000,
            beam_width: Some(2),
            ..PlanOptions::default()
        };
        TenantClass::Standard.apply(&mut modest);
        assert_eq!(modest.eval_budget, 1_000);
        assert_eq!(modest.beam_width, Some(2));

        let mut premium = PlanOptions::default();
        let untouched = premium.clone();
        TenantClass::Premium.apply(&mut premium);
        assert_eq!(premium, untouched);
    }

    #[test]
    fn tier_rewrite_scopes_the_fingerprint() {
        use gp_cluster::Cluster;
        use gp_ir::zoo::{self, CandleUnoConfig};
        use gp_serve::PlanRequest;
        use std::sync::Arc;

        let model = Arc::new(zoo::candle_uno(&CandleUnoConfig::tiny()));
        let cluster = Cluster::tiny_test(4);
        let fp = |class: TenantClass| {
            let mut options = PlanOptions::default();
            class.apply(&mut options);
            PlanRequest::new(Arc::clone(&model), cluster.clone(), 32)
                .with_options(options)
                .fingerprint()
        };
        assert_ne!(fp(TenantClass::Batch), fp(TenantClass::Premium));
        assert_ne!(fp(TenantClass::Standard), fp(TenantClass::Premium));
    }

    #[test]
    fn tokens_bound_in_flight_and_release_on_drop() {
        let control = AdmissionControl::new(AdmissionConfig {
            tenants: vec![(
                "acme".into(),
                TenantSpec {
                    class: TenantClass::Standard,
                    tokens: Some(2),
                },
            )],
            ..AdmissionConfig::default()
        });
        let mut options = PlanOptions::default();
        let t1 = control.admit("acme", &mut options).expect("first token");
        let _t2 = control.admit("acme", &mut options).expect("second token");
        let refused = control.admit("acme", &mut options).unwrap_err();
        assert_eq!(refused.tenant, "acme");
        assert_eq!(refused.in_flight, 2);
        assert_eq!(control.held("acme"), 2);

        drop(t1);
        assert_eq!(control.held("acme"), 1);
        let _t3 = control.admit("acme", &mut options).expect("freed token");

        // Unlisted tenants get the (unbounded) default contract.
        for _ in 0..8 {
            let token = control.admit("other", &mut options).expect("unbounded");
            drop(token);
        }
        assert_eq!(control.held("other"), 0);
    }
}
