//! # gp-fleet — distributed plan serving
//!
//! `gp-serve` answers plan requests from one process: a single cache, a
//! single planner pool, callers trusted not to stampede. This crate
//! scales that surface out to a fleet:
//!
//! * [`ShardedPlanCache`] — N independent LRU shards selected by
//!   fingerprint range, so concurrent tenants contend on `1/N` of the
//!   lock surface and one hot key range cannot evict everything else.
//! * [`ArtifactStore`] — a directory of canonical plan artifacts plus a
//!   versioned index; a warm restart decodes instead of replanning, and
//!   a missing or stale index is rebuilt from the artifacts themselves.
//! * [`PlanWorker`] / [`WorkerServer`] — planning as a backend: the same
//!   request/artifact contract served by in-process threads or by remote
//!   hosts over a length-prefixed TCP protocol ([`protocol`]), with
//!   worker death handled by retrying the next worker.
//! * [`AdmissionControl`] — multi-tenant admission: eval-budget tiers,
//!   per-tenant in-flight quotas, and backlog shedding.
//! * [`FleetService`] — the front-end that composes all of the above
//!   behind one `submit(tenant, request) -> ticket` call.
//!
//! ## Determinism contract
//!
//! Every layer preserves one invariant: **the served artifact is a pure
//! function of the admitted request.** Workers strip search-time
//! measurement from their artifacts ([`canonical_artifact`]), the wire
//! codec is lossless in both directions, and store/cache entries are
//! keyed by the same fingerprints `gp-serve` uses — so a plan served
//! remotely, from disk, or from any shard is byte-identical to planning
//! locally. DESIGN.md §"Fleet architecture" gives the full argument.

pub mod admission;
pub mod protocol;
pub mod service;
pub mod shard;
pub mod store;
pub mod worker;

pub use admission::{
    AdmissionConfig, AdmissionControl, AdmissionToken, QuotaExceeded, TenantClass, TenantSpec,
};
pub use protocol::{canonical_artifact, ProtocolError, WireReply};
pub use service::{FleetConfig, FleetService, FleetStats, FleetTicket, Served};
pub use shard::{shard_of, ShardLookup, ShardStats, ShardedPlanCache};
pub use store::ArtifactStore;
pub use worker::{
    plan_locally, LocalWorker, PlanWorker, RemoteWorker, WorkerFailure, WorkerServer,
};

#[cfg(test)]
mod doc_sync {
    //! The crate's documentation contract: the repository docs must
    //! describe the fleet layer this crate actually ships.

    #[test]
    fn design_doc_covers_the_fleet_architecture() {
        let design = include_str!("../../../DESIGN.md");
        for needle in [
            "## Fleet architecture",
            "graphpipe-plan-request",
            "graphpipe-store-index",
            "shard",
            "admission",
        ] {
            assert!(
                design.contains(needle),
                "DESIGN.md lost its fleet coverage: missing `{needle}`"
            );
        }
    }

    #[test]
    fn readme_documents_distributed_serving() {
        let readme = include_str!("../../../README.md");
        for needle in ["Distributed serving", "serve_fleet"] {
            assert!(
                readme.contains(needle),
                "README.md lost its fleet coverage: missing `{needle}`"
            );
        }
    }
}
