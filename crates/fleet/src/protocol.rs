//! The fleet wire protocol: a lossless plan-request codec plus
//! length-prefixed framing over `std::net` TCP streams.
//!
//! # Documents
//!
//! Three JSON document kinds travel over a worker connection, all
//! distinguished by their `format` marker:
//!
//! * **plan request** (`graphpipe-plan-request`, version 1) — everything a
//!   planner needs: the model (operator list + SP tree), the cluster, the
//!   mini-batch, the full search options, the planner choice, and an
//!   optional warm-start hint. The codec is *lossless*: decoding an
//!   encoded request rebuilds a model with identical operator numbering
//!   (`numbering_signature` equal) and an identical request fingerprint,
//!   which is what makes remote planning byte-compatible with local
//!   planning.
//! * **plan artifact** (`graphpipe-plan`) — the success reply; exactly the
//!   `gp-serve` artifact codec bytes ([`canonical_artifact`]), passed
//!   through verbatim so the bytes a remote worker computed are the bytes
//!   the front-end stores, caches, and serves.
//! * **plan error** (`graphpipe-plan-error`, version 1) — the failure
//!   reply, carrying the [`PlanError`] variant losslessly.
//!
//! # Framing
//!
//! Every document is one frame: a 4-byte big-endian byte length followed
//! by the UTF-8 document. Frames above [`MAX_FRAME`] (64 MiB) are
//! rejected before allocation, so a corrupt length prefix cannot balloon
//! memory. One connection carries one request frame and one reply frame;
//! reconnect-per-request keeps worker death visible as a plain transport
//! error.
//!
//! gp-lint: deterministic — this module's outputs feed plan
//! fingerprints or the artifact codec; `cargo xtask lint` scans it for
//! nondeterminism hazards (DESIGN.md §"Determinism lint").

use gp_cluster::{Cluster, DeviceProfile, LinkProfile};
use gp_ir::{GraphBuilder, Nonlinearity, OpId, OpKind, PlanPath, Shape, SpBlock, SpModel};
use gp_partition::{Plan, PlanError, PlanOptions, SearchStats, WarmStart};
use gp_serve::json::{Json, JsonError};
use gp_serve::{artifact, Fingerprint, PlanRequest, ServePlanner};
use std::fmt;
use std::io::{Read, Write};
use std::sync::Arc;

/// The plan-request `format` marker.
pub const REQUEST_FORMAT: &str = "graphpipe-plan-request";

/// The plan-request version this build writes.
pub const REQUEST_VERSION: u64 = 1;

/// The plan-error `format` marker.
pub const ERROR_FORMAT: &str = "graphpipe-plan-error";

/// Largest frame either side will read or write (64 MiB).
pub const MAX_FRAME: usize = 64 << 20;

/// Why a wire document failed to decode.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// The document is not syntactically valid JSON.
    Json(JsonError),
    /// The `format` marker is missing or unknown.
    BadFormat(String),
    /// The document's version is newer than this decoder understands.
    UnsupportedVersion(u64),
    /// A required field is missing or has the wrong type.
    Field(&'static str),
    /// The request parsed but does not rebuild into a valid model
    /// (graph construction or SP validation failed).
    Model(String),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Json(e) => write!(f, "malformed wire document: {e}"),
            ProtocolError::BadFormat(got) => {
                write!(f, "unknown wire document (format marker `{got}`)")
            }
            ProtocolError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "wire document version {v} is newer than supported ({REQUEST_VERSION})"
                )
            }
            ProtocolError::Field(name) => write!(f, "missing or mistyped field `{name}`"),
            ProtocolError::Model(why) => write!(f, "request model invalid: {why}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// The canonical artifact the fleet serves and persists: the `gp-serve`
/// plan codec with the **search stats zeroed**. Search counters and wall
/// clocks are measurement — they vary with warm starts, parallelism, and
/// the machine — while the strategy itself is a pure function of the
/// request. Zeroing them makes the artifact bytes a pure function of the
/// request too, which is the fleet's determinism contract: a remotely
/// planned artifact is byte-identical to a locally planned one.
pub fn canonical_artifact(plan: &Plan, fingerprint: Fingerprint) -> String {
    let mut canonical = plan.clone();
    canonical.stats = SearchStats::default();
    artifact::encode_plan(&canonical, Some(fingerprint))
}

// ---------------------------------------------------------------------------
// Framing.

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// `InvalidInput` when the document exceeds [`MAX_FRAME`]; otherwise
/// propagates the underlying write.
pub fn write_frame(w: &mut impl Write, document: &str) -> std::io::Result<()> {
    let bytes = document.as_bytes();
    if bytes.len() > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", bytes.len()),
        ));
    }
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Reads one length-prefixed frame.
///
/// # Errors
///
/// `InvalidData` for an oversized length prefix or non-UTF-8 payload;
/// otherwise propagates the underlying read (including `UnexpectedEof`
/// when the peer died mid-frame).
pub fn read_frame(r: &mut impl Read) -> std::io::Result<String> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "frame is not UTF-8"))
}

// ---------------------------------------------------------------------------
// Request encoding.

/// Encodes a plan request (plus an optional warm-start hint) as one wire
/// document.
pub fn encode_request(request: &PlanRequest, warm: Option<&WarmStart>) -> String {
    let graph = request.model.graph();
    let ops = graph
        .nodes()
        .map(|node| {
            Json::Obj(vec![
                ("name".into(), Json::Str(node.name.clone())),
                ("kind".into(), encode_kind(&node.kind)),
                (
                    "preds".into(),
                    Json::Arr(
                        graph
                            .preds(node.id)
                            .iter()
                            .map(|p| Json::Int(p.index() as i128))
                            .collect(),
                    ),
                ),
                (
                    "shape".into(),
                    Json::Arr(
                        node.out_shape
                            .dims()
                            .iter()
                            .map(|&d| Json::Int(d as i128))
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let mut model_members = vec![
        (
            "name".to_string(),
            Json::Str(request.model.name().to_string()),
        ),
        ("ops".to_string(), Json::Arr(ops)),
        ("sp".to_string(), encode_sp(request.model.root())),
    ];
    if let Some(path) = encode_path(request.model.path()) {
        model_members.push(("path".to_string(), path));
    }
    let model = Json::Obj(model_members);
    let warm = match warm {
        None => Json::Null,
        Some(w) => Json::Obj(vec![
            ("tps_hint".into(), Json::Float(w.tps_hint)),
            (
                "micro_batch".into(),
                match w.micro_batch {
                    Some(m) => Json::Int(i128::from(m)),
                    None => Json::Null,
                },
            ),
        ]),
    };
    Json::Obj(vec![
        ("format".into(), Json::Str(REQUEST_FORMAT.into())),
        ("version".into(), Json::Int(i128::from(REQUEST_VERSION))),
        ("model".into(), model),
        ("cluster".into(), encode_cluster(&request.cluster)),
        (
            "mini_batch".into(),
            Json::Int(i128::from(request.mini_batch)),
        ),
        (
            "planner".into(),
            Json::Str(planner_tag(request.planner).into()),
        ),
        ("options".into(), encode_options(&request.options)),
        ("warm".into(), warm),
    ])
    .to_string()
}

fn planner_tag(planner: ServePlanner) -> &'static str {
    match planner {
        ServePlanner::GraphPipe => "graphpipe",
        ServePlanner::PipeDream => "pipedream",
        ServePlanner::Piper => "piper",
    }
}

fn encode_kind(kind: &OpKind) -> Json {
    let obj = |members: Vec<(&str, Json)>| {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    };
    let int = |v: usize| Json::Int(v as i128);
    match *kind {
        OpKind::Input => obj(vec![("op", Json::Str("input".into()))]),
        OpKind::Linear {
            in_features,
            out_features,
            bias,
        } => obj(vec![
            ("op", Json::Str("linear".into())),
            ("in_features", int(in_features)),
            ("out_features", int(out_features)),
            ("bias", Json::Bool(bias)),
        ]),
        OpKind::MultiHeadAttention { seq, hidden, heads } => obj(vec![
            ("op", Json::Str("attention".into())),
            ("seq", int(seq)),
            ("hidden", int(hidden)),
            ("heads", int(heads)),
        ]),
        OpKind::LayerNorm { dim } => obj(vec![
            ("op", Json::Str("layernorm".into())),
            ("dim", int(dim)),
        ]),
        OpKind::Activation(Nonlinearity::Relu) => obj(vec![("op", Json::Str("relu".into()))]),
        OpKind::Activation(Nonlinearity::Gelu) => obj(vec![("op", Json::Str("gelu".into()))]),
        OpKind::EmbeddingBag { entries, dim, bag } => obj(vec![
            ("op", Json::Str("embedding_bag".into())),
            ("entries", int(entries)),
            ("dim", int(dim)),
            ("bag", int(bag)),
        ]),
        OpKind::Concat => obj(vec![("op", Json::Str("concat".into()))]),
        OpKind::FeatureInteraction { features, dim } => obj(vec![
            ("op", Json::Str("interaction".into())),
            ("features", int(features)),
            ("dim", int(dim)),
        ]),
        OpKind::Loss => obj(vec![("op", Json::Str("loss".into()))]),
        OpKind::Add => obj(vec![("op", Json::Str("add".into()))]),
    }
}

/// Encodes a non-default [`PlanPath`]; `ExactSp` is represented by the
/// member's absence (keeps pre-DAG documents byte-stable).
fn encode_path(path: PlanPath) -> Option<Json> {
    match path {
        PlanPath::ExactSp => None,
        PlanPath::SpIzed { distortion } => Some(Json::Obj(vec![
            ("kind".into(), Json::Str("sp-ized".into())),
            ("distortion".into(), Json::Int(i128::from(distortion))),
        ])),
        PlanPath::Clustered { units } => Some(Json::Obj(vec![
            ("kind".into(), Json::Str("clustered".into())),
            ("units".into(), Json::Int(i128::from(units))),
        ])),
    }
}

fn decode_path(doc: &Json) -> Result<PlanPath, ProtocolError> {
    let kind = doc
        .get("kind")
        .and_then(Json::as_str)
        .ok_or(ProtocolError::Field("path.kind"))?;
    match kind {
        "sp-ized" => Ok(PlanPath::SpIzed {
            distortion: doc
                .get("distortion")
                .and_then(Json::as_u64)
                .ok_or(ProtocolError::Field("path.distortion"))?,
        }),
        "clustered" => Ok(PlanPath::Clustered {
            units: doc
                .get("units")
                .and_then(Json::as_u64)
                .and_then(|u| u32::try_from(u).ok())
                .ok_or(ProtocolError::Field("path.units"))?,
        }),
        other => Err(ProtocolError::Model(format!("unknown plan path `{other}`"))),
    }
}

fn encode_sp(block: &SpBlock) -> Json {
    match block {
        SpBlock::Leaf(id) => Json::Obj(vec![("leaf".into(), Json::Int(id.index() as i128))]),
        SpBlock::Chain(children) => Json::Obj(vec![(
            "chain".into(),
            Json::Arr(children.iter().map(encode_sp).collect()),
        )]),
        SpBlock::Branches(children) => Json::Obj(vec![(
            "branches".into(),
            Json::Arr(children.iter().map(encode_sp).collect()),
        )]),
    }
}

fn encode_cluster(cluster: &Cluster) -> Json {
    let profile = cluster.profile();
    let link = |l: LinkProfile| {
        Json::Obj(vec![
            ("bandwidth".into(), Json::Float(l.bandwidth)),
            ("latency".into(), Json::Float(l.latency)),
        ])
    };
    Json::Obj(vec![
        (
            "profile".into(),
            Json::Obj(vec![
                ("name".into(), Json::Str(profile.name.clone())),
                ("peak_flops".into(), Json::Float(profile.peak_flops)),
                ("mem_bandwidth".into(), Json::Float(profile.mem_bandwidth)),
                (
                    "mem_capacity".into(),
                    Json::Int(i128::from(profile.mem_capacity)),
                ),
                (
                    "kernel_overhead".into(),
                    Json::Float(profile.kernel_overhead),
                ),
                (
                    "efficiency_half_sat".into(),
                    Json::Float(profile.efficiency_half_sat),
                ),
            ]),
        ),
        ("devices".into(), Json::Int(cluster.device_count() as i128)),
        (
            "gpus_per_node".into(),
            Json::Int(cluster.gpus_per_node() as i128),
        ),
        ("intra_link".into(), link(cluster.intra_link())),
        ("inter_link".into(), link(cluster.inter_link())),
    ])
}

fn encode_options(options: &PlanOptions) -> Json {
    Json::Obj(vec![
        ("epsilon".into(), Json::Float(options.epsilon)),
        (
            "micro_batch_candidates".into(),
            match &options.micro_batch_candidates {
                None => Json::Null,
                Some(c) => Json::Arr(c.iter().map(|&v| Json::Int(i128::from(v))).collect()),
            },
        ),
        (
            "max_micro_batches".into(),
            Json::Int(i128::from(options.max_micro_batches)),
        ),
        (
            "kfkb_candidates".into(),
            Json::Arr(
                options
                    .kfkb_candidates
                    .iter()
                    .map(|&v| Json::Int(i128::from(v)))
                    .collect(),
            ),
        ),
        (
            "per_stage_micro_batch".into(),
            Json::Bool(options.per_stage_micro_batch),
        ),
        (
            "eval_budget".into(),
            Json::Int(i128::from(options.eval_budget)),
        ),
        ("parallelism".into(), Json::Int(options.parallelism as i128)),
        (
            "beam_width".into(),
            match options.beam_width {
                Some(w) => Json::Int(i128::from(w)),
                None => Json::Null,
            },
        ),
    ])
}

// ---------------------------------------------------------------------------
// Request decoding.

/// Decodes a plan request (and its warm-start hint, if any), rebuilding
/// the model through [`GraphBuilder`] and [`SpModel::new`] so the result
/// is fully re-validated.
///
/// # Errors
///
/// [`ProtocolError`] on malformed documents, unknown formats, newer
/// versions, or models that fail graph/SP validation.
pub fn decode_request(text: &str) -> Result<(PlanRequest, Option<WarmStart>), ProtocolError> {
    let doc = Json::parse(text).map_err(ProtocolError::Json)?;
    let format = doc
        .get("format")
        .and_then(Json::as_str)
        .ok_or(ProtocolError::Field("format"))?;
    if format != REQUEST_FORMAT {
        return Err(ProtocolError::BadFormat(format.to_string()));
    }
    let version = doc
        .get("version")
        .and_then(Json::as_u64)
        .ok_or(ProtocolError::Field("version"))?;
    if version > REQUEST_VERSION {
        return Err(ProtocolError::UnsupportedVersion(version));
    }
    let model = decode_model(doc.get("model").ok_or(ProtocolError::Field("model"))?)?;
    let cluster = decode_cluster(doc.get("cluster").ok_or(ProtocolError::Field("cluster"))?)?;
    let mini_batch = doc
        .get("mini_batch")
        .and_then(Json::as_u64)
        .ok_or(ProtocolError::Field("mini_batch"))?;
    let planner = match doc
        .get("planner")
        .and_then(Json::as_str)
        .ok_or(ProtocolError::Field("planner"))?
    {
        "graphpipe" => ServePlanner::GraphPipe,
        "pipedream" => ServePlanner::PipeDream,
        "piper" => ServePlanner::Piper,
        other => return Err(ProtocolError::Model(format!("unknown planner `{other}`"))),
    };
    let options = decode_options(doc.get("options").ok_or(ProtocolError::Field("options"))?)?;
    let warm = match doc.get("warm") {
        None | Some(Json::Null) => None,
        Some(w) => Some(WarmStart {
            tps_hint: w
                .get("tps_hint")
                .and_then(Json::as_f64)
                .ok_or(ProtocolError::Field("warm.tps_hint"))?,
            micro_batch: match w.get("micro_batch") {
                None | Some(Json::Null) => None,
                Some(m) => Some(m.as_u64().ok_or(ProtocolError::Field("warm.micro_batch"))?),
            },
        }),
    };
    Ok((
        PlanRequest::new(Arc::new(model), cluster, mini_batch)
            .with_options(options)
            .with_planner(planner),
        warm,
    ))
}

fn decode_model(doc: &Json) -> Result<SpModel, ProtocolError> {
    let name = doc
        .get("name")
        .and_then(Json::as_str)
        .ok_or(ProtocolError::Field("model.name"))?;
    let ops = doc
        .get("ops")
        .and_then(Json::as_arr)
        .ok_or(ProtocolError::Field("model.ops"))?;
    let mut builder = GraphBuilder::new();
    let mut ids: Vec<OpId> = Vec::with_capacity(ops.len());
    for op in ops {
        let op_name = op
            .get("name")
            .and_then(Json::as_str)
            .ok_or(ProtocolError::Field("op.name"))?;
        let kind = decode_kind(op.get("kind").ok_or(ProtocolError::Field("op.kind"))?)?;
        let preds: Vec<OpId> = op
            .get("preds")
            .and_then(Json::as_arr)
            .ok_or(ProtocolError::Field("op.preds"))?
            .iter()
            .map(|p| {
                p.as_u64()
                    .and_then(|i| ids.get(i as usize).copied())
                    .ok_or(ProtocolError::Field("op.preds"))
            })
            .collect::<Result<_, _>>()?;
        let shape: Vec<usize> = op
            .get("shape")
            .and_then(Json::as_arr)
            .ok_or(ProtocolError::Field("op.shape"))?
            .iter()
            .map(|d| {
                d.as_u64()
                    .map(|d| d as usize)
                    .ok_or(ProtocolError::Field("op.shape"))
            })
            .collect::<Result<_, _>>()?;
        let id = match kind {
            OpKind::Input => builder.input(op_name, Shape::new(shape.clone())),
            OpKind::Loss => builder.loss(op_name, &preds),
            kind => builder
                .op(op_name, kind, &preds)
                .map_err(|e| ProtocolError::Model(format!("op `{op_name}`: {e:?}")))?,
        };
        // Shapes are re-inferred during the rebuild; a mismatch means the
        // document was corrupted or produced by an incompatible encoder.
        if builder.shape_of(id).dims() != shape.as_slice() {
            return Err(ProtocolError::Model(format!(
                "op `{op_name}`: carried shape {:?} disagrees with inferred {:?}",
                shape,
                builder.shape_of(id).dims()
            )));
        }
        ids.push(id);
    }
    let root = decode_sp(doc.get("sp").ok_or(ProtocolError::Field("model.sp"))?, &ids)?;
    let graph = builder
        .finish()
        .map_err(|e| ProtocolError::Model(format!("graph validation: {e:?}")))?;
    let model = SpModel::new(name, graph, root)
        .map_err(|e| ProtocolError::Model(format!("sp tree: {e:?}")))?;
    match doc.get("path") {
        Some(path) => Ok(model.with_path(decode_path(path)?)),
        None => Ok(model),
    }
}

fn decode_kind(doc: &Json) -> Result<OpKind, ProtocolError> {
    let tag = doc
        .get("op")
        .and_then(Json::as_str)
        .ok_or(ProtocolError::Field("kind.op"))?;
    let field = |name: &'static str| -> Result<usize, ProtocolError> {
        doc.get(name)
            .and_then(Json::as_u64)
            .map(|v| v as usize)
            .ok_or(ProtocolError::Field(name))
    };
    Ok(match tag {
        "input" => OpKind::Input,
        "linear" => OpKind::Linear {
            in_features: field("in_features")?,
            out_features: field("out_features")?,
            bias: matches!(doc.get("bias"), Some(Json::Bool(true))),
        },
        "attention" => OpKind::MultiHeadAttention {
            seq: field("seq")?,
            hidden: field("hidden")?,
            heads: field("heads")?,
        },
        "layernorm" => OpKind::LayerNorm { dim: field("dim")? },
        "relu" => OpKind::Activation(Nonlinearity::Relu),
        "gelu" => OpKind::Activation(Nonlinearity::Gelu),
        "embedding_bag" => OpKind::EmbeddingBag {
            entries: field("entries")?,
            dim: field("dim")?,
            bag: field("bag")?,
        },
        "concat" => OpKind::Concat,
        "interaction" => OpKind::FeatureInteraction {
            features: field("features")?,
            dim: field("dim")?,
        },
        "loss" => OpKind::Loss,
        "add" => OpKind::Add,
        other => return Err(ProtocolError::Model(format!("unknown op kind `{other}`"))),
    })
}

fn decode_sp(doc: &Json, ids: &[OpId]) -> Result<SpBlock, ProtocolError> {
    if let Some(leaf) = doc.get("leaf") {
        let i = leaf.as_u64().ok_or(ProtocolError::Field("sp.leaf"))?;
        return ids
            .get(i as usize)
            .map(|&id| SpBlock::Leaf(id))
            .ok_or(ProtocolError::Field("sp.leaf"));
    }
    for (key, ctor) in [
        ("chain", SpBlock::Chain as fn(Vec<SpBlock>) -> SpBlock),
        ("branches", SpBlock::Branches as fn(Vec<SpBlock>) -> SpBlock),
    ] {
        if let Some(children) = doc.get(key) {
            let children = children
                .as_arr()
                .ok_or(ProtocolError::Field("sp.children"))?
                .iter()
                .map(|c| decode_sp(c, ids))
                .collect::<Result<Vec<_>, _>>()?;
            return Ok(ctor(children));
        }
    }
    Err(ProtocolError::Field("sp"))
}

fn decode_cluster(doc: &Json) -> Result<Cluster, ProtocolError> {
    let profile = doc
        .get("profile")
        .ok_or(ProtocolError::Field("cluster.profile"))?;
    let float = |doc: &Json, name: &'static str| -> Result<f64, ProtocolError> {
        doc.get(name)
            .and_then(Json::as_f64)
            .ok_or(ProtocolError::Field(name))
    };
    let link = |doc: Option<&Json>| -> Result<LinkProfile, ProtocolError> {
        let doc = doc.ok_or(ProtocolError::Field("cluster.link"))?;
        Ok(LinkProfile {
            bandwidth: float(doc, "bandwidth")?,
            latency: float(doc, "latency")?,
        })
    };
    let device = DeviceProfile {
        name: profile
            .get("name")
            .and_then(Json::as_str)
            .ok_or(ProtocolError::Field("profile.name"))?
            .to_string(),
        peak_flops: float(profile, "peak_flops")?,
        mem_bandwidth: float(profile, "mem_bandwidth")?,
        mem_capacity: profile
            .get("mem_capacity")
            .and_then(Json::as_u64)
            .ok_or(ProtocolError::Field("profile.mem_capacity"))?,
        kernel_overhead: float(profile, "kernel_overhead")?,
        efficiency_half_sat: float(profile, "efficiency_half_sat")?,
    };
    let devices = doc
        .get("devices")
        .and_then(Json::as_u64)
        .ok_or(ProtocolError::Field("cluster.devices"))?;
    let gpus_per_node = doc
        .get("gpus_per_node")
        .and_then(Json::as_u64)
        .ok_or(ProtocolError::Field("cluster.gpus_per_node"))?;
    if devices == 0 || gpus_per_node == 0 {
        return Err(ProtocolError::Model("cluster with zero devices".into()));
    }
    Ok(Cluster::new(
        device,
        devices as usize,
        gpus_per_node as usize,
        link(doc.get("intra_link"))?,
        link(doc.get("inter_link"))?,
    ))
}

fn decode_options(doc: &Json) -> Result<PlanOptions, ProtocolError> {
    let ints = |v: &Json, name: &'static str| -> Result<Vec<u64>, ProtocolError> {
        v.as_arr()
            .ok_or(ProtocolError::Field(name))?
            .iter()
            .map(|i| i.as_u64().ok_or(ProtocolError::Field(name)))
            .collect()
    };
    Ok(PlanOptions {
        epsilon: doc
            .get("epsilon")
            .and_then(Json::as_f64)
            .ok_or(ProtocolError::Field("options.epsilon"))?,
        micro_batch_candidates: match doc.get("micro_batch_candidates") {
            None | Some(Json::Null) => None,
            Some(v) => Some(ints(v, "options.micro_batch_candidates")?),
        },
        max_micro_batches: doc
            .get("max_micro_batches")
            .and_then(Json::as_u64)
            .ok_or(ProtocolError::Field("options.max_micro_batches"))?,
        kfkb_candidates: ints(
            doc.get("kfkb_candidates")
                .ok_or(ProtocolError::Field("options.kfkb_candidates"))?,
            "options.kfkb_candidates",
        )?,
        per_stage_micro_batch: matches!(doc.get("per_stage_micro_batch"), Some(Json::Bool(true))),
        eval_budget: doc
            .get("eval_budget")
            .and_then(Json::as_u64)
            .ok_or(ProtocolError::Field("options.eval_budget"))?,
        parallelism: doc
            .get("parallelism")
            .and_then(Json::as_u64)
            .ok_or(ProtocolError::Field("options.parallelism"))? as usize,
        beam_width: match doc.get("beam_width") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_u64()
                    .and_then(|w| u32::try_from(w).ok())
                    .ok_or(ProtocolError::Field("options.beam_width"))?,
            ),
        },
    })
}

// ---------------------------------------------------------------------------
// Replies.

/// A worker's reply, classified by its `format` marker.
pub enum WireReply {
    /// A plan artifact; the `String` is the **verbatim** document text, so
    /// the bytes the worker computed are the bytes the caller keeps.
    Artifact(String),
    /// The worker's planner failed.
    Error(PlanError),
}

/// Encodes a planner failure as the error reply document.
pub fn encode_plan_error(error: &PlanError) -> String {
    let (kind, message, evals) = match error {
        PlanError::Infeasible(why) => ("infeasible", why.clone(), 0),
        PlanError::SearchExplosion { evals } => ("explosion", String::new(), *evals),
        PlanError::UnsupportedModel(why) => ("unsupported", why.clone(), 0),
        PlanError::Internal(why) => ("internal", why.clone(), 0),
    };
    Json::Obj(vec![
        ("format".into(), Json::Str(ERROR_FORMAT.into())),
        ("version".into(), Json::Int(1)),
        ("kind".into(), Json::Str(kind.into())),
        ("message".into(), Json::Str(message)),
        ("evals".into(), Json::Int(i128::from(evals))),
    ])
    .to_string()
}

/// Classifies a reply document: a plan artifact (returned verbatim) or a
/// decoded planner failure.
///
/// # Errors
///
/// [`ProtocolError`] when the document is malformed or carries an unknown
/// `format` marker.
pub fn classify_reply(text: &str) -> Result<WireReply, ProtocolError> {
    let doc = Json::parse(text).map_err(ProtocolError::Json)?;
    let format = doc
        .get("format")
        .and_then(Json::as_str)
        .ok_or(ProtocolError::Field("format"))?;
    match format {
        artifact::FORMAT => Ok(WireReply::Artifact(text.to_string())),
        ERROR_FORMAT => {
            let kind = doc
                .get("kind")
                .and_then(Json::as_str)
                .ok_or(ProtocolError::Field("kind"))?;
            let message = doc
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string();
            let error = match kind {
                "infeasible" => PlanError::Infeasible(message),
                "explosion" => PlanError::SearchExplosion {
                    evals: doc.get("evals").and_then(Json::as_u64).unwrap_or(0),
                },
                "unsupported" => PlanError::UnsupportedModel(message),
                "internal" => PlanError::Internal(message),
                other => {
                    return Err(ProtocolError::Model(format!(
                        "unknown error kind `{other}`"
                    )))
                }
            };
            Ok(WireReply::Error(error))
        }
        other => Err(ProtocolError::BadFormat(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_ir::zoo::{self, CandleUnoConfig, DlrmConfig, MmtConfig, MoeConfig};
    use gp_serve::fingerprint::numbering_signature;

    fn zoo_requests() -> Vec<PlanRequest> {
        let cluster = Cluster::summit_like(8);
        vec![
            PlanRequest::new(
                Arc::new(zoo::mmt(&MmtConfig::two_branch())),
                cluster.clone(),
                128,
            ),
            PlanRequest::new(
                Arc::new(zoo::dlrm(&DlrmConfig::tiny())),
                cluster.clone(),
                64,
            )
            .with_planner(ServePlanner::PipeDream),
            PlanRequest::new(
                Arc::new(zoo::candle_uno(&CandleUnoConfig::tiny())),
                Cluster::tiny_test(4),
                32,
            )
            .with_options(PlanOptions {
                epsilon: 0.02,
                micro_batch_candidates: Some(vec![4, 8]),
                max_micro_batches: 64,
                kfkb_candidates: vec![1, 2],
                per_stage_micro_batch: true,
                eval_budget: 12345,
                parallelism: 3,
                beam_width: Some(6),
            }),
            PlanRequest::new(Arc::new(zoo::moe(&MoeConfig::tiny())), cluster, 256)
                .with_planner(ServePlanner::Piper),
        ]
    }

    #[test]
    fn requests_round_trip_losslessly() {
        for request in zoo_requests() {
            let warm = Some(WarmStart {
                tps_hint: 1.25e-6,
                micro_batch: Some(8),
            });
            let text = encode_request(&request, warm.as_ref());
            let (decoded, decoded_warm) = decode_request(&text).expect("decodes");
            assert_eq!(decoded.fingerprint(), request.fingerprint());
            assert_eq!(
                numbering_signature(decoded.model.graph()),
                numbering_signature(request.model.graph()),
                "operator numbering must survive the wire"
            );
            assert_eq!(decoded.mini_batch, request.mini_batch);
            assert_eq!(decoded.options, request.options);
            assert_eq!(decoded.planner, request.planner);
            assert_eq!(decoded_warm, warm);
            // Idempotent: re-encoding the decoded request reproduces bytes.
            assert_eq!(encode_request(&decoded, warm.as_ref()), text);
        }
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello").unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor).unwrap(), "hello");
        assert_eq!(read_frame(&mut cursor).unwrap(), "");
        assert!(read_frame(&mut cursor).is_err(), "eof surfaces as an error");
    }

    #[test]
    fn oversize_frames_are_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME as u32 + 1).to_be_bytes());
        let mut cursor = &buf[..];
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn plan_errors_round_trip() {
        for error in [
            PlanError::Infeasible("memory".into()),
            PlanError::SearchExplosion { evals: 42 },
            PlanError::UnsupportedModel("shape".into()),
            PlanError::Internal("bug".into()),
        ] {
            let text = encode_plan_error(&error);
            match classify_reply(&text).unwrap() {
                WireReply::Error(decoded) => assert_eq!(decoded, error),
                WireReply::Artifact(_) => panic!("misclassified error reply"),
            }
        }
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(matches!(
            decode_request("not json"),
            Err(ProtocolError::Json(_))
        ));
        assert!(matches!(
            decode_request("{\"format\":\"other\"}"),
            Err(ProtocolError::Field("format") | ProtocolError::BadFormat(_))
        ));
        let newer = format!(
            "{{\"format\":\"{REQUEST_FORMAT}\",\"version\":{}}}",
            REQUEST_VERSION + 1
        );
        assert!(matches!(
            decode_request(&newer),
            Err(ProtocolError::UnsupportedVersion(_))
        ));
        assert!(classify_reply("{\"format\":\"mystery\"}").is_err());
    }
}
