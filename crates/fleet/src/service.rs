//! The fleet front-end: [`FleetService`] ties the sharded cache, the
//! persistent store, the worker pool, and admission control into one
//! plan-serving surface.
//!
//! # Request path
//!
//! A submitted request walks four levels, cheapest first:
//!
//! 1. **Sharded cache** — an [`Arc<Plan>`] under a per-shard lock;
//!    numbering-verified, no I/O.
//! 2. **Persistent store** — the canonical artifact bytes on disk;
//!    decoding re-validates the plan against this request's model and
//!    cluster, so a corrupt or mismatched artifact degrades to a miss,
//!    never to a wrong answer.
//! 3. **Single-flight join** — an identical request already being planned;
//!    the new request subscribes to its result instead of planning again.
//! 4. **Worker pool** — the miss is queued; a dispatcher sends it to its
//!    worker (in-process or remote), retrying the next worker when one is
//!    unreachable. The worker's canonical artifact is decoded, verified,
//!    persisted, cached, and fanned out.
//!
//! Admission happens before any of this: the tenant's tier rewrites the
//! search options (changing the fingerprint — tier-scoped caching), a
//! quota token is taken, and when the backlog of claimed-but-unfinished
//! misses exceeds the configured depth the request is shed with
//! [`ServeError::Overloaded`] instead of queued into a latency cliff.

use crate::admission::{AdmissionConfig, AdmissionControl, AdmissionToken};
use crate::shard::{ShardLookup, ShardStats, ShardedPlanCache};
use crate::store::ArtifactStore;
use crate::worker::{LocalWorker, PlanWorker, RemoteWorker, WorkerFailure};
use crossbeam::channel::{unbounded, Receiver, Sender};
use gp_obs::{ClockHandle, Histogram, HistogramSnapshot, Telemetry};
use gp_partition::{Plan, PlanError, WarmStart};
use gp_serve::fingerprint::{
    numbering_signature, request_config_fingerprint, request_graph_fingerprint,
};
use gp_serve::{artifact, Fingerprint, PlanRequest, ServeError, ServePlanner};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

/// How a [`FleetService`] is assembled.
#[derive(Clone)]
pub struct FleetConfig {
    /// Independent cache shards (each with its own lock and LRU budget).
    pub shards: usize,
    /// Total cached plans across all shards.
    pub cache_capacity: usize,
    /// In-process planner workers.
    pub local_workers: usize,
    /// Remote planner workers, as `host:port` addresses.
    pub remote_workers: Vec<String>,
    /// Directory for the persistent artifact store; `None` disables it.
    pub store: Option<PathBuf>,
    /// Multi-tenant admission policy.
    pub admission: AdmissionConfig,
    /// Telemetry sink for fleet counters, histograms, and spans.
    pub telemetry: Telemetry,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 8,
            cache_capacity: 64,
            local_workers: 2,
            remote_workers: Vec::new(),
            store: None,
            admission: AdmissionConfig::default(),
            telemetry: Telemetry::disabled(),
        }
    }
}

/// A fleet-wide counter snapshot plus per-shard detail.
#[derive(Debug, Clone, Default)]
pub struct FleetStats {
    /// Requests submitted (admitted or not).
    pub requests: u64,
    /// Served straight from a cache shard at submit time.
    pub shard_hits: u64,
    /// Served from the persistent store (decoded + re-validated).
    pub store_hits: u64,
    /// Store artifacts refused (numbering mismatch, corrupt bytes, or a
    /// fingerprint that does not match the request).
    pub store_rejects: u64,
    /// Joined an identical in-flight request.
    pub joins: u64,
    /// Claimed a planner run (queued to the worker pool).
    pub misses: u64,
    /// Refused by admission: tenant quota exhausted.
    pub quota_refusals: u64,
    /// Refused by admission: miss backlog past the configured depth.
    pub shed: u64,
    /// Failovers to another worker after an unreachable one.
    pub retries: u64,
    /// Worker attempts that found the worker unreachable.
    pub worker_errors: u64,
    /// Successful planner runs across all workers.
    pub planner_runs: u64,
    /// Planner runs seeded by a warm-start hint from a *different*
    /// configuration of the same graph (the cross-config reuse case).
    pub warm_starts: u64,
    /// Plans currently cached across all shards.
    pub cached_plans: u64,
    /// LRU evictions across all shards.
    pub cache_evictions: u64,
    /// Submit-to-dispatch latency of queued misses (nanoseconds).
    pub queue_wait: HistogramSnapshot,
    /// Per-request worker round-trip time (nanoseconds).
    pub worker_rtt: HistogramSnapshot,
    /// Per-shard counters, in shard order.
    pub shards: Vec<ShardStats>,
}

impl FleetStats {
    /// Fraction of requests served from a cache shard.
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.shard_hits as f64 / self.requests as f64
        }
    }

    /// Fraction of requests refused by admission (quota or shedding).
    pub fn shed_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            (self.shed + self.quota_refusals) as f64 / self.requests as f64
        }
    }

    /// A compact multi-line report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "requests {}  shard-hits {}  store-hits {}  joins {}  misses {}\n",
            self.requests, self.shard_hits, self.store_hits, self.joins, self.misses
        ));
        out.push_str(&format!(
            "shed {}  quota-refusals {}  retries {}  worker-errors {}  planner-runs {}  warm-starts {}\n",
            self.shed, self.quota_refusals, self.retries, self.worker_errors, self.planner_runs,
            self.warm_starts
        ));
        out.push_str(&format!(
            "cached {}  evictions {}  store-rejects {}  hit-rate {:.3}  shed-rate {:.3}\n",
            self.cached_plans,
            self.cache_evictions,
            self.store_rejects,
            self.hit_rate(),
            self.shed_rate()
        ));
        out.push_str(&format!(
            "queue-wait p50/p99/max {}ns/{}ns/{}ns  worker-rtt p50/p99/max {}ns/{}ns/{}ns\n",
            self.queue_wait.p50,
            self.queue_wait.p99,
            self.queue_wait.max,
            self.worker_rtt.p50,
            self.worker_rtt.p99,
            self.worker_rtt.max
        ));
        for (i, s) in self.shards.iter().enumerate() {
            out.push_str(&format!(
                "shard {i}: hits {}  misses {}  rejections {}  evictions {}  len {}/{}\n",
                s.hits, s.misses, s.rejections, s.evictions, s.len, s.capacity
            ));
        }
        out
    }
}

type Reply = Result<Arc<Plan>, ServeError>;

/// How a ticket was satisfied at submit time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Served {
    /// Straight from a cache shard.
    Cache,
    /// Decoded from the persistent store.
    Store,
    /// Subscribed to an identical in-flight request.
    Joined,
    /// Queued to the worker pool.
    Planned,
}

enum TicketBody {
    Ready(Reply),
    Waiting(Receiver<Reply>),
}

/// A pending fleet response. Holds the tenant's admission token for its
/// whole lifetime, so quota counts cover queue and planning time.
#[must_use = "a ticket resolves to the plan; drop it and the answer is lost"]
pub struct FleetTicket {
    fingerprint: Fingerprint,
    served: Served,
    body: TicketBody,
    _token: AdmissionToken,
}

impl FleetTicket {
    /// The request's fingerprint (cache, store, and wire key).
    pub fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }

    /// How the request was satisfied at submit time.
    pub fn served(&self) -> Served {
        self.served
    }

    /// Whether the response needed no planner work at submit time.
    pub fn served_from_cache(&self) -> bool {
        matches!(self.served, Served::Cache | Served::Store)
    }

    /// Blocks until the plan (or failure) is available.
    ///
    /// # Errors
    ///
    /// The planner's error, or [`ServeError::ServiceStopped`] when the
    /// fleet shut down with the request still queued.
    pub fn wait(self) -> Reply {
        match self.body {
            TicketBody::Ready(reply) => reply,
            TicketBody::Waiting(rx) => match rx.recv() {
                Ok(reply) => reply,
                Err(_) => Err(ServeError::ServiceStopped),
            },
        }
    }
}

struct Waiter {
    tx: Sender<Reply>,
    numbering: u64,
    request: PlanRequest,
}

struct Job {
    fingerprint: Fingerprint,
    numbering: u64,
    request: PlanRequest,
    enqueued_ns: u64,
}

#[derive(Clone, Copy)]
struct WarmSeed {
    config_fp: Fingerprint,
    devices: u32,
    bottleneck_tps: f64,
    micro_batch: u64,
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    shard_hits: AtomicU64,
    store_hits: AtomicU64,
    store_rejects: AtomicU64,
    joins: AtomicU64,
    misses: AtomicU64,
    quota_refusals: AtomicU64,
    shed: AtomicU64,
    retries: AtomicU64,
    worker_errors: AtomicU64,
    planner_runs: AtomicU64,
    warm_starts: AtomicU64,
}

struct Shared {
    cache: ShardedPlanCache,
    store: Option<ArtifactStore>,
    workers: Vec<Box<dyn PlanWorker>>,
    admission: AdmissionControl,
    inflight: Mutex<BTreeMap<Fingerprint, Vec<Waiter>>>,
    warm_index: Mutex<BTreeMap<Fingerprint, WarmSeed>>,
    /// Misses claimed but not yet published — the backlog that shedding
    /// bounds (queued plus in-service, so a slow worker counts too).
    backlog: AtomicUsize,
    counters: Counters,
    queue_wait: Histogram,
    worker_rtt: Histogram,
    telemetry: Telemetry,
    clock: ClockHandle,
    stopped: AtomicBool,
}

/// Distributed plan serving over a worker pool.
pub struct FleetService {
    shared: Arc<Shared>,
    job_tx: Option<Sender<Job>>,
    dispatchers: Vec<thread::JoinHandle<()>>,
}

impl FleetService {
    /// Builds the worker pool described by `config` and starts one
    /// dispatcher thread per worker.
    ///
    /// # Errors
    ///
    /// Propagates the store-open failure when `config.store` is set.
    /// Remote workers are *not* probed here — an unreachable address
    /// surfaces per request, through the retry chain.
    pub fn start(config: FleetConfig) -> io::Result<FleetService> {
        let mut workers: Vec<Box<dyn PlanWorker>> = Vec::new();
        for i in 0..config.local_workers {
            workers.push(Box::new(LocalWorker::new(i, config.telemetry.clone())));
        }
        for addr in &config.remote_workers {
            workers.push(Box::new(RemoteWorker::new(addr.clone())));
        }
        Self::with_workers(config, workers)
    }

    /// Like [`start`](Self::start), with an explicit worker pool (tests
    /// inject gated or failing workers this way). An empty pool gets one
    /// local worker.
    ///
    /// # Errors
    ///
    /// Propagates the store-open failure when `config.store` is set.
    pub fn with_workers(
        config: FleetConfig,
        mut workers: Vec<Box<dyn PlanWorker>>,
    ) -> io::Result<FleetService> {
        if workers.is_empty() {
            workers.push(Box::new(LocalWorker::new(0, config.telemetry.clone())));
        }
        let store = match &config.store {
            Some(dir) => Some(ArtifactStore::open(dir)?),
            None => None,
        };
        let shared = Arc::new(Shared {
            cache: ShardedPlanCache::new(config.shards, config.cache_capacity),
            store,
            workers,
            admission: AdmissionControl::new(config.admission.clone()),
            inflight: Mutex::new(BTreeMap::new()),
            warm_index: Mutex::new(BTreeMap::new()),
            backlog: AtomicUsize::new(0),
            counters: Counters::default(),
            queue_wait: Histogram::default(),
            worker_rtt: Histogram::default(),
            telemetry: config.telemetry.clone(),
            clock: ClockHandle::default(),
            stopped: AtomicBool::new(false),
        });
        let (job_tx, job_rx) = unbounded::<Job>();
        let dispatchers = (0..shared.workers.len())
            .map(|i| {
                let shared = Arc::clone(&shared);
                let rx = job_rx.clone();
                thread::Builder::new()
                    .name(format!("gp-fleet-dispatch-{i}"))
                    .spawn(move || dispatcher_loop(&shared, &rx, i))
                    .expect("spawn fleet dispatcher")
            })
            .collect();
        Ok(FleetService {
            shared,
            job_tx: Some(job_tx),
            dispatchers,
        })
    }

    /// Submits a request on behalf of `tenant`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when admission refuses the request
    /// (quota or backlog), [`ServeError::ServiceStopped`] after
    /// [`shutdown`](Self::shutdown).
    pub fn submit(&self, tenant: &str, request: PlanRequest) -> Result<FleetTicket, ServeError> {
        let shared = &self.shared;
        shared.counters.requests.fetch_add(1, Ordering::Relaxed);
        if shared.stopped.load(Ordering::Acquire) {
            return Err(ServeError::ServiceStopped);
        }
        let mut request = request;
        let token = match shared.admission.admit(tenant, &mut request.options) {
            Ok(token) => token,
            Err(refused) => {
                shared
                    .counters
                    .quota_refusals
                    .fetch_add(1, Ordering::Relaxed);
                shared.telemetry.counter_add("fleet.shed", 1);
                return Err(ServeError::Overloaded {
                    tenant: refused.tenant,
                    depth: refused.in_flight,
                });
            }
        };
        let fingerprint = request.fingerprint();
        let numbering = numbering_signature(request.model.graph());

        // Level 1: the sharded cache.
        if let ShardLookup::Hit(plan) = shared.cache.get(&fingerprint, numbering) {
            shared.counters.shard_hits.fetch_add(1, Ordering::Relaxed);
            shared.telemetry.counter_add("fleet.shard_hits", 1);
            return Ok(FleetTicket {
                fingerprint,
                served: Served::Cache,
                body: TicketBody::Ready(Ok(plan)),
                _token: token,
            });
        }
        shared.telemetry.counter_add("fleet.shard_misses", 1);

        // Level 2: the persistent store. Decoding validates against this
        // request's model and cluster, so anything stale or corrupt is a
        // reject, not a wrong answer. Two racing submits may both decode
        // the same artifact; the duplicate insert is byte-identical.
        if let Some(plan) = self.consult_store(&request, fingerprint, numbering) {
            return Ok(FleetTicket {
                fingerprint,
                served: Served::Store,
                body: TicketBody::Ready(Ok(plan)),
                _token: token,
            });
        }

        // Levels 3 and 4 under the in-flight lock.
        let (tx, rx) = unbounded::<Reply>();
        let mut inflight = shared.inflight.lock();
        // Double-check: a dispatcher may have published between the cache
        // miss above and taking this lock (publish holds the same lock).
        if let ShardLookup::Hit(plan) = shared.cache.peek(&fingerprint, numbering) {
            shared.counters.shard_hits.fetch_add(1, Ordering::Relaxed);
            shared.telemetry.counter_add("fleet.shard_hits", 1);
            return Ok(FleetTicket {
                fingerprint,
                served: Served::Cache,
                body: TicketBody::Ready(Ok(plan)),
                _token: token,
            });
        }
        if let Some(waiters) = inflight.get_mut(&fingerprint) {
            waiters.push(Waiter {
                tx,
                numbering,
                request,
            });
            shared.counters.joins.fetch_add(1, Ordering::Relaxed);
            shared.telemetry.counter_add("fleet.joins", 1);
            return Ok(FleetTicket {
                fingerprint,
                served: Served::Joined,
                body: TicketBody::Waiting(rx),
                _token: token,
            });
        }
        // Claimant: shed before claiming, so joiners of existing work are
        // never refused (they cost no extra planner time).
        let backlog = shared.backlog.load(Ordering::Acquire);
        if let Some(max) = shared.admission.config().max_queue_depth {
            if backlog > max {
                shared.counters.shed.fetch_add(1, Ordering::Relaxed);
                shared.telemetry.counter_add("fleet.shed", 1);
                return Err(ServeError::Overloaded {
                    tenant: tenant.to_string(),
                    depth: backlog,
                });
            }
        }
        shared.backlog.fetch_add(1, Ordering::AcqRel);
        shared.counters.misses.fetch_add(1, Ordering::Relaxed);
        shared.telemetry.counter_add("fleet.misses", 1);
        let job = Job {
            fingerprint,
            numbering,
            request: request.clone(),
            enqueued_ns: shared.clock.now_nanos(),
        };
        inflight.insert(
            fingerprint,
            vec![Waiter {
                tx,
                numbering,
                request,
            }],
        );
        drop(inflight);
        if let Some(job_tx) = &self.job_tx {
            if job_tx.send(job).is_err() {
                // Dispatchers are gone; unpublish the claim.
                self.shared.inflight.lock().remove(&fingerprint);
                shared.backlog.fetch_sub(1, Ordering::AcqRel);
                return Err(ServeError::ServiceStopped);
            }
        }
        Ok(FleetTicket {
            fingerprint,
            served: Served::Planned,
            body: TicketBody::Waiting(rx),
            _token: token,
        })
    }

    fn consult_store(
        &self,
        request: &PlanRequest,
        fingerprint: Fingerprint,
        numbering: u64,
    ) -> Option<Arc<Plan>> {
        let shared = &self.shared;
        let store = shared.store.as_ref()?;
        let (text, stored_numbering) = store.get(&fingerprint)?;
        let reject = || {
            shared
                .counters
                .store_rejects
                .fetch_add(1, Ordering::Relaxed);
            shared.telemetry.counter_add("fleet.store_rejects", 1);
        };
        if stored_numbering.is_some_and(|n| n != numbering) {
            reject();
            return None;
        }
        match artifact::decode_plan(&text, request.model.graph(), &request.cluster) {
            Ok((plan, Some(fp))) if fp == fingerprint => {
                let plan = Arc::new(plan);
                shared
                    .cache
                    .insert(fingerprint, Arc::clone(&plan), numbering);
                if stored_numbering.is_none() {
                    store.confirm_numbering(fingerprint, numbering);
                }
                shared.counters.store_hits.fetch_add(1, Ordering::Relaxed);
                shared.telemetry.counter_add("fleet.store_hits", 1);
                Some(plan)
            }
            _ => {
                reject();
                None
            }
        }
    }

    /// A point-in-time counter snapshot.
    pub fn stats(&self) -> FleetStats {
        let c = &self.shared.counters;
        FleetStats {
            requests: c.requests.load(Ordering::Relaxed),
            shard_hits: c.shard_hits.load(Ordering::Relaxed),
            store_hits: c.store_hits.load(Ordering::Relaxed),
            store_rejects: c.store_rejects.load(Ordering::Relaxed),
            joins: c.joins.load(Ordering::Relaxed),
            misses: c.misses.load(Ordering::Relaxed),
            quota_refusals: c.quota_refusals.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            retries: c.retries.load(Ordering::Relaxed),
            worker_errors: c.worker_errors.load(Ordering::Relaxed),
            planner_runs: c.planner_runs.load(Ordering::Relaxed),
            warm_starts: c.warm_starts.load(Ordering::Relaxed),
            cached_plans: self.shared.cache.len() as u64,
            cache_evictions: self.shared.cache.evictions(),
            queue_wait: self.shared.queue_wait.snapshot(),
            worker_rtt: self.shared.worker_rtt.snapshot(),
            shards: self.shared.cache.stats(),
        }
    }

    /// The persistent store, when configured.
    pub fn store(&self) -> Option<&ArtifactStore> {
        self.shared.store.as_ref()
    }

    /// Worker pool size.
    pub fn worker_count(&self) -> usize {
        self.shared.workers.len()
    }

    /// Stops accepting requests, drains queued work, and joins the
    /// dispatchers. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.shared.stopped.store(true, Ordering::Release);
        // Dropping the sender ends the dispatchers' recv loop once the
        // queue drains; queued jobs still publish normally.
        self.job_tx = None;
        for handle in self.dispatchers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for FleetService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn planner_tag(planner: ServePlanner) -> u64 {
    match planner {
        ServePlanner::GraphPipe => 0,
        ServePlanner::PipeDream => 1,
        ServePlanner::Piper => 2,
    }
}

fn dispatcher_loop(shared: &Shared, rx: &Receiver<Job>, worker_index: usize) {
    while let Ok(job) = rx.recv() {
        let wait_ns = shared.clock.now_nanos().saturating_sub(job.enqueued_ns);
        shared.queue_wait.record(wait_ns);
        shared.telemetry.record("fleet.queue_wait_ns", wait_ns);
        let span = shared.telemetry.span("fleet.dispatch");
        let outcome = plan_via_workers(shared, worker_index, &job.request, job.fingerprint, true);
        drop(span);
        publish(shared, &job, outcome, worker_index);
        shared.backlog.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Walks the worker ring starting at `start`, skipping unreachable
/// workers, and decodes + validates the winning artifact. Planner
/// failures are deterministic and end the walk immediately.
fn plan_via_workers(
    shared: &Shared,
    start: usize,
    request: &PlanRequest,
    fingerprint: Fingerprint,
    seed_warm_index: bool,
) -> Result<(String, Arc<Plan>), ServeError> {
    let warm_key = (request.planner == ServePlanner::GraphPipe).then(|| {
        (
            request_graph_fingerprint(&request.model, planner_tag(request.planner)),
            request_config_fingerprint(&request.cluster, request.mini_batch, &request.options),
        )
    });
    let warm = warm_key.and_then(|(graph_fp, config_fp)| {
        shared.warm_index.lock().get(&graph_fp).map(|seed| {
            if seed.config_fp != config_fp {
                // Same graph, different cluster/batch/options: the hint
                // crossed configurations, the paper's warm-start case.
                shared.counters.warm_starts.fetch_add(1, Ordering::Relaxed);
                shared.telemetry.counter_add("fleet.warm_starts", 1);
            }
            let devices = request.cluster.device_count().max(1) as f64;
            WarmStart {
                tps_hint: seed.bottleneck_tps * (f64::from(seed.devices.max(1)) / devices),
                micro_batch: Some(seed.micro_batch),
            }
        })
    });
    let n = shared.workers.len();
    let mut attempts = 0;
    for k in 0..n {
        let worker = &shared.workers[(start + k) % n];
        attempts += 1;
        if k > 0 {
            shared.counters.retries.fetch_add(1, Ordering::Relaxed);
            shared.telemetry.counter_add("fleet.retries", 1);
        }
        let start_ns = shared.clock.now_nanos();
        match worker.plan(request, warm) {
            Ok(text) => {
                let rtt = shared.clock.now_nanos().saturating_sub(start_ns);
                shared.worker_rtt.record(rtt);
                shared.telemetry.record("fleet.worker_rtt_ns", rtt);
                shared.counters.planner_runs.fetch_add(1, Ordering::Relaxed);
                let (plan, fp) =
                    artifact::decode_plan(&text, request.model.graph(), &request.cluster).map_err(
                        |e| {
                            ServeError::Plan(PlanError::Internal(format!(
                                "worker {} returned an invalid artifact: {e}",
                                worker.describe()
                            )))
                        },
                    )?;
                if fp != Some(fingerprint) {
                    return Err(ServeError::Plan(PlanError::Internal(format!(
                        "worker {} answered for the wrong request",
                        worker.describe()
                    ))));
                }
                if seed_warm_index {
                    if let Some((graph_fp, config_fp)) = warm_key {
                        shared.warm_index.lock().insert(
                            graph_fp,
                            WarmSeed {
                                config_fp,
                                devices: request.cluster.device_count() as u32,
                                bottleneck_tps: plan.bottleneck_tps,
                                micro_batch: plan.max_micro_batch(),
                            },
                        );
                    }
                }
                return Ok((text, Arc::new(plan)));
            }
            Err(WorkerFailure::Failed(e)) => return Err(e),
            Err(WorkerFailure::Unavailable(_)) => {
                shared
                    .counters
                    .worker_errors
                    .fetch_add(1, Ordering::Relaxed);
                shared.telemetry.counter_add("fleet.worker_errors", 1);
            }
        }
    }
    Err(ServeError::WorkerUnavailable { attempts })
}

fn publish(
    shared: &Shared,
    job: &Job,
    outcome: Result<(String, Arc<Plan>), ServeError>,
    worker_index: usize,
) {
    let mut inflight = shared.inflight.lock();
    let waiters = inflight.remove(&job.fingerprint).unwrap_or_default();
    match outcome {
        Ok((text, plan)) => {
            if let Some(store) = &shared.store {
                // Persisting is best-effort: a full disk must not fail the
                // request, only the warm restart.
                let _ = store.put(job.fingerprint, &text, job.numbering);
            }
            shared
                .cache
                .insert(job.fingerprint, Arc::clone(&plan), job.numbering);
            drop(inflight);
            for waiter in waiters {
                if waiter.numbering == job.numbering {
                    let _ = waiter.tx.send(Ok(Arc::clone(&plan)));
                } else {
                    // Same fingerprint, different operator numbering: a
                    // 128-bit collision. Plan this waiter's own model so
                    // stage indices are valid for *its* graph; the result
                    // must not overwrite the published entry.
                    let solo = plan_via_workers(
                        shared,
                        worker_index,
                        &waiter.request,
                        job.fingerprint,
                        false,
                    )
                    .map(|(_, plan)| plan);
                    let _ = waiter.tx.send(solo);
                }
            }
        }
        Err(e) => {
            drop(inflight);
            for waiter in waiters {
                let _ = waiter.tx.send(Err(e.clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::{TenantClass, TenantSpec};
    use gp_cluster::Cluster;
    use gp_ir::zoo::{self, CandleUnoConfig, DlrmConfig};

    fn request() -> PlanRequest {
        PlanRequest::new(
            Arc::new(zoo::candle_uno(&CandleUnoConfig::tiny())),
            Cluster::summit_like(4),
            32,
        )
    }

    fn other_request() -> PlanRequest {
        PlanRequest::new(
            Arc::new(zoo::dlrm(&DlrmConfig::tiny())),
            Cluster::summit_like(4),
            64,
        )
    }

    #[test]
    fn plans_then_serves_from_the_shard_cache() {
        let service = FleetService::with_workers(FleetConfig::default(), Vec::new()).unwrap();
        let first = service.submit("t", request()).unwrap();
        assert_eq!(first.served(), Served::Planned);
        let plan = first.wait().expect("plans");
        let second = service.submit("t", request()).unwrap();
        assert_eq!(second.served(), Served::Cache);
        assert!(Arc::ptr_eq(&second.wait().unwrap(), &plan));
        let stats = service.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.shard_hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.planner_runs, 1);
        assert!(stats.queue_wait.count >= 1);
        assert!(stats.worker_rtt.count >= 1);
    }

    #[test]
    fn quota_exhaustion_is_overloaded() {
        struct Gate(crossbeam::channel::Receiver<()>, LocalWorker);
        impl PlanWorker for Gate {
            fn describe(&self) -> String {
                "gate".into()
            }
            fn plan(
                &self,
                request: &PlanRequest,
                warm: Option<WarmStart>,
            ) -> Result<String, WorkerFailure> {
                let _ = self.0.recv();
                self.1.plan(request, warm)
            }
        }
        let (release, gated) = unbounded::<()>();
        let config = FleetConfig {
            admission: AdmissionConfig {
                tenants: vec![(
                    "acme".into(),
                    TenantSpec {
                        class: TenantClass::Premium,
                        tokens: Some(1),
                    },
                )],
                ..AdmissionConfig::default()
            },
            ..FleetConfig::default()
        };
        let service = FleetService::with_workers(
            config,
            vec![Box::new(Gate(
                gated,
                LocalWorker::new(0, Telemetry::disabled()),
            ))],
        )
        .unwrap();
        let held = service.submit("acme", request()).unwrap();
        match service.submit("acme", other_request()) {
            Err(ServeError::Overloaded { tenant, depth }) => {
                assert_eq!(tenant, "acme");
                assert_eq!(depth, 1);
            }
            other => panic!("expected Overloaded, got {:?}", other.map(|t| t.served())),
        }
        release.send(()).unwrap();
        held.wait().expect("gated plan completes");
        assert_eq!(service.stats().quota_refusals, 1);
        // Token released: the tenant can submit again.
        release.send(()).unwrap();
        service
            .submit("acme", other_request())
            .unwrap()
            .wait()
            .expect("second request after release");
    }

    #[test]
    fn deep_backlog_sheds_new_misses_but_not_joins() {
        struct Gate(crossbeam::channel::Receiver<()>, LocalWorker);
        impl PlanWorker for Gate {
            fn describe(&self) -> String {
                "gate".into()
            }
            fn plan(
                &self,
                request: &PlanRequest,
                warm: Option<WarmStart>,
            ) -> Result<String, WorkerFailure> {
                let _ = self.0.recv();
                self.1.plan(request, warm)
            }
        }
        let (release, gated) = unbounded::<()>();
        let config = FleetConfig {
            admission: AdmissionConfig {
                max_queue_depth: Some(0),
                ..AdmissionConfig::default()
            },
            ..FleetConfig::default()
        };
        let service = FleetService::with_workers(
            config,
            vec![Box::new(Gate(
                gated,
                LocalWorker::new(0, Telemetry::disabled()),
            ))],
        )
        .unwrap();
        let first = service.submit("t", request()).unwrap();
        // Backlog is now 1 (> 0): a *different* request is shed...
        match service.submit("t", other_request()) {
            Err(ServeError::Overloaded { depth, .. }) => assert_eq!(depth, 1),
            other => panic!("expected shed, got {:?}", other.map(|t| t.served())),
        }
        // ...but an identical one joins the in-flight planning run.
        let joined = service.submit("t", request()).unwrap();
        assert_eq!(joined.served(), Served::Joined);
        release.send(()).unwrap();
        let plan = first.wait().unwrap();
        assert!(Arc::ptr_eq(&joined.wait().unwrap(), &plan));
        let stats = service.stats();
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.joins, 1);
    }

    #[test]
    fn unreachable_workers_fail_over_in_order() {
        struct Dead;
        impl PlanWorker for Dead {
            fn describe(&self) -> String {
                "dead".into()
            }
            fn plan(
                &self,
                _request: &PlanRequest,
                _warm: Option<WarmStart>,
            ) -> Result<String, WorkerFailure> {
                Err(WorkerFailure::Unavailable("gone".into()))
            }
        }
        // Drive the ring walk directly from a fixed start index so the
        // dead-first ordering is deterministic (through the service, the
        // dispatcher that grabs the job — and hence the start worker —
        // depends on thread scheduling).
        let service = FleetService::with_workers(
            FleetConfig {
                local_workers: 0,
                ..FleetConfig::default()
            },
            vec![
                Box::new(Dead),
                Box::new(LocalWorker::new(0, Telemetry::disabled())),
            ],
        )
        .unwrap();
        let req = request();
        let fp = req.fingerprint();
        plan_via_workers(&service.shared, 0, &req, fp, true)
            .expect("failed over to the live worker");
        let stats = service.stats();
        assert_eq!(stats.worker_errors, 1, "{stats:?}");
        assert_eq!(stats.retries, 1, "{stats:?}");
        assert_eq!(stats.planner_runs, 1);

        // An all-dead pool surfaces WorkerUnavailable with the attempt count.
        let dead_fleet = FleetService::with_workers(
            FleetConfig::default(),
            vec![Box::new(Dead), Box::new(Dead)],
        )
        .unwrap();
        match dead_fleet.submit("t", request()).unwrap().wait() {
            Err(ServeError::WorkerUnavailable { attempts }) => assert_eq!(attempts, 2),
            other => panic!("expected WorkerUnavailable, got {other:?}"),
        }
    }

    #[test]
    fn stopped_service_refuses_new_requests() {
        let mut service = FleetService::with_workers(FleetConfig::default(), Vec::new()).unwrap();
        service.shutdown();
        assert_eq!(
            service.submit("t", request()).err(),
            Some(ServeError::ServiceStopped)
        );
    }

    #[test]
    fn tenant_tiers_produce_distinct_cache_entries() {
        let config = FleetConfig {
            admission: AdmissionConfig {
                tenants: vec![
                    (
                        "cheap".into(),
                        TenantSpec {
                            class: TenantClass::Batch,
                            tokens: None,
                        },
                    ),
                    (
                        "rich".into(),
                        TenantSpec {
                            class: TenantClass::Premium,
                            tokens: None,
                        },
                    ),
                ],
                ..AdmissionConfig::default()
            },
            ..FleetConfig::default()
        };
        let service = FleetService::with_workers(config, Vec::new()).unwrap();
        let cheap = service.submit("cheap", request()).unwrap();
        let rich = service.submit("rich", request()).unwrap();
        assert_ne!(
            cheap.fingerprint(),
            rich.fingerprint(),
            "tier rewrite must scope the cache key"
        );
        cheap.wait().expect("batch-tier plan");
        rich.wait().expect("premium-tier plan");
        assert_eq!(service.stats().misses, 2);
    }
}
