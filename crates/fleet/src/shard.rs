//! The sharded plan cache: N independent [`PlanCache`] LRUs selected by
//! fingerprint range.
//!
//! The 128-bit request fingerprint is a uniform key (it is the output of
//! the WL-refined structural hash, see `gp-serve::fingerprint`), so a
//! *range* partition of the key space is also a uniform partition of the
//! keys: shard `i` owns the fingerprints whose high 64 bits fall in
//! `[i * 2^64 / N, (i+1) * 2^64 / N)`. The mapping is computed with a
//! widening multiply — `(hi64 * N) >> 64` — which is exact for every
//! shard count, not just powers of two, and never divides.
//!
//! Each shard has its own lock and its own LRU budget, so concurrent
//! lookups for different fingerprints contend only `1/N` of the time and
//! a burst of new plans in one key range cannot evict the whole cache.

use gp_partition::Plan;
use gp_serve::{Fingerprint, PlanCache};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Outcome of a sharded cache lookup.
pub enum ShardLookup {
    /// The shard holds a plan for the fingerprint and the recorded graph
    /// numbering matches the requester's.
    Hit(Arc<Plan>),
    /// The shard holds a plan for the fingerprint, but it was computed for
    /// a different graph numbering (fingerprint collision or renumbered
    /// isomorphic model); serving it would index the wrong operators.
    Rejected,
    /// No plan cached for the fingerprint.
    Miss,
}

struct Shard {
    cache: Mutex<PlanCache>,
    hits: AtomicU64,
    misses: AtomicU64,
    rejections: AtomicU64,
}

/// Per-shard counters, snapshotted by [`ShardedPlanCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Lookups served from this shard (numbering verified).
    pub hits: u64,
    /// Lookups that found nothing in this shard.
    pub misses: u64,
    /// Lookups that found a plan recorded under a different graph
    /// numbering and refused to serve it.
    pub rejections: u64,
    /// LRU evictions performed by this shard.
    pub evictions: u64,
    /// Plans currently held.
    pub len: u64,
    /// This shard's LRU budget.
    pub capacity: u64,
}

/// N independent [`PlanCache`] shards behind per-shard locks, selected by
/// fingerprint range.
pub struct ShardedPlanCache {
    shards: Vec<Shard>,
}

/// The shard owning a fingerprint under an `n`-way range partition of the
/// key space: `(high_64_bits * n) >> 64`, exact for every `n >= 1`.
pub fn shard_of(fingerprint: Fingerprint, n: usize) -> usize {
    let hi = (fingerprint.0 >> 64) as u64;
    ((u128::from(hi) * n as u128) >> 64) as usize
}

impl ShardedPlanCache {
    /// A cache of `shards` independent LRUs whose budgets sum to at least
    /// `total_capacity` (each shard gets `ceil(total / shards)`, minimum
    /// one plan).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or `total_capacity == 0` (the underlying
    /// [`PlanCache`] contract).
    pub fn new(shards: usize, total_capacity: usize) -> Self {
        assert!(shards > 0, "sharded cache needs at least one shard");
        assert!(total_capacity > 0, "sharded cache needs capacity >= 1");
        let per_shard = total_capacity.div_ceil(shards).max(1);
        ShardedPlanCache {
            shards: (0..shards)
                .map(|_| Shard {
                    cache: Mutex::new(PlanCache::new(per_shard)),
                    hits: AtomicU64::new(0),
                    misses: AtomicU64::new(0),
                    rejections: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index owning `fingerprint`.
    pub fn shard_of(&self, fingerprint: Fingerprint) -> usize {
        shard_of(fingerprint, self.shards.len())
    }

    /// Looks up a plan, verifying the recorded graph numbering, and counts
    /// the outcome on the owning shard.
    pub fn get(&self, fingerprint: &Fingerprint, numbering: u64) -> ShardLookup {
        let shard = &self.shards[self.shard_of(*fingerprint)];
        match shard.cache.lock().get(fingerprint) {
            Some((plan, cached_numbering)) if cached_numbering == numbering => {
                shard.hits.fetch_add(1, Ordering::Relaxed);
                ShardLookup::Hit(plan)
            }
            Some(_) => {
                shard.rejections.fetch_add(1, Ordering::Relaxed);
                ShardLookup::Rejected
            }
            None => {
                shard.misses.fetch_add(1, Ordering::Relaxed);
                ShardLookup::Miss
            }
        }
    }

    /// Like [`get`](Self::get), but without touching the hit/miss
    /// counters. Used for the double-check under the in-flight lock,
    /// which would otherwise count every miss twice.
    pub fn peek(&self, fingerprint: &Fingerprint, numbering: u64) -> ShardLookup {
        let shard = &self.shards[self.shard_of(*fingerprint)];
        match shard.cache.lock().get(fingerprint) {
            Some((plan, cached)) if cached == numbering => ShardLookup::Hit(plan),
            Some(_) => ShardLookup::Rejected,
            None => ShardLookup::Miss,
        }
    }

    /// Inserts a plan under its fingerprint and numbering signature into
    /// the owning shard, evicting that shard's LRU entry when full.
    pub fn insert(&self, fingerprint: Fingerprint, plan: Arc<Plan>, numbering: u64) {
        self.shards[self.shard_of(fingerprint)]
            .cache
            .lock()
            .insert(fingerprint, plan, numbering);
    }

    /// Plans held across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.cache.lock().len()).sum()
    }

    /// True when no shard holds a plan.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Evictions performed across all shards.
    pub fn evictions(&self) -> u64 {
        self.shards.iter().map(|s| s.cache.lock().evictions()).sum()
    }

    /// A per-shard counter snapshot, in shard order.
    pub fn stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| {
                let cache = s.cache.lock();
                ShardStats {
                    hits: s.hits.load(Ordering::Relaxed),
                    misses: s.misses.load(Ordering::Relaxed),
                    rejections: s.rejections.load(Ordering::Relaxed),
                    evictions: cache.evictions(),
                    len: cache.len() as u64,
                    capacity: cache.capacity() as u64,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_cluster::Cluster;
    use gp_ir::zoo::{self, CandleUnoConfig};
    use gp_partition::{GraphPipePlanner, Planner};
    use gp_serve::fingerprint::numbering_signature;
    use gp_serve::PlanRequest;

    fn planned() -> (PlanRequest, Arc<Plan>, u64) {
        let model = Arc::new(zoo::candle_uno(&CandleUnoConfig::tiny()));
        let cluster = Cluster::summit_like(4);
        let plan = GraphPipePlanner::new().plan(&model, &cluster, 32).unwrap();
        let numbering = numbering_signature(model.graph());
        (
            PlanRequest::new(model, cluster, 32),
            Arc::new(plan),
            numbering,
        )
    }

    #[test]
    fn range_partition_covers_every_shard_index() {
        for n in [1usize, 2, 3, 5, 8, 16] {
            assert_eq!(shard_of(Fingerprint(0), n), 0);
            assert_eq!(shard_of(Fingerprint(u128::MAX), n), n - 1);
            // Range partition: shard index is monotone in the key.
            let mut last = 0;
            for i in 0..64u32 {
                let fp = Fingerprint(u128::from(u64::MAX / 63 * u64::from(i)) << 64);
                let s = shard_of(fp, n);
                assert!(s >= last && s < n, "shard {s} out of order for n={n}");
                last = s;
            }
        }
    }

    #[test]
    fn hit_miss_and_rejection_are_counted_per_shard() {
        let (request, plan, numbering) = planned();
        let fp = request.fingerprint();
        let cache = ShardedPlanCache::new(4, 8);
        assert!(matches!(cache.get(&fp, numbering), ShardLookup::Miss));
        cache.insert(fp, Arc::clone(&plan), numbering);
        assert!(matches!(cache.get(&fp, numbering), ShardLookup::Hit(_)));
        // Wrong numbering: the shard must refuse the plan.
        assert!(matches!(
            cache.get(&fp, numbering ^ 1),
            ShardLookup::Rejected
        ));
        let owner = cache.shard_of(fp);
        let stats = cache.stats();
        assert_eq!(stats[owner].hits, 1);
        assert_eq!(stats[owner].misses, 1);
        assert_eq!(stats[owner].rejections, 1);
        for (i, s) in stats.iter().enumerate() {
            if i != owner {
                assert_eq!((s.hits, s.misses, s.rejections), (0, 0, 0));
            }
        }
    }

    #[test]
    fn tiny_shards_evict_and_pin_the_eviction_count() {
        // One shard of capacity 1: every distinct insert beyond the first
        // evicts, and the count is visible through the sharded stats.
        let (_, plan, numbering) = planned();
        let cache = ShardedPlanCache::new(1, 1);
        for i in 0..4u128 {
            cache.insert(Fingerprint(i << 64), Arc::clone(&plan), numbering);
        }
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 3);
        assert_eq!(cache.stats()[0].evictions, 3);
    }

    #[test]
    fn capacity_splits_across_shards() {
        let cache = ShardedPlanCache::new(3, 8);
        let stats = cache.stats();
        assert_eq!(stats.len(), 3);
        // ceil(8/3) = 3 per shard.
        assert!(stats.iter().all(|s| s.capacity == 3));
    }
}
