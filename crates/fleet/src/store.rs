//! The persistent artifact store: a directory of plan artifacts plus a
//! versioned index.
//!
//! Layout (all inside one store directory):
//!
//! * `<fingerprint>.json` — one plan artifact per request fingerprint
//!   (32 lowercase hex digits), byte-for-byte the canonical artifact the
//!   fleet serves (`graphpipe-plan` codec, search stats zeroed — see
//!   [`crate::canonical_artifact`]);
//! * `index.json` — the versioned index:
//!
//! ```json
//! {
//!   "format": "graphpipe-store-index",
//!   "version": 1,
//!   "artifacts": [
//!     {"fingerprint": "<32 hex>", "numbering": "<16 hex>"}
//!   ]
//! }
//! ```
//!
//! `numbering` is the [`numbering_signature`] of the graph the artifact
//! was planned for (plans carry raw operator ids; an artifact is only
//! reused when the requester's numbering matches). It may be `null` for
//! entries recovered by a rebuild — decoding still re-validates the
//! artifact against the requester's graph, so a `null` entry degrades to
//! "decode and verify before trusting", never to silent reuse.
//!
//! On open, a missing or corrupt index is **rebuilt** by scanning the
//! directory for artifact files and reading each file's `format` marker
//! and `fingerprint` header — a warm restart never replans just because
//! the index was lost. Writes are atomic (temp file + rename) and the
//! index is rewritten after every artifact insert, entries sorted by
//! fingerprint, so the index bytes are a pure function of the store
//! contents.
//!
//! [`numbering_signature`]: gp_serve::fingerprint::numbering_signature
//!
//! gp-lint: deterministic — this module's outputs feed plan
//! fingerprints or the artifact codec; `cargo xtask lint` scans it for
//! nondeterminism hazards (DESIGN.md §"Determinism lint").

use gp_serve::json::Json;
use gp_serve::Fingerprint;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// The index `format` marker.
pub const INDEX_FORMAT: &str = "graphpipe-store-index";

/// The index version this build writes.
pub const INDEX_VERSION: u64 = 1;

/// Name of the index file inside the store directory.
pub const INDEX_FILE: &str = "index.json";

/// What the index records per artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct IndexEntry {
    /// Numbering signature of the planned graph; `None` when the entry
    /// was recovered by an index rebuild (the artifact file itself does
    /// not carry it).
    numbering: Option<u64>,
}

/// A directory-backed store of plan artifacts with a versioned index.
pub struct ArtifactStore {
    dir: PathBuf,
    index: Mutex<BTreeMap<Fingerprint, IndexEntry>>,
    /// Whether `open` found no usable index and recovered by scanning.
    rebuilt: bool,
}

impl ArtifactStore {
    /// Opens (creating if needed) a store at `dir`, loading the index or
    /// rebuilding it from the artifact files when it is missing or
    /// corrupt.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures (directory creation, file reads,
    /// index persistence).
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<ArtifactStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let (index, rebuilt) = match read_index(&dir) {
            Some(index) => (index, false),
            None => {
                let index = scan_artifacts(&dir)?;
                write_index(&dir, &index)?;
                (index, true)
            }
        };
        Ok(ArtifactStore {
            dir,
            index: Mutex::new(index),
            rebuilt,
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Whether opening recovered the index by scanning artifact files
    /// (missing or corrupt `index.json`).
    pub fn rebuilt_index(&self) -> bool {
        self.rebuilt
    }

    /// Artifacts currently indexed.
    pub fn len(&self) -> usize {
        self.index.lock().len()
    }

    /// True when the store indexes no artifacts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All indexed fingerprints, ascending.
    pub fn fingerprints(&self) -> Vec<Fingerprint> {
        self.index.lock().keys().copied().collect()
    }

    /// The artifact bytes and recorded numbering signature for a
    /// fingerprint, or `None` when the store has no such artifact (or its
    /// file vanished out from under the index, in which case the entry is
    /// dropped).
    pub fn get(&self, fingerprint: &Fingerprint) -> Option<(String, Option<u64>)> {
        let entry = *self.index.lock().get(fingerprint)?;
        match std::fs::read_to_string(self.artifact_path(fingerprint)) {
            Ok(text) => Some((text, entry.numbering)),
            Err(_) => {
                self.index.lock().remove(fingerprint);
                None
            }
        }
    }

    /// Persists artifact bytes under a fingerprint and records the graph
    /// numbering they were planned for; both the artifact file and the
    /// index are written atomically (temp file + rename).
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures; on error the in-memory index is
    /// left unchanged.
    pub fn put(&self, fingerprint: Fingerprint, text: &str, numbering: u64) -> io::Result<()> {
        write_atomic(&self.artifact_path(&fingerprint), text)?;
        let snapshot = {
            let mut index = self.index.lock();
            index.insert(
                fingerprint,
                IndexEntry {
                    numbering: Some(numbering),
                },
            );
            index.clone()
        };
        write_index(&self.dir, &snapshot)
    }

    /// Records the numbering signature for an artifact whose index entry
    /// lost it (an index rebuild), after a successful validated decode
    /// against a graph with that signature.
    pub fn confirm_numbering(&self, fingerprint: Fingerprint, numbering: u64) {
        let mut index = self.index.lock();
        if let Some(entry) = index.get_mut(&fingerprint) {
            if entry.numbering.is_none() {
                entry.numbering = Some(numbering);
                let snapshot = index.clone();
                drop(index);
                // Best-effort persistence: the in-memory index is already
                // correct, and a lost write only costs a re-validation on
                // the next restart.
                let _ = write_index(&self.dir, &snapshot);
            }
        }
    }

    fn artifact_path(&self, fingerprint: &Fingerprint) -> PathBuf {
        self.dir.join(format!("{fingerprint}.json"))
    }
}

/// Writes `text` to `path` atomically: temp file in the same directory,
/// then rename.
fn write_atomic(path: &Path, text: &str) -> io::Result<()> {
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)
}

/// Parses `index.json`; `None` when missing, malformed, unversioned, or
/// newer than this build understands (any of which trigger a rebuild).
fn read_index(dir: &Path) -> Option<BTreeMap<Fingerprint, IndexEntry>> {
    let text = std::fs::read_to_string(dir.join(INDEX_FILE)).ok()?;
    let doc = Json::parse(&text).ok()?;
    if doc.get("format")?.as_str()? != INDEX_FORMAT {
        return None;
    }
    if doc.get("version")?.as_u64()? > INDEX_VERSION {
        return None;
    }
    let mut index = BTreeMap::new();
    for entry in doc.get("artifacts")?.as_arr()? {
        let fingerprint = Fingerprint::parse(entry.get("fingerprint")?.as_str()?)?;
        let numbering = match entry.get("numbering")? {
            Json::Null => None,
            other => Some(u64::from_str_radix(other.as_str()?, 16).ok()?),
        };
        index.insert(fingerprint, IndexEntry { numbering });
    }
    Some(index)
}

/// Rebuilds the index by scanning the directory for plan-artifact files:
/// every `*.json` (except the index) whose `format` marker is the plan
/// codec's and whose `fingerprint` header parses. Files are visited in
/// sorted name order so the rebuilt index is reproducible.
fn scan_artifacts(dir: &Path) -> io::Result<BTreeMap<Fingerprint, IndexEntry>> {
    let mut names: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.extension().is_some_and(|e| e == "json")
                && p.file_name().is_some_and(|n| n != INDEX_FILE)
        })
        .collect();
    names.sort();
    let mut index = BTreeMap::new();
    for path in names {
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let Ok(doc) = Json::parse(&text) else {
            continue;
        };
        if doc.get("format").and_then(Json::as_str) != Some(gp_serve::artifact::FORMAT) {
            continue;
        }
        let Some(fingerprint) = doc
            .get("fingerprint")
            .and_then(Json::as_str)
            .and_then(Fingerprint::parse)
        else {
            continue;
        };
        // The artifact codec does not carry the numbering signature; the
        // first validated decode backfills it (`confirm_numbering`).
        index.insert(fingerprint, IndexEntry { numbering: None });
    }
    Ok(index)
}

/// Writes the index document atomically, entries sorted by fingerprint.
fn write_index(dir: &Path, index: &BTreeMap<Fingerprint, IndexEntry>) -> io::Result<()> {
    let artifacts = index
        .iter()
        .map(|(fp, entry)| {
            Json::Obj(vec![
                ("fingerprint".into(), Json::Str(fp.to_string())),
                (
                    "numbering".into(),
                    match entry.numbering {
                        Some(n) => Json::Str(format!("{n:016x}")),
                        None => Json::Null,
                    },
                ),
            ])
        })
        .collect();
    let doc = Json::Obj(vec![
        ("format".into(), Json::Str(INDEX_FORMAT.into())),
        ("version".into(), Json::Int(i128::from(INDEX_VERSION))),
        ("artifacts".into(), Json::Arr(artifacts)),
    ]);
    write_atomic(&dir.join(INDEX_FILE), &doc.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_cluster::Cluster;
    use gp_ir::zoo::{self, CandleUnoConfig};
    use gp_partition::{GraphPipePlanner, Planner};
    use gp_serve::fingerprint::numbering_signature;
    use gp_serve::{artifact, PlanRequest};
    use std::sync::Arc;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gp-fleet-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn artifact_text() -> (Fingerprint, String, u64) {
        let model = Arc::new(zoo::candle_uno(&CandleUnoConfig::tiny()));
        let cluster = Cluster::summit_like(4);
        let plan = GraphPipePlanner::new().plan(&model, &cluster, 32).unwrap();
        let fp = PlanRequest::new(Arc::clone(&model), cluster, 32).fingerprint();
        let numbering = numbering_signature(model.graph());
        (fp, artifact::encode_plan(&plan, Some(fp)), numbering)
    }

    #[test]
    fn put_get_round_trips_bytes_and_numbering() {
        let dir = temp_dir("roundtrip");
        let (fp, text, numbering) = artifact_text();
        let store = ArtifactStore::open(&dir).unwrap();
        assert!(store.is_empty());
        store.put(fp, &text, numbering).unwrap();
        let (read, n) = store.get(&fp).unwrap();
        assert_eq!(read, text);
        assert_eq!(n, Some(numbering));
        assert_eq!(store.fingerprints(), vec![fp]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_loads_the_persisted_index() {
        let dir = temp_dir("reopen");
        let (fp, text, numbering) = artifact_text();
        {
            let store = ArtifactStore::open(&dir).unwrap();
            store.put(fp, &text, numbering).unwrap();
        }
        let store = ArtifactStore::open(&dir).unwrap();
        assert!(!store.rebuilt_index(), "index.json should have loaded");
        let (read, n) = store.get(&fp).unwrap();
        assert_eq!(read, text);
        assert_eq!(n, Some(numbering));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_or_corrupt_index_rebuilds_from_artifact_files() {
        let dir = temp_dir("rebuild");
        let (fp, text, numbering) = artifact_text();
        {
            let store = ArtifactStore::open(&dir).unwrap();
            store.put(fp, &text, numbering).unwrap();
        }
        for sabotage in ["missing", "garbage"] {
            let index_path = dir.join(INDEX_FILE);
            match sabotage {
                "missing" => std::fs::remove_file(&index_path).unwrap(),
                _ => std::fs::write(&index_path, "not json at all").unwrap(),
            }
            let store = ArtifactStore::open(&dir).unwrap();
            assert!(store.rebuilt_index(), "{sabotage}: expected a rebuild");
            let (read, n) = store.get(&fp).unwrap();
            assert_eq!(read, text, "{sabotage}: artifact bytes survived");
            // A rebuilt entry has no numbering until a decode confirms it.
            assert_eq!(n, None);
            store.confirm_numbering(fp, numbering);
            assert_eq!(store.get(&fp).unwrap().1, Some(numbering));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rebuild_ignores_non_artifact_files() {
        let dir = temp_dir("ignore");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("notes.json"), "{\"format\":\"other\"}").unwrap();
        std::fs::write(dir.join("junk.txt"), "junk").unwrap();
        let store = ArtifactStore::open(&dir).unwrap();
        assert!(store.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn newer_index_version_triggers_a_rebuild_not_a_misread() {
        let dir = temp_dir("version");
        let (fp, text, numbering) = artifact_text();
        {
            let store = ArtifactStore::open(&dir).unwrap();
            store.put(fp, &text, numbering).unwrap();
        }
        let newer = format!(
            "{{\"format\":\"{INDEX_FORMAT}\",\"version\":{},\"artifacts\":[]}}",
            INDEX_VERSION + 1
        );
        std::fs::write(dir.join(INDEX_FILE), newer).unwrap();
        let store = ArtifactStore::open(&dir).unwrap();
        assert!(store.rebuilt_index());
        assert_eq!(store.len(), 1, "artifact recovered by the scan");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
