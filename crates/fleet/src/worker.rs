//! Planner workers: the [`PlanWorker`] trait, the in-process
//! [`LocalWorker`], the socket-backed [`RemoteWorker`] client, and the
//! [`WorkerServer`] that turns any host into a planning backend.
//!
//! Every worker — local thread or remote process — satisfies the same
//! contract: given a [`PlanRequest`] and an optional warm-start hint,
//! produce the **canonical artifact text** for that request
//! ([`crate::canonical_artifact`]: the plan codec with search stats
//! zeroed). Because the artifact is a pure function of the request, the
//! front-end cannot tell local and remote workers apart by their output —
//! which is exactly the fleet's determinism contract, and what lets it
//! retry a dead worker on any other worker without changing the answer.

use crate::protocol::{
    self, canonical_artifact, classify_reply, read_frame, write_frame, WireReply,
};
use gp_baselines::{PipeDreamPlanner, PiperPlanner};
use gp_obs::Telemetry;
use gp_partition::{GraphPipePlanner, PlanError, Planner, WarmStart};
use gp_serve::{PlanRequest, ServeError, ServePlanner};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

/// Why a worker could not produce an artifact.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerFailure {
    /// The worker itself is gone or unreachable (connect/read/write
    /// failure, malformed reply). Retryable on another worker.
    Unavailable(String),
    /// The worker ran the planner and planning failed. Deterministic —
    /// every worker would fail the same way — so not retryable.
    Failed(ServeError),
}

/// A planning backend: anything that maps a request (plus warm hint) to
/// the canonical artifact text.
pub trait PlanWorker: Send + Sync {
    /// Human-readable identity for stats and error messages.
    fn describe(&self) -> String;

    /// Plans the request and returns the canonical artifact text.
    ///
    /// # Errors
    ///
    /// [`WorkerFailure::Unavailable`] when the backend is unreachable,
    /// [`WorkerFailure::Failed`] when planning itself failed.
    fn plan(&self, request: &PlanRequest, warm: Option<WarmStart>)
        -> Result<String, WorkerFailure>;
}

/// Plans a request in-process: build the requested planner, run it,
/// statically verify the strategy, and encode the canonical artifact.
///
/// This mirrors `gp-serve`'s planner construction (the planner choice and
/// warm-start plumbing) so a fleet worker and a `PlanService` produce the
/// same strategy for the same request.
///
/// # Errors
///
/// [`ServeError::Plan`] when the search fails, [`ServeError::InvalidPlan`]
/// when the produced strategy violates a static invariant.
pub fn plan_locally(
    request: &PlanRequest,
    warm: Option<WarmStart>,
    telemetry: &Telemetry,
) -> Result<String, ServeError> {
    let planner: Box<dyn Planner> = match request.planner {
        ServePlanner::GraphPipe => {
            let planner = GraphPipePlanner::with_options(request.options.clone())
                .with_telemetry(telemetry.clone());
            Box::new(match warm {
                Some(w) => planner.with_warm_start(w),
                None => planner,
            })
        }
        // The baselines have no iterative search to seed.
        ServePlanner::PipeDream => {
            Box::new(PipeDreamPlanner::with_options(request.options.clone()))
        }
        ServePlanner::Piper => Box::new(PiperPlanner::with_options(request.options.clone())),
    };
    let plan = planner
        .plan(&request.model, &request.cluster, request.mini_batch)
        .map_err(ServeError::Plan)?;
    // Same trust boundary as gp-serve: no unverified plan leaves a worker.
    gp_verify::verify_strategy(&request.model, &request.cluster, &plan)
        .into_result()
        .map_err(ServeError::InvalidPlan)?;
    Ok(canonical_artifact(&plan, request.fingerprint()))
}

/// An in-process worker: plans on the calling dispatcher thread.
pub struct LocalWorker {
    index: usize,
    telemetry: Telemetry,
}

impl LocalWorker {
    /// A local worker labelled `local-<index>` in stats and errors.
    pub fn new(index: usize, telemetry: Telemetry) -> Self {
        LocalWorker { index, telemetry }
    }
}

impl PlanWorker for LocalWorker {
    fn describe(&self) -> String {
        format!("local-{}", self.index)
    }

    fn plan(
        &self,
        request: &PlanRequest,
        warm: Option<WarmStart>,
    ) -> Result<String, WorkerFailure> {
        plan_locally(request, warm, &self.telemetry).map_err(WorkerFailure::Failed)
    }
}

/// A remote worker client: one TCP connection per request (request frame
/// out, reply frame back, close). Reconnect-per-request keeps worker
/// death visible as an immediate transport error instead of a stuck
/// stream.
pub struct RemoteWorker {
    addr: String,
}

impl RemoteWorker {
    /// A client for the worker at `addr` (e.g. `"127.0.0.1:7070"`).
    pub fn new(addr: impl Into<String>) -> Self {
        RemoteWorker { addr: addr.into() }
    }
}

impl PlanWorker for RemoteWorker {
    fn describe(&self) -> String {
        format!("remote-{}", self.addr)
    }

    fn plan(
        &self,
        request: &PlanRequest,
        warm: Option<WarmStart>,
    ) -> Result<String, WorkerFailure> {
        let unavailable = |what: &str, e: &dyn std::fmt::Display| -> WorkerFailure {
            WorkerFailure::Unavailable(format!("{}: {what}: {e}", self.addr))
        };
        let mut stream = TcpStream::connect(&self.addr).map_err(|e| unavailable("connect", &e))?;
        write_frame(
            &mut stream,
            &protocol::encode_request(request, warm.as_ref()),
        )
        .map_err(|e| unavailable("send", &e))?;
        let reply = read_frame(&mut stream).map_err(|e| unavailable("recv", &e))?;
        match classify_reply(&reply) {
            Ok(WireReply::Artifact(text)) => Ok(text),
            Ok(WireReply::Error(plan_error)) => {
                Err(WorkerFailure::Failed(ServeError::Plan(plan_error)))
            }
            Err(e) => Err(unavailable("reply", &e)),
        }
    }
}

/// A TCP planning backend: accepts connections, decodes plan requests,
/// plans locally, and replies with the canonical artifact (or the error
/// envelope).
pub struct WorkerServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    served: Arc<AtomicU64>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl WorkerServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop on a background thread.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: &str, telemetry: Telemetry) -> io::Result<WorkerServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let served = Arc::new(AtomicU64::new(0));
        let accept_stop = Arc::clone(&stop);
        let accept_served = Arc::clone(&served);
        let accept_thread = thread::Builder::new()
            .name(format!("gp-fleet-worker-{}", addr.port()))
            .spawn(move || {
                let mut handlers = Vec::new();
                while let Ok((stream, _)) = listener.accept() {
                    if accept_stop.load(Ordering::Acquire) {
                        break;
                    }
                    let telemetry = telemetry.clone();
                    let served = Arc::clone(&accept_served);
                    handlers.push(thread::spawn(move || {
                        handle_connection(stream, &telemetry, &served);
                    }));
                }
                for h in handlers {
                    let _ = h.join();
                }
            })?;
        Ok(WorkerServer {
            addr,
            stop,
            served,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (with the resolved port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests this server has answered (successfully or with an error
    /// envelope).
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Stops the accept loop and joins all handler threads. Idempotent;
    /// also runs on drop.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // The accept loop is blocked in accept(); a self-connection wakes
        // it so it can observe the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(mut stream: TcpStream, telemetry: &Telemetry, served: &AtomicU64) {
    let Ok(text) = read_frame(&mut stream) else {
        return; // Peer died mid-request; nothing to answer.
    };
    let reply = match protocol::decode_request(&text) {
        Ok((request, warm)) => match plan_locally(&request, warm, telemetry) {
            Ok(artifact) => artifact,
            Err(ServeError::Plan(e)) => protocol::encode_plan_error(&e),
            Err(other) => {
                protocol::encode_plan_error(&PlanError::Internal(format!("worker: {other}")))
            }
        },
        Err(e) => protocol::encode_plan_error(&PlanError::Internal(format!("protocol: {e}"))),
    };
    served.fetch_add(1, Ordering::Relaxed);
    let _ = write_frame(&mut stream, &reply);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_cluster::Cluster;
    use gp_ir::zoo::{self, CandleUnoConfig, DlrmConfig};
    use std::sync::Arc as StdArc;

    fn request() -> PlanRequest {
        PlanRequest::new(
            StdArc::new(zoo::candle_uno(&CandleUnoConfig::tiny())),
            Cluster::summit_like(4),
            32,
        )
    }

    #[test]
    fn local_worker_output_is_the_canonical_artifact() {
        let request = request();
        let worker = LocalWorker::new(0, Telemetry::disabled());
        let text = worker.plan(&request, None).expect("plans");
        let (plan, fp) =
            gp_serve::artifact::decode_plan(&text, request.model.graph(), &request.cluster)
                .expect("artifact decodes and validates");
        assert_eq!(fp, Some(request.fingerprint()));
        assert_eq!(text, canonical_artifact(&plan, request.fingerprint()));
    }

    #[test]
    fn warm_started_worker_produces_identical_bytes() {
        let request = request();
        let worker = LocalWorker::new(0, Telemetry::disabled());
        let cold = worker.plan(&request, None).expect("cold plan");
        let warm = worker
            .plan(
                &request,
                Some(WarmStart {
                    tps_hint: 2.0e-7,
                    micro_batch: Some(4),
                }),
            )
            .expect("warm plan");
        assert_eq!(cold, warm, "warm start must never change the artifact");
    }

    #[test]
    fn loopback_server_matches_local_planning_byte_for_byte() {
        let mut server = WorkerServer::bind("127.0.0.1:0", Telemetry::disabled()).unwrap();
        let remote = RemoteWorker::new(server.addr().to_string());
        for request in [
            request(),
            PlanRequest::new(
                StdArc::new(zoo::dlrm(&DlrmConfig::tiny())),
                Cluster::summit_like(4),
                64,
            )
            .with_planner(ServePlanner::PipeDream),
        ] {
            let local = plan_locally(&request, None, &Telemetry::disabled()).unwrap();
            let served = remote.plan(&request, None).expect("remote plans");
            assert_eq!(
                served, local,
                "remote and local artifacts must be identical"
            );
        }
        assert_eq!(server.served(), 2);
        server.shutdown();
    }

    #[test]
    fn dead_worker_reports_unavailable() {
        // Bind then immediately drop to get a port with no listener.
        let port = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().port()
        };
        let remote = RemoteWorker::new(format!("127.0.0.1:{port}"));
        match remote.plan(&request(), None) {
            Err(WorkerFailure::Unavailable(why)) => {
                assert!(why.contains("connect"), "{why}")
            }
            other => panic!("expected Unavailable, got {other:?}"),
        }
    }

    #[test]
    fn malformed_request_gets_an_error_envelope() {
        let mut server = WorkerServer::bind("127.0.0.1:0", Telemetry::disabled()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write_frame(&mut stream, "this is not a plan request").unwrap();
        let reply = read_frame(&mut stream).unwrap();
        match classify_reply(&reply).unwrap() {
            WireReply::Error(PlanError::Internal(msg)) => {
                assert!(msg.contains("protocol"), "{msg}")
            }
            _ => panic!("expected an internal-error envelope"),
        }
        server.shutdown();
    }
}
