//! # graphpipe — graph pipeline parallelism for DNN training
//!
//! The user-facing facade of the GraphPipe (ASPLOS 2025) reproduction:
//! everything in [`gp_core`] re-exported under the name downstream code,
//! the repository examples, and the integration tests import, plus the
//! [`serve`] subsystem.
//!
//! The front door is the typed [`Session`] API: pin a planning problem
//! once (`model × cluster × mini-batch × options`), then ask it for typed
//! artifacts — a [`PlannedStrategy`] that simulates, executes, and
//! persists itself; a [`Comparison`] table across planners; a cached
//! serving handle. Every method returns the one [`Error`] type, which
//! wraps and [`source`](std::error::Error::source)-chains the subsystem
//! errors (`PlanError`, `SimError`, `ExecError`, `ServeError`).
//!
//! # Quickstart
//!
//! ```
//! use graphpipe::prelude::*;
//!
//! // 1. Pin the planning problem: model, cluster, mini-batch.
//! let session = Session::builder()
//!     .model(zoo::mmt(&zoo::MmtConfig::tiny()))
//!     .cluster(Cluster::summit_like(4))
//!     .mini_batch(32)
//!     .options(PlanOptions::default().with_max_micro_batches(16))
//!     .build()?;
//!
//! // 2. Plan with GraphPipe; the strategy knows how to simulate itself.
//! let strategy = session.plan(PlannerKind::GraphPipe)?;
//! let report = strategy.simulate()?;
//! assert!(report.throughput > 0.0);
//!
//! // 3. Persist the strategy as a lossless, fingerprinted artifact
//! //    (per-phase search walls are measurement, not plan data — the
//! //    codec doesn't carry them, so zero them before comparing).
//! let restored = session.load_artifact(&strategy.artifact(), PlannerKind::GraphPipe)?;
//! let strip = |p: &Plan| {
//!     let mut p = p.clone();
//!     p.stats.zero_walls();
//!     p
//! };
//! assert_eq!(strip(restored.plan()), strip(strategy.plan()));
//!
//! // 4. ...and compare against the sequential baseline (Figure 6c).
//! let table = session.compare(&[PlannerKind::GraphPipe, PlannerKind::PipeDream]);
//! assert!(table.speedup(PlannerKind::GraphPipe, PlannerKind::PipeDream).unwrap() >= 1.0);
//! # Ok::<(), graphpipe::Error>(())
//! ```
//!
//! # Module tour
//!
//! * [`session`] — the [`Session`] builder, [`PlannedStrategy`],
//!   [`Comparison`], and the serving handle ([`SessionService`]);
//! * [`ir`] — computation-graph IR, SP decomposition, model zoo;
//! * [`cluster`] — device profiles and interconnect topology;
//! * [`cost`] — roofline cost/memory/communication models;
//! * [`sched`] — the §6 micro-batch scheduler;
//! * [`partition`] — the §5 partitioner ([`prelude::GraphPipePlanner`]);
//! * [`baselines`] — PipeDream/Piper planners and the Figure 9 ablation;
//! * [`sim`] — the discrete-event simulator ([`simulate_plan`]);
//! * [`exec`] — the threaded runtime with real tensor math
//!   ([`PlannedStrategy::execute`]);
//! * [`prelude`] — one-stop imports, plus the [`planner`] / [`evaluate`] /
//!   [`simulate_plan`] free-function shims over the session machinery;
//! * [`serve`] — the plan-serving subsystem: canonical graph fingerprints,
//!   the lossless plan artifact codec, and the cached, single-flight
//!   [`serve::PlanService`] that [`Session::serve`] hands requests to;
//! * [`fleet`] — distributed plan serving: the sharded cache, persistent
//!   artifact store, remote planner workers, and multi-tenant admission
//!   behind [`Session::serve_fleet`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use gp_core::*;

/// Plan serving: fingerprints, artifacts, cache, service (re-export of
/// `gp-serve`).
pub mod serve {
    pub use gp_serve::*;
}
