//! # graphpipe — graph pipeline parallelism for DNN training
//!
//! The user-facing facade of the GraphPipe (ASPLOS 2025) reproduction:
//! everything in [`gp_core`] re-exported under the name downstream code,
//! the repository examples, and the integration tests import. See the
//! [`gp_core`] crate for the full module tour; the short version:
//!
//! * [`ir`] — computation-graph IR, SP decomposition, model zoo;
//! * [`cluster`] — device profiles and interconnect topology;
//! * [`cost`] — roofline cost/memory/communication models;
//! * [`sched`] — the §6 micro-batch scheduler;
//! * [`partition`] — the §5 partitioner ([`prelude::GraphPipePlanner`]);
//! * [`baselines`] — PipeDream/Piper planners and the Figure 9 ablation;
//! * [`sim`] — the discrete-event simulator ([`simulate_plan`]);
//! * [`exec`] — the threaded runtime with real tensor math;
//! * [`prelude`] — one-stop imports, plus [`planner`] and [`evaluate`];
//! * [`serve`] — the plan-serving subsystem: canonical graph fingerprints,
//!   the lossless plan artifact codec, and the cached, single-flight
//!   [`serve::PlanService`].
//!
//! # Quickstart
//!
//! ```
//! use graphpipe::prelude::*;
//!
//! // A small multi-branch model on a Summit-like 4-GPU cluster.
//! let model = zoo::mmt(&zoo::MmtConfig::two_branch());
//! let cluster = Cluster::summit_like(4);
//!
//! // Plan with GraphPipe and with the sequential baseline...
//! let gpp = GraphPipePlanner::new().plan(&model, &cluster, 64)?;
//! let spp = PipeDreamPlanner::new().plan(&model, &cluster, 64)?;
//!
//! // ...and execute both strategies on the same simulated runtime.
//! let t_gpp = graphpipe::simulate_plan(&model, &cluster, &gpp)?.throughput;
//! let t_spp = graphpipe::simulate_plan(&model, &cluster, &spp)?.throughput;
//! assert!(t_gpp >= t_spp); // branches pay off (Figure 6c)
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use gp_core::*;

/// Plan serving: fingerprints, artifacts, cache, service (re-export of
/// `gp-serve`).
pub mod serve {
    pub use gp_serve::*;
}
