//! Planning arbitrary DAGs: SP recognition, SP-ization, and the
//! clustering fallback.
//!
//! The GraphPipe DP core (paper §5) consumes a series-parallel tree, but
//! production graphs — deep GNN layer pipelines, skip-connection
//! transformers — arrive as raw DAGs, and hand-authoring the tree is
//! error-prone even when one exists. This module recovers the tree
//! automatically, walking a three-rung fallback ladder
//! (DESIGN.md §"Arbitrary DAGs"):
//!
//! 1. **Recognition** ([`recognize`]): a comparability decomposition.
//!    Nodes comparable (by reachability) with every other node in scope
//!    are *series separators*; they are totally ordered and split the
//!    remaining nodes into segments, whose undirected connected
//!    components become parallel branches, recursively. When the
//!    decomposition bottoms out in singletons everywhere, the tree
//!    represents the DAG exactly ([`PlanPath::ExactSp`]).
//! 2. **SP-ization**: an irreducible component (no separators, one
//!    component) is laid out as a *level chain* — `Chain` of `Branches`
//!    keyed by longest-path depth. Every edge is preserved (same-level
//!    nodes are never adjacent; cross-level edges flow forward), at the
//!    price of *distortion*: a skip edge's activation transits the
//!    intermediate chain positions. [`transit_volume`] quantifies that
//!    extra communication volume in bytes; the result is reported as
//!    [`PlanPath::SpIzed`] and re-checked exactly by `gp-verify`.
//! 3. **Clustering** ([`PlanPath::Clustered`]): past the distortion
//!    budget, fall back to a flat topological chain coarsened
//!    Piper-style into `ceil(ops / unit_ops)` unit groups — the same
//!    granularity `Session::compare`'s Piper arm uses.
//!
//! [`plan_dag`] drives the ladder end to end and is what
//! `Session::builder().model_dag(graph)` calls.
//!
//! gp-lint: deterministic — this module's outputs feed plan
//! fingerprints or the artifact codec; `cargo xtask lint` scans it for
//! nondeterminism hazards (DESIGN.md §"Determinism lint").

use crate::graph::{Graph, GraphError, OpId};
use crate::sp::{PlanPath, SpBlock, SpModel};

/// Default distortion budget (1 GiB of extra activation transit) before
/// [`plan_dag`] abandons SP-ization for the clustering fallback.
pub const DEFAULT_DISTORTION_BUDGET: u64 = 1 << 30;

/// Default unit-op group size for the clustering fallback — matches the
/// Piper comparison granularity (`Session::compare`).
pub const DEFAULT_UNIT_OPS: u32 = 8;

/// Knobs for the [`plan_dag`] fallback ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DagOptions {
    /// Maximum SP-ization distortion (bytes of extra activation transit,
    /// see [`transit_volume`]) before falling back to clustering.
    pub distortion_budget: u64,
    /// Unit-op group size of the clustering fallback.
    pub unit_ops: u32,
}

impl Default for DagOptions {
    fn default() -> Self {
        DagOptions {
            distortion_budget: DEFAULT_DISTORTION_BUDGET,
            unit_ops: DEFAULT_UNIT_OPS,
        }
    }
}

impl DagOptions {
    /// Sets the distortion budget.
    pub fn with_distortion_budget(mut self, bytes: u64) -> Self {
        self.distortion_budget = bytes;
        self
    }

    /// Sets the clustering unit size.
    ///
    /// # Panics
    ///
    /// Panics when `unit_ops` is zero.
    pub fn with_unit_ops(mut self, unit_ops: u32) -> Self {
        assert!(unit_ops > 0, "unit_ops must be positive");
        self.unit_ops = unit_ops;
        self
    }
}

/// Plans an arbitrary DAG into an [`SpModel`], walking the recognition →
/// SP-ization → clustering ladder and recording the rung taken in the
/// model's [`PlanPath`].
///
/// # Errors
///
/// Returns the graph's own validation error ([`GraphError`]) when the
/// input is not a well-formed computation graph; the ladder itself always
/// succeeds on a valid graph.
pub fn plan_dag(
    name: impl Into<String>,
    graph: Graph,
    options: &DagOptions,
) -> Result<SpModel, GraphError> {
    graph.validate()?;
    let (root, exact) = decompose(&graph);
    if exact {
        return Ok(
            SpModel::new(name, graph, root).expect("recognized SP tree is valid by construction")
        );
    }
    let distortion = transit_volume(&graph, &root);
    if distortion <= options.distortion_budget {
        let model =
            SpModel::new(name, graph, root).expect("SP-ized level chain is valid by construction");
        return Ok(model.with_path(PlanPath::SpIzed { distortion }));
    }
    let flat = SpBlock::Chain(graph.topo_order().into_iter().map(SpBlock::Leaf).collect());
    let units = (graph.len() as u32).div_ceil(options.unit_ops.max(1));
    let model =
        SpModel::new(name, graph, flat).expect("a topological chain is valid by construction");
    Ok(model.with_path(PlanPath::Clustered { units }))
}

/// Recovers the exact SP tree of a graph, or `None` when the graph is not
/// series-parallel (callers then take the [`plan_dag`] ladder).
///
/// On true-SP graphs this reproduces the tree a careful author would
/// write: branches appear in first-operator order, chains in data order,
/// and the result is normalized — so models built from it plan (and
/// fingerprint) byte-identically to hand-authored ones.
pub fn recognize(graph: &Graph) -> Option<SpBlock> {
    let (root, exact) = decompose(graph);
    exact.then_some(root)
}

/// The extra activation-transit volume (bytes) a tree imposes over the
/// raw DAG: for every data edge whose endpoints sit `gap` positions apart
/// under their lowest common `Chain` ancestor, the producer's output is
/// carried across the `gap - 1` intermediate positions. Zero for trees
/// whose every edge connects adjacent chain positions (or crosses into an
/// immediately following block).
///
/// This is the quantity [`PlanPath::SpIzed`] reports as `distortion`, and
/// what `gp-verify`'s `distortion-exact` check recomputes.
pub fn transit_volume(graph: &Graph, root: &SpBlock) -> u64 {
    edge_relation(graph, root).0
}

/// Data edges the tree cannot admit: endpoints missing from the tree,
/// split across sibling `Branches`, or flowing backwards along a `Chain`.
/// Empty exactly when the tree covers the original edge set —
/// `gp-verify`'s `sp-edge-cover` check.
pub fn edge_cover_violations(graph: &Graph, root: &SpBlock) -> Vec<(OpId, OpId)> {
    edge_relation(graph, root).1
}

/// Walks every graph edge against the tree once, returning the total
/// transit volume of admitted edges and the list of non-admitted edges.
fn edge_relation(graph: &Graph, root: &SpBlock) -> (u64, Vec<(OpId, OpId)>) {
    // Tree path (child indices from the root) per operator; duplicates
    // keep the first occurrence (the duplicate itself is a coverage
    // violation reported by `sp-cover-exact`, not an edge violation).
    let mut paths: Vec<Option<Vec<u32>>> = vec![None; graph.len()];
    let mut stack: Vec<(&SpBlock, Vec<u32>)> = vec![(root, Vec::new())];
    while let Some((block, path)) = stack.pop() {
        match block {
            SpBlock::Leaf(id) => {
                if let Some(slot) = paths.get_mut(id.index()) {
                    slot.get_or_insert(path);
                }
            }
            SpBlock::Chain(items) | SpBlock::Branches(items) => {
                for (i, item) in items.iter().enumerate() {
                    let mut p = path.clone();
                    p.push(i as u32);
                    stack.push((item, p));
                }
            }
        }
    }
    let mut volume = 0u64;
    let mut violations = Vec::new();
    for (u, v) in graph.edges() {
        let (Some(pu), Some(pv)) = (&paths[u.index()], &paths[v.index()]) else {
            violations.push((u, v));
            continue;
        };
        let common = pu.iter().zip(pv.iter()).take_while(|(a, b)| a == b).count();
        let chain = {
            let mut cur = root;
            for &i in &pu[..common] {
                cur = match cur {
                    SpBlock::Chain(items) | SpBlock::Branches(items) => &items[i as usize],
                    SpBlock::Leaf(_) => unreachable!("path descends past a leaf"),
                };
            }
            matches!(cur, SpBlock::Chain(_))
        };
        if !chain || pu[common] >= pv[common] {
            violations.push((u, v));
            continue;
        }
        let gap = u64::from(pv[common] - pu[common]) - 1;
        volume += graph.node(u).output_bytes() * gap;
    }
    (volume, violations)
}

// ---------------------------------------------------------------------------
// The comparability decomposition.

/// Per-node reachability closure as dense bitsets (`reach[u]` has bit `v`
/// set iff a directed path `u -> v` exists).
fn reachability(graph: &Graph) -> Vec<Vec<u64>> {
    let n = graph.len();
    let words = n.div_ceil(64);
    let mut reach = vec![vec![0u64; words]; n];
    let order = graph.topo_order();
    for &u in order.iter().rev() {
        let mut acc = std::mem::take(&mut reach[u.index()]);
        for &v in graph.succs(u) {
            let vi = v.index();
            acc[vi / 64] |= 1 << (vi % 64);
            for (a, b) in acc.iter_mut().zip(&reach[vi]) {
                *a |= *b;
            }
        }
        reach[u.index()] = acc;
    }
    reach
}

struct Decomposer<'g> {
    graph: &'g Graph,
    reach: Vec<Vec<u64>>,
    /// Topological position per operator (Kahn order — deterministic).
    pos: Vec<usize>,
    /// Whether every recursion bottomed out without the level-chain
    /// fallback.
    exact: bool,
}

/// Decomposes a graph into a valid SP tree, returning `(tree, exact)`;
/// `exact` is false iff some irreducible component was laid out as a
/// level chain (SP-ization).
fn decompose(graph: &Graph) -> (SpBlock, bool) {
    let order = graph.topo_order();
    let mut pos = vec![0usize; graph.len()];
    for (i, &op) in order.iter().enumerate() {
        pos[op.index()] = i;
    }
    let mut d = Decomposer {
        graph,
        reach: reachability(graph),
        pos,
        exact: true,
    };
    let tree = d.subset(order).normalize();
    (tree, d.exact)
}

impl Decomposer<'_> {
    fn reaches(&self, u: OpId, v: OpId) -> bool {
        let vi = v.index();
        self.reach[u.index()][vi / 64] & (1 << (vi % 64)) != 0
    }

    fn comparable(&self, u: OpId, v: OpId) -> bool {
        self.reaches(u, v) || self.reaches(v, u)
    }

    /// Decomposes one sub-DAG (`subset` sorted by topological position).
    fn subset(&mut self, subset: Vec<OpId>) -> SpBlock {
        if subset.len() == 1 {
            return SpBlock::Leaf(subset[0]);
        }
        let is_separator: Vec<bool> = subset
            .iter()
            .map(|&u| subset.iter().all(|&v| v == u || self.comparable(u, v)))
            .collect();
        let separators: Vec<OpId> = subset
            .iter()
            .zip(&is_separator)
            .filter_map(|(&u, &sep)| sep.then_some(u))
            .collect();
        if separators.len() == subset.len() {
            // Totally ordered: a plain chain in topological order.
            return SpBlock::Chain(subset.into_iter().map(SpBlock::Leaf).collect());
        }
        if separators.is_empty() {
            let components = self.components(&subset);
            if components.len() == 1 {
                // Irreducible: SP-ize as a level chain.
                self.exact = false;
                return self.level_chain(subset);
            }
            let branches = components.into_iter().map(|c| self.subset(c)).collect();
            return SpBlock::Branches(branches);
        }
        // Segment index per non-separator = number of separators that
        // reach it (every node is comparable with every separator, so
        // this fully orders nodes relative to the separator chain).
        let mut segments: Vec<Vec<OpId>> = vec![Vec::new(); separators.len() + 1];
        for (&u, &sep) in subset.iter().zip(&is_separator) {
            if !sep {
                let g = separators.iter().filter(|&&s| self.reaches(s, u)).count();
                segments[g].push(u);
            }
        }
        let mut children = Vec::new();
        for (g, segment) in segments.into_iter().enumerate() {
            if !segment.is_empty() {
                let components = self.components(&segment);
                if components.len() == 1 {
                    children.push(self.subset(segment));
                } else {
                    children.push(SpBlock::Branches(
                        components.into_iter().map(|c| self.subset(c)).collect(),
                    ));
                }
            }
            if g < separators.len() {
                children.push(SpBlock::Leaf(separators[g]));
            }
        }
        SpBlock::Chain(children)
    }

    /// Undirected connected components within `subset`, each sorted by
    /// topological position, ordered by their first member.
    fn components(&self, subset: &[OpId]) -> Vec<Vec<OpId>> {
        let mut member = vec![false; self.graph.len()];
        for &u in subset {
            member[u.index()] = true;
        }
        let mut visited = vec![false; self.graph.len()];
        let mut components = Vec::new();
        for &start in subset {
            if visited[start.index()] {
                continue;
            }
            let mut component = Vec::new();
            let mut queue = vec![start];
            visited[start.index()] = true;
            while let Some(u) = queue.pop() {
                component.push(u);
                for &v in self.graph.preds(u).iter().chain(self.graph.succs(u)) {
                    if member[v.index()] && !visited[v.index()] {
                        visited[v.index()] = true;
                        queue.push(v);
                    }
                }
            }
            component.sort_by_key(|&u| self.pos[u.index()]);
            components.push(component);
        }
        components
    }

    /// Lays an irreducible component out as a chain of longest-path
    /// levels: same-level nodes are independent (an edge between them
    /// would separate their levels), cross-level edges flow forward, so
    /// the result is always a valid SP block over the component.
    fn level_chain(&self, subset: Vec<OpId>) -> SpBlock {
        let mut member = vec![false; self.graph.len()];
        for &u in &subset {
            member[u.index()] = true;
        }
        let mut level = vec![0usize; self.graph.len()];
        let mut depth = 0usize;
        for &u in &subset {
            // `subset` is topologically sorted, so predecessors are done.
            let l = self
                .graph
                .preds(u)
                .iter()
                .filter(|p| member[p.index()])
                .map(|p| level[p.index()] + 1)
                .max()
                .unwrap_or(0);
            level[u.index()] = l;
            depth = depth.max(l);
        }
        let mut tiers: Vec<Vec<SpBlock>> = vec![Vec::new(); depth + 1];
        for &u in &subset {
            tiers[level[u.index()]].push(SpBlock::Leaf(u));
        }
        SpBlock::Chain(tiers.into_iter().map(SpBlock::Branches).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::op::OpKind;
    use crate::shape::Shape;

    /// x -> {a | b} -> cat -> loss: a true-SP fork-join.
    fn fork_join() -> (Graph, SpBlock) {
        let mut b = GraphBuilder::new();
        let x = b.input("x", Shape::vector(8));
        let a = b.linear("a", x, 8, false).unwrap();
        let c = b.linear("b", x, 8, false).unwrap();
        let cat = b.op("cat", OpKind::Concat, &[a, c]).unwrap();
        let l = b.loss("loss", &[cat]);
        let g = b.finish().unwrap();
        let tree = SpBlock::Chain(vec![
            SpBlock::Leaf(x),
            SpBlock::Branches(vec![SpBlock::Leaf(a), SpBlock::Leaf(c)]),
            SpBlock::Leaf(cat),
            SpBlock::Leaf(l),
        ]);
        (g, tree)
    }

    /// A genuinely non-SP graph (an N-shaped dependency plus a skip):
    /// x -> {a, b}; c = linear(a); d = cat(a, b); d2 = linear(d);
    /// e = cat(c, d2) -> loss. `a` and `b` are incomparable yet share a
    /// consumer, so no separator splits the middle.
    fn n_graph() -> Graph {
        let mut b = GraphBuilder::new();
        let x = b.input("x", Shape::vector(8));
        let a = b.linear("a", x, 8, false).unwrap();
        let bb = b.linear("b", x, 8, false).unwrap();
        let c = b.linear("c", a, 8, false).unwrap();
        let d = b.op("d", OpKind::Concat, &[a, bb]).unwrap();
        let d2 = b.linear("d2", d, 8, false).unwrap();
        let e = b.op("e", OpKind::Concat, &[c, d2]).unwrap();
        b.loss("loss", &[e]);
        b.finish().unwrap()
    }

    #[test]
    fn recognition_recovers_a_fork_join_exactly() {
        let (g, hand) = fork_join();
        let recovered = recognize(&g).expect("fork-join is SP");
        assert_eq!(recovered, hand.normalize());
        let model = plan_dag("fj", g, &DagOptions::default()).unwrap();
        assert_eq!(model.path(), PlanPath::ExactSp);
    }

    #[test]
    fn recognition_handles_plain_chains() {
        let mut b = GraphBuilder::new();
        let x = b.input("x", Shape::vector(4));
        let h = b.linear("h", x, 4, false).unwrap();
        b.loss("loss", &[h]);
        let g = b.finish().unwrap();
        let tree = recognize(&g).expect("a chain is SP");
        assert!(matches!(tree, SpBlock::Chain(ref c) if c.len() == 3));
    }

    #[test]
    fn non_sp_graph_is_sp_ized_with_exact_distortion() {
        let g = n_graph();
        assert!(recognize(&g).is_none(), "the N graph must not be SP");
        let model = plan_dag("n", g, &DagOptions::default()).unwrap();
        let PlanPath::SpIzed { distortion } = model.path() else {
            panic!("expected SpIzed, got {:?}", model.path());
        };
        // The only skip edge is c -> e (c sits one level below d2):
        // 8 features * 4 bytes * gap 1.
        assert_eq!(distortion, 32);
        assert_eq!(distortion, transit_volume(model.graph(), model.root()));
        assert!(edge_cover_violations(model.graph(), model.root()).is_empty());
    }

    #[test]
    fn distortion_budget_forces_clustering() {
        let g = n_graph();
        let ops = g.len() as u32;
        let options = DagOptions::default()
            .with_distortion_budget(0)
            .with_unit_ops(3);
        let model = plan_dag("n", g, &options).unwrap();
        assert_eq!(
            model.path(),
            PlanPath::Clustered {
                units: ops.div_ceil(3)
            }
        );
        // The flat chain still admits every edge.
        assert!(edge_cover_violations(model.graph(), model.root()).is_empty());
        assert!(model.graph().is_topo_order(&model.linearize()));
    }

    #[test]
    fn edge_cover_violations_flag_cross_branch_trees() {
        let (g, _) = fork_join();
        // Dependent ops x (0) and a (1) forced into sibling branches.
        let bad = SpBlock::Chain(vec![
            SpBlock::Branches(vec![SpBlock::Leaf(OpId(0)), SpBlock::Leaf(OpId(1))]),
            SpBlock::Leaf(OpId(2)),
            SpBlock::Leaf(OpId(3)),
            SpBlock::Leaf(OpId(4)),
        ]);
        let violations = edge_cover_violations(&g, &bad);
        assert!(violations.contains(&(OpId(0), OpId(1))));
    }

    #[test]
    fn transit_volume_counts_chain_skips() {
        let (g, tree) = fork_join();
        assert_eq!(transit_volume(&g, &tree.clone().normalize()), 0);
        // Flat chain: the x->b edge now skips over a (x's 32-byte output
        // transits one position), and a->cat skips b.
        let flat = SpBlock::Chain((0..5).map(|i| SpBlock::Leaf(OpId(i))).collect());
        assert_eq!(transit_volume(&g, &flat), 64);
    }

    #[test]
    fn plan_path_displays() {
        assert_eq!(PlanPath::ExactSp.to_string(), "exact-sp");
        assert_eq!(
            PlanPath::SpIzed { distortion: 7 }.to_string(),
            "sp-ized (distortion 7 bytes)"
        );
        assert_eq!(
            PlanPath::Clustered { units: 3 }.to_string(),
            "clustered (3 units)"
        );
    }

    #[test]
    fn design_md_documents_the_ladder() {
        let design = include_str!("../../../DESIGN.md");
        for needle in [
            "## Arbitrary DAGs",
            "recognize",
            "transit_volume",
            "PlanPath::SpIzed",
            "PlanPath::Clustered",
            "distortion_budget",
            "sp-edge-cover",
            "distortion-exact",
            "plan-path-consistent",
        ] {
            assert!(
                design.contains(needle),
                "DESIGN.md lost its DAG-ladder coverage: missing `{needle}`"
            );
        }
    }

    #[test]
    fn readme_documents_the_non_sp_quickstart() {
        let readme = include_str!("../../../README.md");
        for needle in ["model_dag", "plan_path", "Arbitrary DAGs"] {
            assert!(
                readme.contains(needle),
                "README.md lost its non-SP quickstart: missing `{needle}`"
            );
        }
    }
}
