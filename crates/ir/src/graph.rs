//! The DNN computation graph: a DAG of operators with inferred shapes.
//!
//! gp-lint: deterministic — this module's outputs feed plan
//! fingerprints or the artifact codec; `cargo xtask lint` scans it for
//! nondeterminism hazards (DESIGN.md §"Determinism lint").

use crate::op::{OpKind, BYTES_PER_ELEMENT};
use crate::shape::Shape;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Identifier of an operator within a [`Graph`].
///
/// Ids are dense indices assigned in insertion order, so they can be used to
/// index side tables (`Vec`s) keyed by operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OpId(pub u32);

impl OpId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// A single operator instance in a [`Graph`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    /// The operator's id.
    pub id: OpId,
    /// Human-readable name (unique within the graph by construction).
    pub name: String,
    /// What the operator computes.
    pub kind: OpKind,
    /// Inferred per-sample output shape.
    pub out_shape: Shape,
}

impl Node {
    /// Bytes of the operator's per-sample output activation.
    pub fn output_bytes(&self) -> u64 {
        self.out_shape.numel() as u64 * BYTES_PER_ELEMENT
    }
}

/// Errors raised while constructing or validating a [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An operator's inputs were incompatible with its kind.
    ShapeMismatch {
        /// Operator name being added.
        op: String,
        /// Human-readable explanation from shape inference.
        reason: String,
    },
    /// An edge referenced an operator id not present in the graph.
    UnknownOp(OpId),
    /// The graph contains a directed cycle.
    Cyclic,
    /// The graph has no [`OpKind::Loss`] sink or has more than one.
    BadSink(usize),
    /// A non-`Input` operator has no predecessors.
    DanglingOp(OpId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::ShapeMismatch { op, reason } => {
                write!(f, "shape mismatch at operator `{op}`: {reason}")
            }
            GraphError::UnknownOp(id) => write!(f, "unknown operator id {id}"),
            GraphError::Cyclic => write!(f, "computation graph contains a cycle"),
            GraphError::BadSink(n) => {
                write!(f, "expected exactly one Loss sink, found {n}")
            }
            GraphError::DanglingOp(id) => {
                write!(f, "operator {id} has no inputs but is not an Input")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// A directed acyclic computation graph over [`Node`]s.
///
/// Graphs are built through [`GraphBuilder`], which performs shape inference
/// and guarantees acyclicity by construction (edges always point from
/// already-inserted operators to new ones).
///
/// # Examples
///
/// ```
/// use gp_ir::{GraphBuilder, Shape};
///
/// let mut b = GraphBuilder::new();
/// let x = b.input("x", Shape::vector(32));
/// let h = b.linear("fc1", x, 64, true)?;
/// let y = b.loss("loss", &[h]);
/// let g = b.finish()?;
/// assert_eq!(g.len(), 3);
/// assert_eq!(g.node(y).out_shape, Shape::vector(1));
/// # Ok::<(), gp_ir::GraphError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Graph {
    nodes: Vec<Node>,
    preds: Vec<Vec<OpId>>,
    succs: Vec<Vec<OpId>>,
}

impl Graph {
    /// Number of operators.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no operators.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn node(&self, id: OpId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Iterates over all nodes in insertion (topological) order.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    /// Direct predecessors of `id` (its data inputs), in input order.
    pub fn preds(&self, id: OpId) -> &[OpId] {
        &self.preds[id.index()]
    }

    /// Direct successors of `id` (its consumers).
    pub fn succs(&self, id: OpId) -> &[OpId] {
        &self.succs[id.index()]
    }

    /// All directed edges `(producer, consumer)`.
    pub fn edges(&self) -> impl Iterator<Item = (OpId, OpId)> + '_ {
        self.nodes
            .iter()
            .flat_map(move |n| self.succs[n.id.index()].iter().map(move |&s| (n.id, s)))
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }

    /// Graph sources (operators without predecessors; all `Input`s).
    pub fn sources(&self) -> Vec<OpId> {
        self.nodes
            .iter()
            .filter(|n| self.preds[n.id.index()].is_empty())
            .map(|n| n.id)
            .collect()
    }

    /// The unique sink (the `Loss` operator).
    pub fn sink(&self) -> OpId {
        self.nodes
            .iter()
            .find(|n| matches!(n.kind, OpKind::Loss))
            .map(|n| n.id)
            .expect("validated graph has a Loss sink")
    }

    /// Input shapes of operator `id` (output shapes of its predecessors).
    pub fn input_shapes(&self, id: OpId) -> Vec<&Shape> {
        self.preds(id)
            .iter()
            .map(|&p| &self.node(p).out_shape)
            .collect()
    }

    /// Forward FLOPs of operator `id` for one sample.
    pub fn forward_flops(&self, id: OpId) -> u64 {
        let shapes = self.input_shapes(id);
        self.node(id).kind.forward_flops(&shapes)
    }

    /// Backward FLOPs of operator `id` for one sample.
    pub fn backward_flops(&self, id: OpId) -> u64 {
        let shapes = self.input_shapes(id);
        self.node(id).kind.backward_flops(&shapes)
    }

    /// Activation bytes operator `id` must stash per in-flight sample.
    pub fn stashed_bytes(&self, id: OpId) -> u64 {
        let shapes = self.input_shapes(id);
        self.node(id).kind.stashed_bytes(&shapes)
    }

    /// Total learnable parameters of the whole graph.
    pub fn total_params(&self) -> u64 {
        self.nodes.iter().map(|n| n.kind.param_count()).sum()
    }

    /// Total forward FLOPs of the whole graph for one sample.
    pub fn total_forward_flops(&self) -> u64 {
        self.nodes.iter().map(|n| self.forward_flops(n.id)).sum()
    }

    /// A topological order of all operator ids (Kahn's algorithm, stable by
    /// id so the result is deterministic).
    pub fn topo_order(&self) -> Vec<OpId> {
        let mut indeg: Vec<usize> = self.preds.iter().map(Vec::len).collect();
        let mut queue: VecDeque<OpId> = self
            .nodes
            .iter()
            .filter(|n| indeg[n.id.index()] == 0)
            .map(|n| n.id)
            .collect();
        let mut order = Vec::with_capacity(self.len());
        while let Some(id) = queue.pop_front() {
            order.push(id);
            for &s in self.succs(id) {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    queue.push_back(s);
                }
            }
        }
        order
    }

    /// Checks whether `order` is a valid topological order covering every
    /// operator exactly once.
    pub fn is_topo_order(&self, order: &[OpId]) -> bool {
        if order.len() != self.len() {
            return false;
        }
        let mut pos = vec![usize::MAX; self.len()];
        for (i, &id) in order.iter().enumerate() {
            if id.index() >= self.len() || pos[id.index()] != usize::MAX {
                return false;
            }
            pos[id.index()] = i;
        }
        self.edges().all(|(u, v)| pos[u.index()] < pos[v.index()])
    }

    /// Checks that `ops` is a *convex* subgraph: for every pair of member
    /// operators, every directed path between them stays inside the set
    /// (condition C1 of the GraphPipe problem formulation, section 3).
    pub fn is_convex(&self, ops: &[OpId]) -> bool {
        let mut member = vec![false; self.len()];
        for &id in ops {
            member[id.index()] = true;
        }
        // A set S is convex iff no path leaves S and re-enters it. Walk
        // forward from every boundary-exiting edge; if we can re-reach S,
        // the set is not convex.
        let mut outside_reachable = vec![false; self.len()];
        let mut queue: VecDeque<OpId> = VecDeque::new();
        for &id in ops {
            for &s in self.succs(id) {
                if !member[s.index()] && !outside_reachable[s.index()] {
                    outside_reachable[s.index()] = true;
                    queue.push_back(s);
                }
            }
        }
        while let Some(id) = queue.pop_front() {
            for &s in self.succs(id) {
                if member[s.index()] {
                    return false;
                }
                if !outside_reachable[s.index()] {
                    outside_reachable[s.index()] = true;
                    queue.push_back(s);
                }
            }
        }
        true
    }

    /// Validates global invariants: acyclicity, a unique `Loss` sink, and no
    /// dangling non-input operators.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a [`GraphError`].
    pub fn validate(&self) -> Result<(), GraphError> {
        if self.topo_order().len() != self.len() {
            return Err(GraphError::Cyclic);
        }
        let sinks = self
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, OpKind::Loss))
            .count();
        if sinks != 1 {
            return Err(GraphError::BadSink(sinks));
        }
        for n in &self.nodes {
            if self.preds[n.id.index()].is_empty() && !matches!(n.kind, OpKind::Input) {
                return Err(GraphError::DanglingOp(n.id));
            }
        }
        Ok(())
    }
}

/// Incremental [`Graph`] constructor with shape inference.
///
/// Operators must be added after their inputs, which makes cycles impossible
/// by construction. See [`Graph`] for an end-to-end example.
#[derive(Debug, Default)]
pub struct GraphBuilder {
    nodes: Vec<Node>,
    preds: Vec<Vec<OpId>>,
    succs: Vec<Vec<OpId>>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of operators added so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no operators have been added yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a graph input producing per-sample tensors of `shape`.
    pub fn input(&mut self, name: impl Into<String>, shape: Shape) -> OpId {
        self.push(name.into(), OpKind::Input, shape, &[])
    }

    /// Adds an arbitrary operator with the given inputs, inferring its
    /// output shape.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::ShapeMismatch`] when the input shapes are
    /// incompatible with `kind`, or [`GraphError::UnknownOp`] for bad ids.
    pub fn op(
        &mut self,
        name: impl Into<String>,
        kind: OpKind,
        inputs: &[OpId],
    ) -> Result<OpId, GraphError> {
        let name = name.into();
        for &i in inputs {
            if i.index() >= self.nodes.len() {
                return Err(GraphError::UnknownOp(i));
            }
        }
        let in_shapes: Vec<&Shape> = inputs
            .iter()
            .map(|&i| &self.nodes[i.index()].out_shape)
            .collect();
        let out_shape =
            kind.infer_output_shape(&in_shapes)
                .map_err(|reason| GraphError::ShapeMismatch {
                    op: name.clone(),
                    reason,
                })?;
        Ok(self.push(name, kind, out_shape, inputs))
    }

    /// Convenience: adds a [`OpKind::Linear`] layer.
    ///
    /// # Errors
    ///
    /// Propagates shape-inference failures, e.g. when `input`'s innermost
    /// dimension disagrees with the inferred `in_features`.
    pub fn linear(
        &mut self,
        name: impl Into<String>,
        input: OpId,
        out_features: usize,
        bias: bool,
    ) -> Result<OpId, GraphError> {
        let in_features = self.nodes[input.index()].out_shape.last_dim();
        self.op(
            name,
            OpKind::Linear {
                in_features,
                out_features,
                bias,
            },
            &[input],
        )
    }

    /// Convenience: adds the unique [`OpKind::Loss`] sink.
    pub fn loss(&mut self, name: impl Into<String>, inputs: &[OpId]) -> OpId {
        let shapes: Vec<&Shape> = inputs
            .iter()
            .map(|&i| &self.nodes[i.index()].out_shape)
            .collect();
        let shape = OpKind::Loss
            .infer_output_shape(&shapes)
            .expect("Loss accepts any non-empty inputs");
        self.push(name.into(), OpKind::Loss, shape, inputs)
    }

    /// The per-sample output shape of an already-added operator.
    pub fn shape_of(&self, id: OpId) -> &Shape {
        &self.nodes[id.index()].out_shape
    }

    fn push(&mut self, name: String, kind: OpKind, out_shape: Shape, inputs: &[OpId]) -> OpId {
        let id = OpId(self.nodes.len() as u32);
        self.nodes.push(Node {
            id,
            name,
            kind,
            out_shape,
        });
        self.preds.push(inputs.to_vec());
        self.succs.push(Vec::new());
        for &i in inputs {
            self.succs[i.index()].push(id);
        }
        id
    }

    /// Finalizes and validates the graph.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] if validation fails (see
    /// [`Graph::validate`]).
    pub fn finish(self) -> Result<Graph, GraphError> {
        let g = Graph {
            nodes: self.nodes,
            preds: self.preds,
            succs: self.succs,
        };
        g.validate()?;
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Nonlinearity;

    fn diamond() -> Graph {
        // x -> a -> concat -> loss
        //   \-> b -/
        let mut b = GraphBuilder::new();
        let x = b.input("x", Shape::vector(8));
        let a = b.linear("a", x, 8, false).unwrap();
        let c = b.linear("b", x, 8, false).unwrap();
        let cat = b.op("cat", OpKind::Concat, &[a, c]).unwrap();
        b.loss("loss", &[cat]);
        b.finish().unwrap()
    }

    #[test]
    fn builds_and_validates_diamond() {
        let g = diamond();
        assert_eq!(g.len(), 5);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.sources(), vec![OpId(0)]);
        assert_eq!(g.sink(), OpId(4));
        assert_eq!(g.node(OpId(3)).out_shape, Shape::vector(16));
    }

    #[test]
    fn topo_order_is_valid() {
        let g = diamond();
        let order = g.topo_order();
        assert!(g.is_topo_order(&order));
        // Permuting a dependent pair breaks it.
        let mut bad = order.clone();
        bad.swap(0, 4);
        assert!(!g.is_topo_order(&bad));
        // Missing nodes break it too.
        assert!(!g.is_topo_order(&order[1..]));
    }

    #[test]
    fn convexity() {
        let g = diamond();
        // {a} alone is convex.
        assert!(g.is_convex(&[OpId(1)]));
        // {x, cat} is not convex: paths x->a->cat leave the set.
        assert!(!g.is_convex(&[OpId(0), OpId(3)]));
        // {x, a, b, cat} is convex.
        assert!(g.is_convex(&[OpId(0), OpId(1), OpId(2), OpId(3)]));
        // The whole graph is convex.
        let all: Vec<OpId> = g.nodes().map(|n| n.id).collect();
        assert!(g.is_convex(&all));
    }

    #[test]
    fn missing_loss_is_rejected() {
        let mut b = GraphBuilder::new();
        let x = b.input("x", Shape::vector(4));
        b.linear("fc", x, 4, false).unwrap();
        assert_eq!(b.finish().unwrap_err(), GraphError::BadSink(0));
    }

    #[test]
    fn two_losses_are_rejected() {
        let mut b = GraphBuilder::new();
        let x = b.input("x", Shape::vector(4));
        b.loss("l1", &[x]);
        b.loss("l2", &[x]);
        assert_eq!(b.finish().unwrap_err(), GraphError::BadSink(2));
    }

    #[test]
    fn shape_mismatch_reports_op_name() {
        let mut b = GraphBuilder::new();
        let x = b.input("x", Shape::vector(4));
        let err = b
            .op(
                "bad",
                OpKind::Linear {
                    in_features: 99,
                    out_features: 4,
                    bias: false,
                },
                &[x],
            )
            .unwrap_err();
        match err {
            GraphError::ShapeMismatch { op, .. } => assert_eq!(op, "bad"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unknown_op_is_rejected() {
        let mut b = GraphBuilder::new();
        let err = b
            .op("bad", OpKind::Activation(Nonlinearity::Relu), &[OpId(7)])
            .unwrap_err();
        assert_eq!(err, GraphError::UnknownOp(OpId(7)));
    }

    #[test]
    fn flop_accessors_are_consistent() {
        let g = diamond();
        let total: u64 = g.nodes().map(|n| g.forward_flops(n.id)).sum();
        assert_eq!(g.total_forward_flops(), total);
        assert_eq!(g.total_params(), 2 * 8 * 8);
    }

    #[test]
    fn error_display_is_informative() {
        let e = GraphError::BadSink(2);
        assert!(e.to_string().contains("exactly one Loss"));
    }
}
