//! # gp-ir — DNN computation-graph IR for the GraphPipe reproduction
//!
//! This crate is the modeling substrate of the workspace: it defines
//! per-sample tensor [`Shape`]s, DNN operators ([`OpKind`]) with analytic
//! FLOP/parameter/activation accounting, the computation-graph DAG
//! ([`Graph`]) with shape inference and convexity checks, the
//! series-parallel decomposition ([`SpBlock`]/[`SpModel`]) that GraphPipe's
//! partitioner consumes, and a [`zoo`] of the paper's evaluated models.
//!
//! # Examples
//!
//! ```
//! use gp_ir::zoo::{self, MmtConfig};
//!
//! // The Multi-Modal Transformer of the paper's evaluation (Appendix A.2).
//! let model = zoo::mmt(&MmtConfig::default());
//! assert_eq!(model.name(), "mmt");
//!
//! // The SP tree exposes the branch structure GPP exploits...
//! assert!(model.root().branch_points() >= 1);
//!
//! // ...while SPP baselines see the linearized operator chain.
//! let chain = model.linearize();
//! assert!(model.graph().is_topo_order(&chain));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dag;
mod graph;
mod op;
mod shape;
mod sp;
pub mod zoo;

pub use dag::{plan_dag, recognize, DagOptions};
pub use graph::{Graph, GraphBuilder, GraphError, Node, OpId};
pub use op::{Nonlinearity, OpKind, BYTES_PER_ELEMENT};
pub use shape::Shape;
pub use sp::{PlanPath, SpBlock, SpError, SpModel};
