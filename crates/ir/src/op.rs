//! DNN operators.
//!
//! Each operator describes its learnable-parameter count, forward FLOPs and
//! the activation bytes it must stash for its backward pass, all *per
//! sample*. These analytic counts replace the device profiling step of the
//! original GraphPipe implementation (see DESIGN.md §"The substitution
//! table").

use crate::shape::Shape;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Element size used throughout the reproduction (fp32 training).
pub const BYTES_PER_ELEMENT: u64 = 4;

/// Nonlinearity applied by an [`OpKind::Activation`] operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Nonlinearity {
    /// Rectified linear unit.
    Relu,
    /// Gaussian-error linear unit (tanh approximation).
    Gelu,
}

impl fmt::Display for Nonlinearity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Nonlinearity::Relu => write!(f, "relu"),
            Nonlinearity::Gelu => write!(f, "gelu"),
        }
    }
}

/// The kind of a computation-graph operator, with its static attributes.
///
/// The set covers every operator used by the paper's evaluated models
/// (Multi-Modal Transformer, DLRM, CANDLE-Uno and the synthetic case-study
/// model): dense layers, multi-head attention, layer norm, embedding bags,
/// concatenation, DLRM's feature interaction, activations, and graph
/// sources/sinks.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// A graph source feeding per-sample data of the given shape.
    Input,
    /// Fully-connected layer applied to the innermost dimension:
    /// `[..., in_features] -> [..., out_features]`.
    Linear {
        /// Input feature dimension.
        in_features: usize,
        /// Output feature dimension.
        out_features: usize,
        /// Whether a bias vector is learned.
        bias: bool,
    },
    /// Multi-head self-attention over `[seq, hidden]` inputs, including the
    /// Q/K/V and output projections.
    MultiHeadAttention {
        /// Sequence length.
        seq: usize,
        /// Hidden (model) dimension.
        hidden: usize,
        /// Number of attention heads; must divide `hidden`.
        heads: usize,
    },
    /// Layer normalization over the innermost dimension.
    LayerNorm {
        /// Normalized feature dimension.
        dim: usize,
    },
    /// Elementwise nonlinearity.
    Activation(Nonlinearity),
    /// Embedding-bag lookup: `bag` indices into an `entries x dim` table,
    /// looked-up vectors concatenated (DLRM sparse feature, Appendix A.2).
    EmbeddingBag {
        /// Number of rows in the embedding table.
        entries: usize,
        /// Embedding dimension per row.
        dim: usize,
        /// Number of lookups per sample; outputs are concatenated.
        bag: usize,
    },
    /// Concatenation of all predecessor outputs along the innermost
    /// dimension (all predecessors must agree on leading dimensions).
    Concat,
    /// DLRM-style pairwise dot-product feature interaction between `features`
    /// vectors of size `dim`, output is the flattened upper triangle.
    FeatureInteraction {
        /// Number of interacting feature vectors.
        features: usize,
        /// Dimension of each feature vector.
        dim: usize,
    },
    /// A graph sink computing a scalar training loss; carries no parameters.
    Loss,
    /// Elementwise sum of all predecessor outputs (residual/skip
    /// connections); all inputs must share one shape.
    Add,
}

impl OpKind {
    /// Short lowercase mnemonic used in rendered schedules and Gantt charts.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            OpKind::Input => "input",
            OpKind::Linear { .. } => "linear",
            OpKind::MultiHeadAttention { .. } => "mha",
            OpKind::LayerNorm { .. } => "ln",
            OpKind::Activation(Nonlinearity::Relu) => "relu",
            OpKind::Activation(Nonlinearity::Gelu) => "gelu",
            OpKind::EmbeddingBag { .. } => "embag",
            OpKind::Concat => "concat",
            OpKind::FeatureInteraction { .. } => "interact",
            OpKind::Loss => "loss",
            OpKind::Add => "add",
        }
    }

    /// A stable numeric encoding of the operator kind and its static
    /// attributes: a variant tag followed by the attribute values.
    ///
    /// Two `OpKind`s are equal iff their structural words are equal, and the
    /// encoding is independent of operator names, graph ids, and insertion
    /// order — which makes it the per-node seed for canonical graph
    /// fingerprints (see the `gp-serve` crate).
    pub fn structural_words(&self) -> Vec<u64> {
        match *self {
            OpKind::Input => vec![0],
            OpKind::Linear {
                in_features,
                out_features,
                bias,
            } => vec![1, in_features as u64, out_features as u64, bias as u64],
            OpKind::MultiHeadAttention { seq, hidden, heads } => {
                vec![2, seq as u64, hidden as u64, heads as u64]
            }
            OpKind::LayerNorm { dim } => vec![3, dim as u64],
            OpKind::Activation(Nonlinearity::Relu) => vec![4, 0],
            OpKind::Activation(Nonlinearity::Gelu) => vec![4, 1],
            OpKind::EmbeddingBag { entries, dim, bag } => {
                vec![5, entries as u64, dim as u64, bag as u64]
            }
            OpKind::Concat => vec![6],
            OpKind::FeatureInteraction { features, dim } => {
                vec![7, features as u64, dim as u64]
            }
            OpKind::Loss => vec![8],
            OpKind::Add => vec![9],
        }
    }

    /// Number of learnable parameters.
    pub fn param_count(&self) -> u64 {
        match *self {
            OpKind::Linear {
                in_features,
                out_features,
                bias,
            } => {
                (in_features as u64) * (out_features as u64)
                    + if bias { out_features as u64 } else { 0 }
            }
            OpKind::MultiHeadAttention { hidden, .. } => {
                // Q, K, V and output projections, each hidden x hidden + bias.
                4 * ((hidden as u64) * (hidden as u64) + hidden as u64)
            }
            OpKind::LayerNorm { dim } => 2 * dim as u64,
            OpKind::EmbeddingBag { entries, dim, .. } => (entries as u64) * (dim as u64),
            OpKind::Input
            | OpKind::Activation(_)
            | OpKind::Concat
            | OpKind::FeatureInteraction { .. }
            | OpKind::Loss
            | OpKind::Add => 0,
        }
    }

    /// Forward-pass floating-point operations for one sample, counting one
    /// multiply-accumulate as two FLOPs.
    ///
    /// `in_shapes` are the per-sample shapes of the operator's inputs in
    /// predecessor order (used by shape-dependent operators such as
    /// [`OpKind::Concat`] and [`OpKind::Loss`]).
    pub fn forward_flops(&self, in_shapes: &[&Shape]) -> u64 {
        match *self {
            OpKind::Input => 0,
            OpKind::Linear {
                in_features,
                out_features,
                ..
            } => {
                let tokens = in_shapes.first().map_or(1, |s| s.leading_numel()) as u64;
                2 * tokens * in_features as u64 * out_features as u64
            }
            OpKind::MultiHeadAttention { seq, hidden, .. } => {
                let (s, h) = (seq as u64, hidden as u64);
                // QKV projections (3) + output projection (1): 4 * 2*s*h*h.
                // Attention scores QK^T and probs*V: 2 * 2*s*s*h.
                8 * s * h * h + 4 * s * s * h
            }
            OpKind::LayerNorm { .. } => {
                let numel = in_shapes.first().map_or(0, |s| s.numel()) as u64;
                8 * numel
            }
            OpKind::Activation(_) => {
                let numel = in_shapes.first().map_or(0, |s| s.numel()) as u64;
                4 * numel
            }
            OpKind::EmbeddingBag { dim, bag, .. } => {
                // Gather of `bag` rows; counted as one op per copied element.
                (dim as u64) * (bag as u64)
            }
            OpKind::Concat => {
                // Pure data movement; counted as one op per copied element.
                in_shapes.iter().map(|s| s.numel() as u64).sum()
            }
            OpKind::FeatureInteraction { features, dim } => {
                // All-pairs dot products.
                2 * (features as u64) * (features as u64) * (dim as u64)
            }
            OpKind::Loss => {
                let numel: u64 = in_shapes.iter().map(|s| s.numel() as u64).sum();
                4 * numel
            }
            OpKind::Add => {
                // One add per element per extra input.
                let numel = in_shapes.first().map_or(0, |s| s.numel()) as u64;
                numel * in_shapes.len().saturating_sub(1) as u64
            }
        }
    }

    /// Backward-pass FLOPs for one sample.
    ///
    /// Uses the standard estimate of twice the forward cost for layers with
    /// parameters (grad w.r.t. inputs plus grad w.r.t. weights), and an equal
    /// cost for parameter-free data movement.
    pub fn backward_flops(&self, in_shapes: &[&Shape]) -> u64 {
        let fwd = self.forward_flops(in_shapes);
        match self {
            OpKind::Input => 0,
            OpKind::Concat | OpKind::EmbeddingBag { .. } | OpKind::Loss | OpKind::Add => fwd,
            _ => 2 * fwd,
        }
    }

    /// Infers the per-sample output shape given input shapes.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the inputs are incompatible
    /// with this operator (wrong arity, mismatched feature dimensions, or
    /// disagreeing leading dimensions for `Concat`).
    pub fn infer_output_shape(&self, in_shapes: &[&Shape]) -> Result<Shape, String> {
        match *self {
            OpKind::Input => Err("Input shape must be provided explicitly".to_string()),
            OpKind::Linear {
                in_features,
                out_features,
                ..
            } => {
                let s = one_input(in_shapes, "Linear")?;
                if s.last_dim() != in_features {
                    return Err(format!(
                        "Linear expects innermost dim {in_features}, got {s}"
                    ));
                }
                Ok(s.with_last_dim(out_features))
            }
            OpKind::MultiHeadAttention { seq, hidden, heads } => {
                let s = one_input(in_shapes, "MultiHeadAttention")?;
                if heads == 0 || hidden % heads != 0 {
                    return Err(format!(
                        "MultiHeadAttention heads ({heads}) must divide hidden ({hidden})"
                    ));
                }
                if s.dims() != [seq, hidden] {
                    return Err(format!(
                        "MultiHeadAttention expects [{seq}x{hidden}], got {s}"
                    ));
                }
                Ok(s.clone())
            }
            OpKind::LayerNorm { dim } => {
                let s = one_input(in_shapes, "LayerNorm")?;
                if s.last_dim() != dim {
                    return Err(format!("LayerNorm expects innermost dim {dim}, got {s}"));
                }
                Ok(s.clone())
            }
            OpKind::Activation(_) => Ok(one_input(in_shapes, "Activation")?.clone()),
            OpKind::EmbeddingBag { dim, bag, .. } => {
                // Input is a bag of indices; output is the concatenated rows.
                Ok(Shape::vector(dim * bag))
            }
            OpKind::Concat => {
                if in_shapes.is_empty() {
                    return Err("Concat requires at least one input".to_string());
                }
                let lead = in_shapes[0].dims()[..in_shapes[0].rank() - 1].to_vec();
                let mut last = 0;
                for s in in_shapes {
                    if s.dims()[..s.rank() - 1] != lead[..] {
                        return Err(format!(
                            "Concat inputs disagree on leading dims: {:?} vs {s}",
                            lead
                        ));
                    }
                    last += s.last_dim();
                }
                let mut dims = lead;
                dims.push(last);
                Ok(Shape::new(dims))
            }
            OpKind::FeatureInteraction { features, dim } => {
                let s = one_input(in_shapes, "FeatureInteraction")?;
                if s.numel() != features * dim {
                    return Err(format!(
                        "FeatureInteraction expects {features}*{dim} elements, got {s}"
                    ));
                }
                Ok(Shape::vector(features * (features - 1) / 2))
            }
            OpKind::Loss => {
                if in_shapes.is_empty() {
                    return Err("Loss requires at least one input".to_string());
                }
                Ok(Shape::vector(1))
            }
            OpKind::Add => {
                let Some(first) = in_shapes.first() else {
                    return Err("Add requires at least one input".to_string());
                };
                for s in in_shapes {
                    if s != first {
                        return Err(format!("Add inputs disagree on shape: {first} vs {s}"));
                    }
                }
                Ok((*first).clone())
            }
        }
    }

    /// Activation bytes this operator must keep resident per in-flight
    /// sample: its inputs (needed for weight/input gradients) plus sizable
    /// internal state (attention probabilities for MHA).
    pub fn stashed_bytes(&self, in_shapes: &[&Shape]) -> u64 {
        let input_bytes: u64 = in_shapes
            .iter()
            .map(|s| s.numel() as u64 * BYTES_PER_ELEMENT)
            .sum();
        match *self {
            OpKind::Input => 0,
            OpKind::MultiHeadAttention { seq, heads, .. } => {
                // Inputs + attention probabilities (heads x seq x seq).
                input_bytes + (heads as u64) * (seq as u64) * (seq as u64) * BYTES_PER_ELEMENT
            }
            // Index gather: backward only needs the (tiny, integer) indices.
            OpKind::EmbeddingBag { bag, .. } => (bag as u64) * BYTES_PER_ELEMENT,
            // d/dx_i of a sum is the output gradient itself: nothing to stash.
            OpKind::Add => 0,
            _ => input_bytes,
        }
    }
}

fn one_input<'s>(in_shapes: &[&'s Shape], what: &str) -> Result<&'s Shape, String> {
    match in_shapes {
        [s] => Ok(s),
        _ => Err(format!(
            "{what} expects exactly one input, got {}",
            in_shapes.len()
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shp(dims: &[usize]) -> Shape {
        Shape::new(dims.to_vec())
    }

    #[test]
    fn linear_params_and_flops() {
        let op = OpKind::Linear {
            in_features: 1024,
            out_features: 4096,
            bias: true,
        };
        assert_eq!(op.param_count(), 1024 * 4096 + 4096);
        let s = shp(&[256, 1024]);
        assert_eq!(op.forward_flops(&[&s]), 2 * 256 * 1024 * 4096);
        assert_eq!(op.backward_flops(&[&s]), 4 * 256 * 1024 * 4096);
    }

    #[test]
    fn linear_shape_inference() {
        let op = OpKind::Linear {
            in_features: 8,
            out_features: 16,
            bias: false,
        };
        assert_eq!(
            op.infer_output_shape(&[&shp(&[4, 8])]).unwrap(),
            shp(&[4, 16])
        );
        assert!(op.infer_output_shape(&[&shp(&[4, 9])]).is_err());
        assert_eq!(op.param_count(), 8 * 16);
    }

    #[test]
    fn mha_flops_match_closed_form() {
        let op = OpKind::MultiHeadAttention {
            seq: 256,
            hidden: 1024,
            heads: 16,
        };
        let s = shp(&[256, 1024]);
        let (sq, h) = (256u64, 1024u64);
        assert_eq!(op.forward_flops(&[&s]), 8 * sq * h * h + 4 * sq * sq * h);
        assert_eq!(op.param_count(), 4 * (1024 * 1024 + 1024));
        assert_eq!(op.infer_output_shape(&[&s]).unwrap(), s);
    }

    #[test]
    fn mha_rejects_bad_heads_and_shape() {
        let op = OpKind::MultiHeadAttention {
            seq: 4,
            hidden: 10,
            heads: 3,
        };
        assert!(op.infer_output_shape(&[&shp(&[4, 10])]).is_err());
        let ok = OpKind::MultiHeadAttention {
            seq: 4,
            hidden: 12,
            heads: 3,
        };
        assert!(ok.infer_output_shape(&[&shp(&[5, 12])]).is_err());
    }

    #[test]
    fn concat_sums_feature_dims() {
        let a = shp(&[4, 8]);
        let b = shp(&[4, 24]);
        assert_eq!(
            OpKind::Concat.infer_output_shape(&[&a, &b]).unwrap(),
            shp(&[4, 32])
        );
        assert!(OpKind::Concat
            .infer_output_shape(&[&shp(&[4, 8]), &shp(&[5, 8])])
            .is_err());
    }

    #[test]
    fn embedding_bag_output_and_params() {
        let op = OpKind::EmbeddingBag {
            entries: 1_000_000,
            dim: 64,
            bag: 100,
        };
        assert_eq!(op.param_count(), 64_000_000);
        assert_eq!(
            op.infer_output_shape(&[&shp(&[100])]).unwrap(),
            shp(&[6400])
        );
        // Backward of a gather costs about the same as forward.
        let s = shp(&[100]);
        assert_eq!(op.backward_flops(&[&s]), op.forward_flops(&[&s]));
    }

    #[test]
    fn interaction_output_is_upper_triangle() {
        let op = OpKind::FeatureInteraction {
            features: 8,
            dim: 64,
        };
        assert_eq!(op.infer_output_shape(&[&shp(&[512])]).unwrap(), shp(&[28]));
        assert!(op.infer_output_shape(&[&shp(&[100])]).is_err());
    }

    #[test]
    fn parameter_free_ops() {
        for op in [
            OpKind::Input,
            OpKind::Activation(Nonlinearity::Gelu),
            OpKind::Concat,
            OpKind::Loss,
            OpKind::Add,
        ] {
            assert_eq!(op.param_count(), 0, "{op:?}");
        }
    }

    #[test]
    fn add_requires_matching_shapes() {
        let a = shp(&[4, 8]);
        assert_eq!(OpKind::Add.infer_output_shape(&[&a, &a]).unwrap(), a);
        assert!(OpKind::Add
            .infer_output_shape(&[&a, &shp(&[4, 9])])
            .is_err());
        assert!(OpKind::Add.infer_output_shape(&[]).is_err());
        // One add per element per extra input; backward mirrors forward.
        assert_eq!(OpKind::Add.forward_flops(&[&a, &a, &a]), 2 * 32);
        assert_eq!(OpKind::Add.backward_flops(&[&a, &a]), 32);
        assert_eq!(OpKind::Add.stashed_bytes(&[&a, &a]), 0);
    }

    #[test]
    fn stashed_bytes_includes_attention_probs() {
        let op = OpKind::MultiHeadAttention {
            seq: 16,
            hidden: 32,
            heads: 4,
        };
        let s = shp(&[16, 32]);
        let expected = (16 * 32 + 4 * 16 * 16) as u64 * BYTES_PER_ELEMENT;
        assert_eq!(op.stashed_bytes(&[&s]), expected);
    }

    #[test]
    fn input_has_no_cost() {
        assert_eq!(OpKind::Input.forward_flops(&[]), 0);
        assert_eq!(OpKind::Input.backward_flops(&[]), 0);
        assert_eq!(OpKind::Input.stashed_bytes(&[]), 0);
    }
}
