//! Per-sample tensor shapes.
//!
//! Shapes in this IR never include the batch dimension: every operator is
//! described for a *single* training sample, and batch size enters only when
//! costs are computed (see `gp-cost`). This mirrors how the GraphPipe planner
//! reasons about micro-batch sizes independently of the model definition.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A per-sample tensor shape (batch dimension excluded).
///
/// # Examples
///
/// ```
/// use gp_ir::Shape;
///
/// let s = Shape::new(vec![256, 1024]); // [seq_len, hidden]
/// assert_eq!(s.numel(), 256 * 1024);
/// assert_eq!(s.last_dim(), 1024);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from its dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty or any dimension is zero; a per-sample
    /// tensor always has at least one non-empty dimension.
    pub fn new(dims: Vec<usize>) -> Self {
        assert!(!dims.is_empty(), "shape must have at least one dimension");
        assert!(
            dims.iter().all(|&d| d > 0),
            "shape dimensions must be positive, got {dims:?}"
        );
        Shape(dims)
    }

    /// A rank-1 shape `[n]`.
    pub fn vector(n: usize) -> Self {
        Shape::new(vec![n])
    }

    /// A rank-2 shape `[rows, cols]`.
    pub fn matrix(rows: usize, cols: usize) -> Self {
        Shape::new(vec![rows, cols])
    }

    /// The dimensions of this shape.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements per sample.
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// The innermost (feature) dimension.
    pub fn last_dim(&self) -> usize {
        *self.0.last().expect("shape is never empty")
    }

    /// All dimensions except the innermost one, multiplied together.
    ///
    /// For a `[seq, hidden]` activation this is the number of tokens a
    /// `Linear` layer is applied to.
    pub fn leading_numel(&self) -> usize {
        self.0[..self.0.len() - 1].iter().product()
    }

    /// Returns a copy of this shape with the innermost dimension replaced.
    pub fn with_last_dim(&self, d: usize) -> Self {
        let mut dims = self.0.clone();
        *dims.last_mut().expect("shape is never empty") = d;
        Shape::new(dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_dims() {
        let s = Shape::new(vec![3, 4, 5]);
        assert_eq!(s.numel(), 60);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.last_dim(), 5);
        assert_eq!(s.leading_numel(), 12);
    }

    #[test]
    fn vector_and_matrix_helpers() {
        assert_eq!(Shape::vector(7).dims(), &[7]);
        assert_eq!(Shape::matrix(2, 3).dims(), &[2, 3]);
        assert_eq!(Shape::vector(7).leading_numel(), 1);
    }

    #[test]
    fn with_last_dim_replaces_feature_dim() {
        let s = Shape::matrix(8, 16).with_last_dim(32);
        assert_eq!(s.dims(), &[8, 32]);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Shape::new(vec![2, 3]).to_string(), "[2x3]");
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn empty_shape_panics() {
        let _ = Shape::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dim_panics() {
        let _ = Shape::new(vec![4, 0]);
    }
}
