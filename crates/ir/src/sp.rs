//! Series-parallel structure of a computation graph.
//!
//! GraphPipe exploits the observation that "most DNNs structurally reflect
//! series-parallel graphs" (section 5): its partitioner works on a recursive
//! series-parallel decomposition rather than the raw DAG. This module defines
//! that decomposition as an explicit tree ([`SpBlock`]) paired with the graph
//! it describes ([`SpModel`]), and validates that the tree is a faithful
//! description: every operator appears exactly once and every data edge is
//! compatible with the series/parallel nesting.
//!
//! gp-lint: deterministic — this module's outputs feed plan
//! fingerprints or the artifact codec; `cargo xtask lint` scans it for
//! nondeterminism hazards (DESIGN.md §"Determinism lint").

use crate::graph::{Graph, OpId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// One node of the series-parallel decomposition tree.
///
/// * [`SpBlock::Leaf`] — a single operator;
/// * [`SpBlock::Chain`] — children execute in series (data flows from each
///   child into the next);
/// * [`SpBlock::Branches`] — children are computationally independent and
///   may execute concurrently (the structure GPP exploits).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpBlock {
    /// A single operator.
    Leaf(OpId),
    /// Sequential composition of blocks.
    Chain(Vec<SpBlock>),
    /// Parallel (independent) composition of blocks.
    Branches(Vec<SpBlock>),
}

impl SpBlock {
    /// All operator ids in this block, in depth-first (series) order.
    ///
    /// For a valid [`SpModel`] this order is a topological order of the
    /// sub-DAG, and for the root block it is exactly the linearization the
    /// SPP baselines (PipeDream/Piper-style) consume.
    pub fn ops(&self) -> Vec<OpId> {
        let mut out = Vec::new();
        self.collect_ops(&mut out);
        out
    }

    fn collect_ops(&self, out: &mut Vec<OpId>) {
        match self {
            SpBlock::Leaf(id) => out.push(*id),
            SpBlock::Chain(items) | SpBlock::Branches(items) => {
                for item in items {
                    item.collect_ops(out);
                }
            }
        }
    }

    /// Number of operators in this block.
    pub fn op_count(&self) -> usize {
        match self {
            SpBlock::Leaf(_) => 1,
            SpBlock::Chain(items) | SpBlock::Branches(items) => {
                items.iter().map(SpBlock::op_count).sum()
            }
        }
    }

    /// Number of `Branches` nodes in this block (a rough measure of the
    /// parallel structure available to GPP).
    pub fn branch_points(&self) -> usize {
        match self {
            SpBlock::Leaf(_) => 0,
            SpBlock::Chain(items) => items.iter().map(SpBlock::branch_points).sum(),
            SpBlock::Branches(items) => 1 + items.iter().map(SpBlock::branch_points).sum::<usize>(),
        }
    }

    /// Flattens nested chains/branches and unwraps singleton composites.
    ///
    /// Normalized trees satisfy: no `Chain` directly contains a `Chain`, no
    /// `Branches` directly contains a `Branches`, and every composite has at
    /// least two children.
    pub fn normalize(self) -> SpBlock {
        match self {
            SpBlock::Leaf(id) => SpBlock::Leaf(id),
            SpBlock::Chain(items) => {
                let mut flat = Vec::new();
                for item in items {
                    match item.normalize() {
                        SpBlock::Chain(inner) => flat.extend(inner),
                        other => flat.push(other),
                    }
                }
                if flat.len() == 1 {
                    flat.pop().expect("len checked")
                } else {
                    SpBlock::Chain(flat)
                }
            }
            SpBlock::Branches(items) => {
                let mut flat = Vec::new();
                for item in items {
                    match item.normalize() {
                        SpBlock::Branches(inner) => flat.extend(inner),
                        other => flat.push(other),
                    }
                }
                if flat.len() == 1 {
                    flat.pop().expect("len checked")
                } else {
                    SpBlock::Branches(flat)
                }
            }
        }
    }

    /// Whether the tree is in the form produced by [`SpBlock::normalize`].
    pub fn is_normalized(&self) -> bool {
        match self {
            SpBlock::Leaf(_) => true,
            SpBlock::Chain(items) => {
                items.len() >= 2
                    && items
                        .iter()
                        .all(|i| !matches!(i, SpBlock::Chain(_)) && i.is_normalized())
            }
            SpBlock::Branches(items) => {
                items.len() >= 2
                    && items
                        .iter()
                        .all(|i| !matches!(i, SpBlock::Branches(_)) && i.is_normalized())
            }
        }
    }
}

/// How a model's series-parallel tree was obtained from its graph — the
/// fallback ladder of the arbitrary-DAG planning pipeline (see the
/// [`crate::dag`] module and DESIGN.md §"Arbitrary DAGs").
///
/// The path rides on the [`SpModel`] (and is stamped into every plan built
/// from it), so fingerprints, artifacts, and the verifier all see which
/// rung produced the decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlanPath {
    /// The tree represents the graph exactly: hand-authored and validated,
    /// or recovered losslessly by SP recognition.
    ExactSp,
    /// The graph is not series-parallel; an SP-ized supergraph decomposition
    /// was used instead.
    SpIzed {
        /// The distortion bound: extra activation-transit volume in bytes
        /// that the decomposition adds over the raw DAG's edges (each skip
        /// edge pays its producer's output once per chain position it
        /// crosses). Must equal [`crate::dag::transit_volume`] recomputed
        /// over the model — `gp-verify` checks this exactly.
        distortion: u64,
    },
    /// The graph exceeded the distortion budget; a coarse Piper-style
    /// clustering over a flat topological chain was used.
    Clustered {
        /// Number of unit-op groups the chain coarsens into
        /// (`ceil(ops / unit_ops)`).
        units: u32,
    },
}

impl fmt::Display for PlanPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanPath::ExactSp => write!(f, "exact-sp"),
            PlanPath::SpIzed { distortion } => {
                write!(f, "sp-ized (distortion {distortion} bytes)")
            }
            PlanPath::Clustered { units } => write!(f, "clustered ({units} units)"),
        }
    }
}

/// Errors raised when an [`SpBlock`] does not faithfully describe a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpError {
    /// An operator appears more than once in the tree.
    DuplicateOp(OpId),
    /// A graph operator is missing from the tree.
    MissingOp(OpId),
    /// The tree references an operator not present in the graph.
    UnknownOp(OpId),
    /// A data edge connects two different branches of a `Branches` node,
    /// so the branches are not actually independent.
    CrossBranchEdge(OpId, OpId),
    /// A data edge flows backwards within a `Chain`.
    BackwardEdge(OpId, OpId),
}

impl fmt::Display for SpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpError::DuplicateOp(id) => write!(f, "operator {id} appears twice in the SP tree"),
            SpError::MissingOp(id) => write!(f, "operator {id} is missing from the SP tree"),
            SpError::UnknownOp(id) => write!(f, "SP tree references unknown operator {id}"),
            SpError::CrossBranchEdge(u, v) => write!(
                f,
                "edge {u} -> {v} crosses between parallel branches; \
                 the model is not series-parallel as described"
            ),
            SpError::BackwardEdge(u, v) => {
                write!(f, "edge {u} -> {v} flows backwards within a chain")
            }
        }
    }
}

impl std::error::Error for SpError {}

/// A computation graph together with its validated series-parallel
/// decomposition.
///
/// # Examples
///
/// ```
/// use gp_ir::zoo;
///
/// let model = zoo::candle_uno(&zoo::CandleUnoConfig::default());
/// assert!(model.root().branch_points() >= 1);
/// let order = model.linearize();
/// assert!(model.graph().is_topo_order(&order));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpModel {
    graph: Graph,
    root: SpBlock,
    /// Human-readable model name (e.g. `"mmt"`).
    name: String,
    /// How the tree was obtained from the graph (see [`PlanPath`]).
    path: PlanPath,
}

impl SpModel {
    /// Pairs a graph with its SP decomposition, validating faithfulness.
    ///
    /// The tree is normalized first (see [`SpBlock::normalize`]).
    ///
    /// # Errors
    ///
    /// Returns an [`SpError`] when the tree and graph disagree: coverage is
    /// not exactly one-to-one, an edge crosses parallel branches, or an edge
    /// flows backwards along a chain.
    pub fn new(name: impl Into<String>, graph: Graph, root: SpBlock) -> Result<Self, SpError> {
        let root = root.normalize();
        validate_sp(&graph, &root)?;
        Ok(SpModel {
            graph,
            root,
            name: name.into(),
            path: PlanPath::ExactSp,
        })
    }

    /// Pairs a graph with a tree **without validating or normalizing** —
    /// the seam that lets `gp-verify`'s mutation tests (and protocol
    /// decoders that re-validate separately) build models the validating
    /// constructor would reject. Production code paths must use
    /// [`SpModel::new`] or [`crate::dag::plan_dag`].
    pub fn new_unchecked(
        name: impl Into<String>,
        graph: Graph,
        root: SpBlock,
        path: PlanPath,
    ) -> Self {
        SpModel {
            graph,
            root,
            name: name.into(),
            path,
        }
    }

    /// Returns the model with its plan path replaced. Used by the DAG
    /// planning pipeline (and wire decoders) to record which rung of the
    /// fallback ladder produced the tree; the path is absorbed into the
    /// model fingerprint whenever it is not [`PlanPath::ExactSp`].
    pub fn with_path(mut self, path: PlanPath) -> Self {
        self.path = path;
        self
    }

    /// The underlying computation graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The root of the series-parallel tree.
    pub fn root(&self) -> &SpBlock {
        &self.root
    }

    /// The model's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// How the SP tree was obtained from the graph ([`PlanPath::ExactSp`]
    /// for hand-authored or exactly recognized trees).
    pub fn path(&self) -> PlanPath {
        self.path
    }

    /// The linearization used by sequential-pipeline baselines: the SP tree's
    /// depth-first operator order, which flattens parallel branches one after
    /// another exactly like the "imaginary linear dependencies" of Figure 2.
    pub fn linearize(&self) -> Vec<OpId> {
        self.root.ops()
    }
}

/// Positions of an op in the SP tree: the path of child indices from root.
type Path = Vec<u32>;

fn validate_sp(graph: &Graph, root: &SpBlock) -> Result<(), SpError> {
    // Build op -> tree-path map, detecting duplicates/unknowns.
    let mut paths: HashMap<OpId, Path> = HashMap::new();
    let mut stack: Vec<(&SpBlock, Path)> = vec![(root, Vec::new())];
    while let Some((block, path)) = stack.pop() {
        match block {
            SpBlock::Leaf(id) => {
                if id.index() >= graph.len() {
                    return Err(SpError::UnknownOp(*id));
                }
                if paths.insert(*id, path).is_some() {
                    return Err(SpError::DuplicateOp(*id));
                }
            }
            SpBlock::Chain(items) | SpBlock::Branches(items) => {
                for (i, item) in items.iter().enumerate() {
                    let mut p = path.clone();
                    p.push(i as u32);
                    stack.push((item, p));
                }
            }
        }
    }
    for node in graph.nodes() {
        if !paths.contains_key(&node.id) {
            return Err(SpError::MissingOp(node.id));
        }
    }
    // Check every edge against the lowest common ancestor's block kind.
    for (u, v) in graph.edges() {
        let (pu, pv) = (&paths[&u], &paths[&v]);
        let common = pu.iter().zip(pv.iter()).take_while(|(a, b)| a == b).count();
        // The LCA block is the composite at depth `common`; find its kind by
        // walking down the tree.
        let lca_kind = block_kind_at(root, &pu[..common]);
        match lca_kind {
            BlockKindAt::Chain => {
                if pu[common] >= pv[common] {
                    return Err(SpError::BackwardEdge(u, v));
                }
            }
            BlockKindAt::Branches => return Err(SpError::CrossBranchEdge(u, v)),
            BlockKindAt::Leaf => {
                // LCA is a leaf only if u == v, impossible for an edge.
                unreachable!("an edge's endpoints are distinct ops");
            }
        }
    }
    Ok(())
}

enum BlockKindAt {
    Leaf,
    Chain,
    Branches,
}

fn block_kind_at(root: &SpBlock, path: &[u32]) -> BlockKindAt {
    let mut cur = root;
    for &i in path {
        cur = match cur {
            SpBlock::Chain(items) | SpBlock::Branches(items) => &items[i as usize],
            SpBlock::Leaf(_) => unreachable!("path descends past a leaf"),
        };
    }
    match cur {
        SpBlock::Leaf(_) => BlockKindAt::Leaf,
        SpBlock::Chain(_) => BlockKindAt::Chain,
        SpBlock::Branches(_) => BlockKindAt::Branches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::op::OpKind;
    use crate::shape::Shape;

    /// x -> {a | b} -> cat -> loss, as graph + SP tree.
    fn fork_join() -> (Graph, SpBlock) {
        let mut b = GraphBuilder::new();
        let x = b.input("x", Shape::vector(8));
        let a = b.linear("a", x, 8, false).unwrap();
        let c = b.linear("b", x, 8, false).unwrap();
        let cat = b.op("cat", OpKind::Concat, &[a, c]).unwrap();
        let l = b.loss("loss", &[cat]);
        let g = b.finish().unwrap();
        let tree = SpBlock::Chain(vec![
            SpBlock::Leaf(x),
            SpBlock::Branches(vec![SpBlock::Leaf(a), SpBlock::Leaf(c)]),
            SpBlock::Leaf(cat),
            SpBlock::Leaf(l),
        ]);
        (g, tree)
    }

    #[test]
    fn valid_model_roundtrips() {
        let (g, tree) = fork_join();
        let m = SpModel::new("forkjoin", g, tree).unwrap();
        assert_eq!(m.root().op_count(), 5);
        assert_eq!(m.root().branch_points(), 1);
        let lin = m.linearize();
        assert!(m.graph().is_topo_order(&lin));
    }

    #[test]
    fn duplicate_op_rejected() {
        let (g, _) = fork_join();
        let tree = SpBlock::Chain(vec![
            SpBlock::Leaf(OpId(0)),
            SpBlock::Leaf(OpId(0)),
            SpBlock::Leaf(OpId(1)),
            SpBlock::Leaf(OpId(2)),
            SpBlock::Leaf(OpId(3)),
            SpBlock::Leaf(OpId(4)),
        ]);
        assert_eq!(
            SpModel::new("bad", g, tree).unwrap_err(),
            SpError::DuplicateOp(OpId(0))
        );
    }

    #[test]
    fn missing_op_rejected() {
        let (g, _) = fork_join();
        let tree = SpBlock::Chain(vec![
            SpBlock::Leaf(OpId(0)),
            SpBlock::Leaf(OpId(1)),
            SpBlock::Leaf(OpId(3)),
            SpBlock::Leaf(OpId(4)),
        ]);
        assert_eq!(
            SpModel::new("bad", g, tree).unwrap_err(),
            SpError::MissingOp(OpId(2))
        );
    }

    #[test]
    fn cross_branch_edge_rejected() {
        // Place dependent ops a (x->a) and cat (a->cat) in parallel branches.
        let (g, _) = fork_join();
        let tree = SpBlock::Chain(vec![
            SpBlock::Leaf(OpId(0)),
            SpBlock::Branches(vec![
                SpBlock::Chain(vec![SpBlock::Leaf(OpId(1)), SpBlock::Leaf(OpId(3))]),
                SpBlock::Leaf(OpId(2)),
            ]),
            SpBlock::Leaf(OpId(4)),
        ]);
        assert_eq!(
            SpModel::new("bad", g, tree).unwrap_err(),
            SpError::CrossBranchEdge(OpId(2), OpId(3))
        );
    }

    #[test]
    fn backward_edge_rejected() {
        let (g, _) = fork_join();
        // cat before its producers in the chain.
        let tree = SpBlock::Chain(vec![
            SpBlock::Leaf(OpId(0)),
            SpBlock::Leaf(OpId(3)),
            SpBlock::Branches(vec![SpBlock::Leaf(OpId(1)), SpBlock::Leaf(OpId(2))]),
            SpBlock::Leaf(OpId(4)),
        ]);
        assert!(matches!(
            SpModel::new("bad", g, tree).unwrap_err(),
            SpError::BackwardEdge(..)
        ));
    }

    #[test]
    fn normalize_flattens_and_unwraps() {
        let t = SpBlock::Chain(vec![
            SpBlock::Chain(vec![SpBlock::Leaf(OpId(0)), SpBlock::Leaf(OpId(1))]),
            SpBlock::Branches(vec![SpBlock::Branches(vec![
                SpBlock::Leaf(OpId(2)),
                SpBlock::Leaf(OpId(3)),
            ])]),
        ]);
        let n = t.normalize();
        assert!(n.is_normalized());
        assert_eq!(
            n,
            SpBlock::Chain(vec![
                SpBlock::Leaf(OpId(0)),
                SpBlock::Leaf(OpId(1)),
                SpBlock::Branches(vec![SpBlock::Leaf(OpId(2)), SpBlock::Leaf(OpId(3))]),
            ])
        );
    }

    #[test]
    fn normalize_singleton_composites() {
        let t = SpBlock::Chain(vec![SpBlock::Branches(vec![SpBlock::Leaf(OpId(5))])]);
        assert_eq!(t.normalize(), SpBlock::Leaf(OpId(5)));
    }

    #[test]
    fn ops_are_depth_first() {
        let (_, tree) = fork_join();
        let ops: Vec<u32> = tree.ops().iter().map(|o| o.0).collect();
        assert_eq!(ops, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn error_display() {
        let e = SpError::CrossBranchEdge(OpId(1), OpId(2));
        assert!(e.to_string().contains("crosses between parallel branches"));
    }
}
