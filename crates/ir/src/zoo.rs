//! Model zoo: the DNNs evaluated in the GraphPipe paper.
//!
//! Configurations default to Appendix A.2 of the paper:
//!
//! * [`mmt`] — Multi-Modal Transformer: parallel branches of Transformer
//!   layers concatenated at the end (4 branches x 8 layers, seq 256, hidden
//!   1024, 16 heads, FFN 4096);
//! * [`dlrm`] — recommendation model: 7 dense-feature branches (4 FFN layers,
//!   hidden 4096) and 7 sparse-feature branches (1M x 64 embedding bags of
//!   size 100), concatenated, pairwise feature interaction, post-MLP;
//! * [`candle_uno`] — precision-medicine model: 7 branches of 4 FFN layers
//!   (hidden 4096), concatenated, with a small head; the full 21-branch
//!   drug-response model is [`CandleUnoConfig::full`];
//! * [`moe`] — a Mixture-of-Experts-style wide-branch model: a shared
//!   trunk fanning out to parallel expert FFN branches, concatenated and
//!   mixed back down;
//! * [`sequential_transformer`] — the Appendix A.3 sequential workload
//!   (32 Transformer layers, no branches);
//! * [`case_study`] — the synthetic two-branch Transformer of Figure 10
//!   (2 branches x 4 repetitions of [MHA, Linear, Linear]).
//!
//! Simplification (see DESIGN.md §"Model-zoo simplifications"): DLRM's sparse branches project
//! their concatenated bag to the dense hidden size so that the pairwise
//! feature interaction operates on uniform feature vectors; the top MLP
//! consumes the interaction output directly. This preserves the multi-branch
//! compute/memory balance the evaluation depends on.

use crate::dag::{plan_dag, DagOptions};
use crate::graph::{Graph, GraphBuilder, OpId};
use crate::op::{Nonlinearity, OpKind};
use crate::shape::Shape;
use crate::sp::{SpBlock, SpModel};

/// Configuration for the Multi-Modal Transformer model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MmtConfig {
    /// Number of parallel modality branches.
    pub branches: usize,
    /// Transformer layers per branch.
    pub layers_per_branch: usize,
    /// Input sequence length.
    pub seq: usize,
    /// Model (hidden/embedding) dimension.
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// Feed-forward hidden dimension.
    pub ffn_hidden: usize,
}

impl Default for MmtConfig {
    /// Appendix A.2: 4 branches x 8 layers, seq 256, hidden 1024, 16 heads,
    /// FFN hidden 4096.
    fn default() -> Self {
        MmtConfig {
            branches: 4,
            layers_per_branch: 8,
            seq: 256,
            hidden: 1024,
            heads: 16,
            ffn_hidden: 4096,
        }
    }
}

impl MmtConfig {
    /// The two-branch variant used for the search-time comparison (§7.2).
    pub fn two_branch() -> Self {
        MmtConfig {
            branches: 2,
            ..Self::default()
        }
    }

    /// A tiny variant for tests and CPU execution.
    pub fn tiny() -> Self {
        MmtConfig {
            branches: 2,
            layers_per_branch: 2,
            seq: 8,
            hidden: 16,
            heads: 2,
            ffn_hidden: 32,
        }
    }
}

/// One Transformer layer: `[MHA, Linear(h->ffn), Gelu, Linear(ffn->h)]`,
/// the granularity used throughout the paper's case study.
fn transformer_layer(
    b: &mut GraphBuilder,
    prefix: &str,
    input: OpId,
    cfg: &MmtConfig,
    blocks: &mut Vec<SpBlock>,
) -> OpId {
    let mha = b
        .op(
            format!("{prefix}.mha"),
            OpKind::MultiHeadAttention {
                seq: cfg.seq,
                hidden: cfg.hidden,
                heads: cfg.heads,
            },
            &[input],
        )
        .expect("shapes are consistent by construction");
    let up = b
        .linear(format!("{prefix}.ffn_up"), mha, cfg.ffn_hidden, true)
        .expect("shapes are consistent by construction");
    let act = b
        .op(
            format!("{prefix}.gelu"),
            OpKind::Activation(Nonlinearity::Gelu),
            &[up],
        )
        .expect("shapes are consistent by construction");
    let down = b
        .linear(format!("{prefix}.ffn_down"), act, cfg.hidden, true)
        .expect("shapes are consistent by construction");
    blocks.extend([
        SpBlock::Leaf(mha),
        SpBlock::Leaf(up),
        SpBlock::Leaf(act),
        SpBlock::Leaf(down),
    ]);
    down
}

/// Builds the Multi-Modal Transformer model (Figure 6a workload).
pub fn mmt(cfg: &MmtConfig) -> SpModel {
    assert!(cfg.branches >= 1 && cfg.layers_per_branch >= 1);
    let mut b = GraphBuilder::new();
    let mut branch_blocks = Vec::new();
    let mut branch_outs = Vec::new();
    for br in 0..cfg.branches {
        let mut blocks = Vec::new();
        let input = b.input(
            format!("branch{br}.input"),
            Shape::matrix(cfg.seq, cfg.hidden),
        );
        blocks.push(SpBlock::Leaf(input));
        let mut cur = input;
        for layer in 0..cfg.layers_per_branch {
            cur = transformer_layer(
                &mut b,
                &format!("branch{br}.l{layer}"),
                cur,
                cfg,
                &mut blocks,
            );
        }
        branch_outs.push(cur);
        branch_blocks.push(SpBlock::Chain(blocks));
    }
    let cat = b
        .op("concat", OpKind::Concat, &branch_outs)
        .expect("branch outputs agree on leading dims");
    let loss = b.loss("loss", &[cat]);
    let root = SpBlock::Chain(vec![
        SpBlock::Branches(branch_blocks),
        SpBlock::Leaf(cat),
        SpBlock::Leaf(loss),
    ]);
    SpModel::new("mmt", b.finish().expect("zoo model is valid"), root)
        .expect("zoo SP tree matches its graph")
}

/// Configuration for the DLRM recommendation model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DlrmConfig {
    /// Number of dense-feature branches.
    pub dense_branches: usize,
    /// Number of sparse-feature (embedding) branches.
    pub sparse_branches: usize,
    /// FFN layers per dense branch.
    pub dense_layers: usize,
    /// Hidden size of dense features and feed-forward layers.
    pub hidden: usize,
    /// Embedding-table rows.
    pub embedding_entries: usize,
    /// Embedding dimension.
    pub embedding_dim: usize,
    /// Lookups per sample (bag size); bag entries are concatenated.
    pub bag: usize,
    /// Feed-forward layers after the feature interaction.
    pub top_layers: usize,
}

impl Default for DlrmConfig {
    /// Appendix A.2: 7 dense + 7 sparse branches, 4 FFN layers of hidden
    /// 4096, 1M x 64 embeddings with bag 100.
    fn default() -> Self {
        DlrmConfig {
            dense_branches: 7,
            sparse_branches: 7,
            dense_layers: 4,
            hidden: 4096,
            embedding_entries: 1_000_000,
            embedding_dim: 64,
            bag: 100,
            top_layers: 2,
        }
    }
}

impl DlrmConfig {
    /// A tiny variant for tests and CPU execution.
    pub fn tiny() -> Self {
        DlrmConfig {
            dense_branches: 2,
            sparse_branches: 2,
            dense_layers: 2,
            hidden: 16,
            embedding_entries: 64,
            embedding_dim: 4,
            bag: 3,
            top_layers: 1,
        }
    }
}

/// Builds the DLRM model (Figure 6b workload).
pub fn dlrm(cfg: &DlrmConfig) -> SpModel {
    assert!(cfg.dense_branches + cfg.sparse_branches >= 1);
    let mut b = GraphBuilder::new();
    let mut branch_blocks = Vec::new();
    let mut branch_outs = Vec::new();
    for br in 0..cfg.dense_branches {
        let mut blocks = Vec::new();
        let input = b.input(format!("dense{br}.input"), Shape::vector(cfg.hidden));
        blocks.push(SpBlock::Leaf(input));
        let mut cur = input;
        for layer in 0..cfg.dense_layers {
            let fc = b
                .linear(format!("dense{br}.l{layer}.fc"), cur, cfg.hidden, true)
                .expect("consistent");
            let act = b
                .op(
                    format!("dense{br}.l{layer}.relu"),
                    OpKind::Activation(Nonlinearity::Relu),
                    &[fc],
                )
                .expect("consistent");
            blocks.extend([SpBlock::Leaf(fc), SpBlock::Leaf(act)]);
            cur = act;
        }
        branch_outs.push(cur);
        branch_blocks.push(SpBlock::Chain(blocks));
    }
    for br in 0..cfg.sparse_branches {
        let mut blocks = Vec::new();
        let input = b.input(format!("sparse{br}.indices"), Shape::vector(cfg.bag));
        let bag = b
            .op(
                format!("sparse{br}.embag"),
                OpKind::EmbeddingBag {
                    entries: cfg.embedding_entries,
                    dim: cfg.embedding_dim,
                    bag: cfg.bag,
                },
                &[input],
            )
            .expect("consistent");
        // Project the concatenated bag to the dense hidden size so the
        // interaction sees uniform feature vectors (see module docs).
        let proj = b
            .linear(format!("sparse{br}.proj"), bag, cfg.hidden, true)
            .expect("consistent");
        blocks.extend([
            SpBlock::Leaf(input),
            SpBlock::Leaf(bag),
            SpBlock::Leaf(proj),
        ]);
        branch_outs.push(proj);
        branch_blocks.push(SpBlock::Chain(blocks));
    }
    let features = cfg.dense_branches + cfg.sparse_branches;
    let cat = b
        .op("concat", OpKind::Concat, &branch_outs)
        .expect("uniform feature dims");
    let interact = b
        .op(
            "interaction",
            OpKind::FeatureInteraction {
                features,
                dim: cfg.hidden,
            },
            &[cat],
        )
        .expect("consistent");
    let mut blocks = vec![
        SpBlock::Branches(branch_blocks),
        SpBlock::Leaf(cat),
        SpBlock::Leaf(interact),
    ];
    let mut cur = interact;
    for layer in 0..cfg.top_layers {
        let fc = b
            .linear(format!("top.l{layer}.fc"), cur, cfg.hidden, true)
            .expect("consistent");
        let act = b
            .op(
                format!("top.l{layer}.relu"),
                OpKind::Activation(Nonlinearity::Relu),
                &[fc],
            )
            .expect("consistent");
        blocks.extend([SpBlock::Leaf(fc), SpBlock::Leaf(act)]);
        cur = act;
    }
    let head = b.linear("top.head", cur, 1, true).expect("consistent");
    let loss = b.loss("loss", &[head]);
    blocks.extend([SpBlock::Leaf(head), SpBlock::Leaf(loss)]);
    SpModel::new(
        "dlrm",
        b.finish().expect("zoo model is valid"),
        SpBlock::Chain(blocks),
    )
    .expect("zoo SP tree matches its graph")
}

/// Configuration for the CANDLE-Uno model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandleUnoConfig {
    /// Number of parallel feature branches (swept in Figure 7 left).
    pub branches: usize,
    /// FFN layers per branch.
    pub layers_per_branch: usize,
    /// Hidden size of every feed-forward layer.
    pub hidden: usize,
    /// FFN layers in the shared head after concatenation.
    pub head_layers: usize,
}

impl Default for CandleUnoConfig {
    /// Appendix A.2: 7 branches of 4 feed-forward layers, hidden 4096;
    /// the branches are "concatenated at the end" with only a scalar
    /// prediction head after the join.
    fn default() -> Self {
        CandleUnoConfig {
            branches: 7,
            layers_per_branch: 4,
            hidden: 4096,
            head_layers: 0,
        }
    }
}

impl CandleUnoConfig {
    /// The complete CANDLE-Uno model: all 21 feature-encoder branches of the
    /// precision-medicine workload (the paper's Appendix A.2 evaluates a
    /// 7-branch subset; the full drug-response model encodes 21 feature
    /// types). This is the widest many-branch stress case for the
    /// partitioner.
    pub fn full() -> Self {
        CandleUnoConfig {
            branches: 21,
            ..Self::default()
        }
    }

    /// Variant with a different branch count (Figure 7 left sweep).
    pub fn with_branches(branches: usize) -> Self {
        CandleUnoConfig {
            branches,
            ..Self::default()
        }
    }

    /// A tiny variant for tests and CPU execution.
    pub fn tiny() -> Self {
        CandleUnoConfig {
            branches: 2,
            layers_per_branch: 2,
            hidden: 16,
            head_layers: 1,
        }
    }
}

/// Builds the CANDLE-Uno model (Figure 6c workload).
pub fn candle_uno(cfg: &CandleUnoConfig) -> SpModel {
    assert!(cfg.branches >= 1 && cfg.layers_per_branch >= 1);
    let mut b = GraphBuilder::new();
    let mut branch_blocks = Vec::new();
    let mut branch_outs = Vec::new();
    for br in 0..cfg.branches {
        let mut blocks = Vec::new();
        let input = b.input(format!("branch{br}.input"), Shape::vector(cfg.hidden));
        blocks.push(SpBlock::Leaf(input));
        let mut cur = input;
        for layer in 0..cfg.layers_per_branch {
            let fc = b
                .linear(format!("branch{br}.l{layer}.fc"), cur, cfg.hidden, true)
                .expect("consistent");
            let act = b
                .op(
                    format!("branch{br}.l{layer}.relu"),
                    OpKind::Activation(Nonlinearity::Relu),
                    &[fc],
                )
                .expect("consistent");
            blocks.extend([SpBlock::Leaf(fc), SpBlock::Leaf(act)]);
            cur = act;
        }
        branch_outs.push(cur);
        branch_blocks.push(SpBlock::Chain(blocks));
    }
    let cat = b
        .op("concat", OpKind::Concat, &branch_outs)
        .expect("uniform dims");
    let mut blocks = vec![SpBlock::Branches(branch_blocks), SpBlock::Leaf(cat)];
    let mut cur = cat;
    for layer in 0..cfg.head_layers {
        let fc = b
            .linear(format!("head.l{layer}.fc"), cur, cfg.hidden, true)
            .expect("consistent");
        let act = b
            .op(
                format!("head.l{layer}.relu"),
                OpKind::Activation(Nonlinearity::Relu),
                &[fc],
            )
            .expect("consistent");
        blocks.extend([SpBlock::Leaf(fc), SpBlock::Leaf(act)]);
        cur = act;
    }
    let head = b.linear("head.out", cur, 1, true).expect("consistent");
    let loss = b.loss("loss", &[head]);
    blocks.extend([SpBlock::Leaf(head), SpBlock::Leaf(loss)]);
    SpModel::new(
        "candle-uno",
        b.finish().expect("zoo model is valid"),
        SpBlock::Chain(blocks),
    )
    .expect("zoo SP tree matches its graph")
}

/// Builds the sequential Transformer of Appendix A.3: a single chain of
/// Transformer layers with the MMT layer configuration, used to show parity
/// between GraphPipe and the SPP baselines on sequential workloads.
pub fn sequential_transformer(layers: usize, cfg: &MmtConfig) -> SpModel {
    assert!(layers >= 1);
    let mut b = GraphBuilder::new();
    let mut blocks = Vec::new();
    let input = b.input("input", Shape::matrix(cfg.seq, cfg.hidden));
    blocks.push(SpBlock::Leaf(input));
    let mut cur = input;
    for layer in 0..layers {
        cur = transformer_layer(&mut b, &format!("l{layer}"), cur, cfg, &mut blocks);
    }
    let loss = b.loss("loss", &[cur]);
    blocks.push(SpBlock::Leaf(loss));
    SpModel::new(
        "seq-transformer",
        b.finish().expect("zoo model is valid"),
        SpBlock::Chain(blocks),
    )
    .expect("zoo SP tree matches its graph")
}

/// Builds the synthetic two-branch Transformer of Figure 10 (the §7.5 case
/// study): each branch is four repetitions of `[MHA, Linear, Linear]`
/// (no activation ops, matching the figure), merged by one concatenation.
pub fn case_study(cfg: &MmtConfig) -> SpModel {
    let mut b = GraphBuilder::new();
    let mut branch_blocks = Vec::new();
    let mut branch_outs = Vec::new();
    for br in 0..2 {
        let mut blocks = Vec::new();
        let input = b.input(
            format!("branch{br}.input"),
            Shape::matrix(cfg.seq, cfg.hidden),
        );
        blocks.push(SpBlock::Leaf(input));
        let mut cur = input;
        for layer in 0..4 {
            let mha = b
                .op(
                    format!("branch{br}.l{layer}.mha"),
                    OpKind::MultiHeadAttention {
                        seq: cfg.seq,
                        hidden: cfg.hidden,
                        heads: cfg.heads,
                    },
                    &[cur],
                )
                .expect("consistent");
            let up = b
                .linear(
                    format!("branch{br}.l{layer}.fc1"),
                    mha,
                    cfg.ffn_hidden,
                    true,
                )
                .expect("consistent");
            let down = b
                .linear(format!("branch{br}.l{layer}.fc2"), up, cfg.hidden, true)
                .expect("consistent");
            blocks.extend([SpBlock::Leaf(mha), SpBlock::Leaf(up), SpBlock::Leaf(down)]);
            cur = down;
        }
        branch_outs.push(cur);
        branch_blocks.push(SpBlock::Chain(blocks));
    }
    let cat = b
        .op("concat", OpKind::Concat, &branch_outs)
        .expect("uniform dims");
    let loss = b.loss("loss", &[cat]);
    let root = SpBlock::Chain(vec![
        SpBlock::Branches(branch_blocks),
        SpBlock::Leaf(cat),
        SpBlock::Leaf(loss),
    ]);
    SpModel::new("case-study", b.finish().expect("zoo model is valid"), root)
        .expect("zoo SP tree matches its graph")
}

/// Configuration for the Mixture-of-Experts-style wide-branch model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MoeConfig {
    /// Number of parallel expert branches.
    pub experts: usize,
    /// FFN blocks per expert.
    pub layers_per_expert: usize,
    /// Model (hidden) dimension.
    pub hidden: usize,
    /// Expert feed-forward hidden dimension.
    pub ffn_hidden: usize,
}

impl Default for MoeConfig {
    /// A wide, shallow configuration: 8 experts of 2 FFN blocks, hidden
    /// 1024, expert FFN hidden 4096 — branch-heavy like the paper's 8-branch
    /// sweep points, but with a *shared* trunk feeding every branch.
    fn default() -> Self {
        MoeConfig {
            experts: 8,
            layers_per_expert: 2,
            hidden: 1024,
            ffn_hidden: 4096,
        }
    }
}

impl MoeConfig {
    /// A tiny variant for tests and CPU execution.
    pub fn tiny() -> Self {
        MoeConfig {
            experts: 2,
            layers_per_expert: 1,
            hidden: 16,
            ffn_hidden: 32,
        }
    }
}

/// Builds a Mixture-of-Experts-style wide-branch model.
///
/// Unlike the other branch models of the zoo, all experts share one trunk:
/// `input -> router` feeds every expert branch, the expert outputs are
/// concatenated and mixed back to the hidden size, then a scalar head and
/// loss follow. This stresses the partitioner with a branch point whose
/// upstream is a *single* operator (a fan-out), rather than per-branch
/// inputs — the shape dense MoE layers take when every token is routed to
/// every expert.
pub fn moe(cfg: &MoeConfig) -> SpModel {
    assert!(cfg.experts >= 1 && cfg.layers_per_expert >= 1);
    let mut b = GraphBuilder::new();
    let input = b.input("input", Shape::vector(cfg.hidden));
    let router = b
        .linear("router", input, cfg.hidden, true)
        .expect("consistent");
    let mut expert_blocks = Vec::new();
    let mut expert_outs = Vec::new();
    for e in 0..cfg.experts {
        let mut blocks = Vec::new();
        let mut cur = router;
        for layer in 0..cfg.layers_per_expert {
            let up = b
                .linear(format!("expert{e}.l{layer}.up"), cur, cfg.ffn_hidden, true)
                .expect("consistent");
            let act = b
                .op(
                    format!("expert{e}.l{layer}.gelu"),
                    OpKind::Activation(Nonlinearity::Gelu),
                    &[up],
                )
                .expect("consistent");
            let down = b
                .linear(format!("expert{e}.l{layer}.down"), act, cfg.hidden, true)
                .expect("consistent");
            blocks.extend([SpBlock::Leaf(up), SpBlock::Leaf(act), SpBlock::Leaf(down)]);
            cur = down;
        }
        expert_outs.push(cur);
        expert_blocks.push(SpBlock::Chain(blocks));
    }
    let cat = b
        .op("combine.concat", OpKind::Concat, &expert_outs)
        .expect("uniform dims");
    let mix = b
        .linear("combine.mix", cat, cfg.hidden, true)
        .expect("consistent");
    let head = b.linear("head.out", mix, 1, true).expect("consistent");
    let loss = b.loss("loss", &[head]);
    let root = SpBlock::Chain(vec![
        SpBlock::Leaf(input),
        SpBlock::Leaf(router),
        SpBlock::Branches(expert_blocks),
        SpBlock::Leaf(cat),
        SpBlock::Leaf(mix),
        SpBlock::Leaf(head),
        SpBlock::Leaf(loss),
    ]);
    SpModel::new("moe", b.finish().expect("zoo model is valid"), root)
        .expect("zoo SP tree matches its graph")
}

/// A plain multi-layer perceptron chain, for unit tests and examples.
pub fn mlp_chain(layers: usize, hidden: usize) -> SpModel {
    assert!(layers >= 1);
    let mut b = GraphBuilder::new();
    let mut blocks = Vec::new();
    let input = b.input("input", Shape::vector(hidden));
    blocks.push(SpBlock::Leaf(input));
    let mut cur = input;
    for layer in 0..layers {
        let fc = b
            .linear(format!("l{layer}.fc"), cur, hidden, true)
            .expect("consistent");
        let act = b
            .op(
                format!("l{layer}.relu"),
                OpKind::Activation(Nonlinearity::Relu),
                &[fc],
            )
            .expect("consistent");
        blocks.extend([SpBlock::Leaf(fc), SpBlock::Leaf(act)]);
        cur = act;
    }
    let loss = b.loss("loss", &[cur]);
    blocks.push(SpBlock::Leaf(loss));
    SpModel::new(
        "mlp-chain",
        b.finish().expect("zoo model is valid"),
        SpBlock::Chain(blocks),
    )
    .expect("zoo SP tree matches its graph")
}

/// Configuration for the GPT-2-style decoder stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gpt2Config {
    /// Number of Transformer blocks.
    pub layers: usize,
    /// Model (hidden) dimension.
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// Sequence length.
    pub seq: usize,
    /// Vocabulary size (embedding rows and head columns).
    pub vocab: usize,
}

impl Default for Gpt2Config {
    /// A scaled-down GPT-2: 6 blocks, hidden 256, 8 heads, seq 128,
    /// vocab 4096 — the residual topology of the full model at a size the
    /// analytic planner sweeps quickly.
    fn default() -> Self {
        Gpt2Config {
            layers: 6,
            hidden: 256,
            heads: 8,
            seq: 128,
            vocab: 4096,
        }
    }
}

impl Gpt2Config {
    /// A tiny variant for tests and CPU execution.
    pub fn tiny() -> Self {
        Gpt2Config {
            layers: 2,
            hidden: 32,
            heads: 2,
            seq: 16,
            vocab: 128,
        }
    }
}

/// Builds the raw GPT-2-style graph: embedding -> N pre-norm
/// attention/MLP blocks with residual [`OpKind::Add`] skips -> final norm
/// -> vocabulary head -> loss.
///
/// The token embedding is modeled as a dense `vocab -> hidden` projection
/// of one-hot rows (same parameter count as the real lookup table). The
/// residual skips make this a graph with *forward skip edges* — no
/// hand-authorable branch structure, exactly what [`plan_dag`] exists to
/// absorb.
pub fn gpt2_graph(cfg: &Gpt2Config) -> Graph {
    assert!(cfg.layers >= 1 && cfg.heads >= 1 && cfg.hidden.is_multiple_of(cfg.heads));
    let mut b = GraphBuilder::new();
    let tokens = b.input("tokens", Shape::matrix(cfg.seq, cfg.vocab));
    let mut cur = b
        .linear("embed", tokens, cfg.hidden, false)
        .expect("consistent");
    for l in 0..cfg.layers {
        let ln1 = b
            .op(
                format!("l{l}.ln1"),
                OpKind::LayerNorm { dim: cfg.hidden },
                &[cur],
            )
            .expect("consistent");
        let attn = b
            .op(
                format!("l{l}.attn"),
                OpKind::MultiHeadAttention {
                    seq: cfg.seq,
                    hidden: cfg.hidden,
                    heads: cfg.heads,
                },
                &[ln1],
            )
            .expect("consistent");
        let add1 = b
            .op(format!("l{l}.res1"), OpKind::Add, &[cur, attn])
            .expect("consistent");
        let ln2 = b
            .op(
                format!("l{l}.ln2"),
                OpKind::LayerNorm { dim: cfg.hidden },
                &[add1],
            )
            .expect("consistent");
        let up = b
            .linear(format!("l{l}.mlp_up"), ln2, 4 * cfg.hidden, true)
            .expect("consistent");
        let act = b
            .op(
                format!("l{l}.gelu"),
                OpKind::Activation(Nonlinearity::Gelu),
                &[up],
            )
            .expect("consistent");
        let down = b
            .linear(format!("l{l}.mlp_down"), act, cfg.hidden, true)
            .expect("consistent");
        cur = b
            .op(format!("l{l}.res2"), OpKind::Add, &[add1, down])
            .expect("consistent");
    }
    let lnf = b
        .op("ln_f", OpKind::LayerNorm { dim: cfg.hidden }, &[cur])
        .expect("consistent");
    let head = b.linear("head", lnf, cfg.vocab, false).expect("consistent");
    b.loss("loss", &[head]);
    b.finish().expect("zoo model is valid")
}

/// Builds the GPT-2-style model through the [`plan_dag`] ladder.
///
/// Residual skips leave the graph totally ordered by reachability, so
/// recognition recovers an exact chain tree ([`crate::PlanPath::ExactSp`])
/// whose skip edges ride the chain forward.
pub fn gpt2(cfg: &Gpt2Config) -> SpModel {
    plan_dag("gpt2", gpt2_graph(cfg), &DagOptions::default()).expect("zoo model is valid")
}

/// Configuration for the deep GNN layer pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GnnPipeConfig {
    /// Number of GNN layers (>= 3 to exercise the jumping skips).
    pub layers: usize,
    /// Parallel attention heads per layer.
    pub heads: usize,
    /// Per-head feature dimension.
    pub dim: usize,
}

impl Default for GnnPipeConfig {
    /// 8 layers of 8 heads at dim 256 — deep and wide enough that the
    /// level-chain SP-ization carries real distortion.
    fn default() -> Self {
        GnnPipeConfig {
            layers: 8,
            heads: 8,
            dim: 256,
        }
    }
}

impl GnnPipeConfig {
    /// A tiny variant for tests and CPU execution.
    pub fn tiny() -> Self {
        GnnPipeConfig {
            layers: 3,
            heads: 4,
            dim: 32,
        }
    }
}

/// Builds the raw deep-GNN layer-pipeline graph (GNNPipe-style, see
/// PAPERS.md): each layer holds `heads` parallel per-head transforms;
/// layer `l`'s head `j` aggregates head `j` and neighbor head
/// `(j+1) % heads` of layer `l-1` — plus a *jumping-knowledge* skip from
/// layer `l-2` — before its dense update. The neighbor mixing makes
/// same-layer heads incomparable yet mutually entangled (no SP separator
/// exists between layers), and the jumping skips span two levels, so this
/// graph is genuinely non-SP with nonzero SP-ization distortion.
pub fn gnn_pipe_graph(cfg: &GnnPipeConfig) -> Graph {
    assert!(cfg.layers >= 2 && cfg.heads >= 2);
    let mut b = GraphBuilder::new();
    let input = b.input("input", Shape::vector(cfg.dim));
    // h[l][j]: head j's output at layer l; keep the previous two layers.
    let mut prev: Vec<OpId> = (0..cfg.heads)
        .map(|j| {
            b.linear(format!("l0.h{j}"), input, cfg.dim, true)
                .expect("consistent")
        })
        .collect();
    let mut prev2: Option<Vec<OpId>> = None;
    for l in 1..cfg.layers {
        let next: Vec<OpId> = (0..cfg.heads)
            .map(|j| {
                let mut inputs = vec![prev[j], prev[(j + 1) % cfg.heads]];
                if let Some(ref pp) = prev2 {
                    inputs.push(pp[j]);
                }
                let agg = b
                    .op(format!("l{l}.agg{j}"), OpKind::Add, &inputs)
                    .expect("consistent");
                b.linear(format!("l{l}.h{j}"), agg, cfg.dim, true)
                    .expect("consistent")
            })
            .collect();
        prev2 = Some(std::mem::replace(&mut prev, next));
    }
    let readout = b.op("readout", OpKind::Add, &prev).expect("consistent");
    let head = b.linear("head", readout, 1, true).expect("consistent");
    b.loss("loss", &[head]);
    b.finish().expect("zoo model is valid")
}

/// Builds the deep GNN pipeline through the [`plan_dag`] ladder.
///
/// The graph is irreducible (no SP tree exists), so the result takes the
/// [`crate::PlanPath::SpIzed`] path: a level chain over longest-path
/// depths whose jumping skips contribute the reported distortion.
pub fn gnn_pipe(cfg: &GnnPipeConfig) -> SpModel {
    plan_dag("gnn-pipe", gnn_pipe_graph(cfg), &DagOptions::default()).expect("zoo model is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mmt_default_matches_paper_config() {
        let m = mmt(&MmtConfig::default());
        // 4 branches x (1 input + 8 layers x 4 ops) + concat + loss.
        assert_eq!(m.graph().len(), 4 * (1 + 8 * 4) + 2);
        assert_eq!(m.root().branch_points(), 1);
        m.graph().validate().unwrap();
        // Each Transformer layer holds 4 h^2 (MHA) + 2 h*ffn (FFN) weights.
        let h = 1024u64;
        let layer_params = 4 * (h * h + h) + (h * 4096 + 4096) + (4096 * h + h);
        assert_eq!(m.graph().total_params(), 4 * 8 * layer_params);
    }

    #[test]
    fn mmt_linearization_is_topological() {
        let m = mmt(&MmtConfig::tiny());
        assert!(m.graph().is_topo_order(&m.linearize()));
    }

    #[test]
    fn dlrm_default_has_fourteen_branches() {
        let m = dlrm(&DlrmConfig::default());
        let root_branches = match m.root() {
            SpBlock::Chain(items) => match &items[0] {
                SpBlock::Branches(bs) => bs.len(),
                other => panic!("expected Branches first, got {other:?}"),
            },
            other => panic!("expected Chain root, got {other:?}"),
        };
        assert_eq!(root_branches, 14);
        // Embedding tables dominate the parameter count: 7 x 1M x 64.
        assert!(m.graph().total_params() > 7 * 64_000_000);
    }

    #[test]
    fn candle_uno_branch_sweep() {
        for branches in [2, 4, 8, 16] {
            let m = candle_uno(&CandleUnoConfig::with_branches(branches));
            m.graph().validate().unwrap();
            assert!(m.graph().is_topo_order(&m.linearize()));
            assert_eq!(m.root().branch_points(), 1);
        }
    }

    #[test]
    fn candle_uno_full_has_21_branches() {
        let m = candle_uno(&CandleUnoConfig::full());
        m.graph().validate().unwrap();
        // 21 branches x (1 input + 4 layers x 2 ops) + concat + head + loss.
        assert_eq!(m.graph().len(), 21 * (1 + 4 * 2) + 3);
        assert_eq!(m.root().branch_points(), 1);
        assert!(m.graph().is_topo_order(&m.linearize()));
    }

    #[test]
    fn moe_default_matches_config() {
        let m = moe(&MoeConfig::default());
        m.graph().validate().unwrap();
        // input + router + 8 experts x (2 layers x 3 ops) + concat + mix +
        // head + loss.
        assert_eq!(m.graph().len(), 2 + 8 * (2 * 3) + 4);
        assert_eq!(m.root().branch_points(), 1);
        assert!(m.graph().is_topo_order(&m.linearize()));
        // The router fans out to every expert's first op.
        let g = m.graph();
        let router = g.nodes().find(|n| n.name == "router").unwrap().id;
        assert_eq!(g.succs(router).len(), 8);
    }

    #[test]
    fn moe_tiny_is_small() {
        let m = moe(&MoeConfig::tiny());
        m.graph().validate().unwrap();
        assert!(m.graph().len() < 15);
    }

    #[test]
    fn sequential_transformer_has_no_branches() {
        let m = sequential_transformer(32, &MmtConfig::default());
        assert_eq!(m.root().branch_points(), 0);
        assert_eq!(m.graph().len(), 1 + 32 * 4 + 1);
    }

    #[test]
    fn case_study_matches_figure_10() {
        let m = case_study(&MmtConfig::default());
        // 2 branches x (1 input + 4 x 3 ops) + concat + loss.
        assert_eq!(m.graph().len(), 2 * 13 + 2);
        assert!(m.graph().is_topo_order(&m.linearize()));
    }

    #[test]
    fn tiny_models_are_small() {
        assert!(mmt(&MmtConfig::tiny()).graph().len() < 30);
        assert!(dlrm(&DlrmConfig::tiny()).graph().len() < 30);
        assert!(candle_uno(&CandleUnoConfig::tiny()).graph().len() < 20);
    }

    #[test]
    fn mlp_chain_is_sequential() {
        let m = mlp_chain(4, 32);
        assert_eq!(m.root().branch_points(), 0);
        assert_eq!(m.graph().len(), 1 + 4 * 2 + 1);
    }

    #[test]
    fn gpt2_residuals_recognize_as_an_exact_chain() {
        let m = gpt2(&Gpt2Config::tiny());
        m.graph().validate().unwrap();
        assert_eq!(m.path(), crate::PlanPath::ExactSp);
        // tokens + embed + 2 blocks x 8 ops + ln_f + head + loss.
        assert_eq!(m.graph().len(), 2 + 2 * 8 + 3);
        // Residual skips survive as forward chain edges.
        assert!(m.graph().edges().count() > m.graph().len() - 1);
        assert!(m.graph().is_topo_order(&m.linearize()));
    }

    #[test]
    fn gnn_pipe_is_genuinely_non_sp() {
        let g = gnn_pipe_graph(&GnnPipeConfig::tiny());
        assert!(crate::recognize(&g).is_none());
        let m = gnn_pipe(&GnnPipeConfig::tiny());
        let crate::PlanPath::SpIzed { distortion } = m.path() else {
            panic!("expected SpIzed, got {:?}", m.path());
        };
        // The jumping-knowledge skips span two chain levels each.
        assert!(distortion > 0);
        assert_eq!(distortion, crate::dag::transit_volume(m.graph(), m.root()));
        assert!(crate::dag::edge_cover_violations(m.graph(), m.root()).is_empty());
        assert!(m.graph().is_topo_order(&m.linearize()));
    }

    #[test]
    fn gnn_pipe_default_is_deep_and_wide() {
        let m = gnn_pipe(&GnnPipeConfig::default());
        m.graph().validate().unwrap();
        // input + 8 heads + 7 layers x (8 agg + 8 h) + readout + head + loss.
        assert_eq!(m.graph().len(), 1 + 8 + 7 * 16 + 3);
    }
}
