//! The wall-clock seam.
//!
//! Every wall-clock read in the workspace that sits inside (or feeds data
//! through) a `gp-lint: deterministic`-tagged module goes through the
//! [`Clock`] trait instead of calling `Instant::now` directly. The one
//! production implementation, [`MonotonicClock`], wraps `std::time::Instant`;
//! tests inject [`ManualClock`] to make timing-dependent code fully
//! deterministic. The lint (`cargo xtask lint`) can then keep its hazard
//! list strict: tagged modules never spell `Instant::now` at all.
//!
//! This module mentions the tag above, so the lint scans it too — which
//! is deliberate: the [`MonotonicClock`] constructor is the single
//! allowlisted wall-clock read in the workspace, pinning the seam. A
//! second `Instant::now` appearing anywhere tagged (including here) is a
//! lint failure.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic time source reporting nanoseconds since an arbitrary,
/// per-instance origin. Implementations must be monotone non-decreasing.
pub trait Clock: Send + Sync {
    /// Nanoseconds elapsed since this clock's origin.
    fn now_nanos(&self) -> u64;
}

/// The production clock: `Instant`-backed, origin = construction time.
///
/// This is the only place in the workspace (outside tests and benches)
/// that reads the machine clock on behalf of tagged modules.
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_nanos(&self) -> u64 {
        // Saturate rather than panic if a run somehow exceeds ~584 years.
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A hand-cranked clock for tests: time moves only when told to.
#[derive(Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance the clock by `delta` nanoseconds.
    pub fn advance(&self, delta: u64) {
        self.now.fetch_add(delta, Ordering::SeqCst);
    }

    /// Jump the clock to an absolute reading (must not move backwards to
    /// preserve the monotonicity contract; this is not checked).
    pub fn set(&self, nanos: u64) {
        self.now.store(nanos, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

/// A cheap, cloneable handle to a shared [`Clock`].
///
/// Planner structs embed this, so it implements `Debug` and `Default`
/// manually (a `dyn Clock` cannot derive either): the default is a fresh
/// [`MonotonicClock`].
#[derive(Clone)]
pub struct ClockHandle {
    clock: Arc<dyn Clock>,
}

impl ClockHandle {
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        Self { clock }
    }

    /// A handle to a fresh production clock.
    pub fn monotonic() -> Self {
        Self::new(Arc::new(MonotonicClock::new()))
    }

    pub fn now_nanos(&self) -> u64 {
        self.clock.now_nanos()
    }

    /// Duration since an earlier `now_nanos` reading (saturating, so a
    /// buggy non-monotone clock yields zero rather than a panic).
    pub fn since(&self, start_nanos: u64) -> Duration {
        Duration::from_nanos(self.clock.now_nanos().saturating_sub(start_nanos))
    }
}

impl Default for ClockHandle {
    fn default() -> Self {
        Self::monotonic()
    }
}

impl fmt::Debug for ClockHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ClockHandle(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_moves_only_when_told() {
        let clock = ManualClock::new();
        assert_eq!(clock.now_nanos(), 0);
        clock.advance(5);
        clock.advance(7);
        assert_eq!(clock.now_nanos(), 12);
        clock.set(100);
        assert_eq!(clock.now_nanos(), 100);
    }

    #[test]
    fn monotonic_clock_is_monotone() {
        let clock = MonotonicClock::new();
        let a = clock.now_nanos();
        let b = clock.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn handle_since_saturates() {
        let manual = Arc::new(ManualClock::new());
        let handle = ClockHandle::new(manual.clone());
        manual.set(50);
        assert_eq!(handle.since(20), Duration::from_nanos(30));
        assert_eq!(handle.since(80), Duration::ZERO);
    }
}
