//! Trace exporters: JSONL events, a human-readable summary tree, and
//! Chrome/Perfetto `trace_event` JSON.
//!
//! All three implement [`TraceSink`]; [`Telemetry::export`]
//! (crate::Telemetry::export) replays finished spans (sorted by start
//! time) and metrics (sorted by name) into a sink and returns
//! `sink.finish()`. Output is deterministic given deterministic inputs: no
//! sink reads a clock or iterates an unordered container.

use crate::metrics::HistogramSnapshot;
use crate::span::SpanRecord;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Receives a replay of spans and metrics and renders them.
pub trait TraceSink {
    fn span(&mut self, span: &SpanRecord);
    fn counter(&mut self, _name: &str, _value: u64) {}
    fn gauge(&mut self, _name: &str, _value: i64) {}
    fn histogram(&mut self, _name: &str, _snap: &HistogramSnapshot) {}
    /// Render and return the accumulated output.
    fn finish(&mut self) -> String;
}

/// Minimal JSON string escaping (control characters, quotes, backslash).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Nanoseconds rendered as a microsecond decimal (`12.345`), the unit
/// Chrome's `trace_event` format expects. Integer math keeps it exact.
fn ns_as_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// One JSON object per line: spans, then counters/gauges/histograms.
/// Greppable and trivially machine-parseable.
#[derive(Default)]
pub struct JsonlSink {
    out: String,
}

impl JsonlSink {
    pub fn new() -> Self {
        Self::default()
    }
}

impl TraceSink for JsonlSink {
    fn span(&mut self, s: &SpanRecord) {
        let detail = s
            .detail
            .map_or(String::new(), |d| format!(",\"detail\":{d}"));
        let _ = writeln!(
            self.out,
            "{{\"type\":\"span\",\"name\":\"{}\",\"id\":{},\"parent\":{},\"thread\":{},\"start_ns\":{},\"dur_ns\":{}{detail}}}",
            json_escape(s.name),
            s.id,
            s.parent,
            s.thread,
            s.start_ns,
            s.duration_ns(),
        );
    }

    fn counter(&mut self, name: &str, value: u64) {
        let _ = writeln!(
            self.out,
            "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{value}}}",
            json_escape(name)
        );
    }

    fn gauge(&mut self, name: &str, value: i64) {
        let _ = writeln!(
            self.out,
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{value}}}",
            json_escape(name)
        );
    }

    fn histogram(&mut self, name: &str, s: &HistogramSnapshot) {
        let _ = writeln!(
            self.out,
            "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
            json_escape(name),
            s.count,
            s.sum,
            s.p50,
            s.p90,
            s.p99,
            s.max,
        );
    }

    fn finish(&mut self) -> String {
        std::mem::take(&mut self.out)
    }
}

struct SummaryNode {
    name: &'static str,
    count: u64,
    total_ns: u64,
    max_ns: u64,
    children: Vec<usize>,
}

/// A human-readable aggregate tree: spans grouped by (parent-path, name)
/// with counts, total and max durations, followed by a metrics listing.
#[derive(Default)]
pub struct SummarySink {
    nodes: Vec<SummaryNode>,
    roots: Vec<usize>,
    /// span id → node index, so children aggregate under the right node.
    node_of_span: BTreeMap<u64, usize>,
    metrics: String,
}

impl SummarySink {
    pub fn new() -> Self {
        Self::default()
    }

    fn render_node(&self, idx: usize, depth: usize, out: &mut String) {
        let n = &self.nodes[idx];
        let indent = "  ".repeat(depth);
        let label = format!("{indent}{}", n.name);
        let _ = writeln!(
            out,
            "{label:<44} {:>6}x  total {:>12}  max {:>12}",
            n.count,
            fmt_ns(n.total_ns),
            fmt_ns(n.max_ns),
        );
        for &child in &n.children {
            self.render_node(child, depth + 1, out);
        }
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!(
            "{}.{:03}s",
            ns / 1_000_000_000,
            (ns % 1_000_000_000) / 1_000_000
        )
    } else if ns >= 1_000_000 {
        format!("{}.{:03}ms", ns / 1_000_000, (ns % 1_000_000) / 1_000)
    } else if ns >= 1_000 {
        format!("{}.{:03}us", ns / 1_000, ns % 1_000)
    } else {
        format!("{ns}ns")
    }
}

impl TraceSink for SummarySink {
    fn span(&mut self, s: &SpanRecord) {
        // Find (or create) the aggregate node for this span's name under
        // its parent's node; then remember which node this span id maps to.
        let siblings = match self.node_of_span.get(&s.parent) {
            Some(&p) => &self.nodes[p].children,
            None => &self.roots,
        };
        let existing = siblings
            .iter()
            .copied()
            .find(|&i| self.nodes[i].name == s.name);
        let idx = match existing {
            Some(i) => i,
            None => {
                let i = self.nodes.len();
                self.nodes.push(SummaryNode {
                    name: s.name,
                    count: 0,
                    total_ns: 0,
                    max_ns: 0,
                    children: Vec::new(),
                });
                match self.node_of_span.get(&s.parent) {
                    Some(&p) => self.nodes[p].children.push(i),
                    None => self.roots.push(i),
                }
                i
            }
        };
        let dur = s.duration_ns();
        let n = &mut self.nodes[idx];
        n.count += 1;
        n.total_ns += dur;
        n.max_ns = n.max_ns.max(dur);
        self.node_of_span.insert(s.id, idx);
    }

    fn counter(&mut self, name: &str, value: u64) {
        let _ = writeln!(self.metrics, "  counter {name:<40} {value}");
    }

    fn gauge(&mut self, name: &str, value: i64) {
        let _ = writeln!(self.metrics, "  gauge   {name:<40} {value}");
    }

    fn histogram(&mut self, name: &str, s: &HistogramSnapshot) {
        let _ = writeln!(
            self.metrics,
            "  hist    {name:<40} n={} p50={} p90={} p99={} max={}",
            s.count,
            fmt_ns(s.p50),
            fmt_ns(s.p90),
            fmt_ns(s.p99),
            fmt_ns(s.max),
        );
    }

    fn finish(&mut self) -> String {
        let mut out = String::new();
        if !self.roots.is_empty() {
            out.push_str("spans:\n");
            for &root in &self.roots {
                self.render_node(root, 1, &mut out);
            }
        }
        if !self.metrics.is_empty() {
            out.push_str("metrics:\n");
            out.push_str(&self.metrics);
        }
        if out.is_empty() {
            out.push_str("(no telemetry recorded)\n");
        }
        out
    }
}

/// Process/thread lane ids used by the Perfetto exporter.
pub const PERFETTO_PID_LIVE: u32 = 1;
pub const PERFETTO_PID_SIM: u32 = 2;

/// Chrome/Perfetto `trace_event` JSON (the "JSON Array Format"): live
/// spans become paired `B`/`E` events (pid 1, one lane per recording
/// thread); simulator timelines are added as `X` complete events (pid 2,
/// one lane per device) via [`add_slice`](Self::add_slice). The output
/// opens directly in `ui.perfetto.dev` or `chrome://tracing`.
#[derive(Default)]
pub struct PerfettoSink {
    /// Live spans, grouped per thread lane; `B`/`E` pairs are emitted with
    /// strict stack discipline in `finish`.
    lanes: BTreeMap<u32, Vec<SpanRecord>>,
    /// Pre-timed `X` slices: `(pid, tid, ts_ns, body)`.
    slices: Vec<(u32, u32, u64, String)>,
    metadata: Vec<String>,
    named_threads: BTreeMap<(u32, u32), ()>,
}

impl PerfettoSink {
    pub fn new() -> Self {
        let mut sink = Self::default();
        sink.name_process(PERFETTO_PID_LIVE, "live");
        sink
    }

    /// Attach a human-readable name to a process lane.
    pub fn name_process(&mut self, pid: u32, name: &str) {
        self.metadata.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\"args\":{{\"name\":\"{}\"}}}}",
            json_escape(name)
        ));
    }

    /// Attach a human-readable name to a thread lane.
    pub fn name_thread(&mut self, pid: u32, tid: u32, name: &str) {
        self.named_threads.insert((pid, tid), ());
        self.metadata.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
            json_escape(name)
        ));
    }

    /// Add a pre-timed complete (`X`) slice — how simulator timelines and
    /// other non-span data enter the trace. Times are in nanoseconds.
    pub fn add_slice(
        &mut self,
        pid: u32,
        tid: u32,
        name: &str,
        cat: &str,
        start_ns: u64,
        dur_ns: u64,
    ) {
        let body = format!(
            "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"dur\":{},\"name\":\"{}\",\"cat\":\"{}\"}}",
            ns_as_us(start_ns),
            ns_as_us(dur_ns),
            json_escape(name),
            json_escape(cat),
        );
        self.slices.push((pid, tid, start_ns, body));
    }

    /// Emit one lane's spans as strictly nested `B`/`E` pairs, following
    /// the recorded parent tree (spans whose parent lives on another lane
    /// become lane roots). A monotone cursor clamps every emitted
    /// timestamp, so pairing and time order always validate — even for
    /// zero-duration spans or out-of-order guard drops.
    fn emit_lane(spans: &mut [SpanRecord], tid: u32, out: &mut Vec<String>) {
        spans.sort_by_key(|s| (s.start_ns, s.id));
        let index_of: BTreeMap<u64, usize> =
            spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
        let mut roots: Vec<usize> = Vec::new();
        for (i, s) in spans.iter().enumerate() {
            match index_of.get(&s.parent) {
                Some(&p) => children[p].push(i),
                None => roots.push(i),
            }
        }
        fn emit(
            idx: usize,
            spans: &[SpanRecord],
            children: &[Vec<usize>],
            tid: u32,
            cursor: &mut u64,
            out: &mut Vec<String>,
        ) {
            let s = &spans[idx];
            let pid = PERFETTO_PID_LIVE;
            let start = s.start_ns.max(*cursor);
            *cursor = start;
            let args = s
                .detail
                .map_or(String::new(), |d| format!(",\"args\":{{\"detail\":{d}}}"));
            out.push(format!(
                "{{\"ph\":\"B\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"name\":\"{}\",\"cat\":\"span\"{args}}}",
                ns_as_us(start),
                json_escape(s.name),
            ));
            for &c in &children[idx] {
                emit(c, spans, children, tid, cursor, out);
            }
            let end = s.end_ns.max(*cursor);
            *cursor = end;
            out.push(format!(
                "{{\"ph\":\"E\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"name\":\"{}\"}}",
                ns_as_us(end),
                json_escape(s.name),
            ));
        }
        let mut cursor = 0u64;
        for &root in &roots {
            emit(root, spans, &children, tid, &mut cursor, out);
        }
    }
}

impl TraceSink for PerfettoSink {
    fn span(&mut self, s: &SpanRecord) {
        if !self
            .named_threads
            .contains_key(&(PERFETTO_PID_LIVE, s.thread))
        {
            self.name_thread(PERFETTO_PID_LIVE, s.thread, &format!("thread {}", s.thread));
        }
        self.lanes.entry(s.thread).or_default().push(s.clone());
    }

    fn finish(&mut self) -> String {
        let mut events: Vec<String> = Vec::new();
        for (&tid, spans) in self.lanes.iter_mut() {
            Self::emit_lane(spans, tid, &mut events);
        }
        self.slices.sort_by_key(|s| (s.0, s.1, s.2));
        events.extend(self.slices.iter().map(|(_, _, _, body)| body.clone()));
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        for piece in self.metadata.iter().chain(events.iter()) {
            if !first {
                out.push(',');
            }
            out.push_str("\n  ");
            out.push_str(piece);
            first = false;
        }
        out.push_str("\n]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{ClockHandle, ManualClock};
    use crate::span::Telemetry;
    use std::sync::Arc;

    fn sample_telemetry() -> Telemetry {
        let clock = Arc::new(ManualClock::new());
        let tele = Telemetry::with_clock(ClockHandle::new(clock.clone()));
        {
            let _a = tele.span("outer");
            clock.advance(1_000);
            {
                let _b = tele.span_with("inner", 3);
                clock.advance(500);
            }
            clock.advance(250);
        }
        tele.counter_add("events", 7);
        tele.record("lat", 500);
        tele
    }

    #[test]
    fn jsonl_lines_cover_spans_and_metrics() {
        let tele = sample_telemetry();
        let out = tele.export(&mut JsonlSink::new());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4, "{out}");
        assert!(lines[0].contains("\"name\":\"outer\""));
        assert!(lines[0].contains("\"dur_ns\":1750"));
        assert!(lines[1].contains("\"detail\":3"));
        assert!(lines[2].contains("\"type\":\"counter\""));
        assert!(lines[3].contains("\"p50\":500"));
    }

    #[test]
    fn summary_tree_nests_and_aggregates() {
        let tele = sample_telemetry();
        let out = tele.export(&mut SummarySink::new());
        let outer_line = out.lines().find(|l| l.contains("outer")).unwrap();
        let inner_line = out.lines().find(|l| l.contains("inner")).unwrap();
        assert!(outer_line.starts_with("  outer"), "{out}");
        assert!(inner_line.starts_with("    inner"), "{out}");
        assert!(out.contains("counter events"), "{out}");
        assert!(out.contains("hist    lat"), "{out}");
    }

    #[test]
    fn perfetto_events_pair_and_nest() {
        let tele = sample_telemetry();
        let out = tele.export(&mut PerfettoSink::new());
        assert!(out.starts_with("{\"displayTimeUnit\""));
        let b_count = out.matches("\"ph\":\"B\"").count();
        let e_count = out.matches("\"ph\":\"E\"").count();
        assert_eq!(b_count, 2);
        assert_eq!(e_count, 2);
        // outer opens before inner; inner closes before outer.
        let b_outer = out.find("\"ph\":\"B\",\"pid\":1,\"tid\":").unwrap();
        let _ = b_outer;
        let outer_b = out.find("\"name\":\"outer\",\"cat\":\"span\"").unwrap();
        let inner_b = out.find("\"name\":\"inner\"").unwrap();
        assert!(outer_b < inner_b, "{out}");
    }

    #[test]
    fn perfetto_slices_and_lane_names() {
        let mut sink = PerfettoSink::new();
        sink.name_process(PERFETTO_PID_SIM, "simulated cluster");
        sink.name_thread(PERFETTO_PID_SIM, 0, "device 0");
        sink.add_slice(PERFETTO_PID_SIM, 0, "fwd s0 mb0", "compute", 0, 2_500);
        let out = sink.finish();
        assert!(out.contains("\"ph\":\"X\""));
        assert!(out.contains("\"dur\":2.500"));
        assert!(out.contains("simulated cluster"));
        assert!(out.contains("device 0"));
    }

    #[test]
    fn equal_timestamp_events_keep_stack_discipline() {
        // Two nested spans with identical start and end times: the sort
        // must order B(outer) B(inner) E(inner) E(outer).
        let clock = Arc::new(ManualClock::new());
        let tele = Telemetry::with_clock(ClockHandle::new(clock.clone()));
        {
            let _a = tele.span("outer");
            let _b = tele.span("inner");
        }
        let out = tele.export(&mut PerfettoSink::new());
        let order: Vec<(char, &str)> = out
            .lines()
            .filter_map(|l| {
                let ph = if l.contains("\"ph\":\"B\"") {
                    'B'
                } else if l.contains("\"ph\":\"E\"") {
                    'E'
                } else {
                    return None;
                };
                let name = if l.contains("\"name\":\"outer\"") {
                    "outer"
                } else {
                    "inner"
                };
                Some((ph, name))
            })
            .collect();
        assert_eq!(
            order,
            vec![
                ('B', "outer"),
                ('B', "inner"),
                ('E', "inner"),
                ('E', "outer")
            ],
            "{out}"
        );
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(ns_as_us(1_234_567), "1234.567");
        assert_eq!(ns_as_us(42), "0.042");
    }
}
