//! `gp-obs`: zero-dependency, determinism-safe telemetry for the
//! GraphPipe reproduction — hierarchical spans, atomic metrics, and
//! exportable traces (DESIGN.md §"Observability").
//!
//! The design constraints, in order:
//!
//! 1. **Inert by default.** [`Telemetry::disabled`] (also `Default`) makes
//!    every operation a branch-and-return: no allocation, no atomics, no
//!    clock reads. Instrumentation can therefore live permanently in hot
//!    paths (planner search, simulator relaxation, serve fast path).
//! 2. **Write-only.** Telemetry data never flows back into plans,
//!    schedules, reports, or fingerprints. Enabling tracing at any
//!    verbosity must leave every artifact byte-identical — the golden
//!    tests assert exactly this.
//! 3. **Clock seam.** All wall-clock reads used by `gp-lint:
//!    deterministic`-tagged modules go through the [`Clock`] trait;
//!    [`MonotonicClock`] is the single production implementation, and
//!    [`ManualClock`] makes timing deterministic under test.
//! 4. **No dependencies.** Hand-rolled histograms and JSON emission keep
//!    this crate buildable offline below every other workspace crate.
//!
//! The three exporters ([`JsonlSink`], [`SummarySink`], [`PerfettoSink`])
//! all implement [`TraceSink`] and are driven by [`Telemetry::export`].
//! The Perfetto output opens directly in `ui.perfetto.dev`.

mod clock;
mod export;
mod metrics;
mod span;

pub use clock::{Clock, ClockHandle, ManualClock, MonotonicClock};
pub use export::{
    JsonlSink, PerfettoSink, SummarySink, TraceSink, PERFETTO_PID_LIVE, PERFETTO_PID_SIM,
};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry, HISTOGRAM_BUCKETS};
pub use span::{Span, SpanId, SpanRecord, Telemetry};
