//! Atomic counters, gauges, and fixed-bucket log-scale histograms.
//!
//! All metric state is lock-free on the record path (`AtomicU64`
//! arithmetic); the registry's name→metric maps take a `Mutex` only on
//! first lookup, so hot paths hold an `Arc` to the metric and never touch
//! the lock again. Every exported quantity is an integer (nanoseconds,
//! counts), which keeps snapshots `Eq`-comparable and byte-reproducible.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotone event counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-writer-wins signed gauge.
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log₂ buckets: bucket 0 holds the value 0, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`, so the full `u64` range is covered.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-bucket log₂-scale histogram for latency-like values
/// (nanoseconds by convention). Recording is one `fetch_add` plus three
/// atomic updates; percentile reconstruction walks the 65 buckets and
/// reports each bucket's upper bound clamped to the observed maximum, so
/// reported percentiles are monotone by construction and never exceed the
/// true maximum.
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [0u64; HISTOGRAM_BUCKETS].map(AtomicU64::new),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Upper bound of bucket `i` (inclusive), the reported representative.
    fn bucket_upper(index: usize) -> u64 {
        if index >= 64 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A consistent-enough point-in-time summary. (Concurrent recording
    /// during a snapshot can skew individual fields by in-flight events;
    /// all call sites snapshot after the measured work has quiesced.)
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        let mut counts = [0u64; HISTOGRAM_BUCKETS];
        for (slot, bucket) in counts.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        let percentile = |p_times_100: u64| -> u64 {
            if count == 0 {
                return 0;
            }
            // Rank of the requested percentile, 1-based, ceil semantics.
            let rank = (count * p_times_100).div_ceil(100).max(1);
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return Self::bucket_upper(i).min(max);
                }
            }
            max
        };
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            p50: percentile(50),
            p90: percentile(90),
            p99: percentile(99),
            max,
        }
    }
}

/// An integer-only summary of a [`Histogram`] — values are in the same
/// unit as the recorded samples (nanoseconds by convention). `p50 ≤ p90 ≤
/// p99 ≤ max` holds by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub max: u64,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A thread-safe, name-addressed home for metrics. Names are sorted
/// (`BTreeMap`) so every listing is deterministic.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use. Hot paths should
    /// hold the returned `Arc` rather than re-looking-up per event.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("registry poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("registry poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("registry poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        let map = self.counters.lock().expect("registry poisoned");
        map.iter().map(|(k, v)| (k.clone(), v.get())).collect()
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> Vec<(String, i64)> {
        let map = self.gauges.lock().expect("registry poisoned");
        map.iter().map(|(k, v)| (k.clone(), v.get())).collect()
    }

    /// All histogram snapshots, sorted by name.
    pub fn histograms(&self) -> Vec<(String, HistogramSnapshot)> {
        let map = self.histograms.lock().expect("registry poisoned");
        map.iter().map(|(k, v)| (k.clone(), v.snapshot())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_upper(0), 0);
        assert_eq!(Histogram::bucket_upper(1), 1);
        assert_eq!(Histogram::bucket_upper(2), 3);
        assert_eq!(Histogram::bucket_upper(3), 7);
    }

    #[test]
    fn percentiles_are_monotone_and_bounded() {
        let h = Histogram::new();
        for v in [3u64, 3, 3, 10, 10, 200, 1_000, 50_000, 50_000, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10);
        assert!(s.p50 <= s.p90, "{s:?}");
        assert!(s.p90 <= s.p99, "{s:?}");
        assert!(s.p99 <= s.max, "{s:?}");
        assert_eq!(s.max, 1_000_000);
    }

    #[test]
    fn single_sample_all_percentiles_equal_it() {
        let h = Histogram::new();
        h.record(42);
        let s = h.snapshot();
        assert_eq!((s.p50, s.p90, s.p99, s.max), (42, 42, 42, 42));
    }

    #[test]
    fn empty_histogram_snapshots_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s, HistogramSnapshot::default());
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn registry_is_sorted_and_shared() {
        let r = Registry::new();
        r.counter("b.second").add(2);
        r.counter("a.first").add(1);
        r.counter("b.second").add(3);
        let listed = r.counters();
        assert_eq!(
            listed,
            vec![("a.first".to_string(), 1), ("b.second".to_string(), 5)]
        );
        r.gauge("depth").set(-4);
        assert_eq!(r.gauges(), vec![("depth".to_string(), -4)]);
    }
}
