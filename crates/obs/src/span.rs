//! Hierarchical spans and the [`Telemetry`] handle.
//!
//! `Telemetry` is the one object the rest of the workspace threads around.
//! It is a cheap clone (an `Option<Arc<..>>`), and the disabled default is
//! provably inert: `Telemetry::disabled().span(..)` performs **no
//! allocation and no atomic operation** — it returns a guard whose only
//! state is `None` — so instrumented hot paths cost one branch when
//! telemetry is off.
//!
//! Parenting is implicit within a thread (a thread-local span stack) and
//! explicit across threads ([`Telemetry::span_under`]), which is how the
//! executor's per-replica worker threads attach to the iteration span that
//! spawned them.

use crate::clock::ClockHandle;
use crate::export::TraceSink;
use crate::metrics::{Histogram, HistogramSnapshot, Registry};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A finished span, as recorded for export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique within one `Telemetry` instance; ids start at 1.
    pub id: u64,
    /// Parent span id, or 0 for a root span.
    pub parent: u64,
    pub name: &'static str,
    /// Optional numeric annotation (micro-batch count, step index, ...).
    pub detail: Option<u64>,
    /// Clock reading at span open, nanoseconds.
    pub start_ns: u64,
    /// Clock reading at span close; `end_ns >= start_ns` always holds.
    pub end_ns: u64,
    /// Small per-process thread number (first-use order), for trace lanes.
    pub thread: u32,
}

impl SpanRecord {
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// Identifies an open span so work on another thread can parent under it.
/// `SpanId::NONE` (id 0) means "no parent"; disabled telemetry hands it out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(pub u64);

impl SpanId {
    pub const NONE: SpanId = SpanId(0);
}

/// Process-wide small thread numbers: assigned on first telemetry use per
/// thread, purely for grouping trace events into lanes. Never fed into any
/// fingerprint or plan.
static NEXT_THREAD: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static THREAD_NO: u32 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
    /// The open-span stack: `(telemetry instance tag, span id)`. The tag
    /// keeps two live `Telemetry` instances on one thread (e.g. parallel
    /// tests) from adopting each other's spans as parents.
    static SPAN_STACK: RefCell<Vec<(usize, u64)>> = const { RefCell::new(Vec::new()) };
}

struct Inner {
    clock: ClockHandle,
    registry: Registry,
    spans: Mutex<Vec<SpanRecord>>,
    next_span: AtomicU64,
}

impl Inner {
    fn tag(self: &Arc<Self>) -> usize {
        Arc::as_ptr(self) as usize
    }
}

/// The telemetry handle. `Default`/[`Telemetry::disabled`] is inert;
/// [`Telemetry::enabled`] records spans and metrics against a
/// [`MonotonicClock`](crate::MonotonicClock).
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.inner.is_some() {
            "Telemetry(enabled)"
        } else {
            "Telemetry(disabled)"
        })
    }
}

impl Telemetry {
    /// The inert default: every operation is a no-op and allocation-free.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A recording handle against the production monotonic clock.
    pub fn enabled() -> Self {
        Self::with_clock(ClockHandle::monotonic())
    }

    /// A recording handle against an injected clock (tests use
    /// [`ManualClock`](crate::ManualClock) for deterministic timings).
    pub fn with_clock(clock: ClockHandle) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                clock,
                registry: Registry::new(),
                spans: Mutex::new(Vec::new()),
                next_span: AtomicU64::new(1),
            })),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The clock behind this handle, if recording.
    pub fn clock(&self) -> Option<&ClockHandle> {
        self.inner.as_deref().map(|i| &i.clock)
    }

    /// Current clock reading, or 0 when disabled. Pair with
    /// [`is_enabled`](Self::is_enabled) when the 0 would be ambiguous.
    pub fn now_nanos(&self) -> u64 {
        self.inner.as_deref().map_or(0, |i| i.clock.now_nanos())
    }

    /// Open a span parented under this thread's innermost open span.
    pub fn span(&self, name: &'static str) -> Span {
        self.open(name, None, None)
    }

    /// Like [`span`](Self::span), with a numeric annotation.
    pub fn span_with(&self, name: &'static str, detail: u64) -> Span {
        self.open(name, Some(detail), None)
    }

    /// Open a span under an explicit parent — the cross-thread form. The
    /// span still pushes onto the *current* thread's stack, so further
    /// spans opened on this thread nest under it.
    pub fn span_under(&self, name: &'static str, parent: SpanId) -> Span {
        self.open(name, None, Some(parent))
    }

    /// [`span_under`](Self::span_under) with a numeric annotation.
    pub fn span_under_with(&self, name: &'static str, detail: u64, parent: SpanId) -> Span {
        self.open(name, Some(detail), Some(parent))
    }

    fn open(&self, name: &'static str, detail: Option<u64>, parent: Option<SpanId>) -> Span {
        let Some(inner) = &self.inner else {
            return Span { state: None };
        };
        let tag = inner.tag();
        let parent = match parent {
            Some(p) => p.0,
            None => SPAN_STACK.with(|s| {
                s.borrow()
                    .iter()
                    .rev()
                    .find(|(t, _)| *t == tag)
                    .map_or(0, |(_, id)| *id)
            }),
        };
        let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
        SPAN_STACK.with(|s| s.borrow_mut().push((tag, id)));
        Span {
            state: Some(SpanState {
                inner: inner.clone(),
                id,
                parent,
                name,
                detail,
                start_ns: inner.clock.now_nanos(),
                thread: THREAD_NO.with(|t| *t),
            }),
        }
    }

    /// Bump a named counter (no-op when disabled). Hot loops should
    /// accumulate locally and flush once, or hold
    /// [`histogram`](Self::histogram)/`counter` handles.
    pub fn counter_add(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.counter(name).add(delta);
        }
    }

    /// Set a named gauge (no-op when disabled).
    pub fn gauge_set(&self, name: &str, value: i64) {
        if let Some(inner) = &self.inner {
            inner.registry.gauge(name).set(value);
        }
    }

    /// Record one sample into a named histogram (no-op when disabled).
    pub fn record(&self, name: &str, value: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.histogram(name).record(value);
        }
    }

    /// A shared handle to a named histogram, for paths that record many
    /// samples: one lookup, then lock-free recording. `None` when disabled.
    pub fn histogram(&self, name: &str) -> Option<Arc<Histogram>> {
        self.inner.as_deref().map(|i| i.registry.histogram(name))
    }

    /// Snapshot of a named histogram; default (all-zero) when disabled or
    /// when the histogram has never been touched.
    pub fn histogram_snapshot(&self, name: &str) -> HistogramSnapshot {
        self.inner
            .as_deref()
            .map_or_else(HistogramSnapshot::default, |i| {
                i.registry.histogram(name).snapshot()
            })
    }

    /// The metric registry, if recording.
    pub fn registry(&self) -> Option<&Registry> {
        self.inner.as_deref().map(|i| &i.registry)
    }

    /// All finished spans, sorted by `(start_ns, id)` — id breaks the tie
    /// deterministically when a manual clock never advances.
    pub fn spans(&self) -> Vec<SpanRecord> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut spans = inner.spans.lock().expect("span log poisoned").clone();
        spans.sort_by_key(|s| (s.start_ns, s.id));
        spans
    }

    /// Replay every finished span and metric into `sink` (spans sorted by
    /// start time, metrics sorted by name) and return the rendered output.
    pub fn export(&self, sink: &mut dyn TraceSink) -> String {
        for span in self.spans() {
            sink.span(&span);
        }
        if let Some(reg) = self.registry() {
            for (name, value) in reg.counters() {
                sink.counter(&name, value);
            }
            for (name, value) in reg.gauges() {
                sink.gauge(&name, value);
            }
            for (name, snap) in reg.histograms() {
                sink.histogram(&name, &snap);
            }
        }
        sink.finish()
    }
}

struct SpanState {
    inner: Arc<Inner>,
    id: u64,
    parent: u64,
    name: &'static str,
    detail: Option<u64>,
    start_ns: u64,
    thread: u32,
}

/// An open span; closing (dropping) it records a [`SpanRecord`]. The
/// disabled form carries no state at all.
pub struct Span {
    state: Option<SpanState>,
}

impl Span {
    /// This span's id, for explicit cross-thread parenting.
    /// [`SpanId::NONE`] when telemetry is disabled.
    pub fn id(&self) -> SpanId {
        self.state.as_ref().map_or(SpanId::NONE, |s| SpanId(s.id))
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(state) = self.state.take() else {
            return;
        };
        let end_ns = state.inner.clock.now_nanos().max(state.start_ns);
        let tag = state.inner.tag();
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Usually the top of stack; a linear scan tolerates out-of-order
            // drops (e.g. spans stored in structs) without corrupting others.
            if let Some(pos) = stack
                .iter()
                .rposition(|&(t, id)| t == tag && id == state.id)
            {
                stack.remove(pos);
            }
        });
        state
            .inner
            .spans
            .lock()
            .expect("span log poisoned")
            .push(SpanRecord {
                id: state.id,
                parent: state.parent,
                name: state.name,
                detail: state.detail,
                start_ns: state.start_ns,
                end_ns,
                thread: state.thread,
            });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn manual() -> (Telemetry, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        let tele = Telemetry::with_clock(ClockHandle::new(clock.clone()));
        (tele, clock)
    }

    #[test]
    fn disabled_spans_are_inert() {
        let tele = Telemetry::disabled();
        assert!(!tele.is_enabled());
        let outer = tele.span("outer");
        assert_eq!(outer.id(), SpanId::NONE);
        let inner = tele.span("inner");
        drop(inner);
        drop(outer);
        assert!(tele.spans().is_empty());
        tele.counter_add("c", 1);
        tele.record("h", 1);
        assert_eq!(tele.histogram_snapshot("h"), HistogramSnapshot::default());
        assert!(tele.histogram("h").is_none());
    }

    #[test]
    fn spans_nest_implicitly_within_a_thread() {
        let (tele, clock) = manual();
        {
            let _plan = tele.span("plan");
            clock.advance(10);
            {
                let _search = tele.span("search");
                clock.advance(5);
                let _probe = tele.span_with("probe", 7);
                clock.advance(1);
            }
            clock.advance(4);
        }
        let spans = tele.spans();
        assert_eq!(spans.len(), 3);
        let plan = spans.iter().find(|s| s.name == "plan").unwrap();
        let search = spans.iter().find(|s| s.name == "search").unwrap();
        let probe = spans.iter().find(|s| s.name == "probe").unwrap();
        assert_eq!(plan.parent, 0);
        assert_eq!(search.parent, plan.id);
        assert_eq!(probe.parent, search.id);
        assert_eq!(probe.detail, Some(7));
        assert_eq!(plan.duration_ns(), 20);
        assert_eq!(search.duration_ns(), 6);
        assert_eq!(probe.duration_ns(), 1);
    }

    #[test]
    fn explicit_parent_crosses_threads() {
        let (tele, _clock) = manual();
        let root = tele.span("root");
        let root_id = root.id();
        let tele2 = tele.clone();
        std::thread::spawn(move || {
            let _w = tele2.span_under("worker", root_id);
        })
        .join()
        .unwrap();
        drop(root);
        let spans = tele.spans();
        let root = spans.iter().find(|s| s.name == "root").unwrap();
        let worker = spans.iter().find(|s| s.name == "worker").unwrap();
        assert_eq!(worker.parent, root.id);
        assert_ne!(worker.thread, root.thread);
    }

    #[test]
    fn two_instances_do_not_adopt_each_others_spans() {
        let (a, _) = manual();
        let (b, _) = manual();
        let _outer_a = a.span("a.outer");
        let inner_b = b.span("b.inner");
        drop(inner_b);
        let b_spans = b.spans();
        assert_eq!(b_spans.len(), 1);
        assert_eq!(b_spans[0].parent, 0, "b must not parent under a's span");
    }

    #[test]
    fn out_of_order_drop_keeps_stack_sane() {
        let (tele, _) = manual();
        let first = tele.span("first");
        let second = tele.span("second");
        drop(first);
        let third = tele.span("third");
        drop(third);
        drop(second);
        let spans = tele.spans();
        let second_rec = spans.iter().find(|s| s.name == "second").unwrap();
        let third_rec = spans.iter().find(|s| s.name == "third").unwrap();
        assert_eq!(third_rec.parent, second_rec.id);
    }
}
