//! The GraphPipe pipeline-stage partitioner (Algorithm 1 of the paper).
//!
//! The planner binary-searches the bottleneck Time-Per-Sample and, for each
//! target `t_max`, runs a dynamic program over the model's series-parallel
//! tree that decides — jointly — the stage partition, per-stage device
//! counts, micro-batch sizes, and schedule parameters, while the in-flight
//! accounting of `gp-sched` flows backwards from sinks to sources.
//!
//! DP subproblems follow §5:
//!
//! * **base case** — treat the whole subgraph as a single stage with
//!   `d`-way data parallelism;
//! * **series decomposition** — split a chain, solve the suffix first (its
//!   entry stages' schedule configurations become the head's boundary
//!   configuration `c_m`), then the head;
//! * **parallel decomposition** — split the branch set, solve both sides
//!   against the same boundary, and take the larger in-flight requirement
//!   at the shared boundary;
//! * **join absorption** — a `Branches` element followed by small join
//!   operators (e.g. `Concat`) may fold the joins into the final stage of
//!   its last branch, reproducing the §7.5 case-study partition where "one
//!   stage necessarily contains the concatenation operator".
//!
//! The feasibility-style DP is what makes GraphPipe's search fast (§7.2):
//! a fragment whose *total* work already exceeds `d * t_max` cannot be
//! partitioned into stages meeting the target, so whole subtrees — and most
//! of the device-split range at each chain cut — are pruned by a
//! work-conservation bound. The sequential baselines optimize min-max
//! directly and get no such pruning.

use crate::plan::{Plan, PlanError, PlanOptions, Planner, SearchStats};
use gp_cluster::{Cluster, DeviceRange};
use gp_cost::{CostModel, Pass, BYTES_PER_PARAM_STATE};
use gp_ir::{Graph, OpId, SpBlock, SpModel};
use gp_sched::{assign_in_flight, compute_in_flight, schedule_tasks, Stage, StageGraph, StageId};
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Instant;

// ---------------------------------------------------------------- arena --

type NodeIdx = u32;

#[derive(Debug, Clone)]
enum ANode {
    Leaf(OpId),
    Chain(Vec<NodeIdx>),
    Branches(Vec<NodeIdx>),
}

/// Flat storage for the SP tree, with on-demand "absorbed" chain variants.
struct Arena {
    nodes: Vec<ANode>,
    ops: Vec<Rc<Vec<OpId>>>,
    root: NodeIdx,
    absorb_cache: HashMap<(NodeIdx, NodeIdx, usize, usize), NodeIdx>,
}

impl Arena {
    fn build(block: &SpBlock) -> Arena {
        let mut arena = Arena {
            nodes: Vec::new(),
            ops: Vec::new(),
            root: 0,
            absorb_cache: HashMap::new(),
        };
        arena.root = arena.add(block);
        arena
    }

    fn add(&mut self, block: &SpBlock) -> NodeIdx {
        let node = match block {
            SpBlock::Leaf(op) => ANode::Leaf(*op),
            SpBlock::Chain(items) => ANode::Chain(items.iter().map(|b| self.add(b)).collect()),
            SpBlock::Branches(items) => {
                ANode::Branches(items.iter().map(|b| self.add(b)).collect())
            }
        };
        self.push(node)
    }

    fn push(&mut self, node: ANode) -> NodeIdx {
        let ops = match &node {
            ANode::Leaf(op) => vec![*op],
            ANode::Chain(cs) | ANode::Branches(cs) => cs
                .iter()
                .flat_map(|&c| self.ops[c as usize].iter().copied())
                .collect(),
        };
        let idx = self.nodes.len() as NodeIdx;
        self.nodes.push(node);
        self.ops.push(Rc::new(ops));
        idx
    }

    fn node(&self, idx: NodeIdx) -> &ANode {
        &self.nodes[idx as usize]
    }

    fn node_ops(&self, idx: NodeIdx) -> Rc<Vec<OpId>> {
        Rc::clone(&self.ops[idx as usize])
    }

    fn children(&self, idx: NodeIdx) -> &[NodeIdx] {
        match self.node(idx) {
            ANode::Chain(cs) | ANode::Branches(cs) => cs,
            ANode::Leaf(_) => &[],
        }
    }

    fn is_branches(&self, idx: NodeIdx) -> bool {
        matches!(self.node(idx), ANode::Branches(_))
    }

    fn is_leaf(&self, idx: NodeIdx) -> bool {
        matches!(self.node(idx), ANode::Leaf(_))
    }

    /// The chain obtained by appending `chain`'s elements `[tail_s, tail_e)`
    /// (the absorbed join operators) to the last branch of `branches`.
    fn absorbed_chain(
        &mut self,
        branches: NodeIdx,
        chain: NodeIdx,
        tail_s: usize,
        tail_e: usize,
    ) -> NodeIdx {
        let key = (branches, chain, tail_s, tail_e);
        if let Some(&idx) = self.absorb_cache.get(&key) {
            return idx;
        }
        let last_branch = *self
            .children(branches)
            .last()
            .expect("Branches nodes are non-empty");
        let mut elems = match self.node(last_branch) {
            ANode::Chain(cs) => cs.clone(),
            _ => vec![last_branch],
        };
        elems.extend_from_slice(&self.children(chain)[tail_s..tail_e]);
        let idx = self.push(ANode::Chain(elems));
        self.absorb_cache.insert(key, idx);
        idx
    }
}

// ------------------------------------------------- boundary configuration --

/// The downstream boundary configuration of a DP subproblem: the schedule
/// configurations `(k, b, in_flight_samples)` of the entry stages that will
/// consume this fragment's output. Empty means the fragment ends at the
/// global sink. Interned to a `DownId` for cheap memo keys.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
struct Down(Vec<(u64, u64, u64)>);

type DownId = u32;

impl Down {
    fn single(entry: (u64, u64, u64)) -> Down {
        Down(vec![entry])
    }

    fn from_entries(mut entries: Vec<(u64, u64, u64)>) -> Down {
        // Canonical form: per (k, b) only the maximal i binds (ComputeInFlight
        // is `i + f(k, b, ...)`), then sorted for hashing.
        entries.sort_unstable();
        let mut out: Vec<(u64, u64, u64)> = Vec::with_capacity(entries.len());
        for e in entries {
            match out.last_mut() {
                Some(last) if last.0 == e.0 && last.1 == e.1 => last.2 = last.2.max(e.2),
                _ => out.push(e),
            }
        }
        Down(out)
    }

    fn union(&self, other: &Down) -> Down {
        let mut v = self.0.clone();
        v.extend_from_slice(&other.0);
        Down::from_entries(v)
    }

    /// Minimal in-flight samples for a stage with schedule `(k, b)` feeding
    /// these boundaries (the sink keeps `k*b` samples resident).
    fn entry_in_flight(&self, k: u64, b: u64) -> u64 {
        let base = k * b;
        self.0
            .iter()
            .map(|&(ky, by, iy)| compute_in_flight(k, b, ky, by, iy))
            .max()
            .unwrap_or(base)
            .max(base)
    }
}

// ------------------------------------------------------------- fragments --

/// A stage in the making: ops + device count, placed later.
#[derive(Debug, Clone)]
struct ProtoStage {
    ops: Rc<Vec<OpId>>,
    d: u32,
    b: u64,
    k: u64,
}

/// DP comparison key: source in-flight pressure, then memory, then stage
/// count (§5: "the number of in-flight micro-batches for the source stage
/// is minimized").
type Score = (u64, u64, usize);

/// A solved DP subproblem: the stages of a model fragment in forward
/// topological order, with boundary bookkeeping.
#[derive(Debug)]
struct Frag {
    stages: Vec<ProtoStage>,
    /// `(k, b, i)` of the fragment's entry stages (what upstream sees).
    entries: Down,
    /// Interned id of `entries`.
    entries_id: DownId,
    /// `(k, b, i)` of the stage containing the fragment's last chain
    /// element (what side branches feeding an absorbed join see).
    exit: (u64, u64, u64),
    /// Peak per-device memory across stages, bytes.
    peak_mem: u64,
}

impl Frag {
    fn max_entry(&self) -> u64 {
        self.entries.0.iter().map(|e| e.2).max().unwrap_or(0)
    }

    fn score(&self) -> Score {
        (self.max_entry(), self.peak_mem, self.stages.len())
    }
}

// ---------------------------------------------------------------- engine --

/// Per-chain, micro-batch-independent prefix aggregates over elements.
struct ChainStatic {
    /// Prefix parameter bytes.
    params: Vec<u64>,
    /// Prefix stashed activation bytes per sample.
    act: Vec<u64>,
    /// Prefix of per-element outside-chain communication bytes per sample.
    ext: Vec<u64>,
    /// `adj[j]`: bytes crossing the boundary between elements `j-1` and `j`.
    adj: Vec<u64>,
    /// Whether all intra-chain edges connect adjacent elements (fast path).
    simple: bool,
}

/// A single-stage candidate found for a segment.
#[derive(Debug, Clone, Copy)]
struct StageCand {
    b: u64,
    k: u64,
    in_flight: u64,
    mem: u64,
}

/// Sentinel meaning "the whole node" for non-chain intervals.
const WHOLE: (u16, u16) = (0, u16::MAX);

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum MemoKey {
    Node(NodeIdx, u32, DownId),
    ChainSuffix(NodeIdx, u16, u32, DownId),
    BranchRange(NodeIdx, u16, u16, u32, DownId),
}

/// Per-segment cost aggregates at one micro-batch size:
/// `(fwd+bwd time, param bytes, activation bytes/sample, boundary bytes/sample)`.
type SegmentCosts = (f64, u64, u64, u64);

struct Dp<'a> {
    graph: &'a Graph,
    cost: &'a CostModel,
    arena: Arena,
    mini_batch: u64,
    t_max: f64,
    mem_budget: u64,
    b_cands: Rc<Vec<u64>>,
    k_cands: Rc<Vec<u64>>,
    /// Largest micro-batch candidate: at it, per-sample compute time is
    /// minimal, making work-conservation bounds sound for every candidate.
    bound_b: u64,
    downs: Vec<Down>,
    down_ids: HashMap<Down, DownId>,
    memo: HashMap<MemoKey, Option<Rc<Frag>>>,
    chain_static: HashMap<NodeIdx, Rc<ChainStatic>>,
    /// Per-(chain, b) prefix of element fwd+bwd times for one micro-batch.
    chain_time: HashMap<(NodeIdx, u64), Rc<Vec<f64>>>,
    /// Per-branches-node prefix of per-branch times at `bound_b`.
    branch_time: HashMap<NodeIdx, Rc<Vec<f64>>>,
    interval_ops: HashMap<(NodeIdx, u16, u16), Rc<Vec<OpId>>>,
    evals: u64,
    budget: u64,
    exploded: bool,
}

impl<'a> Dp<'a> {
    #[allow(clippy::too_many_arguments)] // one-shot constructor mirroring Algorithm 1's inputs
    fn new(
        graph: &'a Graph,
        cost: &'a CostModel,
        root: &SpBlock,
        mini_batch: u64,
        t_max: f64,
        b_cands: Vec<u64>,
        k_cands: Vec<u64>,
        budget: u64,
    ) -> Dp<'a> {
        let bound_b = b_cands.iter().copied().max().unwrap_or(1);
        let (b_cands, k_cands) = (Rc::new(b_cands), Rc::new(k_cands));
        let mut dp = Dp {
            graph,
            cost,
            arena: Arena::build(root),
            mini_batch,
            t_max,
            mem_budget: cost.memory_budget(),
            b_cands,
            k_cands,
            bound_b,
            downs: Vec::new(),
            down_ids: HashMap::new(),
            memo: HashMap::new(),
            chain_static: HashMap::new(),
            chain_time: HashMap::new(),
            branch_time: HashMap::new(),
            interval_ops: HashMap::new(),
            evals: 0,
            budget,
            exploded: false,
        };
        dp.intern(Down::default()); // id 0 = the global sink
        dp
    }

    fn intern(&mut self, down: Down) -> DownId {
        if let Some(&id) = self.down_ids.get(&down) {
            return id;
        }
        let id = self.downs.len() as DownId;
        self.downs.push(down.clone());
        self.down_ids.insert(down, id);
        id
    }

    fn down(&self, id: DownId) -> &Down {
        &self.downs[id as usize]
    }

    fn charge(&mut self, units: u64) -> bool {
        self.evals += units;
        if self.evals > self.budget {
            self.exploded = true;
        }
        self.exploded
    }

    // -------------------------------------------------- segment metrics --

    fn chain_static(&mut self, chain: NodeIdx) -> Rc<ChainStatic> {
        if let Some(cs) = self.chain_static.get(&chain) {
            return Rc::clone(cs);
        }
        let children = self.arena.children(chain).to_vec();
        let n = children.len();
        let mut elem_of: HashMap<OpId, usize> = HashMap::new();
        for (i, &c) in children.iter().enumerate() {
            for &op in self.arena.node_ops(c).iter() {
                elem_of.insert(op, i);
            }
        }
        let mut params = vec![0u64; n + 1];
        let mut act = vec![0u64; n + 1];
        let mut ext = vec![0u64; n + 1];
        let mut adj = vec![0u64; n + 1];
        let mut simple = true;
        for (i, &c) in children.iter().enumerate() {
            let mut p = 0u64;
            let mut a = 0u64;
            let mut x = 0u64;
            for &op in self.arena.node_ops(c).iter() {
                p += self.graph.node(op).kind.param_count() * gp_ir::BYTES_PER_ELEMENT;
                a += self.graph.stashed_bytes(op);
                let bytes = self.graph.node(op).output_bytes();
                for &succ in self.graph.succs(op) {
                    match elem_of.get(&succ) {
                        Some(&j) if j == i => {}
                        Some(&j) if j == i + 1 => adj[i + 1] += bytes,
                        Some(_) => simple = false,
                        None => x += bytes,
                    }
                }
                for &pred in self.graph.preds(op) {
                    if !elem_of.contains_key(&pred) {
                        x += self.graph.node(pred).output_bytes();
                    }
                }
            }
            params[i + 1] = params[i] + p;
            act[i + 1] = act[i] + a;
            ext[i + 1] = ext[i] + x;
        }
        let cs = Rc::new(ChainStatic {
            params,
            act,
            ext,
            adj,
            simple,
        });
        self.chain_static.insert(chain, Rc::clone(&cs));
        cs
    }

    fn chain_time(&mut self, chain: NodeIdx, b: u64) -> Rc<Vec<f64>> {
        if let Some(t) = self.chain_time.get(&(chain, b)) {
            return Rc::clone(t);
        }
        let children = self.arena.children(chain).to_vec();
        let mut prefix = Vec::with_capacity(children.len() + 1);
        prefix.push(0.0);
        for &c in &children {
            let mut t = 0.0;
            for &op in self.arena.node_ops(c).iter() {
                t += self.cost.op_time(self.graph, op, b, Pass::Forward)
                    + self.cost.op_time(self.graph, op, b, Pass::Backward);
            }
            prefix.push(prefix.last().expect("non-empty") + t);
        }
        let prefix = Rc::new(prefix);
        self.chain_time.insert((chain, b), Rc::clone(&prefix));
        prefix
    }

    fn interval_ops(&mut self, node: NodeIdx, s: u16, e: u16) -> Rc<Vec<OpId>> {
        if (s, e) == WHOLE {
            return self.arena.node_ops(node);
        }
        if let Some(ops) = self.interval_ops.get(&(node, s, e)) {
            return Rc::clone(ops);
        }
        let children = self.arena.children(node).to_vec();
        let ops: Vec<OpId> = children[s as usize..e as usize]
            .iter()
            .flat_map(|&c| self.arena.node_ops(c).iter().copied().collect::<Vec<_>>())
            .collect();
        let ops = Rc::new(ops);
        self.interval_ops.insert((node, s, e), Rc::clone(&ops));
        ops
    }

    /// Generic per-op-set aggregates, for non-chain intervals (merged
    /// branch groups, whole composite nodes, non-simple chains).
    fn generic_aggregates(&mut self, node: NodeIdx, s: u16, e: u16, b: u64) -> SegmentCosts {
        let ops = self.interval_ops(node, s, e);
        let mut member = vec![false; self.graph.len()];
        for &op in ops.iter() {
            member[op.index()] = true;
        }
        let mut time = 0.0;
        let (mut params, mut act, mut comm) = (0u64, 0u64, 0u64);
        for &op in ops.iter() {
            time += self.cost.op_time(self.graph, op, b, Pass::Forward)
                + self.cost.op_time(self.graph, op, b, Pass::Backward);
            params += self.graph.node(op).kind.param_count() * gp_ir::BYTES_PER_ELEMENT;
            act += self.graph.stashed_bytes(op);
            let bytes = self.graph.node(op).output_bytes();
            for &succ in self.graph.succs(op) {
                if !member[succ.index()] {
                    comm += bytes;
                }
            }
            for &pred in self.graph.preds(op) {
                if !member[pred.index()] {
                    comm += self.graph.node(pred).output_bytes();
                }
            }
        }
        (time, params, act, comm)
    }

    /// The base case of Algorithm 1: one segment as a single stage with
    /// `d`-way data parallelism; best `(b, k)` candidate by (in-flight,
    /// memory). `raw` carries `(time_at_b, params, act, comm)` per `b`.
    fn eval_candidates(
        &mut self,
        raw: &dyn Fn(&mut Self, u64) -> SegmentCosts,
        d: u32,
        down_id: DownId,
    ) -> Option<StageCand> {
        let b_cands = Rc::clone(&self.b_cands);
        let k_cands = Rc::clone(&self.k_cands);
        let mut best: Option<StageCand> = None;
        for &b in b_cands.iter() {
            let (time, params, act, comm) = raw(self, b);
            if self.charge(1) {
                return None;
            }
            // TPS: compute + boundary communication + amortized allreduce.
            // Micro-batches round-robin over replicas; the slowest replica
            // gets ceil(m/d) of m micro-batches.
            let m = (self.mini_batch / b).max(1);
            let d_eff = m as f64 / m.div_ceil(d as u64) as f64;
            let link = self.cost.default_boundary_link();
            let tps = time / (b as f64 * d_eff)
                + comm as f64 / link.bandwidth
                + 2.0 * link.latency / b as f64
                + self.cost.allreduce_time(params, &DeviceRange::new(0, d))
                    / self.mini_batch as f64;
            if tps > self.t_max {
                continue;
            }
            for &k in k_cands.iter() {
                let in_flight = self.down(down_id).entry_in_flight(k, b);
                let per_replica = CostModel::in_flight_per_replica(in_flight, b, d as usize);
                let mem =
                    params / gp_ir::BYTES_PER_ELEMENT * BYTES_PER_PARAM_STATE + act * per_replica;
                if mem > self.mem_budget {
                    continue;
                }
                let cand = StageCand {
                    b,
                    k,
                    in_flight,
                    mem,
                };
                let better = match &best {
                    None => true,
                    Some(cur) => (cand.in_flight, cand.mem) < (cur.in_flight, cur.mem),
                };
                if better {
                    best = Some(cand);
                }
            }
        }
        best
    }

    fn chain_interval_candidate(
        &mut self,
        chain: NodeIdx,
        s: u16,
        e: u16,
        d: u32,
        down_id: DownId,
    ) -> Option<StageCand> {
        let stat = self.chain_static(chain);
        if stat.simple {
            let raw = move |dp: &mut Self, b: u64| {
                let t = dp.chain_time(chain, b);
                let stat = dp.chain_static(chain);
                let (s, e) = (s as usize, e as usize);
                let comm =
                    stat.adj[s] + stat.adj[e.min(stat.adj.len() - 1)] + (stat.ext[e] - stat.ext[s]);
                (
                    t[e] - t[s],
                    stat.params[e] - stat.params[s],
                    stat.act[e] - stat.act[s],
                    comm,
                )
            };
            self.eval_candidates(&raw, d, down_id)
        } else {
            let raw = move |dp: &mut Self, b: u64| dp.generic_aggregates(chain, s, e, b);
            self.eval_candidates(&raw, d, down_id)
        }
    }

    /// Builds a one-stage fragment from a candidate.
    fn single_frag(&mut self, node: NodeIdx, s: u16, e: u16, d: u32, cand: StageCand) -> Rc<Frag> {
        let ops = self.interval_ops(node, s, e);
        let entry = (cand.k, cand.b, cand.in_flight);
        let entries = Down::single(entry);
        let entries_id = self.intern(entries.clone());
        Rc::new(Frag {
            stages: vec![ProtoStage {
                ops,
                d,
                b: cand.b,
                k: cand.k,
            }],
            entries,
            entries_id,
            exit: entry,
            peak_mem: cand.mem,
        })
    }

    fn concat(&mut self, head: &Frag, tail: &Frag) -> Rc<Frag> {
        let mut stages = head.stages.clone();
        stages.extend(tail.stages.iter().cloned());
        Rc::new(Frag {
            stages,
            entries: head.entries.clone(),
            entries_id: head.entries_id,
            exit: tail.exit,
            peak_mem: head.peak_mem.max(tail.peak_mem),
        })
    }

    fn merge_parallel(&mut self, a: &Frag, b: &Frag) -> Rc<Frag> {
        let entries = a.entries.union(&b.entries);
        let entries_id = self.intern(entries.clone());
        let mut stages = a.stages.clone();
        stages.extend(b.stages.iter().cloned());
        Rc::new(Frag {
            stages,
            entries,
            entries_id,
            exit: b.exit,
            peak_mem: a.peak_mem.max(b.peak_mem),
        })
    }

    /// Work-conservation lower bound on the bottleneck TPS of a fragment
    /// with total micro-batch time `time` (at `bound_b`) on `d` devices.
    fn work_bound_ok(&self, time: f64, d: u32) -> bool {
        time / (self.bound_b as f64 * d as f64) <= self.t_max
    }

    /// Minimal devices for which the work bound passes.
    fn min_devices(&self, time: f64) -> u32 {
        let d = (time / (self.bound_b as f64 * self.t_max)).ceil();
        if d.is_finite() {
            (d as u32).max(1)
        } else {
            u32::MAX
        }
    }

    // ----------------------------------------------------------- solving --

    fn solve(&mut self, node: NodeIdx, d: u32, down_id: DownId) -> Option<Rc<Frag>> {
        if self.exploded {
            return None;
        }
        match self.arena.node(node) {
            ANode::Leaf(_) => {
                let cand = {
                    let raw = move |dp: &mut Self, b: u64| {
                        dp.generic_aggregates(node, WHOLE.0, WHOLE.1, b)
                    };
                    self.eval_candidates(&raw, d, down_id)
                }?;
                Some(self.single_frag(node, WHOLE.0, WHOLE.1, d, cand))
            }
            ANode::Chain(_) => self.solve_chain(node, 0, d, down_id),
            ANode::Branches(_) => {
                let key = MemoKey::Node(node, d, down_id);
                if let Some(cached) = self.memo.get(&key) {
                    return cached.clone();
                }
                let m = self.arena.children(node).len() as u16;
                let best = self.solve_branch_range(node, 0, m, d, down_id);
                self.memo.insert(key, best.clone());
                best
            }
        }
    }

    /// Series decomposition over a chain suffix `[start..n)`.
    fn solve_chain(
        &mut self,
        chain: NodeIdx,
        start: u16,
        d: u32,
        down_id: DownId,
    ) -> Option<Rc<Frag>> {
        if self.exploded {
            return None;
        }
        let key = MemoKey::ChainSuffix(chain, start, d, down_id);
        if let Some(cached) = self.memo.get(&key) {
            return cached.clone();
        }
        let n = self.arena.children(chain).len() as u16;
        debug_assert!(start < n);
        let time = self.chain_time(chain, self.bound_b);
        // Work bound: the whole suffix must fit d devices at the target.
        let suffix_time = time[n as usize] - time[start as usize];
        if !self.work_bound_ok(suffix_time, d) {
            self.memo.insert(key, None);
            return None;
        }
        let mut best: Option<Rc<Frag>> = None;
        let mut best_score: Score = (u64::MAX, u64::MAX, usize::MAX);
        let consider =
            |dp: &mut Self, cand: Rc<Frag>, best: &mut Option<Rc<Frag>>, best_score: &mut Score| {
                let _ = dp;
                let s = cand.score();
                if s < *best_score {
                    *best_score = s;
                    *best = Some(cand);
                }
            };
        // Option A: the whole suffix as one stage.
        if let Some(cand) = self.chain_interval_candidate(chain, start, n, d, down_id) {
            let frag = self.single_frag(chain, start, n, d, cand);
            consider(self, frag, &mut best, &mut best_score);
        }
        // Option B: the suffix is a single composite element — delegate.
        if n - start == 1 {
            let child = self.arena.children(chain)[start as usize];
            if !self.arena.is_leaf(child) {
                if let Some(f) = self.solve(child, d, down_id) {
                    consider(self, f, &mut best, &mut best_score);
                }
            }
            self.memo.insert(key, best.clone());
            return best;
        }
        // Option C: the whole suffix is [Branches, joins...] — absorb.
        if self.absorbable(chain, start, n) {
            if let Some(f) = self.solve_absorbed(chain, start, n, d, down_id) {
                consider(self, f, &mut best, &mut best_score);
            }
        }
        // Option D: split at `mid`; solve the downstream part first. The
        // work bound confines the device split to a (usually tiny) window.
        for mid in start + 1..n {
            let head_time = time[mid as usize] - time[start as usize];
            let suf_time = time[n as usize] - time[mid as usize];
            let d_head_min = self.min_devices(head_time);
            let d_suf_min = self.min_devices(suf_time);
            if d_head_min == u32::MAX || d_suf_min == u32::MAX || d_head_min + d_suf_min > d {
                continue;
            }
            for d_suf in d_suf_min..=d - d_head_min {
                if self.charge(1) {
                    return None;
                }
                let d_head = d - d_suf;
                let Some(suffix) = self.solve_chain(chain, mid, d_suf, down_id) else {
                    continue;
                };
                let head_down = suffix.entries_id;
                // D1: head segment as a single stage (score-first).
                if let Some(cand) =
                    self.chain_interval_candidate(chain, start, mid, d_head, head_down)
                {
                    let score = (
                        cand.in_flight,
                        cand.mem.max(suffix.peak_mem),
                        1 + suffix.stages.len(),
                    );
                    if score < best_score {
                        let head = self.single_frag(chain, start, mid, d_head, cand);
                        let combined = self.concat(&head, &suffix);
                        consider(self, combined, &mut best, &mut best_score);
                    }
                }
                // D2: head is one Branches element — parallel decomposition.
                if mid == start + 1 {
                    let child = self.arena.children(chain)[start as usize];
                    if self.arena.is_branches(child) {
                        if let Some(head) = self.solve(child, d_head, head_down) {
                            let score = (
                                head.max_entry(),
                                head.peak_mem.max(suffix.peak_mem),
                                head.stages.len() + suffix.stages.len(),
                            );
                            if score < best_score {
                                let combined = self.concat(&head, &suffix);
                                consider(self, combined, &mut best, &mut best_score);
                            }
                        }
                    }
                }
                // D3: head is [Branches, joins...] — absorbed decomposition.
                if mid > start + 1 && self.absorbable(chain, start, mid) {
                    if let Some(head) = self.solve_absorbed(chain, start, mid, d_head, head_down) {
                        let score = (
                            head.max_entry(),
                            head.peak_mem.max(suffix.peak_mem),
                            head.stages.len() + suffix.stages.len(),
                        );
                        if score < best_score {
                            let combined = self.concat(&head, &suffix);
                            consider(self, combined, &mut best, &mut best_score);
                        }
                    }
                }
            }
        }
        self.memo.insert(key, best.clone());
        best
    }

    /// Whether chain elements `[s..e)` are a `Branches` element followed by
    /// one or more leaf (join) operators.
    fn absorbable(&self, chain: NodeIdx, s: u16, e: u16) -> bool {
        if e <= s + 1 {
            return false;
        }
        let children = self.arena.children(chain);
        self.arena.is_branches(children[s as usize])
            && children[s as usize + 1..e as usize]
                .iter()
                .all(|&c| self.arena.is_leaf(c))
    }

    /// Parallel decomposition with the trailing join operators folded into
    /// the last branch (§7.5 case study). The join stage's schedule
    /// configuration becomes the boundary for the remaining branches.
    fn solve_absorbed(
        &mut self,
        chain: NodeIdx,
        s: u16,
        e: u16,
        d: u32,
        down_id: DownId,
    ) -> Option<Rc<Frag>> {
        if d < 2 {
            return None;
        }
        let branches = self.arena.children(chain)[s as usize];
        let m = self.arena.children(branches).len() as u16;
        let absorbed = self
            .arena
            .absorbed_chain(branches, chain, s as usize + 1, e as usize);
        let last_time = {
            let t = self.chain_time(absorbed, self.bound_b);
            *t.last().expect("non-empty")
        };
        let others_time = {
            let pre = self.branch_time_prefix(branches);
            pre[(m - 1) as usize]
        };
        let d_last_min = self.min_devices(last_time);
        let d_others_min = self.min_devices(others_time);
        if d_last_min == u32::MAX || d_others_min == u32::MAX || d_last_min + d_others_min > d {
            return None;
        }
        let mut best: Option<Rc<Frag>> = None;
        let mut best_score: Score = (u64::MAX, u64::MAX, usize::MAX);
        for d_last in d_last_min..=d - d_others_min {
            if self.charge(1) {
                return None;
            }
            let Some(last) = self.solve(absorbed, d_last, down_id) else {
                continue;
            };
            let others_down = self.intern(Down::single(last.exit));
            let Some(others) = self.solve_branch_range(branches, 0, m - 1, d - d_last, others_down)
            else {
                continue;
            };
            let score = (
                others.max_entry().max(last.max_entry()),
                others.peak_mem.max(last.peak_mem),
                others.stages.len() + last.stages.len(),
            );
            if score < best_score {
                let merged = self.merge_parallel(&others, &last);
                best_score = merged.score();
                best = Some(merged);
            }
        }
        best
    }

    /// Prefix of per-branch total times (at `bound_b`) for a Branches node.
    fn branch_time_prefix(&mut self, branches: NodeIdx) -> Rc<Vec<f64>> {
        if let Some(pre) = self.branch_time.get(&branches) {
            return Rc::clone(pre);
        }
        let children = self.arena.children(branches).to_vec();
        let mut prefix = Vec::with_capacity(children.len() + 1);
        prefix.push(0.0);
        for &c in &children {
            let mut t = 0.0;
            for &op in self.arena.node_ops(c).iter() {
                t += self
                    .cost
                    .op_time(self.graph, op, self.bound_b, Pass::Forward)
                    + self
                        .cost
                        .op_time(self.graph, op, self.bound_b, Pass::Backward);
            }
            prefix.push(prefix.last().expect("non-empty") + t);
        }
        let prefix = Rc::new(prefix);
        self.branch_time.insert(branches, Rc::clone(&prefix));
        prefix
    }

    /// Parallel decomposition over branches `[from..to)`: single stage for
    /// the whole (contiguous) group, or a binary split with a device-window
    /// bound on each side.
    fn solve_branch_range(
        &mut self,
        branches: NodeIdx,
        from: u16,
        to: u16,
        d: u32,
        down_id: DownId,
    ) -> Option<Rc<Frag>> {
        if self.exploded || to == from {
            return None;
        }
        if to - from == 1 {
            let child = self.arena.children(branches)[from as usize];
            return self.solve(child, d, down_id);
        }
        let key = MemoKey::BranchRange(branches, from, to, d, down_id);
        if let Some(cached) = self.memo.get(&key) {
            return cached.clone();
        }
        let mut best: Option<Rc<Frag>> = None;
        let mut best_score: Score = (u64::MAX, u64::MAX, usize::MAX);
        // The whole group as one (data-parallel) stage.
        if let Some(cand) = {
            let raw = move |dp: &mut Self, b: u64| dp.generic_aggregates(branches, from, to, b);
            self.eval_candidates(&raw, d, down_id)
        } {
            let frag = self.single_frag(branches, from, to, d, cand);
            best_score = frag.score();
            best = Some(frag);
        }
        // Binary splits with work-bound device windows.
        let pre = self.branch_time_prefix(branches);
        for split in from + 1..to {
            let left_time = pre[split as usize] - pre[from as usize];
            let right_time = pre[to as usize] - pre[split as usize];
            let d_left_min = self.min_devices(left_time);
            let d_right_min = self.min_devices(right_time);
            if d_left_min == u32::MAX || d_right_min == u32::MAX || d_left_min + d_right_min > d {
                continue;
            }
            for d1 in d_left_min..=d - d_right_min {
                if self.charge(1) {
                    return None;
                }
                let Some(a) = self.solve_branch_range(branches, from, split, d1, down_id) else {
                    continue;
                };
                let Some(b) = self.solve_branch_range(branches, split, to, d - d1, down_id) else {
                    continue;
                };
                let score = (
                    a.max_entry().max(b.max_entry()),
                    a.peak_mem.max(b.peak_mem),
                    a.stages.len() + b.stages.len(),
                );
                if score < best_score {
                    let merged = self.merge_parallel(&a, &b);
                    best_score = merged.score();
                    best = Some(merged);
                }
            }
        }
        self.memo.insert(key, best.clone());
        best
    }
}

// --------------------------------------------------------------- planner --

/// The GraphPipe planner: topology-aware stage partitioning with the §6
/// micro-batch scheduler in the loop.
///
/// # Examples
///
/// ```
/// use gp_cluster::Cluster;
/// use gp_ir::zoo::{self, CandleUnoConfig};
/// use gp_partition::{GraphPipePlanner, Planner};
///
/// let model = zoo::candle_uno(&CandleUnoConfig::default());
/// let cluster = Cluster::summit_like(8);
/// let plan = GraphPipePlanner::new().plan(&model, &cluster, 8192)?;
/// // Parallel branches keep the pipeline shallow: depth < stage count.
/// assert!(plan.pipeline_depth() <= plan.stage_graph.len());
/// # Ok::<(), gp_partition::PlanError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphPipePlanner {
    options: PlanOptions,
}

impl GraphPipePlanner {
    /// Planner with default options (uniform micro-batch, 1F1B).
    pub fn new() -> Self {
        Self::default()
    }

    /// Planner with explicit options.
    pub fn with_options(options: PlanOptions) -> Self {
        GraphPipePlanner { options }
    }

    /// The options in effect.
    pub fn options(&self) -> &PlanOptions {
        &self.options
    }

    /// One `SearchStageGraph` invocation (Algorithm 1 lines 13–20): try
    /// every candidate schedule configuration at target `t_max`, keep the
    /// one with the smallest memory footprint.
    #[allow(clippy::too_many_arguments)]
    fn search_stage_graph(
        &self,
        graph: &Graph,
        cost: &CostModel,
        root_block: &SpBlock,
        devices: u32,
        mini_batch: u64,
        t_max: f64,
        b_all: &[u64],
        stats: &mut SearchStats,
        evals_used: &mut u64,
    ) -> Result<Option<Rc<Frag>>, PlanError> {
        // Skip micro-batch sizes whose work-conservation bound already
        // exceeds the target: the whole model's work must fit d * t_max.
        let feasible_b: Vec<u64> = b_all
            .iter()
            .copied()
            .filter(|&b| {
                let total: f64 = graph
                    .nodes()
                    .map(|n| {
                        cost.op_time(graph, n.id, b, Pass::Forward)
                            + cost.op_time(graph, n.id, b, Pass::Backward)
                    })
                    .sum();
                total / (b as f64 * devices as f64) <= t_max
            })
            .collect();
        let runs: Vec<Vec<u64>> = if self.options.per_stage_micro_batch {
            if feasible_b.is_empty() {
                Vec::new()
            } else {
                vec![feasible_b]
            }
        } else {
            feasible_b.iter().map(|&b| vec![b]).collect()
        };
        let mut best: Option<Rc<Frag>> = None;
        for b_cands in runs {
            stats.configs_tried += 1;
            let mut dp = Dp::new(
                graph,
                cost,
                root_block,
                mini_batch,
                t_max,
                b_cands,
                self.options.kfkb_candidates.clone(),
                self.options.eval_budget.saturating_sub(*evals_used),
            );
            let root = dp.arena.root;
            let sol = dp.solve(root, devices, 0);
            *evals_used += dp.evals;
            stats.dp_evals += dp.evals;
            stats.dp_states += dp.memo.len() as u64;
            if dp.exploded {
                return Err(PlanError::SearchExplosion { evals: *evals_used });
            }
            if let Some(f) = sol {
                // PickBetter of Algorithm 1: less memory wins across
                // configurations; ties broken by in-flight pressure.
                let better = match &best {
                    None => true,
                    Some(cur) => (f.peak_mem, f.score()) < (cur.peak_mem, cur.score()),
                };
                if better {
                    best = Some(f);
                }
            }
        }
        Ok(best)
    }

    fn frag_to_plan(
        &self,
        frag: &Frag,
        model: &SpModel,
        cluster: &Cluster,
        cost: &CostModel,
        mini_batch: u64,
        stats: SearchStats,
    ) -> Result<Plan, PlanError> {
        // Place wide (data-parallel) stages first so their replicas stay
        // within a node: a 4-way stage allreduces over NVLink instead of
        // straddling the node boundary onto InfiniBand.
        let mut order: Vec<usize> = (0..frag.stages.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(frag.stages[i].d));
        let mut ranges: Vec<Option<DeviceRange>> = vec![None; frag.stages.len()];
        let mut cursor = 0u32;
        for &i in &order {
            ranges[i] = Some(DeviceRange::new(cursor, frag.stages[i].d));
            cursor += frag.stages[i].d;
        }
        let stages: Vec<Stage> = frag
            .stages
            .iter()
            .enumerate()
            .map(|(i, ps)| Stage {
                id: StageId(i as u32),
                ops: (*ps.ops).clone(),
                devices: ranges[i].expect("every stage placed"),
                micro_batch: ps.b,
                kfkb: ps.k,
            })
            .collect();
        let stage_graph = StageGraph::new(model.graph(), cluster, stages, mini_batch)
            .map_err(|e| PlanError::Internal(e.to_string()))?;
        let in_flight = assign_in_flight(&stage_graph);
        let schedule = schedule_tasks(&stage_graph, &in_flight);
        let mut plan = Plan {
            stage_graph,
            in_flight,
            schedule,
            bottleneck_tps: 0.0,
            peak_memory_bytes: 0,
            stats,
        };
        let (tps, mem) = plan.measure(model.graph(), cost);
        plan.bottleneck_tps = tps;
        plan.peak_memory_bytes = mem;
        Ok(plan)
    }
}

impl Planner for GraphPipePlanner {
    fn name(&self) -> &str {
        "graphpipe"
    }

    fn plan(&self, model: &SpModel, cluster: &Cluster, mini_batch: u64) -> Result<Plan, PlanError> {
        let start = Instant::now();
        let graph = model.graph();
        let cost = CostModel::new(cluster);
        let devices = cluster.device_count() as u32;
        let b_all = self.options.micro_batch_sizes(mini_batch);
        if b_all.is_empty() {
            return Err(PlanError::Infeasible(
                "no micro-batch size candidates divide the mini-batch".to_string(),
            ));
        }
        let mut stats = SearchStats::default();
        let mut evals_used = 0u64;
        let t_hi0 = cost.max_tps(graph);

        // Binary search (Algorithm 1 lines 2–11), bracketed from below: the
        // optimum can never beat the work-conservation bound
        // min_b total(b) / (b * |V_D|), so we climb geometrically from that
        // bound until the first feasible target, then refine. Every probe
        // therefore runs with tight work-bound pruning windows — this is
        // what keeps GraphPipe's search fast relative to the min-max
        // baselines (§7.2).
        let t_base = b_all
            .iter()
            .map(|&b| {
                let total: f64 = graph
                    .nodes()
                    .map(|n| {
                        cost.op_time(graph, n.id, b, Pass::Forward)
                            + cost.op_time(graph, n.id, b, Pass::Backward)
                    })
                    .sum();
                total / (b as f64 * devices as f64)
            })
            .fold(f64::INFINITY, f64::min)
            .max(1e-12);
        let search = |t_m: f64,
                      stats: &mut SearchStats,
                      evals_used: &mut u64|
         -> Result<Option<Rc<Frag>>, PlanError> {
            stats.binary_iters += 1;
            self.search_stage_graph(
                graph,
                &cost,
                model.root(),
                devices,
                mini_batch,
                t_m,
                &b_all,
                stats,
                evals_used,
            )
        };
        let mut t_hi = 2.0 * t_base;
        let mut t_lo = t_base;
        let mut best: Option<Rc<Frag>> = None;
        while best.is_none() && t_hi <= 4.0 * t_hi0 {
            best = search(t_hi, &mut stats, &mut evals_used)?;
            if best.is_none() {
                t_lo = t_hi;
                t_hi *= 2.0;
            }
        }
        if let Some(found) = &best {
            let _ = found;
            // Refine within the bracket [t_lo, t_hi].
            while t_hi - t_lo > self.options.epsilon * t_hi {
                let t_m = 0.5 * (t_lo + t_hi);
                match search(t_m, &mut stats, &mut evals_used)? {
                    Some(f) => {
                        best = Some(f);
                        t_hi = t_m;
                    }
                    None => t_lo = t_m,
                }
            }
        }
        let Some(best) = best else {
            return Err(PlanError::Infeasible(format!(
                "no partition fits the {} MiB device memory budget",
                cost.memory_budget() >> 20
            )));
        };
        stats.wall = start.elapsed();
        self.frag_to_plan(&best, model, cluster, &cost, mini_batch, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_ir::zoo::{self, CandleUnoConfig, DlrmConfig, MmtConfig};

    fn plan_for(model: &SpModel, devices: usize, mini_batch: u64) -> Result<Plan, PlanError> {
        GraphPipePlanner::new().plan(model, &Cluster::summit_like(devices), mini_batch)
    }

    #[test]
    fn down_canonicalization_keeps_binding_entry() {
        let d = Down::from_entries(vec![(1, 4, 8), (1, 4, 16), (2, 2, 4)]);
        assert_eq!(d.0, vec![(1, 4, 16), (2, 2, 4)]);
    }

    #[test]
    fn down_entry_in_flight_sink() {
        assert_eq!(Down::default().entry_in_flight(1, 4), 4);
        assert_eq!(Down::default().entry_in_flight(2, 4), 8);
    }

    #[test]
    fn down_entry_in_flight_max_over_entries() {
        let d = Down::from_entries(vec![(1, 4, 4), (1, 4, 12)]);
        // CIF(1,4,1,4,12) = 16 dominates CIF(1,4,1,4,4) = 8.
        assert_eq!(d.entry_in_flight(1, 4), 16);
    }

    #[test]
    fn plans_sequential_chain() {
        let model = zoo::mlp_chain(8, 512);
        let plan = plan_for(&model, 4, 32).unwrap();
        assert_eq!(plan.stage_graph.mini_batch(), 32);
        let total: usize = plan.stage_graph.stages().map(|s| s.dp_degree()).sum();
        assert_eq!(total, 4);
        plan.schedule.validate_c4(&plan.stage_graph).unwrap();
    }

    #[test]
    fn multi_branch_model_gets_shallow_pipeline() {
        let model = zoo::candle_uno(&CandleUnoConfig::default());
        let plan = plan_for(&model, 8, 1024).unwrap();
        assert!(
            plan.pipeline_depth() < plan.stage_graph.len() || plan.stage_graph.len() <= 2,
            "depth {} vs {} stages",
            plan.pipeline_depth(),
            plan.stage_graph.len()
        );
    }

    #[test]
    fn case_study_produces_depth_below_stage_count() {
        let model = zoo::case_study(&MmtConfig::default());
        let plan = plan_for(&model, 8, 64).unwrap();
        assert!(plan.stage_graph.len() >= 2);
        assert!(plan.pipeline_depth() <= plan.stage_graph.len());
        plan.schedule.validate_c4(&plan.stage_graph).unwrap();
    }

    #[test]
    fn dp_in_flight_matches_scheduler() {
        // The DP's bottom-up in-flight accounting must agree with the
        // authoritative assign_in_flight over the final stage graph.
        let model = zoo::mmt(&MmtConfig::two_branch());
        let plan = plan_for(&model, 4, 64).unwrap();
        let table = gp_sched::assign_in_flight(&plan.stage_graph);
        for s in plan.stage_graph.stages() {
            assert_eq!(plan.in_flight.samples(s.id), table.samples(s.id));
        }
    }

    #[test]
    fn memory_constraint_is_respected() {
        let model = zoo::mmt(&MmtConfig::two_branch());
        let cluster = Cluster::summit_like(4);
        let plan = GraphPipePlanner::new().plan(&model, &cluster, 64).unwrap();
        assert!(plan.peak_memory_bytes <= cluster.profile().mem_capacity);
    }

    #[test]
    fn infeasible_memory_is_reported() {
        let model = zoo::mmt(&MmtConfig::default());
        let cluster = Cluster::summit_like(4).with_memory_capacity(1 << 20);
        let err = GraphPipePlanner::new()
            .plan(&model, &cluster, 64)
            .unwrap_err();
        assert!(matches!(err, PlanError::Infeasible(_)), "{err:?}");
    }

    #[test]
    fn forced_micro_batch_is_used() {
        let model = zoo::candle_uno(&CandleUnoConfig::default());
        let opts = PlanOptions::default().with_forced_micro_batch(16);
        let plan = GraphPipePlanner::with_options(opts)
            .plan(&model, &Cluster::summit_like(4), 1024)
            .unwrap();
        assert!(plan.stage_graph.stages().all(|s| s.micro_batch == 16));
    }

    #[test]
    fn dlrm_plans_within_budget() {
        let model = zoo::dlrm(&DlrmConfig::default());
        let plan = plan_for(&model, 8, 512).unwrap();
        assert!(plan.stats.dp_evals > 0);
        assert!(plan.stats.binary_iters > 0);
        plan.schedule.validate_c4(&plan.stage_graph).unwrap();
    }

    #[test]
    fn search_explosion_budget_is_enforced() {
        let model = zoo::candle_uno(&CandleUnoConfig::default());
        let opts = PlanOptions {
            eval_budget: 1,
            ..PlanOptions::default()
        };
        let err = GraphPipePlanner::with_options(opts)
            .plan(&model, &Cluster::summit_like(8), 1024)
            .unwrap_err();
        assert!(matches!(err, PlanError::SearchExplosion { .. }), "{err:?}");
    }

    #[test]
    fn more_devices_do_not_hurt_estimated_tps() {
        let model = zoo::candle_uno(&CandleUnoConfig::default());
        let p4 = plan_for(&model, 4, 1024).unwrap();
        let p8 = plan_for(&model, 8, 1024).unwrap();
        assert!(p8.bottleneck_tps <= p4.bottleneck_tps * 1.05);
    }
}
