//! The GraphPipe pipeline-stage partitioner (Algorithm 1 of the paper).
//!
//! The planner binary-searches the bottleneck Time-Per-Sample and, for each
//! target `t_max`, runs a dynamic program over the model's series-parallel
//! tree that decides — jointly — the stage partition, per-stage device
//! counts, micro-batch sizes, and schedule parameters, while the in-flight
//! accounting of `gp-sched` flows backwards from sinks to sources.
//!
//! DP subproblems follow §5:
//!
//! * **base case** — treat the whole subgraph as a single stage with
//!   `d`-way data parallelism;
//! * **series decomposition** — split a chain, solve the suffix first (its
//!   entry stages' schedule configurations become the head's boundary
//!   configuration `c_m`), then the head;
//! * **parallel decomposition** — split the branch set, solve both sides
//!   against the same boundary, and take the larger in-flight requirement
//!   at the shared boundary;
//! * **join absorption** — a `Branches` element followed by small join
//!   operators (e.g. `Concat`) may fold the joins into the final stage of
//!   its last branch, reproducing the §7.5 case-study partition where "one
//!   stage necessarily contains the concatenation operator".
//!
//! The feasibility-style DP is what makes GraphPipe's search fast (§7.2):
//! a fragment whose *total* work already exceeds `d * t_max` cannot be
//! partitioned into stages meeting the target, so whole subtrees — and most
//! of the device-split range at each chain cut — are pruned by a
//! work-conservation bound. The sequential baselines optimize min-max
//! directly and get no such pruning.
//!
//! # Arena / slab memo layout
//!
//! The DP state is arena-indexed, `Send`, and allocation-light:
//!
//! * the SP tree lives in a flat [`Arena`] (`NodeIdx = u32`), with
//!   on-demand "absorbed" chain variants appended to it;
//! * solved fragments live in a slab (`FragId = u32`). A [`Frag`] is
//!   either a single proto-stage or the O(1) concatenation of two earlier
//!   fragments, so combining candidates never copies stage vectors — the
//!   winning fragment is flattened into a [`Solution`] once per DP run;
//! * downstream boundary configurations ([`Down`]) are interned into a
//!   flat `Vec` and addressed by `DownId = u32`;
//! * the memo is a dense table, not a hash map: every `(node, interval)`
//!   subproblem owns a precomputed *slot* (chains: one per suffix;
//!   branches: one per `[from, to)` range), and each slot holds dense
//!   `[d - 1] -> FragId` columns per interned `DownId`. Lookups are pure
//!   indexing; `reset` between binary-search probes is dropping the state
//!   wholesale;
//! * the per-chain prefix-time / static-cost caches are flat arrays
//!   indexed by `NodeIdx` (× micro-batch candidate), and op-membership
//!   tests use a stamped scratch array instead of per-call hash sets.
//!
//! # Determinism & the parallel search
//!
//! A single DP run is a pure function of `(graph, cost, SP tree, t_max,
//! micro-batch candidates, eval budget)`: candidate enumeration order,
//! tie-breaking, and `Down` interning order are all fixed, and the run
//! shares no state with other runs. The binary search's probe *sequence*
//! is in turn a deterministic function of per-probe feasibility. The
//! parallel planner ([`crate::ParallelPlanner`]) exploits exactly this: it
//! speculatively evaluates probe targets (the geometric bracket ladder,
//! plus the upcoming midpoints of the bisection's decision tree) and
//! micro-batch configurations on scoped worker threads, then **replays the
//! sequential probe order**, consuming speculative results instead of
//! computing them. Merged [`SearchStats`] counters are accumulated in
//! replay order, so the returned [`Plan`] — strategy *and* deterministic
//! counters — is identical to the sequential planner's; only `stats.wall`
//! differs. Speculative runs execute under the full eval budget; if the
//! replay finds that the sequential search would have run out of budget
//! mid-run, that run is re-executed with the exact remaining budget so
//! even [`PlanError::SearchExplosion`] accounting is bit-identical.
//!
//! gp-lint: deterministic — this module's outputs feed plan
//! fingerprints or the artifact codec; `cargo xtask lint` scans it for
//! nondeterminism hazards (DESIGN.md §"Determinism lint").

use crate::plan::{Plan, PlanError, PlanOptions, Planner, SearchStats, WarmStart};
use gp_cluster::{Cluster, DeviceRange};
use gp_cost::{CostModel, Pass, BYTES_PER_PARAM_STATE};
use gp_ir::{Graph, OpId, SpBlock, SpModel};
use gp_obs::{ClockHandle, Telemetry};
use gp_sched::{assign_in_flight, compute_in_flight, schedule_tasks, Stage, StageGraph, StageId};
use std::collections::HashMap;

// ---------------------------------------------------------------- arena --

type NodeIdx = u32;

#[derive(Debug, Clone)]
enum ANode {
    Leaf(OpId),
    Chain(Vec<NodeIdx>),
    Branches(Vec<NodeIdx>),
}

/// Flat storage for the SP tree, with on-demand "absorbed" chain variants.
struct Arena {
    nodes: Vec<ANode>,
    /// Full operator list per node, in forward topological order.
    ops: Vec<Vec<OpId>>,
    root: NodeIdx,
    absorb_cache: HashMap<(NodeIdx, NodeIdx, usize, usize), NodeIdx>,
}

impl Arena {
    fn build(block: &SpBlock) -> Arena {
        let mut arena = Arena {
            nodes: Vec::new(),
            ops: Vec::new(),
            root: 0,
            absorb_cache: HashMap::new(),
        };
        arena.root = arena.add(block);
        arena
    }

    fn add(&mut self, block: &SpBlock) -> NodeIdx {
        let node = match block {
            SpBlock::Leaf(op) => ANode::Leaf(*op),
            SpBlock::Chain(items) => ANode::Chain(items.iter().map(|b| self.add(b)).collect()),
            SpBlock::Branches(items) => {
                ANode::Branches(items.iter().map(|b| self.add(b)).collect())
            }
        };
        self.push(node)
    }

    fn push(&mut self, node: ANode) -> NodeIdx {
        let ops = match &node {
            ANode::Leaf(op) => vec![*op],
            ANode::Chain(cs) | ANode::Branches(cs) => cs
                .iter()
                .flat_map(|&c| self.ops[c as usize].iter().copied())
                .collect(),
        };
        let idx = self.nodes.len() as NodeIdx;
        self.nodes.push(node);
        self.ops.push(ops);
        idx
    }

    fn node(&self, idx: NodeIdx) -> &ANode {
        &self.nodes[idx as usize]
    }

    fn node_ops(&self, idx: NodeIdx) -> &[OpId] {
        &self.ops[idx as usize]
    }

    fn children(&self, idx: NodeIdx) -> &[NodeIdx] {
        match self.node(idx) {
            ANode::Chain(cs) | ANode::Branches(cs) => cs,
            ANode::Leaf(_) => &[],
        }
    }

    fn is_branches(&self, idx: NodeIdx) -> bool {
        matches!(self.node(idx), ANode::Branches(_))
    }

    fn is_leaf(&self, idx: NodeIdx) -> bool {
        matches!(self.node(idx), ANode::Leaf(_))
    }

    /// The chain obtained by appending `chain`'s elements `[tail_s, tail_e)`
    /// (the absorbed join operators) to the last branch of `branches`.
    fn absorbed_chain(
        &mut self,
        branches: NodeIdx,
        chain: NodeIdx,
        tail_s: usize,
        tail_e: usize,
    ) -> NodeIdx {
        let key = (branches, chain, tail_s, tail_e);
        if let Some(&idx) = self.absorb_cache.get(&key) {
            return idx;
        }
        let last_branch = *self
            .children(branches)
            .last()
            .expect("Branches nodes are non-empty");
        let mut elems = match self.node(last_branch) {
            ANode::Chain(cs) => cs.clone(),
            _ => vec![last_branch],
        };
        elems.extend_from_slice(&self.children(chain)[tail_s..tail_e]);
        let idx = self.push(ANode::Chain(elems));
        self.absorb_cache.insert(key, idx);
        idx
    }
}

// ------------------------------------------------- boundary configuration --

/// The downstream boundary configuration of a DP subproblem: the schedule
/// configurations `(k, b, in_flight_samples)` of the entry stages that will
/// consume this fragment's output. Empty means the fragment ends at the
/// global sink. Interned to a `DownId` for cheap memo keys.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
struct Down(Vec<(u64, u64, u64)>);

type DownId = u32;

impl Down {
    fn single(entry: (u64, u64, u64)) -> Down {
        Down(vec![entry])
    }

    fn from_entries(mut entries: Vec<(u64, u64, u64)>) -> Down {
        // Canonical form: per (k, b) only the maximal i binds (ComputeInFlight
        // is `i + f(k, b, ...)`), then sorted for hashing.
        entries.sort_unstable();
        let mut out: Vec<(u64, u64, u64)> = Vec::with_capacity(entries.len());
        for e in entries {
            match out.last_mut() {
                Some(last) if last.0 == e.0 && last.1 == e.1 => last.2 = last.2.max(e.2),
                _ => out.push(e),
            }
        }
        Down(out)
    }

    fn union(&self, other: &Down) -> Down {
        let mut v = self.0.clone();
        v.extend_from_slice(&other.0);
        Down::from_entries(v)
    }

    /// Largest in-flight requirement among the entries.
    fn max_entry(&self) -> u64 {
        self.0.iter().map(|e| e.2).max().unwrap_or(0)
    }

    /// Minimal in-flight samples for a stage with schedule `(k, b)` feeding
    /// these boundaries (the sink keeps `k*b` samples resident).
    fn entry_in_flight(&self, k: u64, b: u64) -> u64 {
        let base = k * b;
        self.0
            .iter()
            .map(|&(ky, by, iy)| compute_in_flight(k, b, ky, by, iy))
            .max()
            .unwrap_or(base)
            .max(base)
    }
}

// ------------------------------------------------------------- fragments --

/// Sentinel meaning "the whole node" for non-chain intervals.
const WHOLE: (u16, u16) = (0, u16::MAX);

/// A stage in the making: an op interval of an arena node plus a device
/// count; placed (and its ops resolved) once the search settles.
#[derive(Debug, Clone, Copy)]
struct ProtoStage {
    node: NodeIdx,
    s: u16,
    e: u16,
    d: u32,
    b: u64,
    k: u64,
}

/// DP comparison key: source in-flight pressure, then memory, then stage
/// count (§5: "the number of in-flight micro-batches for the source stage
/// is minimized").
type Score = (u64, u64, usize);

type FragId = u32;

/// Fragment structure: a leaf stage, or the concatenation of two earlier
/// fragments (both series and parallel composition append stage lists, so
/// one node kind covers both).
#[derive(Debug, Clone, Copy)]
enum FragRepr {
    Single(ProtoStage),
    Cat(FragId, FragId),
}

/// A solved DP subproblem in the fragment slab: stages are reachable
/// through `repr` (flattened only for the winning fragment), with the
/// boundary bookkeeping and score components cached inline.
#[derive(Debug, Clone, Copy)]
struct Frag {
    repr: FragRepr,
    /// Number of stages in the fragment.
    len: u32,
    /// Interned `(k, b, i)` set of the fragment's entry stages (what
    /// upstream sees).
    entries_id: DownId,
    /// Largest entry in-flight requirement (first score component).
    max_entry: u64,
    /// `(k, b, i)` of the stage containing the fragment's last chain
    /// element (what side branches feeding an absorbed join see).
    exit: (u64, u64, u64),
    /// Peak per-device memory across stages, bytes.
    peak_mem: u64,
}

impl Frag {
    fn score(&self) -> Score {
        (self.max_entry, self.peak_mem, self.len as usize)
    }
}

// ------------------------------------------------------------ dense memo --

/// Encoded memo cell: not yet computed.
const MEMO_EMPTY: u32 = u32::MAX;
/// Encoded memo cell: computed, no feasible fragment.
const MEMO_NONE: u32 = u32::MAX - 1;

/// Dense memoization table: `rows[slot][down]` is a lazily allocated
/// `[d - 1] -> encoded FragId` column of length `d_max`. Slots are
/// precomputed per `(node, interval)` (see [`Dp::sync_arena`]); lookups
/// and inserts are pure indexing.
struct MemoTable {
    rows: Vec<Vec<Option<Box<[u32]>>>>,
    d_max: usize,
    /// Cells moved off `MEMO_EMPTY` — the distinct-state count.
    filled: u64,
}

impl MemoTable {
    fn new(d_max: usize) -> MemoTable {
        MemoTable {
            rows: Vec::new(),
            d_max,
            filled: 0,
        }
    }

    fn get(&self, slot: u32, down: DownId, d: u32) -> u32 {
        match self.rows[slot as usize]
            .get(down as usize)
            .and_then(|c| c.as_deref())
        {
            Some(col) => col[(d - 1) as usize],
            None => MEMO_EMPTY,
        }
    }

    fn set(&mut self, slot: u32, down: DownId, d: u32, value: u32) {
        debug_assert_ne!(value, MEMO_EMPTY);
        let row = &mut self.rows[slot as usize];
        if row.len() <= down as usize {
            row.resize(down as usize + 1, None);
        }
        let col = row[down as usize]
            .get_or_insert_with(|| vec![MEMO_EMPTY; self.d_max].into_boxed_slice());
        let cell = &mut col[(d - 1) as usize];
        if *cell == MEMO_EMPTY {
            self.filled += 1;
        }
        *cell = value;
    }
}

/// Memo slots owned by one arena node: a chain with `n` elements owns `n`
/// suffix slots; a branches node with `m` children owns `m*(m+1)/2`
/// interval slots (the whole-node subproblem is the `[0, m)` slot);
/// leaves are solved inline and own none.
fn node_slot_count(node: &ANode) -> u32 {
    match node {
        ANode::Leaf(_) => 0,
        ANode::Chain(cs) => cs.len() as u32,
        ANode::Branches(cs) => {
            let m = cs.len() as u32;
            m * (m + 1) / 2
        }
    }
}

/// Local slot of the branch interval `[from, to)` within a branches node
/// of `m` children (row-major over `from`, triangular).
fn range_slot(m: u16, from: u16, to: u16) -> u32 {
    debug_assert!(from < to && to <= m);
    let (m, from, to) = (m as u32, from as u32, to as u32);
    from * (2 * m - from + 1) / 2 + (to - from - 1)
}

// ---------------------------------------------------------------- engine --

/// Per-chain, micro-batch-independent prefix aggregates over elements.
struct ChainStatic {
    /// Prefix parameter bytes.
    params: Vec<u64>,
    /// Prefix stashed activation bytes per sample.
    act: Vec<u64>,
    /// Prefix of per-element outside-chain communication bytes per sample.
    ext: Vec<u64>,
    /// `adj[j]`: bytes crossing the boundary between elements `j-1` and `j`.
    adj: Vec<u64>,
    /// Whether all intra-chain edges connect adjacent elements (fast path).
    simple: bool,
}

/// A single-stage candidate found for a segment.
#[derive(Debug, Clone, Copy)]
struct StageCand {
    b: u64,
    k: u64,
    in_flight: u64,
    mem: u64,
}

/// A segment whose per-micro-batch costs are needed: a simple-chain
/// interval served by prefix arrays, or a generic op-set interval.
#[derive(Debug, Clone, Copy)]
enum Seg {
    SimpleChain { chain: NodeIdx, s: u16, e: u16 },
    Generic { node: NodeIdx, s: u16, e: u16 },
}

impl Seg {
    /// Packed `(node, s, e)` cache key. A node is served by exactly one of
    /// the two variants, so the variant tag carries no information.
    fn key(self) -> u64 {
        let (node, s, e) = match self {
            Seg::SimpleChain { chain, s, e } => (chain, s, e),
            Seg::Generic { node, s, e } => (node, s, e),
        };
        (node as u64) << 32 | (s as u64) << 16 | e as u64
    }
}

/// Deterministic multiply-mix hasher for the planner's internal maps.
///
/// `std`'s default SipHash shows up in 64-GPU profiles on the hot
/// `seg_cache`/`tps_cache` lookups. The keys are packed `u64`s or short
/// in-memory tuples — never attacker-controlled — so a fast fixed-seed
/// mix (FxHash-style: fold each word through the Fibonacci multiplier)
/// is the right trade. None of these maps are iterated, so bucket order
/// cannot leak into any output.
#[derive(Default)]
struct FastHasher(u64);

impl std::hash::Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }
    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.write_u64(u64::from(n));
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0.rotate_left(5) ^ n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

type FastMap<K, V> = HashMap<K, V, std::hash::BuildHasherDefault<FastHasher>>;

/// Per-segment cost aggregates at one micro-batch size:
/// `(fwd+bwd time, param bytes, activation bytes/sample, boundary bytes/sample)`.
type SegmentCosts = (f64, u64, u64, u64);

/// Memoized [`Dp::generic_aggregates`] result for one `(node, s, e)`
/// segment: the per-micro-batch times (NaN until computed) plus the
/// micro-batch-independent byte aggregates. The op walk behind these is
/// the planner's most expensive leaf — each cell is pure in
/// `(node, s, e, b)`, so caching it cannot change any output.
struct SegEntry {
    times: Box<[f64]>,
    params: u64,
    act: u64,
    comm: u64,
}

/// Reusable window buffers for the column passes of the chain split loop
/// (`solve_chain` option D). Pooled because the fill pass recurses into
/// `solve_chain`, which needs its own set.
#[derive(Default)]
struct SplitScratch {
    /// Resolved suffix column: encoded `FragId` or `MEMO_NONE` per window
    /// index.
    col: Vec<u32>,
    /// Head-candidate TPS per window index (one micro-batch size at a
    /// time).
    tps: Vec<f64>,
    /// Running per-index best head candidate over `(b, k)`.
    best_if: Vec<u64>,
    best_mem: Vec<u64>,
    best_bk: Vec<(u64, u64)>,
}

struct Dp<'a> {
    graph: &'a Graph,
    cost: &'a CostModel,
    arena: Arena,
    mini_batch: u64,
    t_max: f64,
    mem_budget: u64,
    b_cands: Vec<u64>,
    k_cands: Vec<u64>,
    /// Largest micro-batch candidate: at it, per-sample compute time is
    /// minimal, making work-conservation bounds sound for every candidate.
    bound_b: u64,
    /// Index of `bound_b` in `b_cands`.
    bound_bi: usize,
    downs: Vec<Down>,
    down_ids: FastMap<Down, DownId>,
    frags: Vec<Frag>,
    memo: MemoTable,
    /// First memo slot of each arena node.
    slot_base: Vec<u32>,
    /// Per-node chain statics (`None` until computed).
    chain_static: Vec<Option<Box<ChainStatic>>>,
    /// Per-(node, b-candidate) prefix of element fwd+bwd times for one
    /// micro-batch, at `node * b_cands.len() + b_index`.
    chain_time: Vec<Option<Box<[f64]>>>,
    /// Per-branches-node prefix of per-branch times at `bound_b`.
    branch_time: Vec<Option<Box<[f64]>>>,
    /// Stamped op-membership scratch (replaces per-call bitmaps).
    member_stamp: Vec<u64>,
    cur_stamp: u64,
    /// Generic-segment aggregate memo, keyed by packed `(node, s, e)`.
    seg_cache: FastMap<u64, SegEntry>,
    /// Head-stage TPS memo: packed `(node, s, e)` → `[bi][d_head]` row
    /// (NaN until computed). A head candidate's TPS depends only on the
    /// segment, the micro-batch size and the head device count — not on
    /// the down-set or the remaining device budget — so each value is
    /// computed once per run instead of once per DP state.
    tps_cache: FastMap<u64, Box<[f64]>>,
    /// Total devices in this run (the `d_head` stride of `tps_cache` rows).
    devices: u32,
    evals: u64,
    budget: u64,
    exploded: bool,
    memo_hits: u64,
    memo_misses: u64,
    work_bound_prunes: u64,
    memory_prunes: u64,
    /// Beam width for device-split windows (`None` = exhaustive).
    beam_width: Option<u32>,
    beam_prunes: u64,
    eval_batches: u64,
    /// Pool of window buffers for the chain split loop's column passes.
    scratch_pool: Vec<SplitScratch>,
    /// Reusable per-candidate buffers for `eval_candidates` (taken with
    /// `mem::take` around use; `eval_candidates` never recurses).
    cand_costs: Vec<SegmentCosts>,
    cand_tps: Vec<f64>,
}

impl<'a> Dp<'a> {
    fn new(ctx: &'a SearchCtx<'a>, t_max: f64, b_cands: Vec<u64>, budget: u64) -> Dp<'a> {
        let bound_b = b_cands.iter().copied().max().unwrap_or(1);
        let bound_bi = b_cands.iter().position(|&b| b == bound_b).unwrap_or(0);
        let mut dp = Dp {
            graph: ctx.graph,
            cost: &ctx.cost,
            arena: Arena::build(ctx.root),
            mini_batch: ctx.mini_batch,
            t_max,
            mem_budget: ctx.cost.memory_budget(),
            b_cands,
            k_cands: ctx.options.kfkb_candidates.clone(),
            bound_b,
            bound_bi,
            downs: Vec::new(),
            down_ids: FastMap::default(),
            frags: Vec::new(),
            memo: MemoTable::new(ctx.devices as usize),
            slot_base: Vec::new(),
            chain_static: Vec::new(),
            chain_time: Vec::new(),
            branch_time: Vec::new(),
            member_stamp: vec![0; ctx.graph.len()],
            cur_stamp: 0,
            seg_cache: FastMap::default(),
            tps_cache: FastMap::default(),
            devices: ctx.devices,
            evals: 0,
            budget,
            exploded: false,
            memo_hits: 0,
            memo_misses: 0,
            work_bound_prunes: 0,
            memory_prunes: 0,
            beam_width: ctx.options.beam_width,
            beam_prunes: 0,
            eval_batches: 0,
            scratch_pool: Vec::new(),
            cand_costs: Vec::new(),
            cand_tps: Vec::new(),
        };
        dp.intern(Down::default()); // id 0 = the global sink
        dp.sync_arena();
        dp
    }

    /// Extends the per-node caches and memo slots after arena growth
    /// (absorbed chains are appended during solving).
    fn sync_arena(&mut self) {
        let b_count = self.b_cands.len().max(1);
        while self.slot_base.len() < self.arena.nodes.len() {
            let idx = self.slot_base.len();
            let base = match idx {
                0 => 0,
                _ => self.slot_base[idx - 1] + node_slot_count(&self.arena.nodes[idx - 1]),
            };
            self.slot_base.push(base);
            let slots = node_slot_count(&self.arena.nodes[idx]);
            for _ in 0..slots {
                self.memo.rows.push(Vec::new());
            }
            self.chain_static.push(None);
            for _ in 0..b_count {
                self.chain_time.push(None);
            }
            self.branch_time.push(None);
        }
    }

    fn intern(&mut self, down: Down) -> DownId {
        if let Some(&id) = self.down_ids.get(&down) {
            return id;
        }
        let id = self.downs.len() as DownId;
        self.downs.push(down.clone());
        self.down_ids.insert(down, id);
        id
    }

    fn push_frag(&mut self, frag: Frag) -> FragId {
        let id = self.frags.len() as FragId;
        self.frags.push(frag);
        id
    }

    fn frag(&self, id: FragId) -> &Frag {
        &self.frags[id as usize]
    }

    fn charge(&mut self, units: u64) -> bool {
        self.evals += units;
        if self.evals > self.budget {
            self.exploded = true;
        }
        self.exploded
    }

    // ----------------------------------------------------- memo plumbing --

    /// Global memo slot of a chain suffix `[start..n)`.
    fn chain_slot(&self, chain: NodeIdx, start: u16) -> u32 {
        self.slot_base[chain as usize] + start as u32
    }

    /// Global memo slot of a branch interval `[from..to)`.
    fn branch_slot(&self, branches: NodeIdx, from: u16, to: u16) -> u32 {
        let m = self.arena.children(branches).len() as u16;
        self.slot_base[branches as usize] + range_slot(m, from, to)
    }

    fn memo_get(&mut self, slot: u32, down: DownId, d: u32) -> Option<Option<FragId>> {
        match self.memo.get(slot, down, d) {
            MEMO_EMPTY => {
                self.memo_misses += 1;
                None
            }
            MEMO_NONE => {
                self.memo_hits += 1;
                Some(None)
            }
            id => {
                self.memo_hits += 1;
                Some(Some(id))
            }
        }
    }

    fn memo_set(&mut self, slot: u32, down: DownId, d: u32, value: Option<FragId>) {
        self.memo.set(slot, down, d, value.unwrap_or(MEMO_NONE));
    }

    // -------------------------------------------------- segment metrics --

    fn ensure_chain_static(&mut self, chain: NodeIdx) {
        if self.chain_static[chain as usize].is_some() {
            return;
        }
        let n = self.arena.children(chain).len();
        let mut elem_of: HashMap<OpId, usize> = HashMap::new();
        for i in 0..n {
            let c = self.arena.children(chain)[i];
            for &op in self.arena.node_ops(c) {
                elem_of.insert(op, i);
            }
        }
        let mut params = vec![0u64; n + 1];
        let mut act = vec![0u64; n + 1];
        let mut ext = vec![0u64; n + 1];
        let mut adj = vec![0u64; n + 1];
        let mut simple = true;
        for i in 0..n {
            let c = self.arena.children(chain)[i];
            let mut p = 0u64;
            let mut a = 0u64;
            let mut x = 0u64;
            for &op in self.arena.node_ops(c) {
                p += self.graph.node(op).kind.param_count() * gp_ir::BYTES_PER_ELEMENT;
                a += self.graph.stashed_bytes(op);
                let bytes = self.graph.node(op).output_bytes();
                for &succ in self.graph.succs(op) {
                    match elem_of.get(&succ) {
                        Some(&j) if j == i => {}
                        Some(&j) if j == i + 1 => adj[i + 1] += bytes,
                        Some(_) => simple = false,
                        None => x += bytes,
                    }
                }
                for &pred in self.graph.preds(op) {
                    if !elem_of.contains_key(&pred) {
                        x += self.graph.node(pred).output_bytes();
                    }
                }
            }
            params[i + 1] = params[i] + p;
            act[i + 1] = act[i] + a;
            ext[i + 1] = ext[i] + x;
        }
        self.chain_static[chain as usize] = Some(Box::new(ChainStatic {
            params,
            act,
            ext,
            adj,
            simple,
        }));
    }

    fn b_index(&self, b: u64) -> usize {
        self.b_cands
            .iter()
            .position(|&x| x == b)
            .expect("micro-batch size comes from the candidate list")
    }

    /// Fills the prefix of element fwd+bwd times for `chain` at `b`.
    fn ensure_chain_time(&mut self, chain: NodeIdx, bi: usize) {
        let idx = chain as usize * self.b_cands.len().max(1) + bi;
        if self.chain_time[idx].is_some() {
            return;
        }
        let b = self.b_cands[bi];
        let n = self.arena.children(chain).len();
        let mut prefix = Vec::with_capacity(n + 1);
        prefix.push(0.0);
        for i in 0..n {
            let c = self.arena.children(chain)[i];
            let mut t = 0.0;
            for &op in self.arena.node_ops(c) {
                t += self.cost.op_time(self.graph, op, b, Pass::Forward)
                    + self.cost.op_time(self.graph, op, b, Pass::Backward);
            }
            prefix.push(prefix[i] + t);
        }
        self.chain_time[idx] = Some(prefix.into_boxed_slice());
    }

    /// Prefix time value for `chain` at micro-batch candidate `bi`
    /// (`ensure_chain_time` must have run).
    fn chain_time_at(&self, chain: NodeIdx, bi: usize, i: usize) -> f64 {
        self.chain_time[chain as usize * self.b_cands.len().max(1) + bi]
            .as_ref()
            .expect("chain_time filled")[i]
    }

    /// Fills the prefix of per-branch total times (at `bound_b`).
    fn ensure_branch_time(&mut self, branches: NodeIdx) {
        if self.branch_time[branches as usize].is_some() {
            return;
        }
        let n = self.arena.children(branches).len();
        let mut prefix = Vec::with_capacity(n + 1);
        prefix.push(0.0);
        for i in 0..n {
            let c = self.arena.children(branches)[i];
            let mut t = 0.0;
            for &op in self.arena.node_ops(c) {
                t += self
                    .cost
                    .op_time(self.graph, op, self.bound_b, Pass::Forward)
                    + self
                        .cost
                        .op_time(self.graph, op, self.bound_b, Pass::Backward);
            }
            prefix.push(prefix[i] + t);
        }
        self.branch_time[branches as usize] = Some(prefix.into_boxed_slice());
    }

    fn branch_time_at(&self, branches: NodeIdx, i: usize) -> f64 {
        self.branch_time[branches as usize]
            .as_ref()
            .expect("branch_time filled")[i]
    }

    /// Cost aggregates of a segment at micro-batch size `b`.
    fn segment_costs(&mut self, seg: Seg, b: u64) -> SegmentCosts {
        match seg {
            Seg::SimpleChain { chain, s, e } => {
                let bi = self.b_index(b);
                self.ensure_chain_time(chain, bi);
                let stat = self.chain_static[chain as usize]
                    .as_ref()
                    .expect("chain_static filled");
                let (s, e) = (s as usize, e as usize);
                let comm =
                    stat.adj[s] + stat.adj[e.min(stat.adj.len() - 1)] + (stat.ext[e] - stat.ext[s]);
                (
                    self.chain_time_at(chain, bi, e) - self.chain_time_at(chain, bi, s),
                    stat.params[e] - stat.params[s],
                    stat.act[e] - stat.act[s],
                    comm,
                )
            }
            Seg::Generic { node, s, e } => self.generic_aggregates(node, s, e, b),
        }
    }

    /// Generic per-op-set aggregates, for non-chain intervals (merged
    /// branch groups, whole composite nodes, non-simple chains). Uses the
    /// stamped membership scratch: no per-call allocation.
    fn generic_aggregates(&mut self, node: NodeIdx, s: u16, e: u16, b: u64) -> SegmentCosts {
        // Memo first: the same segment is re-aggregated for every
        // `(devices, down-set)` DP state that considers it, and the op walk
        // below dominates the planner's wall clock when it isn't cached.
        let key = (node as u64) << 32 | (s as u64) << 16 | e as u64;
        let bi = self.b_index(b);
        if let Some(entry) = self.seg_cache.get(&key) {
            let time = entry.times[bi];
            if !time.is_nan() {
                return (time, entry.params, entry.act, entry.comm);
            }
        }
        self.cur_stamp += 1;
        let stamp = self.cur_stamp;
        let whole = (s, e) == WHOLE;
        let (cs, ce) = if whole {
            (0, self.arena.children(node).len())
        } else {
            (s as usize, e as usize)
        };
        // Pass 1: mark members.
        if whole {
            for &op in self.arena.node_ops(node) {
                self.member_stamp[op.index()] = stamp;
            }
        } else {
            for i in cs..ce {
                let c = self.arena.children(node)[i];
                for &op in self.arena.node_ops(c) {
                    self.member_stamp[op.index()] = stamp;
                }
            }
        }
        // Pass 2: aggregate.
        let mut time = 0.0;
        let (mut params, mut act, mut comm) = (0u64, 0u64, 0u64);
        let visit = |dp: &Self, op: OpId| -> (f64, u64, u64, u64) {
            let t = dp.cost.op_time(dp.graph, op, b, Pass::Forward)
                + dp.cost.op_time(dp.graph, op, b, Pass::Backward);
            let p = dp.graph.node(op).kind.param_count() * gp_ir::BYTES_PER_ELEMENT;
            let a = dp.graph.stashed_bytes(op);
            let bytes = dp.graph.node(op).output_bytes();
            let mut x = 0u64;
            for &succ in dp.graph.succs(op) {
                if dp.member_stamp[succ.index()] != stamp {
                    x += bytes;
                }
            }
            for &pred in dp.graph.preds(op) {
                if dp.member_stamp[pred.index()] != stamp {
                    x += dp.graph.node(pred).output_bytes();
                }
            }
            (t, p, a, x)
        };
        if whole {
            for i in 0..self.arena.node_ops(node).len() {
                let op = self.arena.node_ops(node)[i];
                let (t, p, a, x) = visit(self, op);
                time += t;
                params += p;
                act += a;
                comm += x;
            }
        } else {
            for i in cs..ce {
                let c = self.arena.children(node)[i];
                for j in 0..self.arena.node_ops(c).len() {
                    let op = self.arena.node_ops(c)[j];
                    let (t, p, a, x) = visit(self, op);
                    time += t;
                    params += p;
                    act += a;
                    comm += x;
                }
            }
        }
        let n_b = self.b_cands.len().max(1);
        let entry = self.seg_cache.entry(key).or_insert_with(|| SegEntry {
            times: vec![f64::NAN; n_b].into_boxed_slice(),
            params,
            act,
            comm,
        });
        entry.times[bi] = time;
        (time, params, act, comm)
    }

    /// The base case of Algorithm 1: one segment as a single stage with
    /// `d`-way data parallelism; best `(b, k)` candidate by (in-flight,
    /// memory).
    ///
    /// Runs as one batched pass: per-candidate segment costs are gathered
    /// first, the TPS sweep runs 4 lanes at a time over the candidate
    /// slice, and the eval budget is charged for the whole batch up front
    /// — falling back to per-candidate charging only when the batch could
    /// trip the budget, so explosion accounting stays deterministic.
    fn eval_candidates(&mut self, seg: Seg, d: u32, down_id: DownId) -> Option<StageCand> {
        self.eval_batches += 1;
        let n = self.b_cands.len();
        let mut costs = std::mem::take(&mut self.cand_costs);
        costs.clear();
        for bi in 0..n {
            let b = self.b_cands[bi];
            let c = self.segment_costs(seg, b);
            costs.push(c);
        }
        let batched = !self.exploded && self.evals + n as u64 <= self.budget;
        if batched {
            self.evals += n as u64;
        }
        let mut tps = std::mem::take(&mut self.cand_tps);
        tps.clear();
        tps.resize(n, f64::INFINITY);
        let link = self.cost.default_boundary_link();
        {
            // TPS: compute + boundary communication + amortized allreduce,
            // through the `(segment, b, d)` memo shared with the chain
            // split loop — the value is down-set-independent, so repeat
            // states are pure row reads. Micro-batches round-robin over
            // replicas; the slowest replica gets ceil(m/d) of m
            // micro-batches. The miss arm's term order is part of the
            // bit-compat contract — do not re-associate.
            let cost = self.cost;
            let mini_batch = self.mini_batch;
            let row_stride = self.devices as usize + 1;
            let b_cands = &self.b_cands;
            let row = self
                .tps_cache
                .entry(seg.key())
                .or_insert_with(|| vec![f64::NAN; n * row_stride].into_boxed_slice());
            for (i, lane) in tps.iter_mut().enumerate().take(n) {
                let cell = &mut row[i * row_stride + d as usize];
                if cell.is_nan() {
                    let b = b_cands[i];
                    let (time, params, _act, comm) = costs[i];
                    let m = (mini_batch / b).max(1);
                    let d_eff = m as f64 / m.div_ceil(d as u64) as f64;
                    *cell = time / (b as f64 * d_eff)
                        + comm as f64 / link.bandwidth
                        + 2.0 * link.latency / b as f64
                        + cost.allreduce_time(params, &DeviceRange::new(0, d)) / mini_batch as f64;
                }
                *lane = *cell;
            }
        }
        let mut best: Option<StageCand> = None;
        for bi in 0..n {
            if !batched && self.charge(1) {
                self.cand_costs = costs;
                self.cand_tps = tps;
                return None;
            }
            if tps[bi] > self.t_max {
                continue;
            }
            let b = self.b_cands[bi];
            let (_time, params, act, _comm) = costs[bi];
            for ki in 0..self.k_cands.len() {
                let k = self.k_cands[ki];
                let in_flight = self.downs[down_id as usize].entry_in_flight(k, b);
                let per_replica = CostModel::in_flight_per_replica(in_flight, b, d as usize);
                let mem =
                    params / gp_ir::BYTES_PER_ELEMENT * BYTES_PER_PARAM_STATE + act * per_replica;
                if mem > self.mem_budget {
                    self.memory_prunes += 1;
                    continue;
                }
                let cand = StageCand {
                    b,
                    k,
                    in_flight,
                    mem,
                };
                let better = match &best {
                    None => true,
                    Some(cur) => (cand.in_flight, cand.mem) < (cur.in_flight, cur.mem),
                };
                if better {
                    best = Some(cand);
                }
            }
        }
        self.cand_costs = costs;
        self.cand_tps = tps;
        best
    }

    fn chain_interval_candidate(
        &mut self,
        chain: NodeIdx,
        s: u16,
        e: u16,
        d: u32,
        down_id: DownId,
    ) -> Option<StageCand> {
        self.ensure_chain_static(chain);
        let simple = self.chain_static[chain as usize]
            .as_ref()
            .expect("chain_static filled")
            .simple;
        let seg = if simple {
            Seg::SimpleChain { chain, s, e }
        } else {
            Seg::Generic { node: chain, s, e }
        };
        self.eval_candidates(seg, d, down_id)
    }

    /// Builds a one-stage fragment from a candidate.
    fn single_frag(&mut self, node: NodeIdx, s: u16, e: u16, d: u32, cand: StageCand) -> FragId {
        let entry = (cand.k, cand.b, cand.in_flight);
        let entries_id = self.intern(Down::single(entry));
        self.push_frag(Frag {
            repr: FragRepr::Single(ProtoStage {
                node,
                s,
                e,
                d,
                b: cand.b,
                k: cand.k,
            }),
            len: 1,
            entries_id,
            max_entry: cand.in_flight,
            exit: entry,
            peak_mem: cand.mem,
        })
    }

    fn concat(&mut self, head: FragId, tail: FragId) -> FragId {
        let (h, t) = (*self.frag(head), *self.frag(tail));
        self.push_frag(Frag {
            repr: FragRepr::Cat(head, tail),
            len: h.len + t.len,
            entries_id: h.entries_id,
            max_entry: h.max_entry,
            exit: t.exit,
            peak_mem: h.peak_mem.max(t.peak_mem),
        })
    }

    fn merge_parallel(&mut self, a: FragId, b: FragId) -> FragId {
        let (fa, fb) = (*self.frag(a), *self.frag(b));
        let union = self.downs[fa.entries_id as usize].union(&self.downs[fb.entries_id as usize]);
        let max_entry = union.max_entry();
        let entries_id = self.intern(union);
        self.push_frag(Frag {
            repr: FragRepr::Cat(a, b),
            len: fa.len + fb.len,
            entries_id,
            max_entry,
            exit: fb.exit,
            peak_mem: fa.peak_mem.max(fb.peak_mem),
        })
    }

    /// Work-conservation lower bound on the bottleneck TPS of a fragment
    /// with total micro-batch time `time` (at `bound_b`) on `d` devices.
    fn work_bound_ok(&self, time: f64, d: u32) -> bool {
        time / (self.bound_b as f64 * d as f64) <= self.t_max
    }

    /// Minimal devices for which the work bound passes.
    fn min_devices(&self, time: f64) -> u32 {
        let d = (time / (self.bound_b as f64 * self.t_max)).ceil();
        if d.is_finite() {
            (d as u32).max(1)
        } else {
            u32::MAX
        }
    }

    /// Truncates an inclusive device window `[lo, hi]` to the configured
    /// beam: the `beam_width` values nearest `pivot` (the
    /// work-proportional split), kept as one contiguous subrange. The
    /// total order is deterministic — distance from the pivot, ties
    /// toward fewer devices — and enumeration order inside the surviving
    /// window is unchanged, so tie-breaking among survivors matches the
    /// exhaustive search exactly. `None` (the default) admits everything.
    fn beam_window(&mut self, lo: u32, hi: u32, pivot: u32) -> (u32, u32) {
        let Some(w) = self.beam_width else {
            return (lo, hi);
        };
        let width = hi - lo + 1;
        if width <= w {
            return (lo, hi);
        }
        self.beam_prunes += (width - w) as u64;
        let start = pivot.saturating_sub(w / 2).clamp(lo, hi - w + 1);
        (start, start + w - 1)
    }

    fn take_scratch(&mut self) -> SplitScratch {
        self.scratch_pool.pop().unwrap_or_default()
    }

    fn put_scratch(&mut self, mut scratch: SplitScratch) {
        scratch.col.clear();
        self.scratch_pool.push(scratch);
    }

    fn consider(&self, cand: FragId, best: &mut Option<FragId>, best_score: &mut Score) {
        let s = self.frag(cand).score();
        if s < *best_score {
            *best_score = s;
            *best = Some(cand);
        }
    }

    // ----------------------------------------------------------- solving --

    fn solve(&mut self, node: NodeIdx, d: u32, down_id: DownId) -> Option<FragId> {
        if self.exploded {
            return None;
        }
        match self.arena.node(node) {
            ANode::Leaf(_) => {
                let cand = self.eval_candidates(
                    Seg::Generic {
                        node,
                        s: WHOLE.0,
                        e: WHOLE.1,
                    },
                    d,
                    down_id,
                )?;
                Some(self.single_frag(node, WHOLE.0, WHOLE.1, d, cand))
            }
            ANode::Chain(_) => self.solve_chain(node, 0, d, down_id),
            ANode::Branches(_) => {
                let m = self.arena.children(node).len() as u16;
                let slot = self.branch_slot(node, 0, m);
                if let Some(cached) = self.memo_get(slot, down_id, d) {
                    return cached;
                }
                let best = self.solve_branch_range(node, 0, m, d, down_id);
                self.memo_set(slot, down_id, d, best);
                best
            }
        }
    }

    /// Series decomposition over a chain suffix `[start..n)`.
    fn solve_chain(
        &mut self,
        chain: NodeIdx,
        start: u16,
        d: u32,
        down_id: DownId,
    ) -> Option<FragId> {
        if self.exploded {
            return None;
        }
        let slot = self.chain_slot(chain, start);
        if let Some(cached) = self.memo_get(slot, down_id, d) {
            return cached;
        }
        let n = self.arena.children(chain).len() as u16;
        debug_assert!(start < n);
        self.ensure_chain_time(chain, self.bound_bi);
        let bi = self.bound_bi;
        // Work bound: the whole suffix must fit d devices at the target.
        let suffix_time = self.chain_time_at(chain, bi, n as usize)
            - self.chain_time_at(chain, bi, start as usize);
        if !self.work_bound_ok(suffix_time, d) {
            self.work_bound_prunes += 1;
            self.memo_set(slot, down_id, d, None);
            return None;
        }
        let mut best: Option<FragId> = None;
        let mut best_score: Score = (u64::MAX, u64::MAX, usize::MAX);
        // Option A: the whole suffix as one stage.
        if let Some(cand) = self.chain_interval_candidate(chain, start, n, d, down_id) {
            let frag = self.single_frag(chain, start, n, d, cand);
            self.consider(frag, &mut best, &mut best_score);
        }
        // Option B: the suffix is a single composite element — delegate.
        if n - start == 1 {
            let child = self.arena.children(chain)[start as usize];
            if !self.arena.is_leaf(child) {
                if let Some(f) = self.solve(child, d, down_id) {
                    self.consider(f, &mut best, &mut best_score);
                }
            }
            self.memo_set(slot, down_id, d, best);
            return best;
        }
        // Option C: the whole suffix is [Branches, joins...] — absorb.
        if self.absorbable(chain, start, n) {
            if let Some(f) = self.solve_absorbed(chain, start, n, d, down_id) {
                self.consider(f, &mut best, &mut best_score);
            }
        }
        // Option D: split at `mid`; solve the downstream part first. The
        // work bound confines the device split to a (usually tiny) window,
        // and the beam (when bounded) narrows it further around the
        // work-proportional pivot. The window runs as column passes over
        // the dense `[down][d]` memo layout: resolve the suffix column
        // slice-at-a-time, evaluate every head candidate against the
        // resolved suffixes in a branch-light sweep, then combine in
        // window order so tie-breaking matches the per-split loop it
        // replaces (DESIGN.md §"Planner search").
        self.ensure_chain_static(chain);
        let simple = self.chain_static[chain as usize]
            .as_ref()
            .expect("chain_static filled")
            .simple;
        for mid in start + 1..n {
            let head_time = self.chain_time_at(chain, bi, mid as usize)
                - self.chain_time_at(chain, bi, start as usize);
            let suf_time = self.chain_time_at(chain, bi, n as usize)
                - self.chain_time_at(chain, bi, mid as usize);
            let d_head_min = self.min_devices(head_time);
            let d_suf_min = self.min_devices(suf_time);
            if d_head_min == u32::MAX || d_suf_min == u32::MAX || d_head_min + d_suf_min > d {
                self.work_bound_prunes += 1;
                continue;
            }
            let split_total = head_time + suf_time;
            let pivot = if split_total > 0.0 {
                (d as f64 * (suf_time / split_total)).round() as u32
            } else {
                d_suf_min
            };
            let (w_lo, w_hi) = self.beam_window(d_suf_min, d - d_head_min, pivot);
            let width = (w_hi - w_lo + 1) as usize;
            let suf_slot = self.chain_slot(chain, mid);
            let mut scr = self.take_scratch();
            // Pass 1 — resolve the suffix column. Memoized cells come
            // straight off the dense column slice (each counted as the
            // hit its lookup is); empty cells recurse, and the
            // recursion's own memo lookup records the miss. No deeper
            // call can touch this column's cells (chain recursion only
            // moves to strictly later suffixes), so the slice snapshot
            // stays valid across the loop.
            match self.memo.rows[suf_slot as usize]
                .get(down_id as usize)
                .and_then(|c| c.as_deref())
            {
                Some(col) => scr
                    .col
                    .extend_from_slice(&col[(w_lo - 1) as usize..w_hi as usize]),
                None => scr.col.resize(width, MEMO_EMPTY),
            }
            // Charge the fill pass up front when it cannot trip the budget
            // (mirrors pass 2's batched accounting); the per-index fallback
            // keeps the explosion trajectory deterministic near the edge.
            let fill_batched = !self.exploded && self.evals + width as u64 <= self.budget;
            if fill_batched {
                self.evals += width as u64;
            }
            for i in 0..width {
                if !fill_batched && self.charge(1) {
                    return None;
                }
                if scr.col[i] == MEMO_EMPTY {
                    let r = self.solve_chain(chain, mid, w_lo + i as u32, down_id);
                    scr.col[i] = r.unwrap_or(MEMO_NONE);
                } else {
                    self.memo_hits += 1;
                }
            }
            let n_live = scr.col.iter().filter(|&&c| c != MEMO_NONE).count();
            if n_live == 0 {
                self.put_scratch(scr);
                continue;
            }
            // Pass 2 — head candidates (D1). Segment costs depend only on
            // (interval, b), so they are hoisted out of the device loop;
            // the budget is charged for the whole batch up front unless
            // the batch could trip it, in which case the per-candidate
            // fallback keeps explosion accounting deterministic.
            let seg = if simple {
                Seg::SimpleChain {
                    chain,
                    s: start,
                    e: mid,
                }
            } else {
                Seg::Generic {
                    node: chain,
                    s: start,
                    e: mid,
                }
            };
            self.eval_batches += 1;
            let n_b = self.b_cands.len();
            let batch_units = n_live as u64 * n_b as u64;
            let batched = !self.exploded && self.evals + batch_units <= self.budget;
            if batched {
                self.evals += batch_units;
            }
            scr.best_if.clear();
            scr.best_if.resize(width, u64::MAX);
            scr.best_mem.clear();
            scr.best_mem.resize(width, u64::MAX);
            scr.best_bk.clear();
            scr.best_bk.resize(width, (0, 0));
            let link = self.cost.default_boundary_link();
            let row_stride = self.devices as usize + 1;
            let seg_key = seg.key();
            for bi_c in 0..n_b {
                let b = self.b_cands[bi_c];
                let (seg_time, params, act, comm) = self.segment_costs(seg, b);
                let m = (self.mini_batch / b).max(1);
                let comm_term = comm as f64 / link.bandwidth;
                let lat_term = 2.0 * link.latency / b as f64;
                let params_state = params / gp_ir::BYTES_PER_ELEMENT * BYTES_PER_PARAM_STATE;
                scr.tps.clear();
                scr.tps.resize(width, f64::INFINITY);
                {
                    // Head TPS through the `(segment, b, d_head)` memo: the
                    // value does not depend on the down-set or the suffix
                    // device count, so across DP states this sweep is
                    // almost always pure row reads. The miss arm keeps the
                    // scalar evaluator's exact term order (float addition
                    // order is part of the bit-compat contract — do not
                    // re-associate).
                    let cost = self.cost;
                    let mini_batch = self.mini_batch;
                    let row = self
                        .tps_cache
                        .entry(seg_key)
                        .or_insert_with(|| vec![f64::NAN; n_b * row_stride].into_boxed_slice());
                    let base = bi_c * row_stride;
                    for i in 0..width {
                        if scr.col[i] == MEMO_NONE {
                            continue;
                        }
                        let d_head = d - (w_lo + i as u32);
                        let cell = &mut row[base + d_head as usize];
                        if cell.is_nan() {
                            let d_eff = m as f64 / m.div_ceil(d_head as u64) as f64;
                            *cell = seg_time / (b as f64 * d_eff)
                                + comm_term
                                + lat_term
                                + cost.allreduce_time(params, &DeviceRange::new(0, d_head))
                                    / mini_batch as f64;
                        }
                        scr.tps[i] = *cell;
                    }
                }
                for i in 0..width {
                    let enc = scr.col[i];
                    if enc == MEMO_NONE {
                        continue;
                    }
                    if !batched && self.charge(1) {
                        return None;
                    }
                    if scr.tps[i] > self.t_max {
                        continue;
                    }
                    let d_head = d - (w_lo + i as u32);
                    let entries_id = self.frag(enc).entries_id;
                    for ki in 0..self.k_cands.len() {
                        let k = self.k_cands[ki];
                        let in_flight = self.downs[entries_id as usize].entry_in_flight(k, b);
                        let per_replica =
                            CostModel::in_flight_per_replica(in_flight, b, d_head as usize);
                        let mem = params_state + act * per_replica;
                        if mem > self.mem_budget {
                            self.memory_prunes += 1;
                            continue;
                        }
                        if scr.best_bk[i].0 == 0
                            || (in_flight, mem) < (scr.best_if[i], scr.best_mem[i])
                        {
                            scr.best_if[i] = in_flight;
                            scr.best_mem[i] = mem;
                            scr.best_bk[i] = (b, k);
                        }
                    }
                }
            }
            // Pass 3 — combine, in window order (ascending d_suf), so the
            // evolving best-score tie-breaking matches the exhaustive
            // per-split loop.
            let d2_child = if mid == start + 1 {
                let child = self.arena.children(chain)[start as usize];
                self.arena.is_branches(child).then_some(child)
            } else {
                None
            };
            let d3 = mid > start + 1 && self.absorbable(chain, start, mid);
            for i in 0..width {
                let suffix = scr.col[i];
                if suffix == MEMO_NONE {
                    continue;
                }
                let d_head = d - (w_lo + i as u32);
                let (suf_entries, suf_peak, suf_len) = {
                    let f = self.frag(suffix);
                    (f.entries_id, f.peak_mem, f.len as usize)
                };
                // D1: head segment as a single stage (score-first).
                if scr.best_bk[i].0 != 0 {
                    let cand = StageCand {
                        b: scr.best_bk[i].0,
                        k: scr.best_bk[i].1,
                        in_flight: scr.best_if[i],
                        mem: scr.best_mem[i],
                    };
                    let score = (cand.in_flight, cand.mem.max(suf_peak), 1 + suf_len);
                    if score < best_score {
                        let head = self.single_frag(chain, start, mid, d_head, cand);
                        let combined = self.concat(head, suffix);
                        self.consider(combined, &mut best, &mut best_score);
                    }
                }
                // D2: head is one Branches element — parallel decomposition.
                if let Some(child) = d2_child {
                    if let Some(head) = self.solve(child, d_head, suf_entries) {
                        let hf = *self.frag(head);
                        let score = (
                            hf.max_entry,
                            hf.peak_mem.max(suf_peak),
                            hf.len as usize + suf_len,
                        );
                        if score < best_score {
                            let combined = self.concat(head, suffix);
                            self.consider(combined, &mut best, &mut best_score);
                        }
                    }
                }
                // D3: head is [Branches, joins...] — absorbed decomposition.
                if d3 {
                    if let Some(head) = self.solve_absorbed(chain, start, mid, d_head, suf_entries)
                    {
                        let hf = *self.frag(head);
                        let score = (
                            hf.max_entry,
                            hf.peak_mem.max(suf_peak),
                            hf.len as usize + suf_len,
                        );
                        if score < best_score {
                            let combined = self.concat(head, suffix);
                            self.consider(combined, &mut best, &mut best_score);
                        }
                    }
                }
            }
            self.put_scratch(scr);
        }
        self.memo_set(slot, down_id, d, best);
        best
    }

    /// Whether chain elements `[s..e)` are a `Branches` element followed by
    /// one or more leaf (join) operators.
    fn absorbable(&self, chain: NodeIdx, s: u16, e: u16) -> bool {
        if e <= s + 1 {
            return false;
        }
        let children = self.arena.children(chain);
        self.arena.is_branches(children[s as usize])
            && children[s as usize + 1..e as usize]
                .iter()
                .all(|&c| self.arena.is_leaf(c))
    }

    /// Parallel decomposition with the trailing join operators folded into
    /// the last branch (§7.5 case study). The join stage's schedule
    /// configuration becomes the boundary for the remaining branches.
    fn solve_absorbed(
        &mut self,
        chain: NodeIdx,
        s: u16,
        e: u16,
        d: u32,
        down_id: DownId,
    ) -> Option<FragId> {
        if d < 2 {
            return None;
        }
        let branches = self.arena.children(chain)[s as usize];
        let m = self.arena.children(branches).len() as u16;
        let absorbed = self
            .arena
            .absorbed_chain(branches, chain, s as usize + 1, e as usize);
        self.sync_arena();
        self.ensure_chain_time(absorbed, self.bound_bi);
        let last_len = self.arena.children(absorbed).len();
        let last_time = self.chain_time_at(absorbed, self.bound_bi, last_len);
        self.ensure_branch_time(branches);
        let others_time = self.branch_time_at(branches, (m - 1) as usize);
        let d_last_min = self.min_devices(last_time);
        let d_others_min = self.min_devices(others_time);
        if d_last_min == u32::MAX || d_others_min == u32::MAX || d_last_min + d_others_min > d {
            self.work_bound_prunes += 1;
            return None;
        }
        let mut best: Option<FragId> = None;
        let mut best_score: Score = (u64::MAX, u64::MAX, usize::MAX);
        let absorb_total = last_time + others_time;
        let pivot = if absorb_total > 0.0 {
            (d as f64 * (last_time / absorb_total)).round() as u32
        } else {
            d_last_min
        };
        let (w_lo, w_hi) = self.beam_window(d_last_min, d - d_others_min, pivot);
        for d_last in w_lo..=w_hi {
            if self.charge(1) {
                return None;
            }
            let Some(last) = self.solve(absorbed, d_last, down_id) else {
                continue;
            };
            let lf = *self.frag(last);
            let others_down = self.intern(Down::single(lf.exit));
            let Some(others) = self.solve_branch_range(branches, 0, m - 1, d - d_last, others_down)
            else {
                continue;
            };
            let of = *self.frag(others);
            let score = (
                of.max_entry.max(lf.max_entry),
                of.peak_mem.max(lf.peak_mem),
                (of.len + lf.len) as usize,
            );
            if score < best_score {
                let merged = self.merge_parallel(others, last);
                best_score = self.frag(merged).score();
                best = Some(merged);
            }
        }
        best
    }

    /// Parallel decomposition over branches `[from..to)`: single stage for
    /// the whole (contiguous) group, or a binary split with a device-window
    /// bound on each side.
    fn solve_branch_range(
        &mut self,
        branches: NodeIdx,
        from: u16,
        to: u16,
        d: u32,
        down_id: DownId,
    ) -> Option<FragId> {
        if self.exploded || to == from {
            return None;
        }
        if to - from == 1 {
            let child = self.arena.children(branches)[from as usize];
            return self.solve(child, d, down_id);
        }
        let slot = self.branch_slot(branches, from, to);
        if let Some(cached) = self.memo_get(slot, down_id, d) {
            return cached;
        }
        let mut best: Option<FragId> = None;
        let mut best_score: Score = (u64::MAX, u64::MAX, usize::MAX);
        // The whole group as one (data-parallel) stage.
        if let Some(cand) = self.eval_candidates(
            Seg::Generic {
                node: branches,
                s: from,
                e: to,
            },
            d,
            down_id,
        ) {
            let frag = self.single_frag(branches, from, to, d, cand);
            best_score = self.frag(frag).score();
            best = Some(frag);
        }
        // Binary splits with work-bound device windows.
        self.ensure_branch_time(branches);
        for split in from + 1..to {
            let left_time = self.branch_time_at(branches, split as usize)
                - self.branch_time_at(branches, from as usize);
            let right_time = self.branch_time_at(branches, to as usize)
                - self.branch_time_at(branches, split as usize);
            let d_left_min = self.min_devices(left_time);
            let d_right_min = self.min_devices(right_time);
            if d_left_min == u32::MAX || d_right_min == u32::MAX || d_left_min + d_right_min > d {
                self.work_bound_prunes += 1;
                continue;
            }
            let split_total = left_time + right_time;
            let pivot = if split_total > 0.0 {
                (d as f64 * (left_time / split_total)).round() as u32
            } else {
                d_left_min
            };
            let (w_lo, w_hi) = self.beam_window(d_left_min, d - d_right_min, pivot);
            for d1 in w_lo..=w_hi {
                if self.charge(1) {
                    return None;
                }
                let Some(a) = self.solve_branch_range(branches, from, split, d1, down_id) else {
                    continue;
                };
                let Some(b) = self.solve_branch_range(branches, split, to, d - d1, down_id) else {
                    continue;
                };
                let (fa, fb) = (*self.frag(a), *self.frag(b));
                let score = (
                    fa.max_entry.max(fb.max_entry),
                    fa.peak_mem.max(fb.peak_mem),
                    (fa.len + fb.len) as usize,
                );
                if score < best_score {
                    let merged = self.merge_parallel(a, b);
                    best_score = self.frag(merged).score();
                    best = Some(merged);
                }
            }
        }
        self.memo_set(slot, down_id, d, best);
        best
    }

    // -------------------------------------------------------- extraction --

    /// Resolves a proto-stage's op interval into concrete operator ids.
    fn resolve_ops(&self, node: NodeIdx, s: u16, e: u16) -> Vec<OpId> {
        if (s, e) == WHOLE {
            return self.arena.node_ops(node).to_vec();
        }
        self.arena.children(node)[s as usize..e as usize]
            .iter()
            .flat_map(|&c| self.arena.node_ops(c).iter().copied())
            .collect()
    }

    fn collect_stages(&self, id: FragId, out: &mut Vec<SolvedStage>) {
        match self.frag(id).repr {
            FragRepr::Single(ps) => out.push(SolvedStage {
                ops: self.resolve_ops(ps.node, ps.s, ps.e),
                d: ps.d,
                b: ps.b,
                k: ps.k,
            }),
            FragRepr::Cat(a, b) => {
                self.collect_stages(a, out);
                self.collect_stages(b, out);
            }
        }
    }

    /// Flattens the winning fragment into an owned, `Send` solution.
    fn extract(&self, id: FragId) -> Solution {
        let f = self.frag(id);
        let mut stages = Vec::with_capacity(f.len as usize);
        self.collect_stages(id, &mut stages);
        Solution {
            stages,
            peak_mem: f.peak_mem,
            max_entry: f.max_entry,
        }
    }
}

// ----------------------------------------------------- search primitives --

/// A solved stage of a finished DP run, with ops resolved.
#[derive(Debug, Clone)]
pub(crate) struct SolvedStage {
    pub(crate) ops: Vec<OpId>,
    pub(crate) d: u32,
    pub(crate) b: u64,
    pub(crate) k: u64,
}

/// The owned, thread-transferable result of one successful DP run.
#[derive(Debug, Clone)]
pub(crate) struct Solution {
    pub(crate) stages: Vec<SolvedStage>,
    pub(crate) peak_mem: u64,
    pub(crate) max_entry: u64,
}

impl Solution {
    /// PickBetter key of Algorithm 1: less memory wins across
    /// configurations; ties broken by in-flight pressure.
    fn pick_key(&self) -> (u64, Score) {
        (
            self.peak_mem,
            (self.max_entry, self.peak_mem, self.stages.len()),
        )
    }
}

/// The outcome of one DP run (one micro-batch configuration at one probe
/// target), including its budget so the replay can decide whether the run
/// is valid for the sequential budget trajectory.
#[derive(Debug, Clone)]
pub(crate) struct RunResult {
    pub(crate) solution: Option<Solution>,
    pub(crate) evals: u64,
    pub(crate) distinct_states: u64,
    pub(crate) memo_hits: u64,
    pub(crate) memo_misses: u64,
    pub(crate) work_bound_prunes: u64,
    pub(crate) memory_prunes: u64,
    pub(crate) beam_prunes: u64,
    pub(crate) eval_batches: u64,
    pub(crate) exploded: bool,
    pub(crate) budget: u64,
}

/// Everything a DP run needs, shared (immutably) across worker threads.
pub(crate) struct SearchCtx<'a> {
    pub(crate) graph: &'a Graph,
    pub(crate) cost: CostModel,
    pub(crate) root: &'a SpBlock,
    pub(crate) devices: u32,
    pub(crate) mini_batch: u64,
    pub(crate) b_all: Vec<u64>,
    pub(crate) options: &'a PlanOptions,
    /// Work-conservation lower bound on the achievable TPS.
    t_base: f64,
    /// Loosest target worth probing (`cost.max_tps` of the whole model).
    t_hi0: f64,
}

impl<'a> SearchCtx<'a> {
    pub(crate) fn new(
        model: &'a SpModel,
        cluster: &Cluster,
        mini_batch: u64,
        options: &'a PlanOptions,
    ) -> Result<SearchCtx<'a>, PlanError> {
        let graph = model.graph();
        let cost = CostModel::new(cluster);
        let devices = cluster.device_count() as u32;
        let b_all = options.micro_batch_sizes(mini_batch);
        if b_all.is_empty() {
            return Err(PlanError::Infeasible(
                "no micro-batch size candidates divide the mini-batch".to_string(),
            ));
        }
        let t_hi0 = cost.max_tps(graph);
        // The optimum can never beat the work-conservation bound
        // min_b total(b) / (b * |V_D|).
        let t_base = b_all
            .iter()
            .map(|&b| Self::total_time(graph, &cost, b) / (b as f64 * devices as f64))
            .fold(f64::INFINITY, f64::min)
            .max(1e-12);
        Ok(SearchCtx {
            graph,
            cost,
            root: model.root(),
            devices,
            mini_batch,
            b_all,
            options,
            t_base,
            t_hi0,
        })
    }

    fn total_time(graph: &Graph, cost: &CostModel, b: u64) -> f64 {
        graph
            .nodes()
            .map(|n| {
                cost.op_time(graph, n.id, b, Pass::Forward)
                    + cost.op_time(graph, n.id, b, Pass::Backward)
            })
            .sum()
    }

    /// The geometric bracket ladder: `2 * t_base * 2^j` while within the
    /// loosest worthwhile target. Fully precomputable, which is what lets
    /// the parallel provider speculate the bracket phase.
    pub(crate) fn ladder(&self) -> Vec<f64> {
        let mut out = Vec::new();
        let mut t = 2.0 * self.t_base;
        while t <= 4.0 * self.t_hi0 {
            out.push(t);
            t *= 2.0;
        }
        out
    }

    /// The micro-batch candidate lists of a probe at target `t` (one DP
    /// run each), plus how many sizes the work-conservation pre-filter
    /// discarded. Skipping sizes whose bound already exceeds the target is
    /// sound: the whole model's work must fit `d * t_max`.
    pub(crate) fn run_specs(&self, t: f64) -> (Vec<Vec<u64>>, u64) {
        let feasible: Vec<u64> = self
            .b_all
            .iter()
            .copied()
            .filter(|&b| {
                Self::total_time(self.graph, &self.cost, b) / (b as f64 * self.devices as f64) <= t
            })
            .collect();
        let filtered = (self.b_all.len() - feasible.len()) as u64;
        let specs = if self.options.per_stage_micro_batch {
            if feasible.is_empty() {
                Vec::new()
            } else {
                vec![feasible]
            }
        } else {
            feasible.into_iter().map(|b| vec![b]).collect()
        };
        (specs, filtered)
    }
}

/// Runs one DP to completion: one `(t_max, micro-batch candidates)`
/// configuration under `budget` evals.
pub(crate) fn run_dp(ctx: &SearchCtx<'_>, t_max: f64, b_cands: Vec<u64>, budget: u64) -> RunResult {
    let mut dp = Dp::new(ctx, t_max, b_cands, budget);
    let root = dp.arena.root;
    let sol = dp.solve(root, ctx.devices, 0);
    RunResult {
        solution: sol.map(|id| dp.extract(id)),
        evals: dp.evals,
        distinct_states: dp.memo.filled,
        memo_hits: dp.memo_hits,
        memo_misses: dp.memo_misses,
        work_bound_prunes: dp.work_bound_prunes,
        memory_prunes: dp.memory_prunes,
        beam_prunes: dp.beam_prunes,
        eval_batches: dp.eval_batches,
        exploded: dp.exploded,
        budget,
    }
}

// ----------------------------------------------------------- the driver --

/// Supplies probe results to the search driver. Implementations must
/// return, for target `t`, one [`RunResult`] per [`SearchCtx::run_specs`]
/// entry (in order). Each run records the budget it executed under; the
/// replay re-runs any run whose budget diverged from the sequential
/// trajectory in a way that mattered.
pub(crate) trait ProbeProvider {
    /// Computes (or retrieves a speculatively computed) probe, giving up
    /// ownership of its runs. `remaining` is the eval budget the
    /// sequential search would have left at this point — an on-demand
    /// provider should honor it (making the replay's re-run path dead
    /// code); a speculative provider cannot know it in advance and uses
    /// the full budget instead.
    fn take(&mut self, t: f64, remaining: u64) -> Vec<RunResult>;

    /// Hints targets that may be consumed soon (in likelihood order). A
    /// speculative provider evaluates a prefix of them concurrently.
    fn prefetch(&mut self, _targets: &[f64]) {}

    /// How many bisection levels ahead the driver should reveal to
    /// `prefetch` (0 disables speculation).
    fn spec_depth(&self) -> u32 {
        0
    }
}

/// The sequential provider: computes every probe on demand, nothing
/// speculative.
struct SequentialProvider<'c, 'a> {
    ctx: &'c SearchCtx<'a>,
}

impl ProbeProvider for SequentialProvider<'_, '_> {
    fn take(&mut self, t: f64, remaining: u64) -> Vec<RunResult> {
        // Mirror the in-probe budget trajectory exactly: run `i` executes
        // under what remains after runs `0..i`, so the replay never needs
        // to re-run anything on the sequential path — and an explosion
        // aborts the probe immediately (the replay errors out at that run
        // without looking past it).
        let (specs, _) = self.ctx.run_specs(t);
        let mut used = 0u64;
        let mut runs = Vec::with_capacity(specs.len());
        for b_cands in specs {
            let run = run_dp(self.ctx, t, b_cands, remaining.saturating_sub(used));
            used += run.evals;
            let exploded = run.exploded;
            runs.push(run);
            if exploded {
                break;
            }
        }
        runs
    }
}

/// Replays one probe in sequential order, merging its runs into the
/// stats/budget trajectory. Runs that the sequential search would have
/// executed under a *smaller* remaining budget than they were given — and
/// that would have mattered (explosion, or more evals than remain) — are
/// re-executed with the exact remaining budget, so explosion accounting is
/// bit-identical to a fully sequential search.
fn replay_probe(
    ctx: &SearchCtx<'_>,
    t: f64,
    runs: Vec<RunResult>,
    stats: &mut SearchStats,
    evals_used: &mut u64,
    telemetry: &Telemetry,
) -> Result<Option<Solution>, PlanError> {
    stats.binary_iters += 1;
    let (specs, filtered) = ctx.run_specs(t);
    stats.work_bound_prunes += filtered;
    // A provider may truncate after an exploded run (nothing past it is
    // ever consumed); otherwise the counts must agree.
    debug_assert!(
        runs.len() == specs.len() || runs.last().is_some_and(|r| r.exploded),
        "provider returned {} runs for {} specs",
        runs.len(),
        specs.len()
    );
    let mut best: Option<Solution> = None;
    for (run, b_cands) in runs.into_iter().zip(specs) {
        stats.configs_tried += 1;
        let remaining = ctx.options.eval_budget.saturating_sub(*evals_used);
        let run = if (run.exploded || run.evals > remaining) && run.budget != remaining {
            run_dp(ctx, t, b_cands, remaining)
        } else {
            run
        };
        *evals_used += run.evals;
        stats.dp_evals += run.evals;
        // Histogram of work per DP invocation: data-valued (eval counts,
        // not times), so its contents are themselves deterministic.
        telemetry.record("planner.dp_evals_per_run", run.evals);
        stats.dp_states = stats.dp_states.max(run.distinct_states);
        stats.memo_hits += run.memo_hits;
        stats.memo_misses += run.memo_misses;
        stats.work_bound_prunes += run.work_bound_prunes;
        stats.memory_prunes += run.memory_prunes;
        stats.beam_prunes += run.beam_prunes;
        stats.eval_batches += run.eval_batches;
        if run.exploded {
            return Err(PlanError::SearchExplosion { evals: *evals_used });
        }
        if let Some(sol) = run.solution {
            let better = match &best {
                None => true,
                Some(cur) => sol.pick_key() < cur.pick_key(),
            };
            if better {
                best = Some(sol);
            }
        }
    }
    Ok(best)
}

/// The future midpoints of the bisection's decision tree over `[lo, hi)`,
/// to `depth` levels: after probing `mid(lo, hi)` the next target is the
/// midpoint of either half, so the whole frontier is known in advance.
fn bisect_targets(lo: f64, hi: f64, epsilon: f64, depth: u32, out: &mut Vec<f64>) {
    if depth == 0 || hi - lo <= epsilon * hi {
        return;
    }
    let mid = 0.5 * (lo + hi);
    out.push(mid);
    bisect_targets(lo, mid, epsilon, depth - 1, out);
    bisect_targets(mid, hi, epsilon, depth - 1, out);
}

/// Algorithm 1 lines 2–11: geometric bracketing from the
/// work-conservation bound, then bisection to `epsilon`. The probe
/// sequence is replayed strictly sequentially regardless of how the
/// provider computed the probes, which is the determinism contract of the
/// parallel planner.
///
/// A warm hint enters the ladder at the rung its TPS predicts instead of
/// the bottom, then walks toward the bracket: up while infeasible (the
/// cold walk's tail), or down to the lowest feasible rung when the guess
/// was feasible. Feasibility is monotone in the target, so either walk
/// settles on exactly the `[t_lo, t_hi]` bracket — and the same entering
/// solution — that the cold walk finds; the produced strategy is
/// identical and only probe counts (hence eval counters and wall time)
/// change. The exception is a search that runs out of eval budget:
/// warm and cold spend the budget on different probes, so explosion
/// accounting is only defined per walk.
pub(crate) fn drive_search(
    ctx: &SearchCtx<'_>,
    provider: &mut dyn ProbeProvider,
    warm: Option<&WarmStart>,
    clock: &ClockHandle,
    telemetry: &Telemetry,
) -> Result<(Solution, SearchStats), PlanError> {
    let mut stats = SearchStats::default();
    let mut evals_used = 0u64;
    let epsilon = ctx.options.epsilon;
    let ladder = ctx.ladder();
    let mut best: Option<Solution> = None;
    let mut t_lo = ctx.t_base;
    let mut t_hi = 2.0 * ctx.t_base;
    let mut rung = 0usize;
    let mut descending = false;
    if let Some(w) = warm {
        if !ladder.is_empty() && w.tps_hint.is_finite() && w.tps_hint > 0.0 {
            rung = ladder
                .partition_point(|&t| t < w.tps_hint)
                .min(ladder.len() - 1);
            descending = rung > 0;
        }
    }
    let bracket_start = clock.now_nanos();
    {
        let _bracket = telemetry.span("search.bracket");
        while best.is_none() && rung < ladder.len() {
            // Speculate only a couple of rungs ahead: the bracket almost
            // always resolves within two probes, and high rungs (loose
            // targets) are the most expensive ones to evaluate wastefully.
            provider.prefetch(&ladder[rung..ladder.len().min(rung + 2)]);
            let t = ladder[rung];
            t_hi = t;
            let remaining = ctx.options.eval_budget.saturating_sub(evals_used);
            let probe = telemetry.span_with("search.probe", stats.binary_iters as u64 + 1);
            let runs = provider.take(t, remaining);
            let result = replay_probe(ctx, t, runs, &mut stats, &mut evals_used, telemetry);
            drop(probe);
            best = result?;
            if best.is_none() {
                // Infeasible guess: every rung below is infeasible too
                // (monotonicity), so the remaining walk is the cold
                // walk's tail.
                t_lo = t;
                rung += 1;
                descending = false;
            }
        }
        // Feasible warm guess: walk down to the lowest feasible rung —
        // the rung the cold walk stops at.
        while descending && rung > 0 {
            let below: Vec<f64> = ladder[..rung].iter().rev().take(2).copied().collect();
            provider.prefetch(&below);
            let t = ladder[rung - 1];
            let remaining = ctx.options.eval_budget.saturating_sub(evals_used);
            let probe = telemetry.span_with("search.probe", stats.binary_iters as u64 + 1);
            let runs = provider.take(t, remaining);
            let result = replay_probe(ctx, t, runs, &mut stats, &mut evals_used, telemetry);
            drop(probe);
            match result? {
                Some(sol) => {
                    best = Some(sol);
                    t_hi = t;
                    rung -= 1;
                }
                None => {
                    t_lo = t;
                    break;
                }
            }
        }
    }
    stats.phases.bracket_wall = clock.since(bracket_start);
    if best.is_some() {
        let bisect_start = clock.now_nanos();
        let _bisect = telemetry.span("search.bisect");
        // Refine within the bracket [t_lo, t_hi].
        while t_hi - t_lo > epsilon * t_hi {
            let depth = provider.spec_depth();
            if depth > 0 {
                let mut targets = Vec::new();
                bisect_targets(t_lo, t_hi, epsilon, depth, &mut targets);
                provider.prefetch(&targets);
            }
            for _ in 0..depth.max(1) {
                if t_hi - t_lo <= epsilon * t_hi {
                    break;
                }
                let t_m = 0.5 * (t_lo + t_hi);
                let remaining = ctx.options.eval_budget.saturating_sub(evals_used);
                let probe = telemetry.span_with("search.probe", stats.binary_iters as u64 + 1);
                let runs = provider.take(t_m, remaining);
                let result = replay_probe(ctx, t_m, runs, &mut stats, &mut evals_used, telemetry);
                drop(probe);
                match result? {
                    Some(sol) => {
                        best = Some(sol);
                        t_hi = t_m;
                    }
                    None => t_lo = t_m,
                }
            }
        }
        stats.phases.bisect_wall = clock.since(bisect_start);
    }
    match best {
        Some(sol) => Ok((sol, stats)),
        None => Err(PlanError::Infeasible(format!(
            "no partition fits the {} MiB device memory budget",
            ctx.cost.memory_budget() >> 20
        ))),
    }
}

// --------------------------------------------------------------- planner --

/// The GraphPipe planner: topology-aware stage partitioning with the §6
/// micro-batch scheduler in the loop.
///
/// With [`PlanOptions::parallelism`] above one the search runs on the
/// speculative parallel driver (see [`crate::ParallelPlanner`]); the
/// produced plan is identical either way.
///
/// # Examples
///
/// ```
/// use gp_cluster::Cluster;
/// use gp_ir::zoo::{self, CandleUnoConfig};
/// use gp_partition::{GraphPipePlanner, Planner};
///
/// let model = zoo::candle_uno(&CandleUnoConfig::default());
/// let cluster = Cluster::summit_like(8);
/// let plan = GraphPipePlanner::new().plan(&model, &cluster, 8192)?;
/// // Parallel branches keep the pipeline shallow: depth < stage count.
/// assert!(plan.pipeline_depth() <= plan.stage_graph.len());
/// # Ok::<(), gp_partition::PlanError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphPipePlanner {
    options: PlanOptions,
    /// Wall-clock seam: feeds only `SearchStats` wall fields, which every
    /// fingerprint and comparison excludes. Injectable for deterministic
    /// timing under test.
    clock: ClockHandle,
    /// Telemetry handle (inert by default): search spans and counters.
    /// Write-only — never read back into the plan.
    telemetry: Telemetry,
    /// Optional warm-start hints ([`WarmStart`]); the produced plan is
    /// identical with or without them — only search cost changes — so
    /// this is deliberately not a [`PlanOptions`] field (it never enters
    /// request fingerprints).
    warm: Option<WarmStart>,
}

impl GraphPipePlanner {
    /// Planner with default options (uniform micro-batch, 1F1B).
    pub fn new() -> Self {
        Self::default()
    }

    /// Planner with explicit options.
    pub fn with_options(options: PlanOptions) -> Self {
        GraphPipePlanner {
            options,
            ..Self::default()
        }
    }

    /// Replace the wall-clock source (tests inject a manual clock).
    pub fn with_clock(mut self, clock: ClockHandle) -> Self {
        self.clock = clock;
        self
    }

    /// Attach a telemetry handle; search phases emit spans under it.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Seed the search from a previously planned strategy ([`WarmStart`]).
    /// The produced plan is identical to a cold search's; only probe
    /// counts (and wall time) shrink.
    pub fn with_warm_start(mut self, warm: WarmStart) -> Self {
        self.warm = Some(warm);
        self
    }

    /// The options in effect.
    pub fn options(&self) -> &PlanOptions {
        &self.options
    }

    /// The warm-start hints in effect, if any.
    pub fn warm_start(&self) -> Option<&WarmStart> {
        self.warm.as_ref()
    }

    fn solution_to_plan(
        solution: &Solution,
        model: &SpModel,
        cluster: &Cluster,
        cost: &CostModel,
        mini_batch: u64,
        stats: SearchStats,
    ) -> Result<Plan, PlanError> {
        // Place wide (data-parallel) stages first so their replicas stay
        // within a node: a 4-way stage allreduces over NVLink instead of
        // straddling the node boundary onto InfiniBand.
        let mut order: Vec<usize> = (0..solution.stages.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(solution.stages[i].d));
        let mut ranges: Vec<Option<DeviceRange>> = vec![None; solution.stages.len()];
        let mut cursor = 0u32;
        for &i in &order {
            ranges[i] = Some(DeviceRange::new(cursor, solution.stages[i].d));
            cursor += solution.stages[i].d;
        }
        let stages: Vec<Stage> = solution
            .stages
            .iter()
            .enumerate()
            .map(|(i, ps)| Stage {
                id: StageId(i as u32),
                ops: ps.ops.clone(),
                devices: ranges[i].expect("every stage placed"),
                micro_batch: ps.b,
                kfkb: ps.k,
            })
            .collect();
        let stage_graph = StageGraph::new(model.graph(), cluster, stages, mini_batch)
            .map_err(|e| PlanError::Internal(e.to_string()))?;
        let in_flight = assign_in_flight(&stage_graph);
        let schedule = schedule_tasks(&stage_graph, &in_flight);
        let mut plan = Plan {
            stage_graph,
            in_flight,
            schedule,
            bottleneck_tps: 0.0,
            peak_memory_bytes: 0,
            path: model.path(),
            stats,
        };
        let (tps, mem) = plan.measure(model.graph(), cost);
        plan.bottleneck_tps = tps;
        plan.peak_memory_bytes = mem;
        Ok(plan)
    }
}

impl Planner for GraphPipePlanner {
    fn name(&self) -> &str {
        "graphpipe"
    }

    fn plan(&self, model: &SpModel, cluster: &Cluster, mini_batch: u64) -> Result<Plan, PlanError> {
        let _search_span = self.telemetry.span("planner.search");
        let start = self.clock.now_nanos();
        let ctx = SearchCtx::new(model, cluster, mini_batch, &self.options)?;
        let (solution, stats) = if self.options.parallelism > 1 {
            let mut provider = crate::parallel::SpeculativeProvider::new(
                &ctx,
                self.options.parallelism,
                self.warm.as_ref().and_then(|w| w.micro_batch),
            );
            drive_search(
                &ctx,
                &mut provider,
                self.warm.as_ref(),
                &self.clock,
                &self.telemetry,
            )?
        } else {
            let mut provider = SequentialProvider { ctx: &ctx };
            drive_search(
                &ctx,
                &mut provider,
                self.warm.as_ref(),
                &self.clock,
                &self.telemetry,
            )?
        };
        let finalize_start = self.clock.now_nanos();
        let _finalize_span = self.telemetry.span("planner.finalize");
        let mut plan =
            Self::solution_to_plan(&solution, model, cluster, &ctx.cost, mini_batch, stats)?;
        plan.stats.phases.finalize_wall = self.clock.since(finalize_start);
        plan.stats.wall = self.clock.since(start);
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_ir::zoo::{self, CandleUnoConfig, DlrmConfig, MmtConfig};

    fn plan_for(model: &SpModel, devices: usize, mini_batch: u64) -> Result<Plan, PlanError> {
        GraphPipePlanner::new().plan(model, &Cluster::summit_like(devices), mini_batch)
    }

    #[test]
    fn down_canonicalization_keeps_binding_entry() {
        let d = Down::from_entries(vec![(1, 4, 8), (1, 4, 16), (2, 2, 4)]);
        assert_eq!(d.0, vec![(1, 4, 16), (2, 2, 4)]);
    }

    #[test]
    fn down_entry_in_flight_sink() {
        assert_eq!(Down::default().entry_in_flight(1, 4), 4);
        assert_eq!(Down::default().entry_in_flight(2, 4), 8);
    }

    #[test]
    fn down_entry_in_flight_max_over_entries() {
        let d = Down::from_entries(vec![(1, 4, 4), (1, 4, 12)]);
        // CIF(1,4,1,4,12) = 16 dominates CIF(1,4,1,4,4) = 8.
        assert_eq!(d.entry_in_flight(1, 4), 16);
    }

    #[test]
    fn dp_state_is_send() {
        // The whole point of the arena refactor: a DP run can live on a
        // worker thread. (Compile-time check.)
        fn assert_send<T: Send>() {}
        assert_send::<Dp<'static>>();
        assert_send::<RunResult>();
        assert_send::<Solution>();
    }

    #[test]
    fn branch_range_slots_are_triangular_and_unique() {
        for m in 1u16..8 {
            let mut seen = vec![false; (m as usize) * (m as usize + 1) / 2];
            for from in 0..m {
                for to in from + 1..=m {
                    let slot = range_slot(m, from, to) as usize;
                    assert!(!seen[slot], "m={m} ({from},{to}) collides");
                    seen[slot] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "m={m} leaves holes");
        }
    }

    #[test]
    fn memo_table_counts_distinct_cells_once() {
        let mut memo = MemoTable::new(4);
        memo.rows.push(Vec::new());
        memo.rows.push(Vec::new());
        assert_eq!(memo.get(0, 0, 1), MEMO_EMPTY);
        memo.set(0, 0, 1, 7);
        memo.set(0, 0, 1, 9); // overwrite: not a new state
        memo.set(0, 3, 4, MEMO_NONE);
        memo.set(1, 0, 2, 0);
        assert_eq!(memo.filled, 3);
        assert_eq!(memo.get(0, 0, 1), 9);
        assert_eq!(memo.get(0, 3, 4), MEMO_NONE);
        assert_eq!(memo.get(1, 0, 2), 0);
        assert_eq!(memo.get(1, 1, 1), MEMO_EMPTY);
    }

    #[test]
    fn plans_sequential_chain() {
        let model = zoo::mlp_chain(8, 512);
        let plan = plan_for(&model, 4, 32).unwrap();
        assert_eq!(plan.stage_graph.mini_batch(), 32);
        let total: usize = plan.stage_graph.stages().map(|s| s.dp_degree()).sum();
        assert_eq!(total, 4);
        plan.schedule.validate_c4(&plan.stage_graph).unwrap();
    }

    #[test]
    fn multi_branch_model_gets_shallow_pipeline() {
        let model = zoo::candle_uno(&CandleUnoConfig::default());
        let plan = plan_for(&model, 8, 1024).unwrap();
        assert!(
            plan.pipeline_depth() < plan.stage_graph.len() || plan.stage_graph.len() <= 2,
            "depth {} vs {} stages",
            plan.pipeline_depth(),
            plan.stage_graph.len()
        );
    }

    #[test]
    fn case_study_produces_depth_below_stage_count() {
        let model = zoo::case_study(&zoo::MmtConfig::default());
        let plan = plan_for(&model, 8, 64).unwrap();
        assert!(plan.stage_graph.len() >= 2);
        assert!(plan.pipeline_depth() <= plan.stage_graph.len());
        plan.schedule.validate_c4(&plan.stage_graph).unwrap();
    }

    #[test]
    fn dp_in_flight_matches_scheduler() {
        // The DP's bottom-up in-flight accounting must agree with the
        // authoritative assign_in_flight over the final stage graph.
        let model = zoo::mmt(&MmtConfig::two_branch());
        let plan = plan_for(&model, 4, 64).unwrap();
        let table = gp_sched::assign_in_flight(&plan.stage_graph);
        for s in plan.stage_graph.stages() {
            assert_eq!(plan.in_flight.samples(s.id), table.samples(s.id));
        }
    }

    #[test]
    fn memory_constraint_is_respected() {
        let model = zoo::mmt(&MmtConfig::two_branch());
        let cluster = Cluster::summit_like(4);
        let plan = GraphPipePlanner::new().plan(&model, &cluster, 64).unwrap();
        assert!(plan.peak_memory_bytes <= cluster.profile().mem_capacity);
    }

    #[test]
    fn infeasible_memory_is_reported() {
        let model = zoo::mmt(&MmtConfig::default());
        let cluster = Cluster::summit_like(4).with_memory_capacity(1 << 20);
        let err = GraphPipePlanner::new()
            .plan(&model, &cluster, 64)
            .unwrap_err();
        assert!(matches!(err, PlanError::Infeasible(_)), "{err:?}");
    }

    #[test]
    fn forced_micro_batch_is_used() {
        let model = zoo::candle_uno(&CandleUnoConfig::default());
        let opts = PlanOptions::default().with_forced_micro_batch(16);
        let plan = GraphPipePlanner::with_options(opts)
            .plan(&model, &Cluster::summit_like(4), 1024)
            .unwrap();
        assert!(plan.stage_graph.stages().all(|s| s.micro_batch == 16));
    }

    #[test]
    fn dlrm_plans_within_budget() {
        let model = zoo::dlrm(&DlrmConfig::default());
        let plan = plan_for(&model, 8, 512).unwrap();
        assert!(plan.stats.dp_evals > 0);
        assert!(plan.stats.binary_iters > 0);
        plan.schedule.validate_c4(&plan.stage_graph).unwrap();
    }

    #[test]
    fn search_counters_are_populated() {
        let model = zoo::dlrm(&DlrmConfig::default());
        let plan = plan_for(&model, 8, 512).unwrap();
        assert!(plan.stats.memo_hits > 0);
        assert!(plan.stats.work_bound_prunes > 0);
        assert!(plan.stats.dp_states > 0);
        // dp_states is a per-run peak now: it cannot exceed total evals.
        assert!(plan.stats.dp_states <= plan.stats.dp_evals);
        let rate = plan.stats.memo_hit_rate();
        assert!(rate > 0.0 && rate < 1.0, "{rate}");
    }

    #[test]
    fn search_explosion_budget_is_enforced() {
        let model = zoo::candle_uno(&CandleUnoConfig::default());
        let opts = PlanOptions {
            eval_budget: 1,
            ..PlanOptions::default()
        };
        let err = GraphPipePlanner::with_options(opts)
            .plan(&model, &Cluster::summit_like(8), 1024)
            .unwrap_err();
        assert!(matches!(err, PlanError::SearchExplosion { .. }), "{err:?}");
    }

    #[test]
    fn beam_window_is_contiguous_and_deterministic() {
        let model = zoo::mlp_chain(2, 16);
        let cluster = Cluster::summit_like(2);
        let opts = PlanOptions::default().with_beam_width(4);
        let ctx = SearchCtx::new(&model, &cluster, 16, &opts).unwrap();
        let mut dp = Dp::new(&ctx, 1.0, vec![1], 1000);
        // Unbounded: identity.
        dp.beam_width = None;
        assert_eq!(dp.beam_window(1, 63, 10), (1, 63));
        assert_eq!(dp.beam_prunes, 0);
        // Bounded: width-4 window around the pivot, ties toward fewer
        // devices; clamped at the edges.
        dp.beam_width = Some(4);
        assert_eq!(dp.beam_window(1, 63, 10), (8, 11));
        assert_eq!(dp.beam_window(1, 63, 1), (1, 4));
        assert_eq!(dp.beam_window(1, 63, 63), (60, 63));
        assert_eq!(dp.beam_window(1, 63, 200), (60, 63));
        assert_eq!(dp.beam_prunes, 59 * 4);
        // Windows narrower than the beam pass through unpruned.
        assert_eq!(dp.beam_window(5, 7, 6), (5, 7));
        assert_eq!(dp.beam_prunes, 59 * 4);
    }

    #[test]
    fn warm_start_produces_identical_strategy() {
        let model = zoo::dlrm(&DlrmConfig::default());
        let cluster = Cluster::summit_like(8);
        let cold = GraphPipePlanner::new().plan(&model, &cluster, 512).unwrap();
        // Seed from the cold plan itself (same devices): the warm walk
        // must settle on the same bracket and the same strategy.
        let warm = GraphPipePlanner::new()
            .with_warm_start(crate::plan::WarmStart::from_plan(&cold, 8, 8))
            .plan(&model, &cluster, 512)
            .unwrap();
        assert_eq!(warm.stage_graph, cold.stage_graph);
        assert_eq!(warm.in_flight, cold.in_flight);
        assert_eq!(warm.schedule, cold.schedule);
        assert_eq!(warm.bottleneck_tps, cold.bottleneck_tps);
        assert_eq!(warm.peak_memory_bytes, cold.peak_memory_bytes);
        // The warm walk skips the cold walk's infeasible bottom rungs.
        assert!(warm.stats.binary_iters <= cold.stats.binary_iters);
        assert!(warm.stats.dp_evals <= cold.stats.dp_evals);
        // A wildly wrong hint still converges to the same strategy.
        let bad_hint = crate::plan::WarmStart {
            tps_hint: cold.bottleneck_tps * 1e6,
            micro_batch: None,
        };
        let warm_bad = GraphPipePlanner::new()
            .with_warm_start(bad_hint)
            .plan(&model, &cluster, 512)
            .unwrap();
        assert_eq!(warm_bad.stage_graph, cold.stage_graph);
        assert_eq!(warm_bad.bottleneck_tps, cold.bottleneck_tps);
    }

    #[test]
    fn more_devices_do_not_hurt_estimated_tps() {
        let model = zoo::candle_uno(&CandleUnoConfig::default());
        let p4 = plan_for(&model, 4, 1024).unwrap();
        let p8 = plan_for(&model, 8, 1024).unwrap();
        assert!(p8.bottleneck_tps <= p4.bottleneck_tps * 1.05);
    }
}
