//! # gp-partition — the GraphPipe pipeline-stage partitioner (§5)
//!
//! Implements Algorithm 1 of the paper: a binary search over the bottleneck
//! stage's Time-Per-Sample wrapped around a dynamic program that performs
//! series-parallel decompositions of the model, jointly choosing the stage
//! partition, per-stage device counts, micro-batch sizes, and (via
//! `gp-sched`) micro-batch schedules.
//!
//! The crate also defines the planner-facing vocabulary shared with the
//! SPP baselines in `gp-baselines`: [`Planner`], [`Plan`], [`PlanOptions`],
//! [`PlanError`] and [`SearchStats`].
//!
//! # Examples
//!
//! ```
//! use gp_cluster::Cluster;
//! use gp_ir::zoo::{self, MmtConfig};
//! use gp_partition::{GraphPipePlanner, Planner};
//!
//! let model = zoo::mmt(&MmtConfig::two_branch());
//! let plan = GraphPipePlanner::new().plan(&model, &Cluster::summit_like(4), 64)?;
//! println!("{}", plan.describe(model.graph()));
//! assert!(plan.bottleneck_tps > 0.0);
//! # Ok::<(), gp_partition::PlanError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod dp;
mod parallel;
mod plan;

pub use dp::GraphPipePlanner;
pub use parallel::ParallelPlanner;
pub use plan::{Plan, PlanError, PlanOptions, Planner, SearchPhases, SearchStats, WarmStart};
