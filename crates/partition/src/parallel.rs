//! The speculative parallel planner.
//!
//! [`ParallelPlanner`] is [`GraphPipePlanner`] with
//! [`PlanOptions::parallelism`] forced above one. The binary search's
//! probe *sequence* is data-dependent, but its candidate *targets* are
//! not: the bracket ladder is fully precomputable and the bisection's
//! decision tree reveals every possible future midpoint. The
//! [`SpeculativeProvider`] therefore evaluates upcoming targets — and the
//! independent micro-batch configurations within each probe — concurrently
//! on scoped worker threads (the DP state is `Send`; see `dp.rs`), while
//! the driver replays the exact sequential probe order against the cache.
//! The returned [`Plan`] is byte-identical to the sequential planner's;
//! only `stats.wall` differs.
//!
//! gp-lint: deterministic — this module's outputs feed plan
//! fingerprints or the artifact codec; `cargo xtask lint` scans it for
//! nondeterminism hazards (DESIGN.md §"Determinism lint").

use crate::dp::{run_dp, GraphPipePlanner, ProbeProvider, RunResult, SearchCtx};
use crate::plan::{Plan, PlanError, PlanOptions, Planner, WarmStart};
use gp_cluster::Cluster;
use gp_ir::SpModel;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A planner that runs GraphPipe's search on multiple threads while
/// producing the same plan as the sequential [`GraphPipePlanner`].
///
/// # Examples
///
/// ```
/// use gp_cluster::Cluster;
/// use gp_ir::zoo::{self, MmtConfig};
/// use gp_partition::{GraphPipePlanner, ParallelPlanner, Planner};
///
/// let model = zoo::mmt(&MmtConfig::two_branch());
/// let cluster = Cluster::summit_like(4);
/// let seq = GraphPipePlanner::new().plan(&model, &cluster, 64)?;
/// let par = ParallelPlanner::new(4).plan(&model, &cluster, 64)?;
/// assert_eq!(seq.stage_graph, par.stage_graph);
/// assert_eq!(seq.schedule, par.schedule);
/// assert_eq!(seq.stats.dp_evals, par.stats.dp_evals);
/// # Ok::<(), gp_partition::PlanError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ParallelPlanner {
    inner: GraphPipePlanner,
}

impl ParallelPlanner {
    /// A parallel planner with default options over `threads` workers
    /// (clamped to at least 2 — use [`GraphPipePlanner`] for sequential
    /// search).
    pub fn new(threads: usize) -> Self {
        Self::with_options(PlanOptions::default(), threads)
    }

    /// A parallel planner with explicit options; `threads` overrides
    /// `options.parallelism`.
    pub fn with_options(mut options: PlanOptions, threads: usize) -> Self {
        options.parallelism = threads.max(2);
        ParallelPlanner {
            inner: GraphPipePlanner::with_options(options),
        }
    }

    /// The options in effect (with `parallelism` applied).
    pub fn options(&self) -> &PlanOptions {
        self.inner.options()
    }

    /// Seed the search from a previously planned strategy; the produced
    /// plan is identical either way (see [`WarmStart`]). The micro-batch
    /// hint additionally steers which speculative tasks run first.
    pub fn with_warm_start(mut self, warm: WarmStart) -> Self {
        self.inner = self.inner.with_warm_start(warm);
        self
    }
}

impl Planner for ParallelPlanner {
    fn name(&self) -> &str {
        "graphpipe-parallel"
    }

    fn plan(&self, model: &SpModel, cluster: &Cluster, mini_batch: u64) -> Result<Plan, PlanError> {
        self.inner.plan(model, cluster, mini_batch)
    }
}

/// One unit of speculative work: a single DP run of one probe.
struct Task {
    t_bits: u64,
    run_idx: usize,
    t: f64,
    b_cands: Vec<u64>,
}

/// Probe provider that prefetches hinted targets on a scoped thread pool.
/// Results are keyed by the target's bit pattern; each probe's runs are
/// reassembled in configuration order before the driver consumes them.
pub(crate) struct SpeculativeProvider<'c, 'a> {
    ctx: &'c SearchCtx<'a>,
    threads: usize,
    cache: HashMap<u64, Vec<RunResult>>,
    /// Micro-batch size a warm start predicted the plan will use. Tasks
    /// whose candidate list contains it are scheduled first — every task
    /// still runs, and results are reassembled in configuration order, so
    /// this only changes wall-clock time, never the plan.
    warm_micro_batch: Option<u64>,
}

impl<'c, 'a> SpeculativeProvider<'c, 'a> {
    pub(crate) fn new(
        ctx: &'c SearchCtx<'a>,
        threads: usize,
        warm_micro_batch: Option<u64>,
    ) -> Self {
        SpeculativeProvider {
            ctx,
            threads: threads.max(2),
            cache: HashMap::new(),
            warm_micro_batch,
        }
    }

    /// Evaluates every run of `targets` concurrently and fills the cache.
    fn compute_wave(&mut self, targets: &[f64]) {
        let mut tasks: Vec<Task> = Vec::new();
        let mut run_counts: Vec<(u64, usize)> = Vec::new();
        for &t in targets {
            let bits = t.to_bits();
            if self.cache.contains_key(&bits) || run_counts.iter().any(|&(b, _)| b == bits) {
                continue;
            }
            let (specs, _) = self.ctx.run_specs(t);
            run_counts.push((bits, specs.len()));
            for (run_idx, b_cands) in specs.into_iter().enumerate() {
                tasks.push(Task {
                    t_bits: bits,
                    run_idx,
                    t,
                    b_cands,
                });
            }
        }
        if let Some(hint) = self.warm_micro_batch {
            // Stable: hinted configurations first, original order otherwise.
            tasks.sort_by_key(|task| !task.b_cands.contains(&hint));
        }
        if tasks.is_empty() {
            for (bits, _) in run_counts {
                self.cache.insert(bits, Vec::new());
            }
            return;
        }
        let results = run_tasks(self.ctx, &tasks, self.threads);
        for (bits, count) in run_counts {
            let mut runs: Vec<Option<RunResult>> = (0..count).map(|_| None).collect();
            for (task, result) in tasks.iter().zip(results.iter()) {
                if task.t_bits == bits {
                    runs[task.run_idx] = Some(result.clone());
                }
            }
            self.cache.insert(
                bits,
                runs.into_iter()
                    .map(|r| r.expect("every run computed"))
                    .collect(),
            );
        }
    }
}

impl ProbeProvider for SpeculativeProvider<'_, '_> {
    fn take(&mut self, t: f64, _remaining: u64) -> Vec<RunResult> {
        // `_remaining` is unknowable at speculation time; runs execute
        // under the full budget and the replay re-runs the (rare) case
        // where the difference matters.
        let bits = t.to_bits();
        if !self.cache.contains_key(&bits) {
            self.compute_wave(&[t]);
        }
        self.cache.remove(&bits).expect("wave filled the cache")
    }

    fn prefetch(&mut self, targets: &[f64]) {
        // Cap the wave so a long ladder hint doesn't evaluate rungs the
        // walk will never reach: enough targets to keep the pool busy.
        let cap = self.threads.max(2);
        let mut wave: Vec<f64> = Vec::new();
        for &t in targets {
            if self.cache.contains_key(&t.to_bits()) {
                continue;
            }
            wave.push(t);
            if wave.len() >= cap {
                break;
            }
        }
        if !wave.is_empty() {
            self.compute_wave(&wave);
        }
    }

    fn spec_depth(&self) -> u32 {
        // 2^depth - 1 speculative probes per wave ≈ the worker count.
        (usize::BITS - (self.threads + 1).leading_zeros() - 1).max(1)
    }
}

/// Runs every task on `threads` scoped workers (work-stealing by atomic
/// index), returning results in task order.
fn run_tasks(ctx: &SearchCtx<'_>, tasks: &[Task], threads: usize) -> Vec<RunResult> {
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<RunResult>>> = tasks.iter().map(|_| Mutex::new(None)).collect();
    let budget = ctx.options.eval_budget;
    crossbeam::thread::scope(|s| {
        for _ in 0..threads.min(tasks.len()) {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                let Some(task) = tasks.get(i) else { break };
                let result = run_dp(ctx, task.t, task.b_cands.clone(), budget);
                *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
            });
        }
    })
    .expect("worker threads do not panic");
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("every task ran")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_ir::zoo::{self, CandleUnoConfig, DlrmConfig, MmtConfig, MoeConfig};

    fn strip_wall(mut plan: Plan) -> Plan {
        plan.stats.zero_walls();
        plan
    }

    #[test]
    fn parallel_plans_equal_sequential_plans() {
        let cells: Vec<(gp_ir::SpModel, usize, u64)> = vec![
            (zoo::mmt(&MmtConfig::default()), 8, 128),
            (zoo::dlrm(&DlrmConfig::default()), 8, 512),
            (zoo::candle_uno(&CandleUnoConfig::default()), 8, 1024),
            (zoo::moe(&MoeConfig::tiny()), 4, 64),
        ];
        for (model, devices, mini_batch) in cells {
            let cluster = Cluster::summit_like(devices);
            let seq = GraphPipePlanner::new()
                .plan(&model, &cluster, mini_batch)
                .unwrap();
            for threads in [2, 4, 7] {
                let par = ParallelPlanner::new(threads)
                    .plan(&model, &cluster, mini_batch)
                    .unwrap();
                assert_eq!(
                    strip_wall(seq.clone()),
                    strip_wall(par),
                    "threads={threads}"
                );
            }
        }
    }

    #[test]
    fn parallel_explosion_matches_sequential() {
        // Budget accounting must be bit-identical even on the error path:
        // speculative runs execute under the full budget and are replayed
        // (re-run) with the exact remaining budget.
        let model = zoo::candle_uno(&CandleUnoConfig::default());
        let cluster = Cluster::summit_like(8);
        for budget in [1u64, 100, 5000] {
            let opts = PlanOptions {
                eval_budget: budget,
                ..PlanOptions::default()
            };
            let seq = GraphPipePlanner::with_options(opts.clone()).plan(&model, &cluster, 1024);
            let par = ParallelPlanner::with_options(opts, 4).plan(&model, &cluster, 1024);
            match (seq, par) {
                (Err(a), Err(b)) => assert_eq!(a, b, "budget={budget}"),
                (a, b) => panic!("expected twin explosions, got {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn parallelism_knob_on_graphpipe_planner_is_equivalent() {
        // The serve path sets `options.parallelism` on a plain
        // GraphPipePlanner; that must match the ParallelPlanner wrapper.
        let model = zoo::mmt(&MmtConfig::two_branch());
        let cluster = Cluster::summit_like(4);
        let opts = PlanOptions {
            parallelism: 3,
            ..PlanOptions::default()
        };
        let a = GraphPipePlanner::with_options(opts.clone())
            .plan(&model, &cluster, 64)
            .unwrap();
        let b = ParallelPlanner::with_options(opts, 3)
            .plan(&model, &cluster, 64)
            .unwrap();
        assert_eq!(strip_wall(a), strip_wall(b));
    }

    #[test]
    fn spec_depth_scales_with_threads() {
        let model = zoo::mmt(&MmtConfig::tiny());
        let cluster = Cluster::summit_like(2);
        let opts = PlanOptions::default();
        let ctx = SearchCtx::new(&model, &cluster, 16, &opts).unwrap();
        assert_eq!(SpeculativeProvider::new(&ctx, 2, None).spec_depth(), 1);
        assert_eq!(SpeculativeProvider::new(&ctx, 4, None).spec_depth(), 2);
        assert_eq!(SpeculativeProvider::new(&ctx, 8, None).spec_depth(), 3);
        assert_eq!(SpeculativeProvider::new(&ctx, 16, None).spec_depth(), 4);
    }
}
