//! Public planning types shared by GraphPipe and the SPP baselines.
//!
//! gp-lint: deterministic — this module's outputs feed plan
//! fingerprints or the artifact codec; `cargo xtask lint` scans it for
//! nondeterminism hazards (DESIGN.md §"Determinism lint").

use gp_cluster::Cluster;
use gp_cost::CostModel;
use gp_ir::SpModel;
use gp_sched::{InFlightTable, PipelineSchedule, StageGraph};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;

/// Options controlling a planner's search.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanOptions {
    /// Relative tolerance of the binary search over the bottleneck TPS
    /// (`epsilon` of Algorithm 1, as a fraction of the initial upper bound).
    pub epsilon: f64,
    /// Explicit micro-batch-size candidates. When `None`, all powers of two
    /// dividing the mini-batch size with at most [`PlanOptions::max_micro_batches`]
    /// micro-batches are tried.
    pub micro_batch_candidates: Option<Vec<u64>>,
    /// Upper bound on micro-batches per mini-batch when deriving default
    /// candidates (bounds `|B|`, see the §5 complexity analysis).
    pub max_micro_batches: u64,
    /// kFkB parameters to consider. The paper's default schedule is the
    /// synchronous 1F1B, i.e. `[1]`.
    pub kfkb_candidates: Vec<u64>,
    /// Allow different micro-batch sizes per stage (§6's generalized
    /// scheduler). Off by default, matching the paper's default
    /// configuration.
    pub per_stage_micro_batch: bool,
    /// Abort the search after this many DP evaluations (guards against
    /// exponential blow-ups; primarily exercised by the Piper baseline).
    pub eval_budget: u64,
    /// Worker threads used to evaluate binary-search targets and
    /// micro-batch configurations speculatively (`1` = sequential). The
    /// produced plan is byte-identical for every value — parallelism only
    /// changes wall-clock time — so this knob is deliberately excluded
    /// from `gp-serve` request fingerprints.
    pub parallelism: usize,
    /// Beam width for device-split enumeration. `None` (the default)
    /// keeps every split the work-conservation bound admits and is
    /// byte-identical to the exhaustive search; `Some(w)` truncates each
    /// split window to the `w` candidates nearest the work-proportional
    /// pivot (a deterministic total order — see DESIGN.md §"Planner
    /// search"). Bounded beams trade plan quality for search time, so
    /// unlike [`PlanOptions::parallelism`] this knob *is* part of the
    /// `gp-serve` request fingerprint.
    pub beam_width: Option<u32>,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions {
            epsilon: 0.01,
            micro_batch_candidates: None,
            max_micro_batches: 256,
            kfkb_candidates: vec![1],
            per_stage_micro_batch: false,
            eval_budget: 200_000_000,
            parallelism: 1,
            beam_width: None,
        }
    }
}

impl PlanOptions {
    /// Restricts the search to one fixed micro-batch size (used by the
    /// Figure 7-right sweep and the "Parallel" ablation of Figure 9).
    pub fn with_forced_micro_batch(mut self, b: u64) -> Self {
        self.micro_batch_candidates = Some(vec![b]);
        self
    }

    /// Sets the binary search's relative tolerance
    /// ([`PlanOptions::epsilon`], the `epsilon` of Algorithm 1).
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets an explicit micro-batch-size candidate list
    /// ([`PlanOptions::micro_batch_candidates`]), replacing the default
    /// powers-of-two sweep. See [`PlanOptions::with_forced_micro_batch`]
    /// for the single-candidate shorthand.
    pub fn with_micro_batch_candidates(mut self, candidates: Vec<u64>) -> Self {
        self.micro_batch_candidates = Some(candidates);
        self
    }

    /// Sets the cap on micro-batches per mini-batch used when deriving
    /// default candidates ([`PlanOptions::max_micro_batches`]).
    pub fn with_max_micro_batches(mut self, max: u64) -> Self {
        self.max_micro_batches = max;
        self
    }

    /// Sets the kFkB parameters to consider
    /// ([`PlanOptions::kfkb_candidates`]; `[1]` is the paper's synchronous
    /// 1F1B default).
    pub fn with_kfkb_candidates(mut self, candidates: Vec<u64>) -> Self {
        self.kfkb_candidates = candidates;
        self
    }

    /// Enables or disables per-stage micro-batch sizes
    /// ([`PlanOptions::per_stage_micro_batch`], §6's generalized
    /// scheduler).
    pub fn with_per_stage_micro_batch(mut self, enabled: bool) -> Self {
        self.per_stage_micro_batch = enabled;
        self
    }

    /// Sets the DP evaluation budget ([`PlanOptions::eval_budget`]) after
    /// which a search aborts with [`PlanError::SearchExplosion`].
    pub fn with_eval_budget(mut self, budget: u64) -> Self {
        self.eval_budget = budget;
        self
    }

    /// Sets the speculative-search worker count
    /// ([`PlanOptions::parallelism`]; plans are byte-identical for every
    /// value, only wall-clock time changes).
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Sets the device-split beam width ([`PlanOptions::beam_width`]).
    /// Widths are clamped to at least 1; pass `0`/`1` for the greedy
    /// single-candidate beam. Use [`PlanOptions::default`]'s `None` for
    /// the exhaustive (bit-compatible) search.
    pub fn with_beam_width(mut self, width: u32) -> Self {
        self.beam_width = Some(width.max(1));
        self
    }

    /// The micro-batch sizes to try for a given mini-batch size.
    pub fn micro_batch_sizes(&self, mini_batch: u64) -> Vec<u64> {
        match &self.micro_batch_candidates {
            Some(list) => list
                .iter()
                .copied()
                .filter(|&b| b > 0 && mini_batch.is_multiple_of(b))
                .collect(),
            None => {
                let mut out = Vec::new();
                let mut b = 1;
                while b <= mini_batch {
                    if mini_batch.is_multiple_of(b) && mini_batch / b <= self.max_micro_batches {
                        out.push(b);
                    }
                    b *= 2;
                }
                out
            }
        }
    }
}

/// Why a planner failed to produce a strategy.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// No strategy satisfies the device-memory constraint (Equation 2) even
    /// at the loosest target TPS.
    Infeasible(String),
    /// The search exceeded its work budget — the paper's "✗" for Piper on
    /// many-branch models ("search cannot be completed within reasonable
    /// timeframes", Table 1).
    SearchExplosion {
        /// DP evaluations performed before giving up.
        evals: u64,
    },
    /// The model shape is not supported by this planner.
    UnsupportedModel(String),
    /// Planner produced an internally inconsistent strategy (a bug guard).
    Internal(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Infeasible(why) => write!(f, "no feasible strategy: {why}"),
            PlanError::SearchExplosion { evals } => {
                write!(f, "search exploded after {evals} DP evaluations")
            }
            PlanError::UnsupportedModel(why) => write!(f, "unsupported model: {why}"),
            PlanError::Internal(why) => write!(f, "internal planner error: {why}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// Wall-clock breakdown of one search, by phase (Algorithm 1 structure).
///
/// Like [`SearchStats::wall`], every field here is *nondeterministic
/// measurement*, not plan data: all walls are excluded from plan
/// fingerprints and artifact bytes, and [`SearchStats::zero_walls`]
/// clears them wherever plans are compared for equality. Times come from
/// the injected `gp_obs::Clock` seam, never from a direct wall-clock
/// read (DESIGN.md §"Observability").
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SearchPhases {
    /// Geometric bracket-ladder phase: the doubling probes that find a
    /// feasible throughput target (Algorithm 1 lines 2–6).
    pub bracket_wall: Duration,
    /// Bisection phase: refinement probes inside the bracket (lines 7–11).
    pub bisect_wall: Duration,
    /// Strategy reconstruction: solution → stage graph → schedule.
    pub finalize_wall: Duration,
}

/// Search-cost accounting, reported alongside every plan (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SearchStats {
    /// Wall-clock search time.
    pub wall: Duration,
    /// Wall-clock phase breakdown (zero for single-shot planners).
    pub phases: SearchPhases,
    /// Dynamic-programming evaluations performed.
    pub dp_evals: u64,
    /// Distinct memoized DP states, at the peak across DP invocations.
    /// Every binary-search probe (and every micro-batch configuration)
    /// builds its own memo table, so summing table sizes across probes —
    /// what this field used to report — counts the same logical states
    /// once per probe; the maximum is the honest "how big does the state
    /// space get" number.
    pub dp_states: u64,
    /// Memo lookups answered from the table (across all DP invocations).
    pub memo_hits: u64,
    /// Memo lookups that found an empty cell and fell through to a fresh
    /// DP computation. `memo_hits + memo_misses` is the total lookup
    /// count, which is what [`SearchStats::memo_hit_rate`] divides by.
    pub memo_misses: u64,
    /// Subproblems discarded by the work-conservation bound before any
    /// candidate evaluation (whole-suffix infeasibility plus empty
    /// device-split windows).
    pub work_bound_prunes: u64,
    /// Stage candidates discarded for exceeding the device memory budget.
    pub memory_prunes: u64,
    /// Device-split candidates dropped by the beam truncation
    /// ([`PlanOptions::beam_width`]; 0 for unbounded searches).
    pub beam_prunes: u64,
    /// Batched candidate-evaluation passes: one per slice-at-a-time sweep
    /// over a stage's micro-batch candidates or a memo column's device
    /// window. `dp_evals / eval_batches` is the mean batch width, which
    /// is what makes the vectorized evaluator's speedup attributable.
    pub eval_batches: u64,
    /// Binary-search iterations (0 for single-shot planners).
    pub binary_iters: u32,
    /// Schedule configurations (micro-batch sizes etc.) tried.
    pub configs_tried: u32,
}

impl SearchStats {
    /// Fraction of memo lookups answered from the table:
    /// `memo_hits / (memo_hits + memo_misses)`. Hits and misses count
    /// the same event stream — one lookup each — so the rate is
    /// per-run-consistent and always in `[0, 1]`. (The denominator used
    /// to be `dp_evals`, which charges per *candidate*, not per lookup;
    /// memo-heavy cells reported hit counts exceeding evals and rates
    /// above 1.) Returns 0 when nothing was looked up.
    pub fn memo_hit_rate(&self) -> f64 {
        let total = self.memo_hits + self.memo_misses;
        if total == 0 {
            return 0.0;
        }
        self.memo_hits as f64 / total as f64
    }

    /// Zero every wall-clock field — total and phase breakdown — leaving
    /// only the deterministic counters. Plan-equality tests, the parallel
    /// planner's sequential-replay comparison, and `verify-goldens
    /// --bless` all use this: wall times are the *only* nondeterministic
    /// fields in a plan.
    pub fn zero_walls(&mut self) {
        self.wall = Duration::ZERO;
        self.phases = SearchPhases::default();
    }
}

/// Search hints recovered from a previously planned strategy, used to
/// seed a new search instead of starting cold.
///
/// Warm-starting never changes the produced plan: feasibility of a
/// throughput target is monotone in the target (any strategy meeting a
/// tighter target meets every looser one, and the memory constraint does
/// not depend on the target), so however the bracket walk enters the
/// ladder it settles on the same `[t_lo, t_hi]` interval — and therefore
/// the same bisection and the same strategy — that a cold walk finds.
/// Only probe counts (and hence eval counters and wall time) shrink.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WarmStart {
    /// Bottleneck TPS of the source plan, pre-scaled by the caller to the
    /// new configuration (e.g. halved when the device count doubles).
    /// Used to pick the bracket ladder's starting rung.
    pub tps_hint: f64,
    /// Micro-batch size the source plan chose. Speculative providers use
    /// it to prioritize the matching configuration's probes; it never
    /// restricts the candidate set.
    pub micro_batch: Option<u64>,
}

impl WarmStart {
    /// Builds a hint from a finished plan, scaling the TPS hint by
    /// `old_devices / new_devices` (throughput per sample scales roughly
    /// inversely with devices at fixed work).
    pub fn from_plan(plan: &Plan, old_devices: u32, new_devices: u32) -> Self {
        let scale = if new_devices == 0 {
            1.0
        } else {
            old_devices.max(1) as f64 / new_devices as f64
        };
        WarmStart {
            tps_hint: plan.bottleneck_tps * scale,
            micro_batch: Some(plan.max_micro_batch()),
        }
    }
}

/// A complete training strategy: the validated stage graph, its in-flight
/// table, the per-stage task orders, and planner-side estimates.
///
/// Plans compare by value (`PartialEq`), which is what lets the `gp-serve`
/// artifact codec assert lossless round-trips.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// The stage DAG (`G_S` of §3), validated against C1–C3.
    pub stage_graph: StageGraph,
    /// Minimal in-flight samples per stage (§6).
    pub in_flight: InFlightTable,
    /// Per-stage task orders (`Pi_i`), satisfying C4.
    pub schedule: PipelineSchedule,
    /// Planner's estimate of the bottleneck stage's Time-Per-Sample.
    pub bottleneck_tps: f64,
    /// Peak per-device memory across stages, in bytes.
    pub peak_memory_bytes: u64,
    /// Which rung of the DAG fallback ladder produced the model this plan
    /// was computed for (`ExactSp` for hand-authored SP trees).
    pub path: gp_ir::PlanPath,
    /// Search-cost accounting.
    pub stats: SearchStats,
}

impl Plan {
    /// Pipeline depth (stage-DAG diameter) of the strategy.
    pub fn pipeline_depth(&self) -> usize {
        self.stage_graph.pipeline_depth()
    }

    /// The (uniform or maximal) micro-batch size used by the strategy.
    pub fn max_micro_batch(&self) -> u64 {
        self.stage_graph
            .stages()
            .map(|s| s.micro_batch)
            .max()
            .unwrap_or(0)
    }

    /// Recomputes the bottleneck TPS and peak memory against a cost model
    /// (using actual device placements), returning `(tps, bytes)`.
    pub fn measure(&self, graph: &gp_ir::Graph, cost: &CostModel) -> (f64, u64) {
        let mut tps: f64 = 0.0;
        let mut mem = 0u64;
        for s in self.stage_graph.stages() {
            tps = tps.max(cost.stage_tps(
                graph,
                &s.ops,
                s.micro_batch,
                &s.devices,
                self.stage_graph.mini_batch(),
            ));
            mem = mem.max(cost.stage_memory_bytes(
                graph,
                &s.ops,
                self.in_flight.samples(s.id),
                s.micro_batch,
                s.dp_degree(),
            ));
        }
        (tps, mem)
    }

    /// A human-readable multi-line summary of the strategy.
    pub fn describe(&self, graph: &gp_ir::Graph) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "strategy: {} stages, pipeline depth {}, mini-batch {}",
            self.stage_graph.len(),
            self.pipeline_depth(),
            self.stage_graph.mini_batch(),
        );
        if self.path != gp_ir::PlanPath::ExactSp {
            let _ = writeln!(out, "  plan path: {}", self.path);
        }
        for s in self.stage_graph.stages() {
            let names: Vec<&str> = s
                .ops
                .iter()
                .take(3)
                .map(|&o| graph.node(o).name.as_str())
                .collect();
            let succs: Vec<String> = self
                .stage_graph
                .succs(s.id)
                .iter()
                .map(|x| x.to_string())
                .collect();
            let _ = writeln!(
                out,
                "  {}: {:>3} ops [{}{}] on {} b={} k={} in-flight={} -> [{}]",
                s.id,
                s.ops.len(),
                names.join(", "),
                if s.ops.len() > 3 { ", ..." } else { "" },
                s.devices,
                s.micro_batch,
                s.kfkb,
                self.in_flight.samples(s.id),
                succs.join(", "),
            );
        }
        out
    }
}

/// A pipeline-parallel strategy planner (GraphPipe or an SPP baseline).
pub trait Planner {
    /// Short name for reports (e.g. `"graphpipe"`, `"pipedream"`).
    fn name(&self) -> &str;

    /// Searches for a training strategy for `model` on `cluster` with the
    /// given mini-batch size.
    ///
    /// # Errors
    ///
    /// Returns a [`PlanError`] when no strategy satisfies the memory
    /// constraint or the search exceeds its budget.
    fn plan(&self, model: &SpModel, cluster: &Cluster, mini_batch: u64) -> Result<Plan, PlanError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_micro_batch_candidates_are_pow2_divisors() {
        let opts = PlanOptions::default();
        assert_eq!(opts.micro_batch_sizes(64), vec![1, 2, 4, 8, 16, 32, 64]);
        // Cap on micro-batch count kicks in for large mini-batches.
        let opts = PlanOptions {
            max_micro_batches: 4,
            ..PlanOptions::default()
        };
        assert_eq!(opts.micro_batch_sizes(64), vec![16, 32, 64]);
    }

    #[test]
    fn forced_micro_batch_filters_non_divisors() {
        let opts = PlanOptions::default().with_forced_micro_batch(6);
        assert_eq!(opts.micro_batch_sizes(64), Vec::<u64>::new());
        let opts = PlanOptions::default().with_forced_micro_batch(8);
        assert_eq!(opts.micro_batch_sizes(64), vec![8]);
    }

    #[test]
    fn builder_methods_cover_every_field() {
        // One `with_*` per public field, composing fluently.
        let opts = PlanOptions::default()
            .with_epsilon(0.05)
            .with_micro_batch_candidates(vec![4, 8])
            .with_max_micro_batches(32)
            .with_kfkb_candidates(vec![1, 2])
            .with_per_stage_micro_batch(true)
            .with_eval_budget(1_000)
            .with_parallelism(3)
            .with_beam_width(8);
        assert_eq!(
            opts,
            PlanOptions {
                epsilon: 0.05,
                micro_batch_candidates: Some(vec![4, 8]),
                max_micro_batches: 32,
                kfkb_candidates: vec![1, 2],
                per_stage_micro_batch: true,
                eval_budget: 1_000,
                parallelism: 3,
                beam_width: Some(8),
            }
        );
        // Degenerate widths clamp to the greedy single-candidate beam.
        assert_eq!(
            PlanOptions::default().with_beam_width(0).beam_width,
            Some(1)
        );
    }

    #[test]
    fn memo_hit_rate_is_per_run_consistent() {
        // The rate divides hits by total lookups (hits + misses), so it
        // stays in [0, 1] even on memo-heavy cells where hits exceed
        // charged evals (the bug BENCH_planner.json exhibited).
        let stats = SearchStats {
            memo_hits: 114_933_552,
            memo_misses: 35_699,
            dp_evals: 96_236_767,
            ..SearchStats::default()
        };
        let rate = stats.memo_hit_rate();
        assert!(rate > 0.99 && rate < 1.0, "rate = {rate}");
        assert_eq!(SearchStats::default().memo_hit_rate(), 0.0);
        let balanced = SearchStats {
            memo_hits: 3,
            memo_misses: 1,
            ..SearchStats::default()
        };
        assert_eq!(balanced.memo_hit_rate(), 0.75);
    }

    #[test]
    fn error_display() {
        assert!(PlanError::SearchExplosion { evals: 42 }
            .to_string()
            .contains("42"));
        assert!(PlanError::Infeasible("memory".into())
            .to_string()
            .contains("memory"));
    }
}
