//! Planner coverage for the zoo's stress workloads: the full 21-branch
//! CANDLE-Uno and the shared-trunk Mixture-of-Experts model.

use gp_cluster::Cluster;
use gp_ir::zoo::{self, CandleUnoConfig, MoeConfig};
use gp_partition::{GraphPipePlanner, Planner};

#[test]
fn plans_full_candle_uno() {
    let model = zoo::candle_uno(&CandleUnoConfig::full());
    let cluster = Cluster::summit_like(8);
    let plan = GraphPipePlanner::new()
        .plan(&model, &cluster, 1024)
        .expect("full CANDLE-Uno is plannable at 8 GPUs");
    plan.schedule.validate_c4(&plan.stage_graph).unwrap();
    assert!(plan.bottleneck_tps > 0.0);
    // The branch structure must shrink the pipeline below the stage count
    // whenever the planner opens more than one branch stage.
    assert!(plan.pipeline_depth() <= plan.stage_graph.len());
}

#[test]
fn plans_moe_with_shared_trunk() {
    let model = zoo::moe(&MoeConfig::default());
    let cluster = Cluster::summit_like(8);
    let plan = GraphPipePlanner::new()
        .plan(&model, &cluster, 256)
        .expect("MoE is plannable at 8 GPUs");
    plan.schedule.validate_c4(&plan.stage_graph).unwrap();
    let used: usize = plan.stage_graph.stages().map(|s| s.dp_degree()).sum();
    assert_eq!(used, 8);
}

#[test]
fn plans_moe_tiny_on_small_cluster() {
    let model = zoo::moe(&MoeConfig::tiny());
    let cluster = Cluster::summit_like(2);
    let plan = GraphPipePlanner::new()
        .plan(&model, &cluster, 16)
        .expect("tiny MoE is plannable at 2 GPUs");
    plan.schedule.validate_c4(&plan.stage_graph).unwrap();
}
