//! In-flight sample accounting (§6 and Appendix A.1 of the paper).
//!
//! The number of *in-flight samples* of a stage — samples whose forward
//! pass has run but whose backward pass has not — determines its activation
//! memory. GraphPipe's scheduler minimizes it per stage while preserving
//! continuous pipelining, using the closed-form `ComputeInFlight` of
//! Table 2, generalized to per-stage micro-batch sizes and kFkB schedules.
//!
//! gp-lint: deterministic — this module's outputs feed plan
//! fingerprints or the artifact codec; `cargo xtask lint` scans it for
//! nondeterminism hazards (DESIGN.md §"Determinism lint").

use crate::stage::{StageGraph, StageId};
use serde::{Deserialize, Serialize};

/// Computes the minimal number of in-flight samples for a stage `x` feeding
/// a stage `y`, per Table 2 of the paper (Appendix A.1).
///
/// * `k_x`, `b_x` — stage `x`'s kFkB parameter and micro-batch size;
/// * `k_y`, `b_y` — the same for the downstream stage `y`;
/// * `i_y` — the downstream stage's in-flight sample count.
///
/// The ten rows of Table 2 partition the whole parameter space; this
/// function is total.
///
/// # Panics
///
/// Panics if any of `k_x`, `b_x`, `k_y`, `b_y` is zero.
///
/// # Examples
///
/// ```
/// use gp_sched::compute_in_flight;
///
/// // Uniform 1F1B chain: each upstream stage holds one extra micro-batch.
/// assert_eq!(compute_in_flight(1, 4, 1, 4, 4), 8);
/// assert_eq!(compute_in_flight(1, 4, 1, 4, 8), 12);
/// ```
#[inline]
pub fn compute_in_flight(k_x: u64, b_x: u64, k_y: u64, b_y: u64, i_y: u64) -> u64 {
    assert!(
        k_x > 0 && b_x > 0 && k_y > 0 && b_y > 0,
        "schedule parameters must be positive"
    );
    let kxbx = k_x * b_x;
    let kyby = k_y * b_y;
    let bmax = b_x.max(b_y);

    if kxbx < kyby {
        // Rows 1, 2, 9 of Table 2.
        if bmax < kxbx {
            i_y + 2 * bmax
        } else if bmax == kxbx {
            i_y + bmax
        } else {
            // b_x <= k_x b_x < b_y <= k_y b_y.
            debug_assert!(b_y > kxbx);
            i_y + b_y
        }
    } else if kxbx > kyby {
        // Rows 3, 4, 5, 6, 10.
        if b_x > kyby {
            // Row 10: b_y <= k_y b_y < b_x <= k_x b_x.
            i_y + kxbx - kyby + b_x
        } else if b_x <= b_y {
            if b_y < kyby {
                i_y + kxbx - kyby + 2 * b_y // row 3
            } else {
                i_y + kxbx // row 4: b_y == k_y b_y
            }
        } else {
            // b_y < b_x <= k_y b_y.
            if b_x < kyby {
                i_y + kxbx - kyby + 2 * b_x // row 5
            } else {
                i_y + kxbx // row 6: b_x == k_y b_y
            }
        }
    } else {
        // Rows 7, 8: k_x b_x == k_y b_y.
        if bmax == kyby {
            i_y + kyby
        } else {
            i_y + 2 * bmax
        }
    }
}

/// Per-stage in-flight sample counts for a whole stage graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InFlightTable {
    samples: Vec<u64>,
}

impl InFlightTable {
    /// Reconstructs a table from per-stage sample counts (indexed by stage
    /// id), e.g. when decoding a serialized plan artifact. Planner-produced
    /// tables come from [`assign_in_flight`] instead.
    pub fn from_samples(samples: Vec<u64>) -> Self {
        InFlightTable { samples }
    }

    /// Number of stages covered by the table.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the table covers no stages.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// In-flight samples of a stage.
    pub fn samples(&self, id: StageId) -> u64 {
        self.samples[id.index()]
    }

    /// In-flight micro-batches of a stage (its warm-up length `l`),
    /// rounded up to whole micro-batches.
    pub fn micro_batches(&self, sg: &StageGraph, id: StageId) -> u64 {
        let b = sg.stage(id).micro_batch;
        self.samples[id.index()].div_ceil(b)
    }

    /// The largest per-stage in-flight sample count (the memory-pressure
    /// hot spot, typically a source stage).
    pub fn max_samples(&self) -> u64 {
        self.samples.iter().copied().max().unwrap_or(0)
    }
}

/// Assigns in-flight counts to every stage by traversing the stage DAG
/// backwards from the sinks (§6: "it then traces back all directed edges of
/// the stage graph in the reverse direction"), taking the binding (maximum)
/// constraint when a stage feeds several successors.
///
/// A sink stage keeps `k * b` samples in flight (it alternates `k` forward
/// and `k` backward passes).
pub fn assign_in_flight(sg: &StageGraph) -> InFlightTable {
    let mut samples = vec![0u64; sg.len()];
    let order = sg.topo_order();
    for &id in order.iter().rev() {
        let s = sg.stage(id);
        let succs = sg.succs(id);
        samples[id.index()] = if succs.is_empty() {
            s.kfkb * s.micro_batch
        } else {
            succs
                .iter()
                .map(|&y| {
                    let sy = sg.stage(y);
                    compute_in_flight(
                        s.kfkb,
                        s.micro_batch,
                        sy.kfkb,
                        sy.micro_batch,
                        samples[y.index()],
                    )
                })
                .max()
                .expect("non-empty successor list")
        };
        // Never fewer than one full micro-batch round in flight.
        samples[id.index()] = samples[id.index()].max(s.kfkb * s.micro_batch);
    }
    InFlightTable { samples }
}

/// Chooses the smallest `k` for stage `x` (among `candidates`) that
/// minimizes its in-flight samples across all successors — the
/// argmin-over-`k_x` rule of Appendix A.1.
///
/// Returns `(k, in_flight_samples)`.
///
/// # Panics
///
/// Panics if `candidates` is empty.
pub fn best_kfkb(
    b_x: u64,
    successors: &[(u64, u64, u64)], // (k_y, b_y, i_y) per successor
    candidates: &[u64],
) -> (u64, u64) {
    assert!(!candidates.is_empty(), "need at least one k candidate");
    candidates
        .iter()
        .map(|&k| {
            let worst = if successors.is_empty() {
                k * b_x
            } else {
                successors
                    .iter()
                    .map(|&(k_y, b_y, i_y)| compute_in_flight(k, b_x, k_y, b_y, i_y))
                    .max()
                    .expect("non-empty successors")
            };
            (k, worst)
        })
        .min_by(|a, b| (a.1, a.0).cmp(&(b.1, b.0)))
        .expect("non-empty candidates")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::Stage;
    use gp_cluster::{Cluster, DeviceRange};
    use gp_ir::zoo;

    /// Each Table 2 row exercised with concrete numbers.
    #[test]
    fn table2_row_by_row() {
        // Row 1: max{bx,by} < kx bx < ky by -> iy + 2 max.
        assert_eq!(compute_in_flight(2, 2, 3, 2, 10), 10 + 2 * 2);
        // Row 2: max{bx,by} = kx bx < ky by -> iy + max.
        assert_eq!(compute_in_flight(1, 4, 2, 4, 10), 10 + 4);
        // Row 3: bx <= by < ky by < kx bx -> iy + kx bx - ky by + 2 by.
        assert_eq!(compute_in_flight(8, 2, 2, 3, 10), 10 + 16 - 6 + 6);
        // Row 4: bx <= by = ky by < kx bx -> iy + kx bx.
        assert_eq!(compute_in_flight(4, 2, 1, 4, 10), 10 + 8);
        // Row 5: by <= bx < ky by < kx bx -> iy + kx bx - ky by + 2 bx.
        assert_eq!(compute_in_flight(4, 3, 2, 2, 10), 10 + 12 - 4 + 6);
        // Row 6: by <= bx = ky by < kx bx -> iy + kx bx.
        assert_eq!(compute_in_flight(3, 4, 2, 2, 10), 10 + 12);
        // Row 7: max{bx,by} = ky by = kx bx -> iy + ky by.
        assert_eq!(compute_in_flight(1, 4, 1, 4, 10), 10 + 4);
        assert_eq!(compute_in_flight(1, 4, 2, 2, 10), 10 + 4);
        // Row 8: max{bx,by} < ky by = kx bx -> iy + 2 max.
        assert_eq!(compute_in_flight(2, 2, 2, 2, 10), 10 + 2 * 2);
        // Row 9: bx <= kx bx < by <= ky by -> iy + by.
        assert_eq!(compute_in_flight(1, 2, 1, 8, 10), 10 + 8);
        // Row 10: by <= ky by < bx <= kx bx -> iy + kx bx - ky by + bx.
        assert_eq!(compute_in_flight(1, 8, 1, 2, 10), 10 + 8 - 2 + 8);
    }

    #[test]
    fn uniform_1f1b_chain_recovers_classic_counts() {
        // Classic 1F1B with n sequential stages: stage at distance p from
        // the sink holds (p+1) micro-batches in flight.
        let b = 4;
        let mut i = b; // sink
        for p in 1..=5u64 {
            i = compute_in_flight(1, b, 1, b, i);
            assert_eq!(i, (p + 1) * b);
        }
    }

    #[test]
    fn result_always_exceeds_downstream() {
        for k_x in 1..=4u64 {
            for b_x in [1u64, 2, 4, 8] {
                for k_y in 1..=4u64 {
                    for b_y in [1u64, 2, 4, 8] {
                        for i_y in [2u64, 8, 32] {
                            let i = compute_in_flight(k_x, b_x, k_y, b_y, i_y);
                            assert!(
                                i > i_y,
                                "({k_x},{b_x},{k_y},{b_y},{i_y}) -> {i} must exceed i_y"
                            );
                        }
                    }
                }
            }
        }
    }

    fn two_stage_graph(b0: u64, k0: u64, b1: u64, k1: u64) -> StageGraph {
        let model = zoo::mlp_chain(2, 8);
        let cluster = Cluster::tiny_test(2);
        let ops = model.linearize();
        let stages = vec![
            Stage {
                id: StageId(0),
                ops: ops[..3].to_vec(),
                devices: DeviceRange::new(0, 1),
                micro_batch: b0,
                kfkb: k0,
            },
            Stage {
                id: StageId(1),
                ops: ops[3..].to_vec(),
                devices: DeviceRange::new(1, 1),
                micro_batch: b1,
                kfkb: k1,
            },
        ];
        StageGraph::new(model.graph(), &cluster, stages, 16).unwrap()
    }

    #[test]
    fn assignment_on_two_stage_chain() {
        let sg = two_stage_graph(4, 1, 4, 1);
        let t = assign_in_flight(&sg);
        assert_eq!(t.samples(StageId(1)), 4); // sink: k*b
        assert_eq!(t.samples(StageId(0)), 8); // row 7: + b
        assert_eq!(t.micro_batches(&sg, StageId(0)), 2);
        assert_eq!(t.max_samples(), 8);
    }

    #[test]
    fn assignment_with_heterogeneous_micro_batches() {
        // Upstream runs micro-batches of 2, downstream of 4 (Figure 5
        // situation: downstream needs two upstream micro-batches per task).
        let sg = two_stage_graph(2, 1, 4, 1);
        let t = assign_in_flight(&sg);
        assert_eq!(t.samples(StageId(1)), 4);
        // Row 2: max{2,4} = 4... no: kx bx = 2 < ky by = 4, max = 4 > kxbx
        // -> row 9: iy + by = 8.
        assert_eq!(t.samples(StageId(0)), 8);
    }

    #[test]
    fn multi_successor_takes_max() {
        // Branching stage graph: two parallel branch stages merging into a
        // shared sink stage; both branch stages see the sink's constraint.
        let model = zoo::candle_uno(&gp_ir::zoo::CandleUnoConfig::tiny());
        let g = model.graph();
        let cluster = Cluster::tiny_test(3);
        let all: Vec<gp_ir::OpId> = g.nodes().map(|n| n.id).collect();
        let stages = vec![
            Stage {
                id: StageId(0),
                ops: all[0..5].to_vec(),
                devices: DeviceRange::new(0, 1),
                micro_batch: 2,
                kfkb: 1,
            },
            Stage {
                id: StageId(1),
                ops: all[5..10].to_vec(),
                devices: DeviceRange::new(1, 1),
                micro_batch: 2,
                kfkb: 1,
            },
            Stage {
                id: StageId(2),
                ops: all[10..].to_vec(),
                devices: DeviceRange::new(2, 1),
                micro_batch: 2,
                kfkb: 1,
            },
        ];
        let sg = StageGraph::new(g, &cluster, stages, 8).unwrap();
        let t = assign_in_flight(&sg);
        // Both branch stages feed the sink directly: depth 2 -> 2 micro-batches.
        assert_eq!(t.samples(StageId(0)), 4);
        assert_eq!(t.samples(StageId(1)), 4);
        assert_eq!(t.samples(StageId(2)), 2);
    }

    #[test]
    fn best_kfkb_prefers_smaller_footprint() {
        // With a single downstream (1F1B, b=4, i=8), k=1 minimizes the
        // upstream in-flight count.
        let (k, i) = best_kfkb(4, &[(1, 4, 8)], &[1, 2, 4]);
        assert_eq!(k, 1);
        assert_eq!(i, compute_in_flight(1, 4, 1, 4, 8));
        // For a sink stage (no successors), k=1 also wins: k*b grows with k.
        let (k, i) = best_kfkb(4, &[], &[1, 2, 4]);
        assert_eq!((k, i), (1, 4));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_params_panic() {
        let _ = compute_in_flight(0, 1, 1, 1, 1);
    }
}
