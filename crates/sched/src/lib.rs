//! # gp-sched — GraphPipe's static micro-batch scheduler (§6)
//!
//! This crate implements the second core component of GraphPipe: given a
//! partition of the model into a DAG of pipeline stages, it decides *when*
//! each stage runs each micro-batch's forward and backward pass, minimizing
//! the number of in-flight samples (and therefore activation memory) while
//! preserving continuous pipelining.
//!
//! The pieces map one-to-one onto the paper:
//!
//! * [`Stage`], [`StageGraph`] — the stage tuple `<G_i, b_i, D_i, Pi_i>` and
//!   the validity conditions C1–C3 of §3;
//! * [`compute_in_flight`] — the closed-form `ComputeInFlight` of Table 2
//!   (Appendix A.1), generalized over per-stage micro-batch sizes and kFkB
//!   schedules;
//! * [`assign_in_flight`] — the backward traversal of the stage DAG that
//!   propagates in-flight counts from sinks to sources (§6);
//! * [`StageSchedule::kfkb`] / [`schedule_tasks`] — `ScheduleTask`, the
//!   greedy earliest-backward order generation of Algorithm 2;
//! * [`PipelineSchedule::validate_c4`] — condition C4;
//! * [`TaskIndex`] — the dense `(stage, micro-batch, pass)` → flat-offset
//!   map consumers key per-task arenas by (`gp-sim`'s relaxation columns
//!   are the motivating user; see DESIGN.md §"Scale: the simulator at
//!   512+ devices").
//!
//! # Examples
//!
//! ```
//! use gp_cluster::{Cluster, DeviceRange};
//! use gp_ir::zoo;
//! use gp_sched::{assign_in_flight, schedule_tasks, Stage, StageGraph, StageId};
//!
//! // Two sequential stages over a small MLP, 1F1B, micro-batch 2.
//! let model = zoo::mlp_chain(2, 8);
//! let ops = model.linearize();
//! let cluster = Cluster::tiny_test(2);
//! let stages = vec![
//!     Stage { id: StageId(0), ops: ops[..3].to_vec(),
//!             devices: DeviceRange::new(0, 1), micro_batch: 2, kfkb: 1 },
//!     Stage { id: StageId(1), ops: ops[3..].to_vec(),
//!             devices: DeviceRange::new(1, 1), micro_batch: 2, kfkb: 1 },
//! ];
//! let sg = StageGraph::new(model.graph(), &cluster, stages, 8)?;
//! let inflight = assign_in_flight(&sg);
//! assert_eq!(inflight.samples(StageId(0)), 4); // one extra micro-batch upstream
//! let schedule = schedule_tasks(&sg, &inflight);
//! schedule.validate_c4(&sg)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod inflight;
mod stage;
mod tasks;

pub use inflight::{assign_in_flight, best_kfkb, compute_in_flight, InFlightTable};
pub use stage::{Stage, StageGraph, StageGraphError, StageId};
pub use tasks::{
    covering_micro_batches, schedule_tasks, PipelineSchedule, ScheduleError, StageSchedule, Task,
    TaskIndex,
};
