//! Pipeline stages and the stage graph (§3 of the paper).
//!
//! A GPP strategy is a DAG of stages `S_i = <G_i, b_i, D_i, Pi_i>`: a convex
//! subgraph of the model, a micro-batch size, a device set, and a micro-batch
//! schedule. This module defines the first three elements plus the derived
//! stage DAG and its validity conditions C1–C3; schedules (`Pi_i`, condition
//! C4) live in [`crate::tasks`].
//!
//! gp-lint: deterministic — this module's outputs feed plan
//! fingerprints or the artifact codec; `cargo xtask lint` scans it for
//! nondeterminism hazards (DESIGN.md §"Determinism lint").

use gp_cluster::{Cluster, DeviceRange};
use gp_ir::{Graph, OpId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Identifier of a stage within a [`StageGraph`]; dense indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StageId(pub u32);

impl StageId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// One pipeline stage: a convex subgraph executed on a device range with a
/// per-stage micro-batch size and kFkB schedule parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stage {
    /// The stage's id (must equal its position in the stage list).
    pub id: StageId,
    /// Operators of the stage (`G_i`), in topological order.
    pub ops: Vec<OpId>,
    /// Devices assigned to the stage (`D_i`); replicas if more than one.
    pub devices: DeviceRange,
    /// Micro-batch size (`b_i`); there are `B / b_i` micro-batches.
    pub micro_batch: u64,
    /// `k` of the stage's kFkB schedule (1 = the classic 1F1B).
    pub kfkb: u64,
}

impl Stage {
    /// Data-parallel degree of the stage (`|D_i|`).
    pub fn dp_degree(&self) -> usize {
        self.devices.len()
    }

    /// Number of micro-batches per mini-batch of size `mini_batch`.
    pub fn num_micro_batches(&self, mini_batch: u64) -> u64 {
        mini_batch / self.micro_batch
    }
}

/// Errors raised when a stage graph violates the validity conditions of §3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StageGraphError {
    /// An operator is assigned to zero or multiple stages (violates C1).
    NotAPartition(OpId),
    /// A stage's operator set is not convex (violates C1).
    NotConvex(StageId),
    /// The derived stage graph has a cycle, so no valid execution order
    /// exists.
    CyclicStages,
    /// Two stages' device ranges overlap (violates C3).
    DeviceOverlap(StageId, StageId),
    /// Device ranges do not cover the cluster exactly (violates C3).
    DeviceCoverage {
        /// Devices assigned across all stages.
        assigned: usize,
        /// Devices available in the cluster.
        available: usize,
    },
    /// A stage's micro-batch size does not divide the mini-batch size.
    BadMicroBatch(StageId),
    /// A stage has an empty operator list or `kfkb == 0`.
    EmptyStage(StageId),
}

impl fmt::Display for StageGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StageGraphError::NotAPartition(op) => {
                write!(
                    f,
                    "operator {op} is not covered exactly once by the stages (C1)"
                )
            }
            StageGraphError::NotConvex(s) => {
                write!(f, "stage {s} is not a convex subgraph (C1)")
            }
            StageGraphError::CyclicStages => write!(f, "stage dependencies form a cycle"),
            StageGraphError::DeviceOverlap(a, b) => {
                write!(f, "stages {a} and {b} share devices (C3)")
            }
            StageGraphError::DeviceCoverage {
                assigned,
                available,
            } => write!(
                f,
                "stages use {assigned} devices but the cluster has {available} (C3)"
            ),
            StageGraphError::BadMicroBatch(s) => write!(
                f,
                "stage {s}: micro-batch size must be positive and divide the mini-batch size"
            ),
            StageGraphError::EmptyStage(s) => {
                write!(f, "stage {s} is empty or has kfkb == 0")
            }
        }
    }
}

impl std::error::Error for StageGraphError {}

/// A validated DAG of pipeline stages over a model graph.
///
/// Stage dependency edges are *derived* from the model's data edges
/// (condition C2): `S_i -> S_j` exists iff some operator edge crosses from
/// `S_i` into `S_j`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageGraph {
    stages: Vec<Stage>,
    preds: Vec<Vec<StageId>>,
    succs: Vec<Vec<StageId>>,
    mini_batch: u64,
    /// `stage_of[op] = stage index` lookup.
    stage_of: Vec<u32>,
}

impl StageGraph {
    /// Builds and validates a stage graph over `graph` for the given
    /// cluster and mini-batch size.
    ///
    /// # Errors
    ///
    /// Returns a [`StageGraphError`] if any of the §3 validity conditions
    /// C1–C3 fails, the derived stage DAG is cyclic, or a micro-batch size
    /// does not divide `mini_batch`.
    pub fn new(
        graph: &Graph,
        cluster: &Cluster,
        stages: Vec<Stage>,
        mini_batch: u64,
    ) -> Result<Self, StageGraphError> {
        Self::build(graph, cluster, stages, mini_batch, false)
    }

    /// Like [`StageGraph::new`], but additionally imposes a strict
    /// sequential order `S_0 -> S_1 -> ... -> S_n`.
    ///
    /// This is how sequential pipeline parallelism (SPP) realizes a
    /// linearized model: even when two consecutive stages have no data
    /// dependency (e.g. they hold different branches of the DNN), the SPP
    /// scheduler executes them in pipeline order — the "imaginary linear
    /// dependencies" of Figure 2. The extra edges keep C2 satisfied while
    /// making the pipeline depth equal to the stage count.
    ///
    /// # Errors
    ///
    /// Same as [`StageGraph::new`].
    pub fn new_sequential(
        graph: &Graph,
        cluster: &Cluster,
        stages: Vec<Stage>,
        mini_batch: u64,
    ) -> Result<Self, StageGraphError> {
        Self::build(graph, cluster, stages, mini_batch, true)
    }

    fn build(
        graph: &Graph,
        cluster: &Cluster,
        stages: Vec<Stage>,
        mini_batch: u64,
        impose_sequential: bool,
    ) -> Result<Self, StageGraphError> {
        // Basic per-stage checks.
        for (i, s) in stages.iter().enumerate() {
            debug_assert_eq!(s.id.index(), i, "stage ids must be dense");
            if s.ops.is_empty() || s.kfkb == 0 {
                return Err(StageGraphError::EmptyStage(s.id));
            }
            if s.micro_batch == 0 || !mini_batch.is_multiple_of(s.micro_batch) {
                return Err(StageGraphError::BadMicroBatch(s.id));
            }
        }
        // C1: exact cover.
        let mut stage_of = vec![u32::MAX; graph.len()];
        for s in &stages {
            for &op in &s.ops {
                if stage_of[op.index()] != u32::MAX {
                    return Err(StageGraphError::NotAPartition(op));
                }
                stage_of[op.index()] = s.id.0;
            }
        }
        if let Some(op) = (0..graph.len()).find(|&i| stage_of[i] == u32::MAX) {
            return Err(StageGraphError::NotAPartition(OpId(op as u32)));
        }
        // C1: convexity.
        for s in &stages {
            if !graph.is_convex(&s.ops) {
                return Err(StageGraphError::NotConvex(s.id));
            }
        }
        // C3: device partition.
        for (i, a) in stages.iter().enumerate() {
            for b in &stages[i + 1..] {
                if a.devices.overlaps(&b.devices) {
                    return Err(StageGraphError::DeviceOverlap(a.id, b.id));
                }
            }
        }
        let assigned: usize = stages.iter().map(|s| s.devices.len()).sum();
        let in_range = stages
            .iter()
            .all(|s| s.devices.last().index() < cluster.device_count());
        if assigned != cluster.device_count() || !in_range {
            return Err(StageGraphError::DeviceCoverage {
                assigned,
                available: cluster.device_count(),
            });
        }
        // C2: derive stage edges from operator edges.
        let n = stages.len();
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        let connect = |su: StageId,
                       sv: StageId,
                       preds: &mut Vec<Vec<StageId>>,
                       succs: &mut Vec<Vec<StageId>>| {
            if !succs[su.index()].contains(&sv) {
                succs[su.index()].push(sv);
                preds[sv.index()].push(su);
            }
        };
        for (u, v) in graph.edges() {
            let (su, sv) = (stage_of[u.index()], stage_of[v.index()]);
            if su != sv {
                connect(StageId(su), StageId(sv), &mut preds, &mut succs);
            }
        }
        if impose_sequential {
            for i in 1..n {
                connect(
                    StageId(i as u32 - 1),
                    StageId(i as u32),
                    &mut preds,
                    &mut succs,
                );
            }
        }
        for list in preds.iter_mut().chain(succs.iter_mut()) {
            list.sort_unstable();
        }
        let sg = StageGraph {
            stages,
            preds,
            succs,
            mini_batch,
            stage_of,
        };
        if sg.topo_order().len() != sg.len() {
            return Err(StageGraphError::CyclicStages);
        }
        Ok(sg)
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether there are no stages (never true for a validated graph).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// The stage with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn stage(&self, id: StageId) -> &Stage {
        &self.stages[id.index()]
    }

    /// Iterates over stages in id order.
    pub fn stages(&self) -> impl Iterator<Item = &Stage> {
        self.stages.iter()
    }

    /// The global mini-batch size `B`.
    pub fn mini_batch(&self) -> u64 {
        self.mini_batch
    }

    /// Stages that must run before `id` in a forward pass.
    pub fn preds(&self, id: StageId) -> &[StageId] {
        &self.preds[id.index()]
    }

    /// Stages that consume `id`'s outputs.
    pub fn succs(&self, id: StageId) -> &[StageId] {
        &self.succs[id.index()]
    }

    /// The stage owning an operator.
    pub fn stage_of(&self, op: OpId) -> StageId {
        StageId(self.stage_of[op.index()])
    }

    /// All stage dependency edges `(upstream, downstream)`, in `(upstream,
    /// downstream)` id order. Includes both data-derived edges (C2) and any
    /// sequential edges imposed by [`StageGraph::new_sequential`] — which is
    /// what lets a serialized stage graph be reconstructed and verified
    /// exactly (see the `gp-serve` plan artifact codec).
    pub fn stage_edges(&self) -> Vec<(StageId, StageId)> {
        let mut edges: Vec<(StageId, StageId)> = self
            .stages
            .iter()
            .flat_map(|s| self.succs[s.id.index()].iter().map(move |&t| (s.id, t)))
            .collect();
        edges.sort_unstable();
        edges
    }

    /// A topological order of stage ids.
    pub fn topo_order(&self) -> Vec<StageId> {
        let mut indeg: Vec<usize> = self.preds.iter().map(Vec::len).collect();
        let mut queue: VecDeque<StageId> = (0..self.stages.len() as u32)
            .map(StageId)
            .filter(|s| indeg[s.index()] == 0)
            .collect();
        let mut order = Vec::with_capacity(self.stages.len());
        while let Some(id) = queue.pop_front() {
            order.push(id);
            for &s in &self.succs[id.index()] {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    queue.push_back(s);
                }
            }
        }
        order
    }

    /// Pipeline depth: the diameter of the stage DAG in stages (§2,
    /// "Reduced memory requirement"). For a sequential pipeline this equals
    /// the stage count; GPP's parallel branches shrink it.
    pub fn pipeline_depth(&self) -> usize {
        let order = self.topo_order();
        let mut depth = vec![1usize; self.stages.len()];
        for &id in &order {
            for &s in self.succs(id) {
                depth[s.index()] = depth[s.index()].max(depth[id.index()] + 1);
            }
        }
        depth.into_iter().max().unwrap_or(0)
    }

    /// Longest path (in stages, inclusive) from `id` to any sink.
    pub fn depth_to_sink(&self, id: StageId) -> usize {
        let order = self.topo_order();
        let mut depth = vec![1usize; self.stages.len()];
        for &s in order.iter().rev() {
            for &succ in self.succs(s) {
                depth[s.index()] = depth[s.index()].max(depth[succ.index()] + 1);
            }
        }
        depth[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_ir::zoo;

    /// Split a 4-layer MLP chain (10 ops) into `n` stages of contiguous ops
    /// on a cluster of `n` devices.
    fn chain_stages(n: usize) -> (gp_ir::SpModel, Cluster, Vec<Stage>) {
        let model = zoo::mlp_chain(4, 16);
        let cluster = Cluster::tiny_test(n);
        let ops = model.linearize();
        let per = ops.len().div_ceil(n);
        let stages: Vec<Stage> = ops
            .chunks(per)
            .enumerate()
            .map(|(i, chunk)| Stage {
                id: StageId(i as u32),
                ops: chunk.to_vec(),
                devices: DeviceRange::new(i as u32, 1),
                micro_batch: 2,
                kfkb: 1,
            })
            .collect();
        (model, cluster, stages)
    }

    #[test]
    fn sequential_chain_has_linear_depth() {
        let (model, cluster, stages) = chain_stages(2);
        let sg = StageGraph::new(model.graph(), &cluster, stages, 8).unwrap();
        assert_eq!(sg.len(), 2);
        assert_eq!(sg.pipeline_depth(), 2);
        assert_eq!(sg.succs(StageId(0)), &[StageId(1)]);
        assert_eq!(sg.preds(StageId(1)), &[StageId(0)]);
        assert_eq!(sg.depth_to_sink(StageId(0)), 2);
        assert_eq!(sg.depth_to_sink(StageId(1)), 1);
    }

    #[test]
    fn branch_model_depth_is_diameter() {
        // Two-branch model: branches in parallel stages + a merge stage.
        let model = zoo::candle_uno(&gp_ir::zoo::CandleUnoConfig::tiny());
        let cluster = Cluster::tiny_test(3);
        let g = model.graph();
        // Ops: branch0 = input,fc,relu,fc,relu (0-4), branch1 = 5-9,
        // merge = concat..loss (10-15).
        let all: Vec<OpId> = g.nodes().map(|n| n.id).collect();
        let stages = vec![
            Stage {
                id: StageId(0),
                ops: all[0..5].to_vec(),
                devices: DeviceRange::new(0, 1),
                micro_batch: 2,
                kfkb: 1,
            },
            Stage {
                id: StageId(1),
                ops: all[5..10].to_vec(),
                devices: DeviceRange::new(1, 1),
                micro_batch: 2,
                kfkb: 1,
            },
            Stage {
                id: StageId(2),
                ops: all[10..].to_vec(),
                devices: DeviceRange::new(2, 1),
                micro_batch: 2,
                kfkb: 1,
            },
        ];
        let sg = StageGraph::new(g, &cluster, stages, 8).unwrap();
        // 3 stages but depth 2: the branches are parallel.
        assert_eq!(sg.len(), 3);
        assert_eq!(sg.pipeline_depth(), 2);
        assert_eq!(sg.succs(StageId(0)), &[StageId(2)]);
        assert_eq!(sg.succs(StageId(1)), &[StageId(2)]);
    }

    #[test]
    fn rejects_op_in_two_stages() {
        let (model, cluster, mut stages) = chain_stages(2);
        let dup = stages[0].ops[0];
        stages[1].ops.push(dup);
        let err = StageGraph::new(model.graph(), &cluster, stages, 8).unwrap_err();
        assert_eq!(err, StageGraphError::NotAPartition(dup));
    }

    #[test]
    fn rejects_missing_op() {
        let (model, cluster, mut stages) = chain_stages(2);
        let dropped = stages[1].ops.pop().unwrap();
        let err = StageGraph::new(model.graph(), &cluster, stages, 8).unwrap_err();
        assert_eq!(err, StageGraphError::NotAPartition(dropped));
    }

    #[test]
    fn rejects_non_convex_stage() {
        let (model, cluster, _) = chain_stages(2);
        let ops = model.linearize();
        // Stage 0 takes ops {0, 2}, skipping 1: not convex.
        let mut s0: Vec<OpId> = vec![ops[0], ops[2]];
        let mut s1: Vec<OpId> = vec![ops[1]];
        s1.extend_from_slice(&ops[3..]);
        s0.sort();
        s1.sort();
        let stages = vec![
            Stage {
                id: StageId(0),
                ops: s0,
                devices: DeviceRange::new(0, 1),
                micro_batch: 2,
                kfkb: 1,
            },
            Stage {
                id: StageId(1),
                ops: s1,
                devices: DeviceRange::new(1, 1),
                micro_batch: 2,
                kfkb: 1,
            },
        ];
        let err = StageGraph::new(model.graph(), &cluster, stages, 8).unwrap_err();
        // Either stage may be flagged first; both are non-convex here.
        assert!(matches!(err, StageGraphError::NotConvex(_)), "{err:?}");
    }

    #[test]
    fn rejects_overlapping_devices() {
        let (model, cluster, mut stages) = chain_stages(2);
        stages[1].devices = DeviceRange::new(0, 1);
        let err = StageGraph::new(model.graph(), &cluster, stages, 8).unwrap_err();
        assert_eq!(err, StageGraphError::DeviceOverlap(StageId(0), StageId(1)));
    }

    #[test]
    fn rejects_incomplete_device_coverage() {
        let (model, _, stages) = chain_stages(2);
        let bigger = Cluster::tiny_test(4);
        let err = StageGraph::new(model.graph(), &bigger, stages, 8).unwrap_err();
        assert_eq!(
            err,
            StageGraphError::DeviceCoverage {
                assigned: 2,
                available: 4
            }
        );
    }

    #[test]
    fn rejects_bad_micro_batch() {
        let (model, cluster, mut stages) = chain_stages(2);
        stages[0].micro_batch = 3; // does not divide 8
        let err = StageGraph::new(model.graph(), &cluster, stages, 8).unwrap_err();
        assert_eq!(err, StageGraphError::BadMicroBatch(StageId(0)));
    }

    #[test]
    fn rejects_empty_stage() {
        let (model, cluster, mut stages) = chain_stages(2);
        stages[0].kfkb = 0;
        let err = StageGraph::new(model.graph(), &cluster, stages, 8).unwrap_err();
        assert_eq!(err, StageGraphError::EmptyStage(StageId(0)));
    }

    #[test]
    fn stage_of_lookup() {
        let (model, cluster, stages) = chain_stages(2);
        let sg = StageGraph::new(model.graph(), &cluster, stages, 8).unwrap();
        let first_op = sg.stage(StageId(0)).ops[0];
        assert_eq!(sg.stage_of(first_op), StageId(0));
        let last_op = *sg.stage(StageId(1)).ops.last().unwrap();
        assert_eq!(sg.stage_of(last_op), StageId(1));
    }

    #[test]
    fn micro_batch_helpers() {
        let s = Stage {
            id: StageId(0),
            ops: vec![OpId(0)],
            devices: DeviceRange::new(0, 2),
            micro_batch: 4,
            kfkb: 1,
        };
        assert_eq!(s.dp_degree(), 2);
        assert_eq!(s.num_micro_batches(32), 8);
    }

    #[test]
    fn error_display() {
        let e = StageGraphError::DeviceCoverage {
            assigned: 2,
            available: 4,
        };
        assert!(e.to_string().contains("2 devices"));
    }
}

#[cfg(test)]
mod sequential_tests {
    use super::*;
    use gp_ir::zoo;

    #[test]
    fn sequential_constructor_imposes_chain() {
        // Two parallel branch stages: without imposition they'd be
        // concurrent; SPP forces S0 -> S1.
        let model = zoo::candle_uno(&gp_ir::zoo::CandleUnoConfig::tiny());
        let g = model.graph();
        let cluster = Cluster::tiny_test(3);
        let all: Vec<gp_ir::OpId> = g.nodes().map(|n| n.id).collect();
        let make = |ops: &[gp_ir::OpId], i: u32| Stage {
            id: StageId(i),
            ops: ops.to_vec(),
            devices: DeviceRange::new(i, 1),
            micro_batch: 2,
            kfkb: 1,
        };
        let stages = vec![
            make(&all[0..5], 0),
            make(&all[5..10], 1),
            make(&all[10..], 2),
        ];
        let dag = StageGraph::new(g, &cluster, stages.clone(), 8).unwrap();
        assert_eq!(dag.pipeline_depth(), 2);
        let chain = StageGraph::new_sequential(g, &cluster, stages, 8).unwrap();
        assert_eq!(chain.pipeline_depth(), 3);
        // The imposed edge S0 -> S1 joins the real data edge S0 -> S2.
        assert!(chain.succs(StageId(0)).contains(&StageId(1)));
        assert!(chain.succs(StageId(0)).contains(&StageId(2)));
        assert!(chain.succs(StageId(1)).contains(&StageId(2)));
    }
}
