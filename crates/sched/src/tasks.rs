//! Per-stage task orders (the micro-batch schedules `Pi_i` of §3/§6).
//!
//! `ScheduleTask` in Algorithm 2 "adopts greedy scheduling that schedules
//! backward passes as early as possible". Concretely each stage runs a
//! kFkB order: `l` warm-up forwards, then alternating groups of `k`
//! backwards and `k` forwards, then the remaining backwards — with `l`
//! chosen as the minimal in-flight count from
//! [`crate::inflight::assign_in_flight`].
//!
//! gp-lint: deterministic — this module's outputs feed plan
//! fingerprints or the artifact codec; `cargo xtask lint` scans it for
//! nondeterminism hazards (DESIGN.md §"Determinism lint").

use crate::inflight::InFlightTable;
use crate::stage::{StageGraph, StageId};
use gp_cost::Pass;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Range;

/// One forward or backward pass of one micro-batch on one stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Task {
    /// Forward or backward.
    pub pass: Pass,
    /// Micro-batch index within the mini-batch (stage-local numbering).
    pub mb: u32,
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pass {
            Pass::Forward => write!(f, "F{}", self.mb + 1),
            Pass::Backward => write!(f, "B{}", self.mb + 1),
        }
    }
}

/// Errors raised when a task order violates condition C4 of §3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// Forward passes are out of order or duplicated.
    ForwardOrder(StageId),
    /// Backward passes are out of order or duplicated.
    BackwardOrder(StageId),
    /// A backward pass precedes its own forward pass.
    BackwardBeforeForward(StageId, u32),
    /// The schedule does not contain exactly `B / b` passes per direction.
    WrongTaskCount(StageId),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::ForwardOrder(s) => {
                write!(f, "stage {s}: forward passes out of order (C4)")
            }
            ScheduleError::BackwardOrder(s) => {
                write!(f, "stage {s}: backward passes out of order (C4)")
            }
            ScheduleError::BackwardBeforeForward(s, mb) => {
                write!(
                    f,
                    "stage {s}: backward of micro-batch {mb} precedes its forward (C4)"
                )
            }
            ScheduleError::WrongTaskCount(s) => {
                write!(f, "stage {s}: wrong number of scheduled passes")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// The ordered task list of one stage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageSchedule {
    /// The stage this order belongs to.
    pub stage: StageId,
    /// Warm-up length `l` in micro-batches.
    pub warmup: u64,
    /// The complete ordered pass list for one training iteration.
    pub tasks: Vec<Task>,
}

impl StageSchedule {
    /// Builds the kFkB order for a stage with `num_micro_batches` tasks per
    /// direction, warm-up `warmup` (clamped to feasible values) and group
    /// size `k`.
    ///
    /// # Panics
    ///
    /// Panics if `num_micro_batches == 0` or `k == 0`.
    pub fn kfkb(stage: StageId, num_micro_batches: u64, warmup: u64, k: u64) -> Self {
        assert!(num_micro_batches > 0, "need at least one micro-batch");
        assert!(k > 0, "kFkB requires k >= 1");
        let m = num_micro_batches;
        let l = warmup.max(k).min(m);
        let mut tasks = Vec::with_capacity(2 * m as usize);
        for mb in 0..l {
            tasks.push(Task {
                pass: Pass::Forward,
                mb: mb as u32,
            });
        }
        let (mut next_f, mut next_b) = (l, 0u64);
        while next_b < m {
            for _ in 0..k {
                if next_b < next_f && next_b < m {
                    tasks.push(Task {
                        pass: Pass::Backward,
                        mb: next_b as u32,
                    });
                    next_b += 1;
                }
            }
            for _ in 0..k {
                if next_f < m {
                    tasks.push(Task {
                        pass: Pass::Forward,
                        mb: next_f as u32,
                    });
                    next_f += 1;
                }
            }
        }
        StageSchedule {
            stage,
            warmup: l,
            tasks,
        }
    }

    /// Peak number of in-flight micro-batches over the whole order
    /// (forwards executed minus backwards executed, maximized over
    /// prefixes).
    pub fn peak_in_flight_micro_batches(&self) -> u64 {
        let mut cur: i64 = 0;
        let mut peak: i64 = 0;
        for t in &self.tasks {
            match t.pass {
                Pass::Forward => cur += 1,
                Pass::Backward => cur -= 1,
            }
            peak = peak.max(cur);
        }
        peak as u64
    }

    /// Peak in-flight samples (micro-batches times micro-batch size).
    pub fn peak_in_flight_samples(&self, micro_batch: u64) -> u64 {
        self.peak_in_flight_micro_batches() * micro_batch
    }

    /// Checks condition C4: forwards in order, backwards in order, and each
    /// forward before its backward; exactly `num_micro_batches` of each.
    ///
    /// # Errors
    ///
    /// Returns the first violated clause as a [`ScheduleError`].
    pub fn validate_c4(&self, num_micro_batches: u64) -> Result<(), ScheduleError> {
        let mut next_f = 0u32;
        let mut next_b = 0u32;
        for t in &self.tasks {
            match t.pass {
                Pass::Forward => {
                    if t.mb != next_f {
                        return Err(ScheduleError::ForwardOrder(self.stage));
                    }
                    next_f += 1;
                }
                Pass::Backward => {
                    if t.mb != next_b {
                        return Err(ScheduleError::BackwardOrder(self.stage));
                    }
                    if t.mb >= next_f {
                        return Err(ScheduleError::BackwardBeforeForward(self.stage, t.mb));
                    }
                    next_b += 1;
                }
            }
        }
        if next_f as u64 != num_micro_batches || next_b as u64 != num_micro_batches {
            return Err(ScheduleError::WrongTaskCount(self.stage));
        }
        Ok(())
    }
}

/// The complete static schedule of a strategy: one task order per stage.
///
/// # Examples
///
/// ```
/// use gp_sched::{PipelineSchedule, StageId, StageSchedule};
///
/// // Two 1F1B stages over 4 micro-batches; the upstream stage warms up
/// // one extra micro-batch.
/// let schedule = PipelineSchedule {
///     per_stage: vec![
///         StageSchedule::kfkb(StageId(0), 4, 2, 1),
///         StageSchedule::kfkb(StageId(1), 4, 1, 1),
///     ],
/// };
/// assert_eq!(schedule.stage(StageId(0)).warmup, 2);
/// assert_eq!(schedule.stage(StageId(0)).tasks.len(), 8); // 4 F + 4 B
/// assert_eq!(schedule.stage(StageId(1)).peak_in_flight_micro_batches(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineSchedule {
    /// Task orders indexed by stage id.
    pub per_stage: Vec<StageSchedule>,
}

impl PipelineSchedule {
    /// The schedule of a stage.
    pub fn stage(&self, id: StageId) -> &StageSchedule {
        &self.per_stage[id.index()]
    }

    /// Validates C4 for every stage against the stage graph's micro-batch
    /// counts.
    ///
    /// # Errors
    ///
    /// Returns the first stage's violation.
    pub fn validate_c4(&self, sg: &StageGraph) -> Result<(), ScheduleError> {
        for s in &self.per_stage {
            let m = sg.stage(s.stage).num_micro_batches(sg.mini_batch());
            s.validate_c4(m)?;
        }
        Ok(())
    }
}

/// Generates the full pipeline schedule from a stage graph and its
/// in-flight table (the output of Algorithm 2 applied to every stage).
pub fn schedule_tasks(sg: &StageGraph, inflight: &InFlightTable) -> PipelineSchedule {
    let per_stage = sg
        .stages()
        .map(|s| {
            let m = s.num_micro_batches(sg.mini_batch());
            let warmup = inflight.micro_batches(sg, s.id);
            StageSchedule::kfkb(s.id, m, warmup, s.kfkb)
        })
        .collect();
    PipelineSchedule { per_stage }
}

/// Dense index over every task instance `(stage, micro-batch, pass)` of
/// one training iteration.
///
/// Stages own contiguous index blocks in id order; within a stage, tasks
/// are laid out `[F(0), B(0), F(1), B(1), ...]`. The index is what lets
/// per-task state live in flat, preallocated columns instead of hash maps
/// — `gp-sim`'s relaxation engine keys its completion-time, span, and
/// watcher arenas by it.
///
/// # Examples
///
/// ```
/// use gp_cluster::{Cluster, DeviceRange};
/// use gp_cost::Pass;
/// use gp_ir::zoo;
/// use gp_sched::{Stage, StageGraph, StageId, TaskIndex};
///
/// let model = zoo::mlp_chain(2, 8);
/// let ops = model.linearize();
/// let cluster = Cluster::tiny_test(2);
/// let stages = vec![
///     Stage { id: StageId(0), ops: ops[..3].to_vec(),
///             devices: DeviceRange::new(0, 1), micro_batch: 2, kfkb: 1 },
///     Stage { id: StageId(1), ops: ops[3..].to_vec(),
///             devices: DeviceRange::new(1, 1), micro_batch: 2, kfkb: 1 },
/// ];
/// let sg = StageGraph::new(model.graph(), &cluster, stages, 8)?;
/// let idx = TaskIndex::new(&sg);
/// assert_eq!(idx.len(), 16); // 2 stages x 4 micro-batches x 2 passes
/// let i = idx.index(StageId(1), 3, Pass::Backward);
/// assert_eq!(idx.task_at(i), (StageId(1), 3, Pass::Backward));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct TaskIndex {
    /// `offsets[s]..offsets[s + 1]` is stage `s`'s index block.
    offsets: Vec<usize>,
    total: usize,
}

impl TaskIndex {
    /// Builds the index for a stage graph (each stage contributes
    /// `2 * B / b_i` task instances).
    pub fn new(sg: &StageGraph) -> TaskIndex {
        let mut offsets = Vec::with_capacity(sg.len() + 1);
        let mut total = 0usize;
        for s in sg.stages() {
            offsets.push(total);
            total += 2 * s.num_micro_batches(sg.mini_batch()) as usize;
        }
        offsets.push(total);
        TaskIndex { offsets, total }
    }

    /// The dense index of one task instance.
    ///
    /// `mb` must be below the stage's micro-batch count: the mapping is
    /// only a bijection in range, and an out-of-range `mb` would alias
    /// into the next stage's block (checked by a `debug_assert`; release
    /// builds do not pay for the bounds check on this hot path).
    ///
    /// # Panics
    ///
    /// Panics if `stage` does not belong to the indexed graph, and — in
    /// debug builds — if `mb` is out of range for the stage.
    pub fn index(&self, stage: StageId, mb: u32, pass: Pass) -> usize {
        let p = match pass {
            Pass::Forward => 0,
            Pass::Backward => 1,
        };
        let i = self.offsets[stage.index()] + 2 * mb as usize + p;
        debug_assert!(
            i < self.offsets[stage.index() + 1],
            "micro-batch {mb} out of range for {stage}"
        );
        i
    }

    /// Total number of task instances across all stages.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether the iteration has no tasks (never true for a validated
    /// stage graph with a positive mini-batch).
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The contiguous index range owned by a stage.
    pub fn stage_tasks(&self, stage: StageId) -> Range<usize> {
        self.offsets[stage.index()]..self.offsets[stage.index() + 1]
    }

    /// Inverts a dense index back to `(stage, micro-batch, pass)`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn task_at(&self, i: usize) -> (StageId, u32, Pass) {
        assert!(i < self.total, "task index {i} out of range");
        // The last offset <= i locates the owning stage.
        let s = self.offsets.partition_point(|&o| o <= i) - 1;
        let local = i - self.offsets[s];
        let pass = if local.is_multiple_of(2) {
            Pass::Forward
        } else {
            Pass::Backward
        };
        (StageId(s as u32), (local / 2) as u32, pass)
    }
}

/// The producer micro-batches (of size `b_producer`) that cover consumer
/// micro-batch `mb_consumer` of size `b_consumer`.
///
/// Micro-batches partition the sample axis contiguously, so the covering
/// set is a range. With power-of-two sizes the cover is exact.
pub fn covering_micro_batches(b_producer: u64, b_consumer: u64, mb_consumer: u32) -> Range<u32> {
    let lo = (mb_consumer as u64 * b_consumer) / b_producer;
    let hi = ((mb_consumer as u64 + 1) * b_consumer).div_ceil(b_producer);
    lo as u32..hi as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn render(s: &StageSchedule) -> String {
        s.tasks
            .iter()
            .map(Task::to_string)
            .collect::<Vec<_>>()
            .join(" ")
    }

    #[test]
    fn sink_1f1b_alternates() {
        let s = StageSchedule::kfkb(StageId(0), 4, 1, 1);
        assert_eq!(render(&s), "F1 B1 F2 B2 F3 B3 F4 B4");
        assert_eq!(s.peak_in_flight_micro_batches(), 1);
        s.validate_c4(4).unwrap();
    }

    #[test]
    fn classic_1f1b_with_warmup_two() {
        let s = StageSchedule::kfkb(StageId(0), 4, 2, 1);
        assert_eq!(render(&s), "F1 F2 B1 F3 B2 F4 B3 B4");
        assert_eq!(s.peak_in_flight_micro_batches(), 2);
        s.validate_c4(4).unwrap();
    }

    #[test]
    fn kfkb_groups_of_two() {
        let s = StageSchedule::kfkb(StageId(0), 4, 2, 2);
        assert_eq!(render(&s), "F1 F2 B1 B2 F3 F4 B3 B4");
        assert_eq!(s.peak_in_flight_micro_batches(), 2);
        s.validate_c4(4).unwrap();
    }

    #[test]
    fn warmup_clamped_to_micro_batch_count() {
        let s = StageSchedule::kfkb(StageId(0), 2, 8, 1);
        assert_eq!(render(&s), "F1 F2 B1 B2");
        assert_eq!(s.warmup, 2);
        s.validate_c4(2).unwrap();
    }

    #[test]
    fn warmup_at_least_k() {
        let s = StageSchedule::kfkb(StageId(0), 8, 1, 2);
        assert_eq!(s.warmup, 2);
        s.validate_c4(8).unwrap();
        assert_eq!(s.peak_in_flight_micro_batches(), 2);
    }

    #[test]
    fn peak_matches_warmup() {
        for m in [1u64, 2, 4, 8, 16] {
            for l in 1..=m {
                for k in [1u64, 2, 4] {
                    let s = StageSchedule::kfkb(StageId(0), m, l, k);
                    s.validate_c4(m).unwrap();
                    assert_eq!(
                        s.peak_in_flight_micro_batches(),
                        l.max(k).min(m),
                        "m={m} l={l} k={k}: {}",
                        render(&s)
                    );
                }
            }
        }
    }

    #[test]
    fn c4_catches_reordered_forwards() {
        let mut s = StageSchedule::kfkb(StageId(3), 4, 2, 1);
        // Swap the two warm-up forwards.
        s.tasks.swap(0, 1);
        assert_eq!(
            s.validate_c4(4),
            Err(ScheduleError::ForwardOrder(StageId(3)))
        );
    }

    #[test]
    fn c4_catches_backward_before_forward() {
        let s = StageSchedule {
            stage: StageId(1),
            warmup: 1,
            tasks: vec![
                Task {
                    pass: Pass::Backward,
                    mb: 0,
                },
                Task {
                    pass: Pass::Forward,
                    mb: 0,
                },
            ],
        };
        assert_eq!(
            s.validate_c4(1),
            Err(ScheduleError::BackwardBeforeForward(StageId(1), 0))
        );
    }

    #[test]
    fn c4_catches_wrong_count() {
        let s = StageSchedule::kfkb(StageId(0), 4, 1, 1);
        assert_eq!(
            s.validate_c4(8),
            Err(ScheduleError::WrongTaskCount(StageId(0)))
        );
    }

    #[test]
    fn covering_micro_batches_uniform() {
        assert_eq!(covering_micro_batches(4, 4, 3), 3..4);
    }

    #[test]
    fn covering_micro_batches_producer_smaller() {
        // Consumer batch of 4 needs two producer batches of 2.
        assert_eq!(covering_micro_batches(2, 4, 0), 0..2);
        assert_eq!(covering_micro_batches(2, 4, 1), 2..4);
    }

    #[test]
    fn covering_micro_batches_producer_larger() {
        // Consumer batch of 2 fits inside one producer batch of 4.
        assert_eq!(covering_micro_batches(4, 2, 0), 0..1);
        assert_eq!(covering_micro_batches(4, 2, 1), 0..1);
        assert_eq!(covering_micro_batches(4, 2, 2), 1..2);
    }

    #[test]
    fn task_index_roundtrip() {
        use crate::stage::StageGraph;
        use gp_cluster::{Cluster, DeviceRange};

        // Two stages with different micro-batch sizes: 4 + 2 micro-batches.
        let model = gp_ir::zoo::mlp_chain(2, 8);
        let ops = model.linearize();
        let stages = vec![
            crate::Stage {
                id: StageId(0),
                ops: ops[..3].to_vec(),
                devices: DeviceRange::new(0, 1),
                micro_batch: 2,
                kfkb: 1,
            },
            crate::Stage {
                id: StageId(1),
                ops: ops[3..].to_vec(),
                devices: DeviceRange::new(1, 1),
                micro_batch: 4,
                kfkb: 1,
            },
        ];
        let sg = StageGraph::new(model.graph(), &Cluster::tiny_test(2), stages, 8).unwrap();
        let idx = TaskIndex::new(&sg);
        assert_eq!(idx.len(), 2 * 4 + 2 * 2);
        assert!(!idx.is_empty());
        assert_eq!(idx.stage_tasks(StageId(0)), 0..8);
        assert_eq!(idx.stage_tasks(StageId(1)), 8..12);
        // Every dense index inverts to the tuple that produced it.
        let mut seen = vec![false; idx.len()];
        for (stage, m) in [(StageId(0), 4u32), (StageId(1), 2u32)] {
            for mb in 0..m {
                for pass in [Pass::Forward, Pass::Backward] {
                    let i = idx.index(stage, mb, pass);
                    assert_eq!(idx.task_at(i), (stage, mb, pass));
                    assert!(!seen[i], "index {i} assigned twice");
                    seen[i] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "dense indices must be a bijection");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn task_index_rejects_out_of_range() {
        let model = gp_ir::zoo::mlp_chain(2, 8);
        let ops = model.linearize();
        let stages = vec![crate::Stage {
            id: StageId(0),
            ops,
            devices: gp_cluster::DeviceRange::new(0, 1),
            micro_batch: 2,
            kfkb: 1,
        }];
        let sg =
            crate::StageGraph::new(model.graph(), &gp_cluster::Cluster::tiny_test(1), stages, 8)
                .unwrap();
        let idx = TaskIndex::new(&sg);
        let _ = idx.task_at(idx.len());
    }

    #[test]
    fn task_display() {
        let f = Task {
            pass: Pass::Forward,
            mb: 0,
        };
        let b = Task {
            pass: Pass::Backward,
            mb: 3,
        };
        assert_eq!(f.to_string(), "F1");
        assert_eq!(b.to_string(), "B4");
    }
}
