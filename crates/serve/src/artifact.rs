//! The versioned, lossless plan artifact format.
//!
//! A *plan artifact* is the on-the-wire / on-disk form of a
//! [`gp_partition::Plan`]: a single JSON document that a plan service can
//! persist, ship to trainers, and decode back into the exact strategy the
//! planner produced. The codec is hand-rolled on [`crate::json`] so it
//! works today with the vendored serde API-stubs; when the real serde
//! lands, only this module needs revisiting.
//!
//! # Format (version 4)
//!
//! ```json
//! {
//!   "format": "graphpipe-plan",
//!   "version": 4,
//!   "fingerprint": "<32 hex digits, optional>",
//!   "mini_batch": 64,
//!   "stages": [
//!     {"id": 0, "ops": [0, 1, 2], "dev_start": 0, "dev_len": 2,
//!      "micro_batch": 4, "kfkb": 1}
//!   ],
//!   "edges": [[0, 1]],
//!   "in_flight": [8, 4],
//!   "schedule": [{"stage": 0, "warmup": 2, "tasks": [0, 2, 1, 3]}],
//!   "bottleneck_tps": 1.25e-6,
//!   "peak_memory_bytes": 123456,
//!   "stats": {"wall_secs": 0, "wall_nanos": 81342, "dp_evals": 62013,
//!             "dp_states": 911, "memo_hits": 50211, "memo_misses": 911,
//!             "work_bound_prunes": 1423, "memory_prunes": 61,
//!             "beam_prunes": 0, "eval_batches": 702,
//!             "binary_iters": 9, "configs_tried": 4}
//! }
//! ```
//!
//! * `tasks` packs each pass as `2 * micro_batch_index + direction`
//!   (`0` = forward, `1` = backward), preserving order;
//! * `edges` records the stage DAG's edge list — including any sequential
//!   edges an SPP baseline imposed — so decoding can *verify* that the
//!   reconstructed, re-validated stage graph is identical to the encoded
//!   one;
//! * `wall_secs`/`wall_nanos` split the search wall-clock duration
//!   losslessly;
//! * floats are written in shortest round-trip form, integers never pass
//!   through `f64` (see [`crate::json`]), so
//!   `decode(encode(plan)) == plan` exactly.
//!
//! # Compatibility rules
//!
//! * `format` must equal `"graphpipe-plan"`; anything else is rejected.
//! * `version` is a single integer. Decoders accept documents whose
//!   version is at most [`VERSION`]; newer documents are rejected with
//!   [`ArtifactError::UnsupportedVersion`] rather than misread. Adding
//!   fields requires a version bump; unknown fields in a known version are
//!   ignored, which is what makes minor additions backward-decodable.
//! * version 1 documents predate the `memo_hits`/`work_bound_prunes`/
//!   `memory_prunes` search counters; they decode with those counters
//!   zeroed.
//! * version 2 documents predate the `memo_misses`/`beam_prunes`/
//!   `eval_batches` search counters (the beam-search/vectorized-eval
//!   accounting); they too decode with those counters zeroed.
//! * version 4 adds the optional `plan_path` member recording which rung
//!   of the DAG fallback ladder produced the plan's model
//!   (`{"kind": "sp-ized", "distortion": N}` or
//!   `{"kind": "clustered", "units": N}`); absence — including every
//!   older document — means the exact-SP path.
//!
//! Decoding is *validating*: the raw stage list runs through
//! [`gp_verify::verify_stages`] before the stage graph is rebuilt (through
//! [`StageGraph::new`], falling back to [`StageGraph::new_sequential`] for
//! artifacts carrying imposed chain edges), and the assembled plan runs
//! through [`gp_verify::verify_plan`] — C4 order, deadlock freedom, stash
//! and memory bounds, estimate agreement. A corrupted or mismatched
//! artifact fails with [`ArtifactError::Violation`], naming the exact
//! invariant (and stage/device/task) that failed.
//!
//! gp-lint: deterministic — this module's outputs feed plan
//! fingerprints or the artifact codec; `cargo xtask lint` scans it for
//! nondeterminism hazards (DESIGN.md §"Determinism lint").

use crate::fingerprint::Fingerprint;
use crate::json::{Json, JsonError};
use gp_cluster::{Cluster, DeviceRange};
use gp_cost::Pass;
use gp_ir::{Graph, OpId, PlanPath};
use gp_partition::{Plan, SearchStats};
use gp_sched::{InFlightTable, PipelineSchedule, Stage, StageGraph, StageId, StageSchedule, Task};
use std::fmt;
use std::time::Duration;

/// The artifact `format` marker.
pub const FORMAT: &str = "graphpipe-plan";

/// The artifact version this build writes; older versions decode too.
pub const VERSION: u64 = 4;

/// Why an artifact failed to decode.
#[derive(Debug, Clone, PartialEq)]
pub enum ArtifactError {
    /// The document is not syntactically valid JSON.
    Json(JsonError),
    /// The `format` marker is missing or not [`FORMAT`].
    BadFormat(String),
    /// The document's version is newer than this decoder understands.
    UnsupportedVersion(u64),
    /// A required field is missing or has the wrong type.
    Field(&'static str),
    /// The document parses but does not describe a valid strategy: the
    /// static verifier ([`gp_verify`]) rejected it, and the violation
    /// names the exact invariant (and stage/device/task) that failed.
    Violation(gp_verify::Violation),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Json(e) => write!(f, "malformed artifact: {e}"),
            ArtifactError::BadFormat(got) => {
                write!(f, "not a plan artifact (format marker `{got}`)")
            }
            ArtifactError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "artifact version {v} is newer than supported ({VERSION})"
                )
            }
            ArtifactError::Field(name) => {
                write!(f, "artifact field `{name}` is missing or ill-typed")
            }
            ArtifactError::Violation(v) => {
                write!(f, "artifact does not describe a valid strategy: {v}")
            }
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<JsonError> for ArtifactError {
    fn from(e: JsonError) -> Self {
        ArtifactError::Json(e)
    }
}

/// The *strategy* members of the artifact document — everything that
/// describes the plan itself (stages, placement, edges, in-flight,
/// schedule, estimates), excluding the format header and the search-stats
/// block. This is the canonical form behind
/// [`crate::fingerprint::plan_fingerprint`], so it must not absorb codec
/// versioning or accounting details.
pub(crate) fn strategy_members(plan: &Plan) -> Vec<(String, Json)> {
    let sg = &plan.stage_graph;
    let mut members: Vec<(String, Json)> = Vec::new();
    members.push(("mini_batch".into(), Json::Int(sg.mini_batch() as i128)));
    members.push((
        "stages".into(),
        Json::Arr(
            sg.stages()
                .map(|s| {
                    Json::Obj(vec![
                        ("id".into(), Json::Int(s.id.0 as i128)),
                        (
                            "ops".into(),
                            Json::Arr(s.ops.iter().map(|o| Json::Int(o.0 as i128)).collect()),
                        ),
                        ("dev_start".into(), Json::Int(s.devices.first().0 as i128)),
                        ("dev_len".into(), Json::Int(s.devices.len() as i128)),
                        ("micro_batch".into(), Json::Int(s.micro_batch as i128)),
                        ("kfkb".into(), Json::Int(s.kfkb as i128)),
                    ])
                })
                .collect(),
        ),
    ));
    members.push((
        "edges".into(),
        Json::Arr(
            sg.stage_edges()
                .into_iter()
                .map(|(a, b)| Json::Arr(vec![Json::Int(a.0 as i128), Json::Int(b.0 as i128)]))
                .collect(),
        ),
    ));
    members.push((
        "in_flight".into(),
        Json::Arr(
            (0..sg.len() as u32)
                .map(|i| Json::Int(plan.in_flight.samples(StageId(i)) as i128))
                .collect(),
        ),
    ));
    members.push((
        "schedule".into(),
        Json::Arr(
            plan.schedule
                .per_stage
                .iter()
                .map(|s| {
                    Json::Obj(vec![
                        ("stage".into(), Json::Int(s.stage.0 as i128)),
                        ("warmup".into(), Json::Int(s.warmup as i128)),
                        (
                            "tasks".into(),
                            Json::Arr(
                                s.tasks
                                    .iter()
                                    .map(|t| {
                                        let dir = match t.pass {
                                            Pass::Forward => 0,
                                            Pass::Backward => 1,
                                        };
                                        Json::Int((2 * t.mb as i128) + dir)
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        ),
    ));
    members.push(("bottleneck_tps".into(), Json::Float(plan.bottleneck_tps)));
    members.push((
        "peak_memory_bytes".into(),
        Json::Int(plan.peak_memory_bytes as i128),
    ));
    // Emitted only off the exact-SP path: pre-DAG plans (and their
    // fingerprints) stay byte-stable, while SP-ized/clustered strategies
    // carry the rung — and its accounting — in their identity.
    match plan.path {
        PlanPath::ExactSp => {}
        PlanPath::SpIzed { distortion } => members.push((
            "plan_path".into(),
            Json::Obj(vec![
                ("kind".into(), Json::Str("sp-ized".into())),
                ("distortion".into(), Json::Int(i128::from(distortion))),
            ]),
        )),
        PlanPath::Clustered { units } => members.push((
            "plan_path".into(),
            Json::Obj(vec![
                ("kind".into(), Json::Str("clustered".into())),
                ("units".into(), Json::Int(i128::from(units))),
            ]),
        )),
    }
    members
}

/// Encodes a plan as a version-[`VERSION`] artifact document, optionally
/// stamping the request fingerprint into the header.
pub fn encode_plan(plan: &Plan, fingerprint: Option<Fingerprint>) -> String {
    let mut members: Vec<(String, Json)> = vec![
        ("format".into(), Json::Str(FORMAT.into())),
        ("version".into(), Json::Int(VERSION as i128)),
    ];
    if let Some(fp) = fingerprint {
        members.push(("fingerprint".into(), Json::Str(fp.to_string())));
    }
    members.extend(strategy_members(plan));
    members.push((
        "stats".into(),
        Json::Obj(vec![
            (
                "wall_secs".into(),
                Json::Int(plan.stats.wall.as_secs() as i128),
            ),
            (
                "wall_nanos".into(),
                Json::Int(plan.stats.wall.subsec_nanos() as i128),
            ),
            ("dp_evals".into(), Json::Int(plan.stats.dp_evals as i128)),
            ("dp_states".into(), Json::Int(plan.stats.dp_states as i128)),
            ("memo_hits".into(), Json::Int(plan.stats.memo_hits as i128)),
            (
                "memo_misses".into(),
                Json::Int(plan.stats.memo_misses as i128),
            ),
            (
                "work_bound_prunes".into(),
                Json::Int(plan.stats.work_bound_prunes as i128),
            ),
            (
                "memory_prunes".into(),
                Json::Int(plan.stats.memory_prunes as i128),
            ),
            (
                "beam_prunes".into(),
                Json::Int(plan.stats.beam_prunes as i128),
            ),
            (
                "eval_batches".into(),
                Json::Int(plan.stats.eval_batches as i128),
            ),
            (
                "binary_iters".into(),
                Json::Int(plan.stats.binary_iters as i128),
            ),
            (
                "configs_tried".into(),
                Json::Int(plan.stats.configs_tried as i128),
            ),
        ]),
    ));
    Json::Obj(members).to_string()
}

fn field<'j>(doc: &'j Json, name: &'static str) -> Result<&'j Json, ArtifactError> {
    doc.get(name).ok_or(ArtifactError::Field(name))
}

fn u64_field(doc: &Json, name: &'static str) -> Result<u64, ArtifactError> {
    field(doc, name)?.as_u64().ok_or(ArtifactError::Field(name))
}

fn u32_field(doc: &Json, name: &'static str) -> Result<u32, ArtifactError> {
    u32::try_from(u64_field(doc, name)?).map_err(|_| ArtifactError::Field(name))
}

/// Rebuilds and validates a stage graph from its parts, requiring its
/// derived edge list to equal `expected_edges`. Tries the plain (C2-derived)
/// construction first, then the sequential-pipeline construction, so both
/// GraphPipe and SPP-baseline strategies reconstruct exactly.
pub fn rebuild_stage_graph(
    graph: &Graph,
    cluster: &Cluster,
    stages: Vec<Stage>,
    mini_batch: u64,
    expected_edges: &[(StageId, StageId)],
) -> Result<StageGraph, ArtifactError> {
    let plain = StageGraph::new(graph, cluster, stages.clone(), mini_batch)
        .map_err(|e| ArtifactError::Violation(gp_verify::violation_of_stage_graph_error(&e)))?;
    if plain.stage_edges() == expected_edges {
        return Ok(plain);
    }
    if let Ok(seq) = StageGraph::new_sequential(graph, cluster, stages, mini_batch) {
        if seq.stage_edges() == expected_edges {
            return Ok(seq);
        }
    }
    // Neither construction reproduces the recorded edge list: name the
    // first edge the data flow derives but the artifact lacks (or vice
    // versa), so a mismatched model/cluster is diagnosed precisely.
    let derived = plain.stage_edges();
    let disagreement = derived
        .iter()
        .find(|e| !expected_edges.contains(e))
        .map(|&(a, b)| (a, b, "data flow derives"))
        .or_else(|| {
            expected_edges
                .iter()
                .find(|e| !derived.contains(e))
                .map(|&(a, b)| (a, b, "artifact records"))
        });
    let violation = match disagreement {
        Some((a, b, who)) => gp_verify::Violation::new(
            gp_verify::Check::EdgeDerivation,
            gp_verify::Location::stage(a),
            format!("{who} stage edge {a} -> {b}, which the other side lacks (C2)"),
        ),
        // Same edge *sets* but different order/multiplicity.
        None => gp_verify::Violation::new(
            gp_verify::Check::EdgeDerivation,
            gp_verify::Location::global(),
            "recorded stage edges disagree with the supplied model/cluster (C2)".to_string(),
        ),
    };
    Err(ArtifactError::Violation(violation))
}

/// Decodes a plan artifact (any version up to [`VERSION`]) back into the
/// exact [`Plan`] it encoded, re-validating every §3 condition against
/// the caller's model graph and cluster.
///
/// Returns the plan together with the fingerprint stamped in the header,
/// if any.
///
/// # Errors
///
/// Returns an [`ArtifactError`] for malformed JSON, a wrong format marker,
/// an unsupported version, missing fields, or a strategy that does not
/// validate against `graph`/`cluster`.
pub fn decode_plan(
    text: &str,
    graph: &Graph,
    cluster: &Cluster,
) -> Result<(Plan, Option<Fingerprint>), ArtifactError> {
    let doc = Json::parse(text)?;
    let format = field(&doc, "format")?
        .as_str()
        .ok_or(ArtifactError::Field("format"))?;
    if format != FORMAT {
        return Err(ArtifactError::BadFormat(format.to_string()));
    }
    let version = u64_field(&doc, "version")?;
    if version > VERSION {
        return Err(ArtifactError::UnsupportedVersion(version));
    }
    let fingerprint = match doc.get("fingerprint") {
        Some(v) => Some(
            v.as_str()
                .and_then(Fingerprint::parse)
                .ok_or(ArtifactError::Field("fingerprint"))?,
        ),
        None => None,
    };
    let mini_batch = u64_field(&doc, "mini_batch")?;

    // Stages.
    let mut stages = Vec::new();
    for s in field(&doc, "stages")?
        .as_arr()
        .ok_or(ArtifactError::Field("stages"))?
    {
        let ops = s
            .get("ops")
            .and_then(Json::as_arr)
            .ok_or(ArtifactError::Field("stages.ops"))?
            .iter()
            .map(|o| {
                // Type-level check only; out-of-range operator ids are a
                // *semantic* defect the verifier names (`op-cover-exact`).
                o.as_u64().and_then(|v| u32::try_from(v).ok()).map(OpId)
            })
            .collect::<Option<Vec<OpId>>>()
            .ok_or(ArtifactError::Field("stages.ops"))?;
        let dev_len = u32_field(s, "dev_len")?;
        if dev_len == 0 {
            return Err(ArtifactError::Field("stages.dev_len"));
        }
        stages.push(Stage {
            id: StageId(u32_field(s, "id")?),
            ops,
            devices: DeviceRange::new(u32_field(s, "dev_start")?, dev_len),
            micro_batch: u64_field(s, "micro_batch")?,
            kfkb: u64_field(s, "kfkb")?,
        });
    }
    // Semantic verification of the raw stage list before the rebuild:
    // every corruption (dense ids, op cover, convexity, device tiling,
    // divisibility) is reported by invariant name rather than as an opaque
    // constructor failure.
    if let Some(v) = gp_verify::verify_stages(graph, cluster, &stages, mini_batch).first() {
        return Err(ArtifactError::Violation(v.clone()));
    }

    // Edges.
    let mut edges = Vec::new();
    for e in field(&doc, "edges")?
        .as_arr()
        .ok_or(ArtifactError::Field("edges"))?
    {
        let endpoint = |v: &Json| {
            v.as_u64()
                .and_then(|v| u32::try_from(v).ok())
                .map(StageId)
                .ok_or(ArtifactError::Field("edges"))
        };
        match e.as_arr() {
            Some([a, b]) => edges.push((endpoint(a)?, endpoint(b)?)),
            _ => return Err(ArtifactError::Field("edges")),
        }
    }

    let stage_graph = rebuild_stage_graph(graph, cluster, stages, mini_batch, &edges)?;

    // In-flight table.
    let in_flight_samples = field(&doc, "in_flight")?
        .as_arr()
        .ok_or(ArtifactError::Field("in_flight"))?
        .iter()
        .map(Json::as_u64)
        .collect::<Option<Vec<u64>>>()
        .ok_or(ArtifactError::Field("in_flight"))?;
    // Agreement with the `ComputeInFlight` recomputation is the verifier's
    // `in-flight-consistent` check, run over the assembled plan below.
    let in_flight = InFlightTable::from_samples(in_flight_samples);

    // Schedule.
    let mut per_stage = Vec::new();
    for s in field(&doc, "schedule")?
        .as_arr()
        .ok_or(ArtifactError::Field("schedule"))?
    {
        let tasks = s
            .get("tasks")
            .and_then(Json::as_arr)
            .ok_or(ArtifactError::Field("schedule.tasks"))?
            .iter()
            .map(|t| {
                t.as_u64()
                    .filter(|&packed| packed / 2 <= u32::MAX as u64)
                    .map(|packed| Task {
                        pass: if packed % 2 == 0 {
                            Pass::Forward
                        } else {
                            Pass::Backward
                        },
                        mb: (packed / 2) as u32,
                    })
            })
            .collect::<Option<Vec<Task>>>()
            .ok_or(ArtifactError::Field("schedule.tasks"))?;
        per_stage.push(StageSchedule {
            stage: StageId(u32_field(s, "stage")?),
            warmup: u64_field(s, "warmup")?,
            tasks,
        });
    }
    // Coverage, C4 order, and deadlock freedom are the verifier's
    // `schedule-*` checks, run over the assembled plan below.
    let schedule = PipelineSchedule { per_stage };

    let stats_doc = field(&doc, "stats")?;
    let wall_nanos = u32_field(stats_doc, "wall_nanos")?;
    if wall_nanos >= 1_000_000_000 {
        // Duration would carry the overflow into the seconds, breaking the
        // byte-identical re-encode guarantee.
        return Err(ArtifactError::Field("wall_nanos"));
    }
    // Counters are required from the version that introduced them on, and
    // zeroed for genuinely older documents (leniency must not mask
    // truncated current-version artifacts). The memo/prune counters
    // arrived in version 2; the beam/batch accounting in version 3.
    let counter_since = |name: &'static str, since: u64| -> Result<u64, ArtifactError> {
        match stats_doc.get(name) {
            None if version < since => Ok(0),
            None => Err(ArtifactError::Field(name)),
            Some(v) => v.as_u64().ok_or(ArtifactError::Field(name)),
        }
    };
    let stats = SearchStats {
        wall: Duration::new(u64_field(stats_doc, "wall_secs")?, wall_nanos),
        dp_evals: u64_field(stats_doc, "dp_evals")?,
        dp_states: u64_field(stats_doc, "dp_states")?,
        memo_hits: counter_since("memo_hits", 2)?,
        memo_misses: counter_since("memo_misses", 3)?,
        work_bound_prunes: counter_since("work_bound_prunes", 2)?,
        memory_prunes: counter_since("memory_prunes", 2)?,
        beam_prunes: counter_since("beam_prunes", 3)?,
        eval_batches: counter_since("eval_batches", 3)?,
        binary_iters: u32_field(stats_doc, "binary_iters")?,
        configs_tried: u32_field(stats_doc, "configs_tried")?,
        // Phase walls are measurement, not plan data: never encoded, so a
        // decoded plan always carries the zero breakdown.
        ..SearchStats::default()
    };

    // Absent (every pre-version-4 document) means the exact-SP path.
    let path = match doc.get("plan_path") {
        None => PlanPath::ExactSp,
        Some(p) => {
            let kind = p
                .get("kind")
                .and_then(Json::as_str)
                .ok_or(ArtifactError::Field("plan_path.kind"))?;
            match kind {
                "sp-ized" => PlanPath::SpIzed {
                    distortion: u64_field(p, "distortion")?,
                },
                "clustered" => PlanPath::Clustered {
                    units: u32_field(p, "units")?,
                },
                _ => return Err(ArtifactError::Field("plan_path.kind")),
            }
        }
    };

    let plan = Plan {
        stage_graph,
        in_flight,
        schedule,
        bottleneck_tps: field(&doc, "bottleneck_tps")?
            .as_f64()
            .ok_or(ArtifactError::Field("bottleneck_tps"))?,
        peak_memory_bytes: u64_field(&doc, "peak_memory_bytes")?,
        path,
        stats,
    };
    // Full semantic verification of the assembled plan: in-flight
    // consistency, C4 order, deadlock freedom, stash and memory bounds,
    // and bit-exact estimate agreement. A corrupted artifact fails here
    // with the violated invariant's name.
    if let Some(v) = gp_verify::verify_plan(graph, cluster, &plan).first() {
        return Err(ArtifactError::Violation(v.clone()));
    }
    Ok((plan, fingerprint))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::request_fingerprint;
    use gp_baselines::PipeDreamPlanner;
    use gp_ir::zoo::{self, CandleUnoConfig, MmtConfig, MoeConfig};
    use gp_ir::SpModel;
    use gp_partition::{GraphPipePlanner, PlanOptions, Planner};

    fn round_trip(model: &SpModel, cluster: &Cluster, mini_batch: u64) {
        let plan = GraphPipePlanner::new()
            .plan(model, cluster, mini_batch)
            .unwrap();
        let fp = request_fingerprint(model, cluster, mini_batch, &PlanOptions::default(), 0);
        let text = encode_plan(&plan, Some(fp));
        let (decoded, got_fp) = decode_plan(&text, model.graph(), cluster).unwrap();
        assert_eq!(got_fp, Some(fp));
        // Encoding is deterministic, so a second hop is byte-identical.
        assert_eq!(encode_plan(&decoded, Some(fp)), text);
        // Phase walls are measurement, not plan data: the codec never
        // encodes them, so compare with walls zeroed on both sides.
        let (mut decoded, mut fresh) = (decoded, plan);
        decoded.stats.zero_walls();
        fresh.stats.zero_walls();
        assert_eq!(decoded, fresh, "round trip lost information: {text}");
    }

    #[test]
    fn zoo_plans_round_trip_losslessly() {
        let four = Cluster::summit_like(4);
        let eight = Cluster::summit_like(8);
        round_trip(&zoo::mmt(&MmtConfig::tiny()), &four, 32);
        round_trip(&zoo::mmt(&MmtConfig::two_branch()), &four, 64);
        round_trip(&zoo::candle_uno(&CandleUnoConfig::tiny()), &four, 32);
        round_trip(&zoo::candle_uno(&CandleUnoConfig::default()), &eight, 1024);
        round_trip(&zoo::candle_uno(&CandleUnoConfig::full()), &eight, 1024);
        round_trip(&zoo::moe(&MoeConfig::tiny()), &four, 32);
        round_trip(&zoo::moe(&MoeConfig::default()), &eight, 256);
        round_trip(&zoo::mlp_chain(4, 64), &four, 32);
    }

    #[test]
    fn versioned_counters_are_required_but_older_documents_decode_zeroed() {
        let model = zoo::mlp_chain(2, 8);
        let cluster = Cluster::summit_like(2);
        let plan = gp_partition::GraphPipePlanner::new()
            .plan(&model, &cluster, 8)
            .unwrap();
        let text = encode_plan(&plan, None);
        let hits = format!("\"memo_hits\":{},", plan.stats.memo_hits);
        assert!(text.contains(&hits), "{text}");
        // A current document missing a required counter is corrupt, not
        // lenient.
        let truncated = text.replace(&hits, "");
        assert_eq!(
            decode_plan(&truncated, model.graph(), &cluster).unwrap_err(),
            ArtifactError::Field("memo_hits")
        );
        let batches = format!("\"eval_batches\":{},", plan.stats.eval_batches);
        assert!(text.contains(&batches), "{text}");
        assert_eq!(
            decode_plan(&text.replace(&batches, ""), model.graph(), &cluster).unwrap_err(),
            ArtifactError::Field("eval_batches")
        );
        // A v2 document predates the beam/batch accounting: decode
        // succeeds with those counters zeroed, while the v2 counters stay
        // required.
        let strip_v3 = |text: &str| {
            text.replace(&format!("\"memo_misses\":{},", plan.stats.memo_misses), "")
                .replace(&format!("\"beam_prunes\":{},", plan.stats.beam_prunes), "")
                .replace(&batches, "")
        };
        let v2 = strip_v3(&text).replace("\"version\":4", "\"version\":2");
        let (decoded, _) = decode_plan(&v2, model.graph(), &cluster).unwrap();
        assert_eq!(decoded.stats.memo_hits, plan.stats.memo_hits);
        assert_eq!(decoded.stats.memo_misses, 0);
        assert_eq!(decoded.stats.beam_prunes, 0);
        assert_eq!(decoded.stats.eval_batches, 0);
        // The same shape claiming version 1 predates all the counters:
        // decode succeeds with every one of them zeroed.
        let v1 = strip_v3(&truncated)
            .replace("\"version\":4", "\"version\":1")
            .replace(
                &format!("\"work_bound_prunes\":{},", plan.stats.work_bound_prunes),
                "",
            )
            .replace(
                &format!("\"memory_prunes\":{},", plan.stats.memory_prunes),
                "",
            );
        let (decoded, _) = decode_plan(&v1, model.graph(), &cluster).unwrap();
        assert_eq!(decoded.stats.memo_hits, 0);
        assert_eq!(decoded.stats.work_bound_prunes, 0);
        assert_eq!(decoded.stats.memory_prunes, 0);
        assert_eq!(decoded.stage_graph, plan.stage_graph);
    }

    #[test]
    fn sequential_baseline_plans_round_trip() {
        // PipeDream imposes sequential edges; decode must reconstruct them
        // through the new_sequential fallback.
        let model = zoo::candle_uno(&CandleUnoConfig::tiny());
        let cluster = Cluster::summit_like(4);
        let plan = PipeDreamPlanner::new().plan(&model, &cluster, 32).unwrap();
        let text = encode_plan(&plan, None);
        let (decoded, fp) = decode_plan(&text, model.graph(), &cluster).unwrap();
        assert_eq!(fp, None);
        assert_eq!(decoded, plan);
    }

    #[test]
    fn rejects_foreign_and_future_documents() {
        let model = zoo::mlp_chain(2, 8);
        let cluster = Cluster::summit_like(2);
        assert!(matches!(
            decode_plan("{\"format\":\"other\"}", model.graph(), &cluster),
            Err(ArtifactError::BadFormat(_))
        ));
        assert!(matches!(
            decode_plan(
                "{\"format\":\"graphpipe-plan\",\"version\":99}",
                model.graph(),
                &cluster
            ),
            Err(ArtifactError::UnsupportedVersion(99))
        ));
        assert!(matches!(
            decode_plan("not json", model.graph(), &cluster),
            Err(ArtifactError::Json(_))
        ));
        assert!(matches!(
            decode_plan(
                "{\"format\":\"graphpipe-plan\",\"version\":1}",
                model.graph(),
                &cluster
            ),
            Err(ArtifactError::Field("mini_batch"))
        ));
    }

    #[test]
    fn rejects_artifact_for_a_different_model() {
        let model = zoo::mlp_chain(4, 64);
        let other = zoo::mlp_chain(6, 64);
        let cluster = Cluster::summit_like(4);
        let plan = GraphPipePlanner::new().plan(&model, &cluster, 32).unwrap();
        let text = encode_plan(&plan, None);
        // Decoding against a graph with different operators must fail the
        // rebuild validation rather than hand back a bogus strategy.
        assert!(decode_plan(&text, other.graph(), &cluster).is_err());
    }

    #[test]
    fn error_display_is_informative() {
        let violation = gp_verify::Violation::new(
            gp_verify::Check::EdgeDerivation,
            gp_verify::Location::global(),
            "recorded stage edges disagree with the supplied model/cluster".to_string(),
        );
        let text = ArtifactError::Violation(violation).to_string();
        assert!(text.contains("edge-derivation"), "{text}");
        assert!(ArtifactError::UnsupportedVersion(7)
            .to_string()
            .contains('7'));
        assert!(ArtifactError::Field("stages")
            .to_string()
            .contains("stages"));
    }

    /// Satellite: corrupted artifacts are rejected with the *name* of the
    /// violated invariant, not a generic "invalid plan".
    #[test]
    fn corrupted_artifacts_name_the_violated_invariant() {
        let model = zoo::mlp_chain(4, 64);
        let cluster = Cluster::summit_like(4);
        let plan = GraphPipePlanner::new().plan(&model, &cluster, 32).unwrap();
        let text = encode_plan(&plan, None);
        let violation_name = |text: &str| -> String {
            match decode_plan(text, model.graph(), &cluster) {
                Err(ArtifactError::Violation(v)) => v.check.to_string(),
                other => panic!("expected a named violation, got {other:?}"),
            }
        };
        // Drift the recorded estimate by one ULP-ish step.
        let tps = format!(
            "\"bottleneck_tps\":{}",
            crate::json::Json::Float(plan.bottleneck_tps)
        );
        assert!(text.contains(&tps), "{text}");
        let drifted = text.replace(
            &tps,
            &format!(
                "\"bottleneck_tps\":{}",
                crate::json::Json::Float(plan.bottleneck_tps * 1.5)
            ),
        );
        assert_eq!(violation_name(&drifted), "estimate-consistent");
        // Corrupt the in-flight table.
        let in_flight_json = format!("\"in_flight\":[{}", plan.in_flight.samples(StageId(0)));
        assert!(text.contains(&in_flight_json), "{text}");
        let corrupted = text.replace(
            &in_flight_json,
            &format!(
                "\"in_flight\":[{}",
                plan.in_flight.samples(StageId(0)) + plan.stage_graph.stage(StageId(0)).micro_batch
            ),
        );
        assert_eq!(violation_name(&corrupted), "in-flight-consistent");
    }
}
