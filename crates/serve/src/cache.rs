//! The decoded-plan LRU cache behind [`crate::PlanService`].

use crate::fingerprint::Fingerprint;
use gp_partition::Plan;
use std::collections::HashMap;
use std::sync::Arc;

struct Entry {
    plan: Arc<Plan>,
    /// [`crate::fingerprint::numbering_signature`] of the graph the plan
    /// was computed for; consulted before reuse, since plans carry raw
    /// operator ids.
    numbering: u64,
    last_used: u64,
}

/// A least-recently-used cache of decoded plans keyed by request
/// fingerprint.
///
/// Eviction scans for the oldest stamp, which is `O(capacity)` per insert
/// beyond capacity — plan caches are small (tens to hundreds of entries)
/// and a plan *miss* costs milliseconds of DP search, so simplicity wins
/// over an intrusive list.
pub struct PlanCache {
    capacity: usize,
    entries: HashMap<Fingerprint, Entry>,
    clock: u64,
    evictions: u64,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "plan cache needs capacity >= 1");
        PlanCache {
            capacity,
            entries: HashMap::new(),
            clock: 0,
            evictions: 0,
        }
    }

    /// Looks up a plan and the numbering signature of the graph it was
    /// planned for, refreshing recency on hit.
    pub fn get(&mut self, fingerprint: &Fingerprint) -> Option<(Arc<Plan>, u64)> {
        self.clock += 1;
        let clock = self.clock;
        self.entries.get_mut(fingerprint).map(|e| {
            e.last_used = clock;
            (Arc::clone(&e.plan), e.numbering)
        })
    }

    /// Inserts (or replaces) a plan and its graph's numbering signature,
    /// evicting the least-recently-used entry when full.
    pub fn insert(&mut self, fingerprint: Fingerprint, plan: Arc<Plan>, numbering: u64) {
        self.clock += 1;
        if !self.entries.contains_key(&fingerprint) && self.entries.len() >= self.capacity {
            if let Some(&oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                self.entries.remove(&oldest);
                self.evictions += 1;
            }
        }
        self.entries.insert(
            fingerprint,
            Entry {
                plan,
                numbering,
                last_used: self.clock,
            },
        );
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_cluster::Cluster;
    use gp_ir::zoo;
    use gp_partition::{GraphPipePlanner, Planner};

    fn some_plan() -> Arc<Plan> {
        let model = zoo::mlp_chain(2, 8);
        Arc::new(
            GraphPipePlanner::new()
                .plan(&model, &Cluster::summit_like(2), 8)
                .unwrap(),
        )
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let plan = some_plan();
        let mut cache = PlanCache::new(2);
        let (a, b, c) = (Fingerprint(1), Fingerprint(2), Fingerprint(3));
        cache.insert(a, Arc::clone(&plan), 7);
        cache.insert(b, Arc::clone(&plan), 7);
        assert!(cache.get(&a).is_some()); // refresh a; b is now oldest
        cache.insert(c, Arc::clone(&plan), 7);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get(&b).is_none());
        assert!(cache.get(&a).is_some());
        assert!(cache.get(&c).is_some());
    }

    #[test]
    fn reinsert_does_not_evict() {
        let plan = some_plan();
        let mut cache = PlanCache::new(1);
        let a = Fingerprint(1);
        cache.insert(a, Arc::clone(&plan), 7);
        cache.insert(a, Arc::clone(&plan), 7);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.capacity(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = PlanCache::new(0);
    }
}
