//! Canonical structural fingerprints for planning requests.
//!
//! The plan cache ([`crate::PlanService`]) is keyed by a 128-bit
//! [`Fingerprint`] over everything that determines a planner's output:
//!
//! * the **model graph**, hashed structurally — per-node labels are
//!   refined Weisfeiler–Leman style from operator kinds, output shapes and
//!   neighbourhoods, so the hash is invariant under node-*insertion order*
//!   (renumbering the same model yields the same fingerprint) while
//!   different topologies or operator configurations diverge;
//! * the **series-parallel decomposition**, since planners consume the SP
//!   tree, not the raw DAG (two trees over the same graph can plan
//!   differently);
//! * the **cluster specification** (device profile, topology, links);
//! * the **planner choice and options** and the **mini-batch size**.
//!
//! Operator and model *names* are deliberately excluded: renaming layers
//! does not change the plan.
//!
//! # Examples
//!
//! ```
//! use gp_ir::zoo::{self, MmtConfig};
//! use gp_cluster::Cluster;
//! use gp_partition::PlanOptions;
//! use gp_serve::fingerprint::request_fingerprint;
//!
//! let model = zoo::mmt(&MmtConfig::tiny());
//! let cluster = Cluster::summit_like(4);
//! let opts = PlanOptions::default();
//! let a = request_fingerprint(&model, &cluster, 64, &opts, 0);
//! let b = request_fingerprint(&model, &cluster, 64, &opts, 0);
//! assert_eq!(a, b);
//! assert_ne!(a, request_fingerprint(&model, &cluster, 128, &opts, 0));
//! ```
//!
//! gp-lint: deterministic — this module's outputs feed plan
//! fingerprints or the artifact codec; `cargo xtask lint` scans it for
//! nondeterminism hazards (DESIGN.md §"Determinism lint").

use gp_cluster::{Cluster, DeviceId};
use gp_ir::{Graph, PlanPath, SpBlock, SpModel};
use gp_partition::PlanOptions;
use std::fmt;

/// A 128-bit structural hash identifying a planning request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fingerprint(pub u128);

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl Fingerprint {
    /// Parses the 32-hex-digit form produced by `Display` (artifact
    /// headers).
    pub fn parse(text: &str) -> Option<Fingerprint> {
        if text.len() != 32 || !text.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        u128::from_str_radix(text, 16).ok().map(Fingerprint)
    }
}

/// One 64-bit lane of the fingerprint: FNV-1a over words, with a
/// splitmix64 finalizer applied to every absorbed word so that small input
/// deltas diffuse across the state.
#[derive(Clone, Copy)]
struct Lane {
    state: u64,
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl Lane {
    fn new(seed: u64) -> Lane {
        Lane {
            state: 0xcbf2_9ce4_8422_2325 ^ splitmix64(seed),
        }
    }

    fn word(&mut self, w: u64) {
        self.state = (self.state ^ splitmix64(w)).wrapping_mul(FNV_PRIME);
    }

    fn words(&mut self, ws: &[u64]) {
        self.word(ws.len() as u64);
        for &w in ws {
            self.word(w);
        }
    }

    fn finish(self) -> u64 {
        splitmix64(self.state)
    }
}

/// A pair of independent lanes forming the 128-bit digest.
struct Digest {
    lo: Lane,
    hi: Lane,
}

impl Digest {
    fn new(domain: u64) -> Digest {
        Digest {
            lo: Lane::new(domain),
            hi: Lane::new(domain ^ 0x5851_f42d_4c95_7f2d),
        }
    }

    fn word(&mut self, w: u64) {
        self.lo.word(w);
        self.hi.word(w ^ 0xa5a5_a5a5_a5a5_a5a5);
    }

    fn words(&mut self, ws: &[u64]) {
        self.word(ws.len() as u64);
        for &w in ws {
            self.word(w);
        }
    }

    fn f64_bits(&mut self, f: f64) {
        self.word(f.to_bits());
    }

    fn finish(self) -> u128 {
        ((self.hi.finish() as u128) << 64) | self.lo.finish() as u128
    }
}

/// Combines already-final 64-bit labels without order sensitivity.
fn sorted_fold(labels: &mut [u64]) -> Vec<u64> {
    labels.sort_unstable();
    labels.to_vec()
}

/// Per-node canonical labels of a graph: Weisfeiler–Leman refinement
/// seeded from each operator's structural words and output shape, then
/// iterated so every label absorbs its predecessors **in input order**
/// (input position is semantically meaningful and independent of insertion
/// order) and its successors **as a sorted multiset** (successor order is
/// an insertion-order artifact).
///
/// The number of rounds equals the graph's longest path length, so every
/// label sees the whole of its past and future light-cone.
fn canonical_labels(graph: &Graph) -> Vec<u64> {
    let n = graph.len();
    let mut labels: Vec<u64> = graph
        .nodes()
        .map(|node| {
            let mut lane = Lane::new(0x6e6f_6465);
            lane.words(&node.kind.structural_words());
            lane.words(
                &node
                    .out_shape
                    .dims()
                    .iter()
                    .map(|&d| d as u64)
                    .collect::<Vec<u64>>(),
            );
            lane.finish()
        })
        .collect();
    // Longest path length bounds how far structural information must
    // travel; one extra round as a safety margin.
    let order = graph.topo_order();
    let mut depth = vec![0usize; n];
    let mut rounds = 1usize;
    for &id in &order {
        for &s in graph.succs(id) {
            depth[s.index()] = depth[s.index()].max(depth[id.index()] + 1);
            rounds = rounds.max(depth[s.index()] + 1);
        }
    }
    let mut next = vec![0u64; n];
    for _ in 0..rounds {
        for node in graph.nodes() {
            let i = node.id.index();
            let mut lane = Lane::new(0x0072_6f75_6e64);
            lane.word(labels[i]);
            lane.word(graph.preds(node.id).len() as u64);
            for &p in graph.preds(node.id) {
                lane.word(labels[p.index()]);
            }
            let mut succs: Vec<u64> = graph
                .succs(node.id)
                .iter()
                .map(|&s| labels[s.index()])
                .collect();
            lane.words(&sorted_fold(&mut succs));
            next[i] = lane.finish();
        }
        std::mem::swap(&mut labels, &mut next);
    }
    labels
}

/// Folds the SP tree into the digest using canonical node labels for
/// leaves. `Chain` children are position-sensitive (series order matters);
/// `Branches` children are folded as a sorted multiset (branch listing
/// order is an insertion artifact — planners treat branches as an
/// unordered set of independent subgraphs).
fn sp_hash(block: &SpBlock, labels: &[u64]) -> u64 {
    match block {
        SpBlock::Leaf(op) => {
            let mut lane = Lane::new(0x6c65_6166);
            lane.word(labels[op.index()]);
            lane.finish()
        }
        SpBlock::Chain(items) => {
            let mut lane = Lane::new(0x6368_6169);
            for item in items {
                lane.word(sp_hash(item, labels));
            }
            lane.finish()
        }
        SpBlock::Branches(items) => {
            let mut hashes: Vec<u64> = items.iter().map(|b| sp_hash(b, labels)).collect();
            let mut lane = Lane::new(0x6272_6368);
            lane.words(&sorted_fold(&mut hashes));
            lane.finish()
        }
    }
}

/// An *order-sensitive* signature of a graph's concrete numbering: a hash
/// over `(kind, shape, predecessor ids)` in id order. Two graphs with
/// equal signatures are identical labelled graphs (same operators with the
/// same ids and the same wiring), so a plan computed for one indexes
/// exactly the same operators in the other.
///
/// This is the counterpart of the canonical [`model_fingerprint`]: the
/// fingerprint is deliberately invariant under renumbering (the cache
/// key), while this signature is deliberately *not* (the safety check
/// before serving a cached plan, whose stage op lists are raw ids).
pub fn numbering_signature(graph: &Graph) -> u64 {
    let mut lane = Lane::new(0x006e_756d_6265_7231);
    lane.word(graph.len() as u64);
    for node in graph.nodes() {
        lane.words(&node.kind.structural_words());
        lane.words(
            &node
                .out_shape
                .dims()
                .iter()
                .map(|&d| d as u64)
                .collect::<Vec<u64>>(),
        );
        lane.words(
            &graph
                .preds(node.id)
                .iter()
                .map(|p| p.0 as u64)
                .collect::<Vec<u64>>(),
        );
    }
    lane.finish()
}

/// The canonical fingerprint of a model (graph + SP decomposition),
/// independent of node-insertion order and operator names.
pub fn model_fingerprint(model: &SpModel) -> Fingerprint {
    let graph = model.graph();
    let labels = canonical_labels(graph);
    let mut digest = Digest::new(0x006d_6f64_656c);
    digest.word(graph.len() as u64);
    digest.word(graph.edge_count() as u64);
    let mut all = labels.clone();
    digest.words(&sorted_fold(&mut all));
    digest.word(sp_hash(model.root(), &labels));
    // The path the DAG ladder took is part of the model's identity: an
    // SP-ized or clustered tree must never collide with a hand-authored
    // exact one. `ExactSp` absorbs nothing so every pre-DAG fingerprint
    // stays byte-stable.
    match model.path() {
        PlanPath::ExactSp => {}
        PlanPath::SpIzed { distortion } => {
            digest.word(0x7370_697a_6564); // "spized"
            digest.word(distortion);
        }
        PlanPath::Clustered { units } => {
            digest.word(0x636c_7573_7465_7264); // "clusterd"
            digest.word(u64::from(units));
        }
    }
    Fingerprint(digest.finish())
}

fn absorb_cluster(digest: &mut Digest, cluster: &Cluster) {
    digest.word(cluster.device_count() as u64);
    digest.word(cluster.gpus_per_node() as u64);
    let p = cluster.profile();
    digest.words(&p.name.bytes().map(u64::from).collect::<Vec<u64>>());
    digest.f64_bits(p.peak_flops);
    digest.f64_bits(p.mem_bandwidth);
    digest.word(p.mem_capacity);
    digest.f64_bits(p.kernel_overhead);
    digest.f64_bits(p.efficiency_half_sat);
    for link in [cluster.intra_link(), cluster.inter_link()] {
        digest.f64_bits(link.bandwidth);
        digest.f64_bits(link.latency);
    }
    // Belt and braces: the node assignment derives from gpus_per_node
    // today, but hash it anyway so future irregular topologies can't alias.
    for d in 0..cluster.device_count() as u32 {
        digest.word(cluster.node_of(DeviceId(d)) as u64);
    }
}

fn absorb_options(digest: &mut Digest, options: &PlanOptions) {
    digest.f64_bits(options.epsilon);
    match &options.micro_batch_candidates {
        None => digest.word(0),
        Some(list) => {
            digest.word(1);
            digest.words(list);
        }
    }
    digest.word(options.max_micro_batches);
    digest.words(&options.kfkb_candidates);
    digest.word(options.per_stage_micro_batch as u64);
    digest.word(options.eval_budget);
    // `None` hashes as 0: `with_beam_width` clamps to >= 1, so no bounded
    // beam can alias the unbounded default.
    digest.word(options.beam_width.map(u64::from).unwrap_or(0));
    // `options.parallelism` is deliberately NOT absorbed: the parallel
    // planner is plan-identical to the sequential one by construction, so
    // requests differing only in thread count must share a cache entry.
}

/// A canonical fingerprint of a *produced plan*: the strategy itself —
/// stage graph, device placement, in-flight table, schedule, and planner
/// estimates — hashed through the artifact codec's canonical *strategy*
/// encoding.
///
/// The artifact's format/version header and its [`SearchStats`] block are
/// excluded on purpose: codec schema bumps and accounting changes (new
/// counters, re-defined `dp_states`) must not read as plan drift, while
/// any change to the strategy a planner returns must. The planner-perf
/// smoke check (`planner_profile --smoke`) pins these fingerprints.
///
/// [`SearchStats`]: gp_partition::SearchStats
pub fn plan_fingerprint(plan: &gp_partition::Plan) -> Fingerprint {
    let text = crate::json::Json::Obj(crate::artifact::strategy_members(plan)).to_string();
    let mut digest = Digest::new(0x0070_6c61_6e00_6670);
    let bytes = text.as_bytes();
    digest.word(bytes.len() as u64);
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        digest.word(u64::from_le_bytes(word));
    }
    Fingerprint(digest.finish())
}

/// The *graph part* of a request fingerprint: everything that identifies
/// which planner runs over which model, independent of the cluster,
/// mini-batch, or search options.
///
/// Two requests with equal graph parts but different [config parts]
/// (`request_config_fingerprint`) are *near misses*: the search spaces
/// differ, but a cached plan for one is a useful warm-start seed for the
/// other (see `PlanService`'s warm index).
///
/// [config parts]: request_config_fingerprint
pub fn request_graph_fingerprint(model: &SpModel, planner_tag: u64) -> Fingerprint {
    let mut digest = Digest::new(0x0072_6571_6772_6168);
    let model_fp = model_fingerprint(model).0;
    digest.word(model_fp as u64);
    digest.word((model_fp >> 64) as u64);
    digest.word(planner_tag);
    Fingerprint(digest.finish())
}

/// The *config part* of a request fingerprint: cluster, mini-batch and
/// planner options — everything a near-miss warm start is allowed to vary.
pub fn request_config_fingerprint(
    cluster: &Cluster,
    mini_batch: u64,
    options: &PlanOptions,
) -> Fingerprint {
    let mut digest = Digest::new(0x0072_6571_636f_6e66);
    absorb_cluster(&mut digest, cluster);
    digest.word(mini_batch);
    absorb_options(&mut digest, options);
    Fingerprint(digest.finish())
}

/// The full cache key of a planning request: the combination of
/// [`request_graph_fingerprint`] and [`request_config_fingerprint`].
///
/// `planner_tag` distinguishes planners that share everything else (the
/// [`crate::ServePlanner`] discriminant).
pub fn request_fingerprint(
    model: &SpModel,
    cluster: &Cluster,
    mini_batch: u64,
    options: &PlanOptions,
    planner_tag: u64,
) -> Fingerprint {
    let graph = request_graph_fingerprint(model, planner_tag).0;
    let config = request_config_fingerprint(cluster, mini_batch, options).0;
    let mut digest = Digest::new(0x0072_6571_7565_7374);
    digest.word(graph as u64);
    digest.word((graph >> 64) as u64);
    digest.word(config as u64);
    digest.word((config >> 64) as u64);
    Fingerprint(digest.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_ir::zoo::{self, CandleUnoConfig, MmtConfig, MoeConfig};
    use gp_ir::{GraphBuilder, OpKind, Shape};

    /// The diamond graph built in two different insertion orders: ids
    /// permute, structure and input order do not. The two arms are
    /// *asymmetric* (bias on vs off) so a hash that leaked numeric ids or
    /// pred/succ construction order would diverge.
    fn diamond(swap: bool) -> SpModel {
        let mut b = GraphBuilder::new();
        let x = b.input("x", Shape::vector(8));
        let (a, c) = if swap {
            let c = b.linear("b", x, 8, false).unwrap();
            let a = b.linear("a", x, 8, true).unwrap();
            (a, c)
        } else {
            let a = b.linear("a", x, 8, true).unwrap();
            let c = b.linear("b", x, 8, false).unwrap();
            (a, c)
        };
        let cat = b.op("cat", OpKind::Concat, &[a, c]).unwrap();
        let loss = b.loss("loss", &[cat]);
        let root = SpBlock::Chain(vec![
            SpBlock::Leaf(x),
            SpBlock::Branches(vec![SpBlock::Leaf(a), SpBlock::Leaf(c)]),
            SpBlock::Leaf(cat),
            SpBlock::Leaf(loss),
        ]);
        SpModel::new("diamond", b.finish().unwrap(), root).unwrap()
    }

    #[test]
    fn insertion_order_does_not_change_fingerprint() {
        assert_eq!(
            model_fingerprint(&diamond(false)),
            model_fingerprint(&diamond(true))
        );
    }

    #[test]
    fn numbering_signature_distinguishes_renumberings() {
        // Same fingerprint, different concrete numbering: the signature
        // must tell them apart (it guards cached-plan reuse) while staying
        // stable for the identical construction.
        let (a, b) = (diamond(false), diamond(true));
        assert_eq!(
            numbering_signature(a.graph()),
            numbering_signature(diamond(false).graph())
        );
        assert_ne!(
            numbering_signature(a.graph()),
            numbering_signature(b.graph())
        );
    }

    #[test]
    fn operator_names_do_not_change_fingerprint() {
        let mut b = GraphBuilder::new();
        let x = b.input("renamed_input", Shape::vector(8));
        let h = b.linear("other_name", x, 8, false).unwrap();
        let l = b.loss("l", &[h]);
        let m1 = SpModel::new(
            "m1",
            b.finish().unwrap(),
            SpBlock::Chain(vec![SpBlock::Leaf(x), SpBlock::Leaf(h), SpBlock::Leaf(l)]),
        )
        .unwrap();
        let mut b = GraphBuilder::new();
        let x = b.input("x", Shape::vector(8));
        let h = b.linear("fc", x, 8, false).unwrap();
        let l = b.loss("loss", &[h]);
        let m2 = SpModel::new(
            "m2",
            b.finish().unwrap(),
            SpBlock::Chain(vec![SpBlock::Leaf(x), SpBlock::Leaf(h), SpBlock::Leaf(l)]),
        )
        .unwrap();
        assert_eq!(model_fingerprint(&m1), model_fingerprint(&m2));
    }

    #[test]
    fn distinct_models_have_distinct_fingerprints() {
        let models = [
            model_fingerprint(&zoo::mmt(&MmtConfig::tiny())),
            model_fingerprint(&zoo::mmt(&MmtConfig::two_branch())),
            model_fingerprint(&zoo::candle_uno(&CandleUnoConfig::tiny())),
            model_fingerprint(&zoo::candle_uno(&CandleUnoConfig::default())),
            model_fingerprint(&zoo::candle_uno(&CandleUnoConfig::full())),
            model_fingerprint(&zoo::moe(&MoeConfig::tiny())),
            model_fingerprint(&zoo::moe(&MoeConfig::default())),
            model_fingerprint(&zoo::mlp_chain(4, 32)),
            model_fingerprint(&zoo::mlp_chain(5, 32)),
            model_fingerprint(&zoo::mlp_chain(4, 33)),
        ];
        for (i, a) in models.iter().enumerate() {
            for b in &models[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn every_request_component_is_load_bearing() {
        let model = zoo::mmt(&MmtConfig::tiny());
        let cluster = Cluster::summit_like(4);
        let opts = PlanOptions::default();
        let base = request_fingerprint(&model, &cluster, 64, &opts, 0);
        assert_ne!(
            base,
            request_fingerprint(&model, &Cluster::summit_like(8), 64, &opts, 0)
        );
        assert_ne!(
            base,
            request_fingerprint(
                &model,
                &Cluster::summit_like(4).with_memory_capacity(1 << 30),
                64,
                &opts,
                0
            )
        );
        assert_ne!(base, request_fingerprint(&model, &cluster, 32, &opts, 0));
        let tweaked = PlanOptions {
            max_micro_batches: 128,
            ..PlanOptions::default()
        };
        assert_ne!(base, request_fingerprint(&model, &cluster, 64, &tweaked, 0));
        assert_ne!(base, request_fingerprint(&model, &cluster, 64, &opts, 1));
        let beamed = PlanOptions::default().with_beam_width(8);
        assert_ne!(base, request_fingerprint(&model, &cluster, 64, &beamed, 0));
        assert_ne!(
            request_fingerprint(&model, &cluster, 64, &beamed, 0),
            request_fingerprint(
                &model,
                &cluster,
                64,
                &PlanOptions::default().with_beam_width(16),
                0
            )
        );
    }

    #[test]
    fn fingerprint_factors_into_graph_and_config_parts() {
        let model = zoo::mmt(&MmtConfig::tiny());
        let cluster = Cluster::summit_like(4);
        let opts = PlanOptions::default();
        // The graph part ignores cluster/mini-batch/options...
        let g = request_graph_fingerprint(&model, 0);
        assert_eq!(g, request_graph_fingerprint(&model, 0));
        assert_ne!(g, request_graph_fingerprint(&model, 1));
        assert_ne!(
            g,
            request_graph_fingerprint(&zoo::moe(&MoeConfig::tiny()), 0)
        );
        // ...and the config part ignores the model: a near-miss (same
        // graph, different cluster or mini-batch) differs only in config.
        let c = request_config_fingerprint(&cluster, 64, &opts);
        assert_eq!(c, request_config_fingerprint(&cluster, 64, &opts));
        assert_ne!(
            c,
            request_config_fingerprint(&Cluster::summit_like(8), 64, &opts)
        );
        assert_ne!(c, request_config_fingerprint(&cluster, 32, &opts));
        assert_ne!(
            c,
            request_config_fingerprint(&cluster, 64, &opts.clone().with_beam_width(4))
        );
        // The full key is a pure function of the two parts: recombining
        // equal parts yields equal keys.
        assert_eq!(
            request_fingerprint(&model, &cluster, 64, &opts, 0),
            request_fingerprint(&model, &cluster, 64, &opts, 0)
        );
    }

    #[test]
    fn parallelism_does_not_change_request_fingerprint() {
        // Thread count never changes the produced plan, so it must not
        // split the cache.
        let model = zoo::mmt(&MmtConfig::tiny());
        let cluster = Cluster::summit_like(4);
        let parallel = PlanOptions {
            parallelism: 8,
            ..PlanOptions::default()
        };
        assert_eq!(
            request_fingerprint(&model, &cluster, 64, &PlanOptions::default(), 0),
            request_fingerprint(&model, &cluster, 64, &parallel, 0)
        );
    }

    #[test]
    fn plan_fingerprint_tracks_strategy_not_stats() {
        use gp_partition::{GraphPipePlanner, Planner, SearchStats};
        let model = zoo::mmt(&MmtConfig::tiny());
        let cluster = Cluster::summit_like(4);
        let plan = GraphPipePlanner::new().plan(&model, &cluster, 64).unwrap();
        let fp = plan_fingerprint(&plan);
        // Accounting changes must not read as drift...
        let mut renumbered = plan.clone();
        renumbered.stats = SearchStats {
            dp_evals: 123,
            ..SearchStats::default()
        };
        assert_eq!(fp, plan_fingerprint(&renumbered));
        // ...while strategy changes must.
        let mut moved = plan.clone();
        moved.bottleneck_tps *= 2.0;
        assert_ne!(fp, plan_fingerprint(&moved));
    }

    #[test]
    fn fingerprint_text_round_trips() {
        let fp = model_fingerprint(&zoo::mlp_chain(2, 8));
        assert_eq!(Fingerprint::parse(&fp.to_string()), Some(fp));
        assert_eq!(Fingerprint::parse("xyz"), None);
        assert_eq!(Fingerprint::parse(""), None);
    }
}
