//! A minimal, dependency-free JSON document model.
//!
//! The plan artifact codec ([`crate::artifact`]) needs a concrete wire
//! format *today*, while the workspace's `serde` is still a vendored
//! API-stub that cannot serialize (see `third_party/README.md`). This
//! module is that format's foundation: a JSON value tree with a writer and
//! a recursive-descent parser, built for **losslessness** rather than
//! speed:
//!
//! * integers are kept as [`Json::Int`] (`i128`, covering the full `u64`
//!   range used by plan counters) and never pass through `f64`;
//! * finite floats are written with Rust's shortest round-trip formatting
//!   (`{:?}`), so `text -> f64 -> text` is the identity on what we emit;
//! * a number lexeme is classified as [`Json::Int`] iff it contains no
//!   fraction or exponent, which is exactly how the writer distinguishes
//!   the two, so `parse(write(v)) == v` for every value this module
//!   produces.
//!
//! Object member order is preserved (objects are association lists), which
//! keeps encoded artifacts byte-stable.
//!
//! gp-lint: deterministic — this module's outputs feed plan
//! fingerprints or the artifact codec; `cargo xtask lint` scans it for
//! nondeterminism hazards (DESIGN.md §"Determinism lint").

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number with no fraction or exponent part.
    Int(i128),
    /// A number with a fraction or exponent part; always finite.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; member order is preserved.
    Obj(Vec<(String, Json)>),
}

/// A parse failure, with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one JSON document (trailing whitespace allowed, nothing else).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on malformed input or trailing garbage.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// Member lookup on an object; `None` for other variants or a missing
    /// key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64` (from [`Json::Int`] only).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Int(i) => u64::try_from(i).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`: a [`Json::Float`], or an [`Json::Int`] that
    /// converts exactly.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Float(f) => Some(f),
            Json::Int(i) => {
                let f = i as f64;
                (f as i128 == i).then_some(f)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Writes the value as compact JSON.
    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                use fmt::Write as _;
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                use fmt::Write as _;
                debug_assert!(f.is_finite(), "writer only emits finite floats");
                // {:?} is Rust's shortest round-trip form and always carries
                // a '.' or an exponent, so the parser classifies it back as
                // Float.
                let _ = write!(out, "{f:?}");
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected byte 0x{other:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain UTF-8 bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp =
                                    0x10000 + (((hi - 0xd800) as u32) << 10) + (lo - 0xdc00) as u32;
                                char::from_u32(cp)
                            } else {
                                char::from_u32(hi as u32)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(self.err(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| self.err("non-ASCII \\u escape"))?;
        let v = u16::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number lexemes are ASCII");
        if fractional {
            let f: f64 = text
                .parse()
                .map_err(|_| self.err(format!("invalid number `{text}`")))?;
            if !f.is_finite() {
                return Err(self.err(format!("number `{text}` overflows f64")));
            }
            Ok(Json::Float(f))
        } else {
            let i: i128 = text
                .parse()
                .map_err(|_| self.err(format!("invalid number `{text}`")))?;
            Ok(Json::Int(i))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Json) {
        let text = v.to_string();
        assert_eq!(&Json::parse(&text).unwrap(), v, "wire form: {text}");
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Int(0),
            Json::Int(-42),
            Json::Int(u64::MAX as i128),
            Json::Float(0.5),
            Json::Float(1.0),
            Json::Float(-3.25e-9),
            Json::Float(f64::MAX),
            Json::Float(f64::MIN_POSITIVE),
            Json::Str("hello \"world\"\n\t\\ \u{1f600} \u{0007}".to_string()),
        ] {
            round_trip(&v);
        }
    }

    #[test]
    fn integral_floats_stay_floats() {
        let text = Json::Float(4.0).to_string();
        assert_eq!(text, "4.0");
        assert_eq!(Json::parse(&text).unwrap(), Json::Float(4.0));
        assert_eq!(Json::parse("4").unwrap(), Json::Int(4));
    }

    #[test]
    fn float_round_trip_is_exact() {
        // Shortest-form printing is lossless for awkward values.
        for bits in [
            0x3fb999999999999au64,
            0x7fefffffffffffff,
            0x0000000000000001,
        ] {
            let f = f64::from_bits(bits);
            let parsed = Json::parse(&Json::Float(f).to_string()).unwrap();
            assert_eq!(parsed, Json::Float(f));
        }
    }

    #[test]
    fn nested_documents_round_trip() {
        let v = Json::Obj(vec![
            ("a".into(), Json::Arr(vec![Json::Int(1), Json::Null])),
            ("b".into(), Json::Obj(vec![("x".into(), Json::Float(2.5))])),
            ("empty".into(), Json::Arr(vec![])),
            ("none".into(), Json::Obj(vec![])),
        ]);
        round_trip(&v);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"k\" : [ 1 , \"\\u0041\\ud83d\\ude00\" ] } ").unwrap();
        assert_eq!(
            v.get("k").unwrap().as_arr().unwrap()[1].as_str(),
            Some("A\u{1f600}")
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "nul",
            "\"unterminated",
            "1 2",
            "{\"a\" 1}",
            "\"\\q\"",
            "1e999",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn object_lookup_and_accessors() {
        let v = Json::parse("{\"n\":3,\"f\":1.5,\"s\":\"x\"}").unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.get("f").unwrap().as_u64(), None);
    }
}
