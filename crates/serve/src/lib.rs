//! # gp-serve — the concurrent plan-serving subsystem
//!
//! GraphPipe's value is the *plan*: the §5 partitioner spends tens of
//! thousands of DP evaluations per query, yet the result is a small, pure
//! function of `(model, cluster, planner, options, mini-batch)`. This crate
//! turns planning into a service, the PipeDream-style profiler → planner →
//! runtime split realized for the reproduction:
//!
//! * [`fingerprint`] — **canonical cache keys.** A 128-bit structural hash
//!   over the model graph (Weisfeiler–Leman-refined, so it is invariant
//!   under node-insertion order and operator renaming), its SP
//!   decomposition, the cluster spec, the planner choice and options, and
//!   the mini-batch size. See
//!   [`fingerprint::request_fingerprint`] for the exact definition.
//! * [`artifact`] — **a lossless, versioned plan format.** Hand-rolled
//!   JSON encode/decode for [`gp_partition::Plan`] with a
//!   `format`/`version` header, integer-exact numbers, shortest-round-trip
//!   floats, and *validating* decoding (the stage graph is rebuilt and
//!   re-checked against §3's C1–C4). `decode(encode(plan)) == plan`,
//!   exactly. Built on the in-crate [`json`] document model; swapping in
//!   real serde later only touches that seam.
//! * [`PlanCache`] — an LRU of decoded plans keyed by fingerprint.
//! * [`PlanService`] — a thread-pool-backed service (crossbeam channels +
//!   parking_lot, the same stack as `gp-exec`) that deduplicates
//!   concurrent identical requests (single-flight), serves repeats from
//!   the cache without touching the DP path, and reports hit/miss/latency
//!   counters as [`ServeStats`].
//!
//! Plans carry raw operator ids, so before any plan is reused — cache hit
//! or single-flight fan-out — the receiving request's graph must match the
//! plan's recorded *numbering signature*
//! ([`fingerprint::numbering_signature`], an order-sensitive exact-graph
//! hash). A fingerprint collision — or an isomorphic model with
//! renumbered operators — therefore degrades to a fresh planner run
//! instead of returning a plan that indexes the wrong operators.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use gp_cluster::Cluster;
//! use gp_ir::zoo::{self, CandleUnoConfig};
//! use gp_serve::{artifact, PlanRequest, PlanService};
//!
//! let service = PlanService::new(2, 32);
//! let model = Arc::new(zoo::candle_uno(&CandleUnoConfig::tiny()));
//! let request = PlanRequest::new(Arc::clone(&model), Cluster::summit_like(4), 32);
//! let fingerprint = request.fingerprint();
//!
//! // First query plans; the repeat is a cache hit.
//! let plan = service.plan(request.clone())?;
//! let cached = service.plan(request)?;
//! assert_eq!(plan, cached);
//! assert_eq!(service.stats().planner_runs, 1);
//!
//! // Persist the strategy and restore it, losslessly.
//! let text = artifact::encode_plan(&plan, Some(fingerprint));
//! let (restored, fp) = artifact::decode_plan(&text, model.graph(), &Cluster::summit_like(4))
//!     .expect("artifact decodes");
//! // Lossless for plan data (search-phase wall timings are measurement,
//! // not plan data): re-encoding reproduces the bytes exactly.
//! assert_eq!(artifact::encode_plan(&restored, fp), text);
//! assert_eq!(fp, Some(fingerprint));
//! # Ok::<(), gp_serve::ServeError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod artifact;
mod cache;
pub mod fingerprint;
pub mod json;
mod service;

pub use cache::PlanCache;
pub use fingerprint::Fingerprint;
pub use service::{PlanRequest, PlanService, PlanTicket, ServeError, ServePlanner, ServeStats};
