//! The concurrent plan-serving service.
//!
//! [`PlanService`] owns a pool of planner worker threads behind a crossbeam
//! channel. Every [`PlanRequest`] is fingerprinted
//! ([`crate::fingerprint::request_fingerprint`]); the fingerprint drives a
//! three-level fast path:
//!
//! 1. **cache hit** — the LRU ([`crate::PlanCache`]) already holds a
//!    decoded plan for the fingerprint *and* the recorded
//!    [`numbering_signature`] matches the request's graph exactly; the
//!    plan is served without touching the DP planner;
//! 2. **single-flight join** — another request with the same fingerprint
//!    is already being planned; this request subscribes to its result
//!    instead of planning again (the worker checks each subscriber's
//!    numbering signature before fanning the shared plan out);
//! 3. **miss** — the request is queued for a worker, which runs the DP
//!    planner, fills the cache, and fans the result out to every
//!    subscriber.
//!
//! All three paths are counted in [`ServeStats`].
//!
//! **Planner parallelism.** A request whose
//! [`PlanOptions::parallelism`](gp_partition::PlanOptions) is above one
//! plans on the speculative parallel search
//! ([`gp_partition::ParallelPlanner`]): the worker that claims the miss
//! spreads the DP over that many scoped threads, letting one hot request
//! use otherwise idle cores. Because the parallel search is
//! plan-identical to the sequential one, the knob is excluded from the
//! request fingerprint — sequential and parallel requests for the same
//! problem share one cache entry and single-flight run.

use crate::cache::PlanCache;
use crate::fingerprint::{
    numbering_signature, request_config_fingerprint, request_fingerprint,
    request_graph_fingerprint, Fingerprint,
};
use crossbeam::channel::{unbounded, Receiver, Sender};
use gp_baselines::{PipeDreamPlanner, PiperPlanner};
use gp_cluster::Cluster;
use gp_ir::SpModel;
use gp_obs::{ClockHandle, HistogramSnapshot, Telemetry};
use gp_partition::{GraphPipePlanner, Plan, PlanError, PlanOptions, Planner, WarmStart};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Which planner a request should run on a cache miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ServePlanner {
    /// The GraphPipe §5 partitioner (the default).
    #[default]
    GraphPipe,
    /// The PipeDream-style sequential baseline.
    PipeDream,
    /// Piper's downset planner.
    Piper,
}

impl ServePlanner {
    /// Stable tag mixed into the request fingerprint.
    fn tag(self) -> u64 {
        match self {
            ServePlanner::GraphPipe => 0,
            ServePlanner::PipeDream => 1,
            ServePlanner::Piper => 2,
        }
    }

    fn build(
        self,
        options: PlanOptions,
        telemetry: &Telemetry,
        warm: Option<WarmStart>,
    ) -> Box<dyn Planner> {
        match self {
            ServePlanner::GraphPipe => {
                let planner =
                    GraphPipePlanner::with_options(options).with_telemetry(telemetry.clone());
                Box::new(match warm {
                    Some(w) => planner.with_warm_start(w),
                    None => planner,
                })
            }
            // The baselines have no iterative search to seed.
            ServePlanner::PipeDream => Box::new(PipeDreamPlanner::with_options(options)),
            ServePlanner::Piper => Box::new(PiperPlanner::with_options(options)),
        }
    }
}

/// One planning request: everything a planner needs, plus the planner
/// choice.
#[derive(Clone)]
pub struct PlanRequest {
    /// The model to plan (shared, since many requests reuse one model).
    pub model: Arc<SpModel>,
    /// The target cluster.
    pub cluster: Cluster,
    /// Global mini-batch size.
    pub mini_batch: u64,
    /// Planner search options.
    pub options: PlanOptions,
    /// Which planner to run on a miss.
    pub planner: ServePlanner,
}

impl PlanRequest {
    /// A GraphPipe request with default options.
    pub fn new(model: Arc<SpModel>, cluster: Cluster, mini_batch: u64) -> Self {
        PlanRequest {
            model,
            cluster,
            mini_batch,
            options: PlanOptions::default(),
            planner: ServePlanner::default(),
        }
    }

    /// Replaces the search options.
    pub fn with_options(mut self, options: PlanOptions) -> Self {
        self.options = options;
        self
    }

    /// Replaces the planner choice.
    pub fn with_planner(mut self, planner: ServePlanner) -> Self {
        self.planner = planner;
        self
    }

    /// The request's cache key.
    pub fn fingerprint(&self) -> Fingerprint {
        request_fingerprint(
            &self.model,
            &self.cluster,
            self.mini_batch,
            &self.options,
            self.planner.tag(),
        )
    }
}

/// Why a served request failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The planner itself failed (infeasible, search explosion, ...).
    Plan(PlanError),
    /// The planner produced a plan the static verifier rejects: a planner
    /// bug, caught before the plan reaches the cache or any subscriber.
    InvalidPlan(gp_verify::VerifyError),
    /// The service shut down before the request completed.
    ServiceStopped,
    /// Admission control refused the request: the tenant is at its
    /// in-flight quota, or the miss queue is past its configured depth
    /// (`gp-fleet` shedding).
    Overloaded {
        /// The tenant whose request was refused.
        tenant: String,
        /// In-flight requests (quota refusal) or queued misses (shedding)
        /// at refusal time.
        depth: usize,
    },
    /// Every configured planner worker was unreachable (`gp-fleet` remote
    /// planning); the request was tried on `attempts` workers.
    WorkerUnavailable {
        /// Workers tried before giving up.
        attempts: usize,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Plan(e) => write!(f, "planning failed: {e}"),
            ServeError::InvalidPlan(e) => {
                write!(f, "planner produced an invalid plan: {e}")
            }
            ServeError::ServiceStopped => write!(f, "plan service stopped"),
            ServeError::Overloaded { tenant, depth } => {
                write!(f, "request shed for tenant `{tenant}` (depth {depth})")
            }
            ServeError::WorkerUnavailable { attempts } => {
                write!(f, "no planner worker reachable (tried {attempts})")
            }
        }
    }
}

impl std::error::Error for ServeError {}

type Reply = Result<Arc<Plan>, ServeError>;

/// A pending response to a submitted request.
#[must_use = "a ticket resolves to the plan; drop it and the answer is lost"]
pub struct PlanTicket {
    fingerprint: Fingerprint,
    served_from_cache: bool,
    rx: Receiver<Reply>,
}

impl PlanTicket {
    /// The request's fingerprint (cache key).
    pub fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }

    /// Whether the response was served straight from the cache at submit
    /// time (no planner involvement, not even a single-flight wait).
    pub fn served_from_cache(&self) -> bool {
        self.served_from_cache
    }

    /// Blocks until the plan (or failure) is available.
    ///
    /// # Errors
    ///
    /// Returns the planner's error, or [`ServeError::ServiceStopped`] when
    /// the service was dropped with the request still queued.
    pub fn wait(self) -> Result<Arc<Plan>, ServeError> {
        match self.rx.recv() {
            Ok(reply) => reply,
            Err(_) => Err(ServeError::ServiceStopped),
        }
    }
}

/// Monotonic service counters (all since service start).
#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    hits: AtomicU64,
    hit_rejections: AtomicU64,
    joins: AtomicU64,
    misses: AtomicU64,
    planner_runs: AtomicU64,
    planner_errors: AtomicU64,
    planner_nanos: AtomicU64,
    warm_starts: AtomicU64,
}

/// What the warm index remembers about the last successful GraphPipe plan
/// for a graph: enough to rebuild a [`WarmStart`] for a near-miss request
/// without holding the plan itself (the LRU may have evicted it).
#[derive(Clone, Copy)]
struct WarmSeed {
    /// Config part of the seeding request, to tell exact re-plans (cache
    /// evictions) from true near misses in the counters.
    config_fp: Fingerprint,
    /// Devices the seeding plan was computed for; the throughput hint
    /// scales by `devices / new_devices` (see [`WarmStart`]).
    devices: u32,
    bottleneck_tps: f64,
    micro_batch: u64,
}

/// A point-in-time snapshot of service counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests submitted.
    pub requests: u64,
    /// Requests answered from the cache without planning.
    pub hits: u64,
    /// Requests whose fingerprint matched a plan (cached or in flight)
    /// computed for a *different* graph numbering — a fingerprint
    /// collision or an isomorphic model with renumbered operators — and
    /// were therefore planned fresh instead.
    pub hit_rejections: u64,
    /// Requests that joined an in-flight planning run (single-flight
    /// deduplication).
    pub joins: u64,
    /// Requests that dispatched a new planning run.
    pub misses: u64,
    /// Planner executions completed.
    pub planner_runs: u64,
    /// Planner executions that returned an error.
    pub planner_errors: u64,
    /// Total wall-clock nanoseconds spent inside planners.
    pub planner_nanos: u64,
    /// Planner executions seeded from a *near-miss* warm start: a prior
    /// plan for the same graph and planner under a different cluster,
    /// mini-batch, or options. Warm-started plans are identical to cold
    /// ones; only search effort changes.
    pub warm_starts: u64,
    /// Plans currently cached.
    pub cached_plans: u64,
    /// Cache evictions so far.
    pub cache_evictions: u64,
    /// Latency distribution of cache-hit responses (submit to reply),
    /// in nanoseconds. Empty unless the service was built with
    /// [`PlanService::with_telemetry`] and telemetry is enabled.
    pub hit_latency: HistogramSnapshot,
    /// Latency distribution of planner executions (misses), in
    /// nanoseconds. Empty without enabled telemetry.
    pub miss_latency: HistogramSnapshot,
    /// Distribution of time jobs spent queued before a worker picked them
    /// up, in nanoseconds. Empty without enabled telemetry.
    pub queue_wait: HistogramSnapshot,
}

impl ServeStats {
    /// Fraction of requests served without a planner dispatch (cache hits
    /// plus single-flight joins).
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        (self.hits + self.joins) as f64 / self.requests as f64
    }

    /// Mean planner latency in seconds (0 when nothing ran).
    pub fn mean_planner_latency(&self) -> f64 {
        if self.planner_runs == 0 {
            return 0.0;
        }
        self.planner_nanos as f64 / self.planner_runs as f64 / 1e9
    }

    /// The multi-line counter report (also the [`fmt::Display`] output).
    /// Latency histogram lines appear only when the corresponding
    /// distribution has samples, i.e. when the service runs with enabled
    /// telemetry ([`PlanService::with_telemetry`]).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "requests {}  hits {}  joins {}  misses {}  hit-rate {:.1}%",
            self.requests,
            self.hits,
            self.joins,
            self.misses,
            self.hit_rate() * 100.0
        );
        let _ = write!(
            out,
            "planner runs {} ({} failed, {} warm-started, mean {:.3} ms)  cached {}  evictions {}  rejected hits {}",
            self.planner_runs,
            self.planner_errors,
            self.warm_starts,
            self.mean_planner_latency() * 1e3,
            self.cached_plans,
            self.cache_evictions,
            self.hit_rejections
        );
        let ms = |ns: u64| ns as f64 / 1e6;
        for (label, h) in [
            ("hit latency", &self.hit_latency),
            ("miss latency", &self.miss_latency),
            ("queue wait", &self.queue_wait),
        ] {
            if h.count > 0 {
                let _ = write!(
                    out,
                    "\n{label}: n {}  p50 {:.3} ms  p90 {:.3} ms  p99 {:.3} ms  max {:.3} ms",
                    h.count,
                    ms(h.p50),
                    ms(h.p90),
                    ms(h.p99),
                    ms(h.max),
                );
            }
        }
        out
    }
}

impl fmt::Display for ServeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

struct Job {
    fingerprint: Fingerprint,
    request: PlanRequest,
    /// Clock reading at submit time, for the queue-wait histogram.
    submitted_ns: u64,
}

/// Subscribers to an in-flight planning run. Each waiter keeps its own
/// request so the worker can re-validate the produced plan against *that*
/// requester's graph before fanning it out.
type Waiters = Vec<(PlanRequest, Sender<Reply>)>;

struct Shared {
    // Lock order: `inflight` before `cache` when both are held.
    inflight: Mutex<HashMap<Fingerprint, Waiters>>,
    cache: Mutex<PlanCache>,
    // Warm-start seeds, keyed by the *graph part* of the request
    // fingerprint ([`request_graph_fingerprint`]): one seed per
    // (model, planner), refreshed on every successful GraphPipe run.
    // Never held together with `inflight` or `cache`.
    warm_index: Mutex<HashMap<Fingerprint, WarmSeed>>,
    counters: Counters,
    // All wall-clock reads in the service go through this handle (the
    // workspace's sanctioned seam); `telemetry` additionally receives
    // spans and latency histograms when enabled.
    clock: ClockHandle,
    telemetry: Telemetry,
}

/// A long-running, thread-pool-backed planning service with an LRU plan
/// cache and single-flight request deduplication.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use gp_cluster::Cluster;
/// use gp_ir::zoo::{self, MmtConfig};
/// use gp_serve::{PlanRequest, PlanService};
///
/// let service = PlanService::new(2, 16);
/// let model = Arc::new(zoo::mmt(&MmtConfig::tiny()));
/// let request = PlanRequest::new(model, Cluster::summit_like(4), 32);
/// let first = service.plan(request.clone())?;
/// let again = service.plan(request)?;            // served from cache
/// assert_eq!(first, again);
/// let stats = service.shutdown();
/// assert_eq!(stats.planner_runs, 1);
/// assert_eq!(stats.hits, 1);
/// # Ok::<(), gp_serve::ServeError>(())
/// ```
pub struct PlanService {
    shared: Arc<Shared>,
    job_tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl PlanService {
    /// Starts a service with `workers` planner threads and an LRU cache of
    /// `cache_capacity` plans.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0` or `cache_capacity == 0`.
    pub fn new(workers: usize, cache_capacity: usize) -> Self {
        Self::with_telemetry(workers, cache_capacity, Telemetry::disabled())
    }

    /// [`PlanService::new`] with a [`Telemetry`] handle: the service
    /// records `serve.hit_latency_ns` / `serve.miss_latency_ns` /
    /// `serve.queue_wait_ns` histograms and a `serve.coalesced` counter
    /// into it, opens a `serve.plan` span around every planner run, and
    /// hands the telemetry to the planners themselves. The histograms are
    /// surfaced in [`PlanService::stats`].
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0` or `cache_capacity == 0`.
    pub fn with_telemetry(workers: usize, cache_capacity: usize, telemetry: Telemetry) -> Self {
        assert!(workers > 0, "plan service needs at least one worker");
        let shared = Arc::new(Shared {
            inflight: Mutex::new(HashMap::new()),
            cache: Mutex::new(PlanCache::new(cache_capacity)),
            warm_index: Mutex::new(HashMap::new()),
            counters: Counters::default(),
            clock: ClockHandle::default(),
            telemetry,
        });
        let (job_tx, job_rx) = unbounded::<Job>();
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let rx = job_rx.clone();
                std::thread::spawn(move || worker_loop(&shared, &rx))
            })
            .collect();
        PlanService {
            shared,
            job_tx: Some(job_tx),
            workers: handles,
        }
    }

    /// Submits a request, returning a ticket that resolves to the plan.
    ///
    /// Never blocks on planning: cache hits resolve immediately and misses
    /// are queued for the worker pool.
    pub fn submit(&self, request: PlanRequest) -> PlanTicket {
        let fingerprint = request.fingerprint();
        // Order-sensitive identity of this request's graph numbering —
        // computed once (O(graph), no locks); a cached plan is served only
        // when its recorded numbering matches exactly, since plans carry
        // raw operator ids while the fingerprint is renumbering-invariant.
        let numbering = numbering_signature(request.model.graph());
        let counters = &self.shared.counters;
        counters.requests.fetch_add(1, Ordering::Relaxed);
        // 0 when telemetry is disabled: the disabled path never reads the
        // clock, keeping `submit` allocation- and syscall-free on top of
        // its existing work.
        let submitted_ns = if self.shared.telemetry.is_enabled() {
            self.shared.clock.now_nanos()
        } else {
            0
        };
        let (tx, rx) = unbounded::<Reply>();

        // Fast path: cache hit for the identical planning problem.
        let mut consult_cache = true;
        if let Some((plan, cached_numbering)) = self.shared.cache.lock().get(&fingerprint) {
            if cached_numbering == numbering {
                counters.hits.fetch_add(1, Ordering::Relaxed);
                self.shared
                    .record_since("serve.hit_latency_ns", submitted_ns);
                let _ = tx.send(Ok(plan));
                return PlanTicket {
                    fingerprint,
                    served_from_cache: true,
                    rx,
                };
            }
            // Fingerprint collision or an isomorphic model with renumbered
            // operators: the cached plan would index the wrong operators.
            // Plan this request for real, without re-consulting the cache.
            counters.hit_rejections.fetch_add(1, Ordering::Relaxed);
            consult_cache = false;
        }

        // Slow path: join a running computation or claim the fingerprint,
        // re-checking the cache under the in-flight lock so a worker
        // finishing between the fast path and here cannot be missed.
        {
            let mut inflight = self.shared.inflight.lock();
            if let Some(waiters) = inflight.get_mut(&fingerprint) {
                waiters.push((request, tx.clone()));
                counters.joins.fetch_add(1, Ordering::Relaxed);
                self.shared.telemetry.counter_add("serve.coalesced", 1);
                return PlanTicket {
                    fingerprint,
                    served_from_cache: false,
                    rx,
                };
            }
            if consult_cache {
                if let Some((plan, cached_numbering)) = self.shared.cache.lock().get(&fingerprint) {
                    if cached_numbering == numbering {
                        counters.hits.fetch_add(1, Ordering::Relaxed);
                        self.shared
                            .record_since("serve.hit_latency_ns", submitted_ns);
                        let _ = tx.send(Ok(plan));
                        return PlanTicket {
                            fingerprint,
                            served_from_cache: true,
                            rx,
                        };
                    }
                    counters.hit_rejections.fetch_add(1, Ordering::Relaxed);
                }
            }
            inflight.insert(fingerprint, vec![(request.clone(), tx.clone())]);
        }

        counters.misses.fetch_add(1, Ordering::Relaxed);
        let send_failed = match &self.job_tx {
            Some(job_tx) => job_tx
                .send(Job {
                    fingerprint,
                    request,
                    submitted_ns,
                })
                .is_err(),
            None => true,
        };
        if send_failed {
            // Service is shutting down: fail the request instead of leaving
            // the waiter dangling.
            if let Some(waiters) = self.shared.inflight.lock().remove(&fingerprint) {
                for (_, waiter) in waiters {
                    let _ = waiter.send(Err(ServeError::ServiceStopped));
                }
            }
        }
        PlanTicket {
            fingerprint,
            served_from_cache: false,
            rx,
        }
    }

    /// Submits a request and blocks for the response.
    ///
    /// # Errors
    ///
    /// Propagates the planner's failure or a service shutdown.
    pub fn plan(&self, request: PlanRequest) -> Result<Arc<Plan>, ServeError> {
        self.submit(request).wait()
    }

    /// A snapshot of the service counters.
    pub fn stats(&self) -> ServeStats {
        let c = &self.shared.counters;
        let (cached_plans, cache_evictions) = {
            let cache = self.shared.cache.lock();
            (cache.len() as u64, cache.evictions())
        };
        ServeStats {
            requests: c.requests.load(Ordering::Relaxed),
            hits: c.hits.load(Ordering::Relaxed),
            hit_rejections: c.hit_rejections.load(Ordering::Relaxed),
            joins: c.joins.load(Ordering::Relaxed),
            misses: c.misses.load(Ordering::Relaxed),
            planner_runs: c.planner_runs.load(Ordering::Relaxed),
            planner_errors: c.planner_errors.load(Ordering::Relaxed),
            planner_nanos: c.planner_nanos.load(Ordering::Relaxed),
            warm_starts: c.warm_starts.load(Ordering::Relaxed),
            cached_plans,
            cache_evictions,
            hit_latency: self
                .shared
                .telemetry
                .histogram_snapshot("serve.hit_latency_ns"),
            miss_latency: self
                .shared
                .telemetry
                .histogram_snapshot("serve.miss_latency_ns"),
            queue_wait: self
                .shared
                .telemetry
                .histogram_snapshot("serve.queue_wait_ns"),
        }
    }

    /// The telemetry handle this service records into
    /// ([`Telemetry::disabled`] unless built via
    /// [`PlanService::with_telemetry`]).
    pub fn telemetry(&self) -> &Telemetry {
        &self.shared.telemetry
    }

    /// Drains the worker pool and returns the final counters.
    ///
    /// Queued requests still complete; new submissions after shutdown
    /// would fail, but `shutdown` consumes the service so the type system
    /// already forbids them.
    pub fn shutdown(mut self) -> ServeStats {
        self.join_workers();
        self.stats()
    }

    fn join_workers(&mut self) {
        // Closing the channel lets workers drain the queue and exit.
        self.job_tx = None;
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for PlanService {
    fn drop(&mut self) {
        self.join_workers();
    }
}

impl Shared {
    /// Records `clock now − since_ns` into the named histogram; free when
    /// telemetry is disabled (no clock read, no lookup).
    fn record_since(&self, name: &str, since_ns: u64) {
        if self.telemetry.is_enabled() {
            self.telemetry
                .record(name, self.clock.now_nanos().saturating_sub(since_ns));
        }
    }
}

fn worker_loop(shared: &Shared, rx: &Receiver<Job>) {
    while let Ok(job) = rx.recv() {
        shared.record_since("serve.queue_wait_ns", job.submitted_ns);
        let reply = run_planner(shared, &job.request);
        let numbering = numbering_signature(job.request.model.graph());
        // Publish to the cache and collect subscribers under the in-flight
        // lock (same order as `submit`: inflight, then cache) so that no
        // concurrent submit can both miss the cache and miss the in-flight
        // entry.
        let waiters = {
            let mut inflight = shared.inflight.lock();
            if let Ok(plan) = &reply {
                shared
                    .cache
                    .lock()
                    .insert(job.fingerprint, Arc::clone(plan), numbering);
            }
            inflight.remove(&job.fingerprint).unwrap_or_default()
        };
        // Fan out, re-validating per subscriber: a joiner shares the
        // fingerprint but may hold an isomorphic-yet-renumbered model (or a
        // colliding request), for which this plan's OpIds would be wrong.
        // Waiters sharing the job's model object skip the O(graph) check.
        for (waiter_request, waiter_tx) in waiters {
            let resp = match &reply {
                Ok(plan) => {
                    if Arc::ptr_eq(&waiter_request.model, &job.request.model)
                        || numbering_signature(waiter_request.model.graph()) == numbering
                    {
                        Ok(Arc::clone(plan))
                    } else {
                        shared
                            .counters
                            .hit_rejections
                            .fetch_add(1, Ordering::Relaxed);
                        run_planner(shared, &waiter_request)
                    }
                }
                Err(e) => Err(e.clone()),
            };
            let _ = waiter_tx.send(resp);
        }
    }
}

/// Runs the request's planner synchronously, updating the run/error/latency
/// counters.
///
/// GraphPipe runs consult the warm index first: a seed recorded for the
/// same graph and planner — even under a different cluster, mini-batch, or
/// options (a fingerprint *near miss*) — turns into a [`WarmStart`], which
/// skips most of the bracket ladder without changing the produced plan.
fn run_planner(shared: &Shared, request: &PlanRequest) -> Reply {
    let mut warm = None;
    let mut seed_key = None;
    if request.planner == ServePlanner::GraphPipe {
        let graph_fp = request_graph_fingerprint(&request.model, request.planner.tag());
        let config_fp =
            request_config_fingerprint(&request.cluster, request.mini_batch, &request.options);
        seed_key = Some((graph_fp, config_fp));
        if let Some(seed) = shared.warm_index.lock().get(&graph_fp).copied() {
            let devices = request.cluster.device_count().max(1) as f64;
            warm = Some(WarmStart {
                tps_hint: seed.bottleneck_tps * (seed.devices.max(1) as f64 / devices),
                micro_batch: Some(seed.micro_batch),
            });
            if seed.config_fp != config_fp {
                shared.counters.warm_starts.fetch_add(1, Ordering::Relaxed);
                shared.telemetry.counter_add("serve.warm_starts", 1);
            }
        }
    }
    let planner = request
        .planner
        .build(request.options.clone(), &shared.telemetry, warm);
    let span = shared.telemetry.span("serve.plan");
    let start_ns = shared.clock.now_nanos();
    let outcome = planner.plan(&request.model, &request.cluster, request.mini_batch);
    let elapsed_ns = shared.clock.now_nanos().saturating_sub(start_ns);
    drop(span);
    let counters = &shared.counters;
    counters.planner_runs.fetch_add(1, Ordering::Relaxed);
    counters
        .planner_nanos
        .fetch_add(elapsed_ns, Ordering::Relaxed);
    if shared.telemetry.is_enabled() {
        shared.telemetry.record("serve.miss_latency_ns", elapsed_ns);
    }
    match outcome {
        Ok(plan) => {
            // Trust boundary: every plan is statically verified before it
            // can reach the cache or be fanned out to subscribers, so a
            // planner bug surfaces as a named invariant violation instead
            // of corrupting downstream consumers.
            if let Err(e) =
                gp_verify::verify_strategy(&request.model, &request.cluster, &plan).into_result()
            {
                counters.planner_errors.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::InvalidPlan(e));
            }
            if let Some((graph_fp, config_fp)) = seed_key {
                shared.warm_index.lock().insert(
                    graph_fp,
                    WarmSeed {
                        config_fp,
                        devices: request.cluster.device_count() as u32,
                        bottleneck_tps: plan.bottleneck_tps,
                        micro_batch: plan.max_micro_batch(),
                    },
                );
            }
            Ok(Arc::new(plan))
        }
        Err(e) => {
            counters.planner_errors.fetch_add(1, Ordering::Relaxed);
            Err(ServeError::Plan(e))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_ir::zoo::{self, CandleUnoConfig, MmtConfig};

    fn request(mini_batch: u64) -> PlanRequest {
        PlanRequest::new(
            Arc::new(zoo::candle_uno(&CandleUnoConfig::tiny())),
            Cluster::summit_like(4),
            mini_batch,
        )
    }

    #[test]
    fn repeat_requests_hit_the_cache() {
        let service = PlanService::new(2, 8);
        let a = service.plan(request(32)).unwrap();
        let b = service.plan(request(32)).unwrap();
        assert_eq!(a, b);
        let stats = service.shutdown();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.planner_runs, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert!(stats.hit_rate() > 0.0);
    }

    #[test]
    fn distinct_requests_plan_separately() {
        let service = PlanService::new(2, 8);
        let a = service.plan(request(32)).unwrap();
        let b = service.plan(request(16)).unwrap();
        assert_ne!(a.stage_graph.mini_batch(), b.stage_graph.mini_batch());
        let stats = service.shutdown();
        assert_eq!(stats.planner_runs, 2);
        assert_eq!(stats.hits, 0);
    }

    #[test]
    fn concurrent_identical_requests_run_the_planner_once() {
        // More submitters than workers, all identical: single-flight must
        // collapse them into exactly one planner execution.
        let service = Arc::new(PlanService::new(4, 8));
        let tickets: Vec<PlanTicket> = (0..64).map(|_| service.submit(request(32))).collect();
        let mut plans = Vec::new();
        for t in tickets {
            plans.push(t.wait().unwrap());
        }
        for w in plans.windows(2) {
            assert_eq!(w[0], w[1]);
        }
        let service = Arc::try_unwrap(service).ok().expect("sole owner");
        let stats = service.shutdown();
        assert_eq!(stats.requests, 64);
        assert_eq!(stats.planner_runs, 1, "single-flight failed: {stats}");
        assert_eq!(stats.hits + stats.joins, 63);
    }

    #[test]
    fn planner_failures_propagate_to_all_waiters() {
        // A mini-batch no micro-batch candidate divides -> planner error.
        let service = PlanService::new(1, 8);
        let bad = PlanRequest::new(
            Arc::new(zoo::mmt(&MmtConfig::tiny())),
            Cluster::summit_like(4),
            32,
        )
        .with_options(PlanOptions {
            micro_batch_candidates: Some(vec![7]),
            ..PlanOptions::default()
        });
        let t1 = service.submit(bad.clone());
        let t2 = service.submit(bad);
        assert!(matches!(t1.wait(), Err(ServeError::Plan(_))));
        assert!(matches!(t2.wait(), Err(ServeError::Plan(_))));
        let stats = service.shutdown();
        assert_eq!(stats.planner_errors, stats.planner_runs);
        // Errors are not cached.
        assert_eq!(stats.cached_plans, 0);
    }

    #[test]
    fn tickets_expose_fingerprint_and_cache_flag() {
        let service = PlanService::new(1, 8);
        let t1 = service.submit(request(32));
        let fp = t1.fingerprint();
        assert!(!t1.served_from_cache());
        t1.wait().unwrap();
        let t2 = service.submit(request(32));
        assert_eq!(t2.fingerprint(), fp);
        assert!(t2.served_from_cache());
        t2.wait().unwrap();
    }

    #[test]
    fn baseline_planners_are_servable() {
        let service = PlanService::new(2, 8);
        let gp = service.plan(request(32)).unwrap();
        let pd = service
            .plan(request(32).with_planner(ServePlanner::PipeDream))
            .unwrap();
        // Different planner => different fingerprint => both planned.
        assert!(pd.pipeline_depth() >= gp.pipeline_depth());
        let stats = service.shutdown();
        assert_eq!(stats.planner_runs, 2);
    }

    #[test]
    fn eviction_forces_a_replan() {
        let service = PlanService::new(1, 1);
        service.plan(request(32)).unwrap();
        service.plan(request(16)).unwrap(); // evicts the first plan
        service.plan(request(32)).unwrap(); // must re-plan
        let stats = service.shutdown();
        assert_eq!(stats.planner_runs, 3);
        assert_eq!(stats.cache_evictions, 2);
    }

    #[test]
    fn renumbered_isomorphic_model_gets_its_own_plan() {
        use gp_ir::{GraphBuilder, OpKind, Shape, SpBlock, SpModel};
        // The same asymmetric diamond built in two insertion orders: equal
        // fingerprints, permuted OpIds. Serving A's cached plan to B would
        // assign B's operators to the wrong stages; the service must
        // detect the mismatch and plan B for real.
        let diamond = |swap: bool| {
            let mut b = GraphBuilder::new();
            let x = b.input("x", Shape::vector(64));
            let (p, q) = if swap {
                let q = b.linear("q", x, 64, false).unwrap();
                let p = b.linear("p", x, 64, true).unwrap();
                (p, q)
            } else {
                let p = b.linear("p", x, 64, true).unwrap();
                let q = b.linear("q", x, 64, false).unwrap();
                (p, q)
            };
            let cat = b.op("cat", OpKind::Concat, &[p, q]).unwrap();
            let loss = b.loss("loss", &[cat]);
            let root = SpBlock::Chain(vec![
                SpBlock::Leaf(x),
                SpBlock::Branches(vec![SpBlock::Leaf(p), SpBlock::Leaf(q)]),
                SpBlock::Leaf(cat),
                SpBlock::Leaf(loss),
            ]);
            Arc::new(SpModel::new("diamond", b.finish().unwrap(), root).unwrap())
        };
        let (a, b) = (diamond(false), diamond(true));
        let req = |m: &Arc<SpModel>| PlanRequest::new(Arc::clone(m), Cluster::summit_like(2), 16);
        assert_eq!(req(&a).fingerprint(), req(&b).fingerprint());

        let service = PlanService::new(1, 8);
        let plan_a = service.plan(req(&a)).unwrap();
        let plan_b = service.plan(req(&b)).unwrap();
        // Both plans must be valid for their own graph's numbering.
        for (plan, model) in [(&plan_a, &a), (&plan_b, &b)] {
            plan.schedule.validate_c4(&plan.stage_graph).unwrap();
            for s in plan.stage_graph.stages() {
                assert!(model.graph().is_convex(&s.ops));
            }
        }
        let stats = service.shutdown();
        // B was either rejected at the cache (planned fresh) or joined and
        // re-planned at fan-out; in both cases two planner runs happened.
        assert_eq!(stats.planner_runs, 2, "{stats}");
        assert!(stats.hit_rejections >= 1, "{stats}");
    }

    #[test]
    fn parallel_requests_share_the_sequential_cache_entry() {
        // One hot request may spend idle cores via options.parallelism;
        // the produced plan is identical, so sequential and parallel
        // requests must collapse onto a single cache entry.
        let service = PlanService::new(2, 8);
        let parallel = request(32).with_options(PlanOptions {
            parallelism: 3,
            ..PlanOptions::default()
        });
        assert_eq!(request(32).fingerprint(), parallel.fingerprint());
        let a = service.plan(parallel).unwrap();
        let b = service.plan(request(32)).unwrap();
        assert_eq!(a, b);
        let stats = service.shutdown();
        assert_eq!(stats.planner_runs, 1, "{stats}");
        assert_eq!(stats.hits, 1, "{stats}");
    }

    #[test]
    fn near_miss_warm_start_serves_the_cold_plan() {
        use crate::fingerprint::plan_fingerprint;
        // Same model, different cluster size and mini-batch: a fingerprint
        // near miss. The warm-started plan must be byte-identical to what a
        // cold service produces for the same request.
        let service = PlanService::new(1, 8);
        service.plan(request(32)).unwrap(); // seeds the warm index
        let near = |mini: u64| {
            PlanRequest::new(
                Arc::new(zoo::candle_uno(&CandleUnoConfig::tiny())),
                Cluster::summit_like(8),
                mini,
            )
        };
        let warm_plan = service.plan(near(64)).unwrap();
        let stats = service.shutdown();
        assert_eq!(stats.planner_runs, 2, "{stats}");
        assert_eq!(stats.warm_starts, 1, "{stats}");
        assert!(stats.to_string().contains("warm-started"));

        let cold_service = PlanService::new(1, 8);
        let cold_plan = cold_service.plan(near(64)).unwrap();
        assert_eq!(cold_service.shutdown().warm_starts, 0);
        assert_eq!(plan_fingerprint(&warm_plan), plan_fingerprint(&cold_plan));
        assert_eq!(warm_plan.stage_graph, cold_plan.stage_graph);
        assert_eq!(warm_plan.bottleneck_tps, cold_plan.bottleneck_tps);
    }

    #[test]
    fn warm_start_counts_only_near_misses() {
        // An eviction-forced replan of the *same* config reuses the seed
        // but is not a near miss, so the counter must stay untouched. The
        // eviction comes from a different model, whose seed lives under its
        // own graph fingerprint.
        let other = PlanRequest::new(
            Arc::new(zoo::mmt(&MmtConfig::tiny())),
            Cluster::summit_like(4),
            32,
        );
        let service = PlanService::new(1, 1);
        service.plan(request(32)).unwrap();
        service.plan(other).unwrap(); // evicts the first plan
        service.plan(request(32)).unwrap(); // exact replan: warm, not near
        let stats = service.shutdown();
        assert_eq!(stats.planner_runs, 3, "{stats}");
        assert_eq!(stats.warm_starts, 0, "{stats}");
    }

    #[test]
    fn stats_display_mentions_hit_rate() {
        let service = PlanService::new(1, 4);
        service.plan(request(32)).unwrap();
        service.plan(request(32)).unwrap();
        let text = service.shutdown().to_string();
        assert!(text.contains("hit-rate"), "{text}");
        assert!(text.contains("planner runs"), "{text}");
    }
}
