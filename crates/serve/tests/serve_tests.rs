//! Integration tests for the plan-serving subsystem: real OS-thread
//! concurrency against one service, and end-to-end artifact fidelity
//! (a decoded plan simulates byte-identically to the original).

use gp_cluster::Cluster;
use gp_ir::zoo::{self, CandleUnoConfig, DlrmConfig, MmtConfig, MoeConfig};
use gp_serve::{artifact, PlanRequest, PlanService, ServePlanner};
use std::sync::Arc;

#[test]
fn sixty_four_concurrent_identical_requests_single_flight() {
    let service = Arc::new(PlanService::new(4, 16));
    let model = Arc::new(zoo::candle_uno(&CandleUnoConfig::default()));
    let mk = |model: &Arc<_>| PlanRequest::new(Arc::clone(model), Cluster::summit_like(8), 1024);
    let mut handles = Vec::new();
    for _ in 0..64 {
        let service = Arc::clone(&service);
        let request = mk(&model);
        handles.push(std::thread::spawn(move || service.plan(request).unwrap()));
    }
    let plans: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for w in plans.windows(2) {
        assert_eq!(w[0], w[1], "all requesters must observe the same plan");
    }
    let stats = service.stats();
    assert_eq!(stats.requests, 64);
    assert_eq!(
        stats.planner_runs, 1,
        "identical concurrent requests must trigger exactly one planner run: {stats}"
    );
    assert_eq!(stats.hits + stats.joins, 63);
}

#[test]
fn concurrent_mixed_workload_is_consistent() {
    let service = Arc::new(PlanService::new(4, 32));
    let models: Vec<(Arc<_>, u64)> = vec![
        (Arc::new(zoo::mmt(&MmtConfig::tiny())), 32),
        (Arc::new(zoo::candle_uno(&CandleUnoConfig::tiny())), 32),
        (Arc::new(zoo::dlrm(&DlrmConfig::tiny())), 16),
        (Arc::new(zoo::moe(&MoeConfig::tiny())), 16),
    ];
    let mut handles = Vec::new();
    for i in 0..64 {
        let service = Arc::clone(&service);
        let (model, mini_batch) = models[i % models.len()].clone();
        handles.push(std::thread::spawn(move || {
            let request = PlanRequest::new(model, Cluster::summit_like(4), mini_batch);
            let plan = service.plan(request.clone()).unwrap();
            // A repeat from inside the worker threads also matches.
            assert_eq!(plan, service.plan(request).unwrap());
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let stats = service.stats();
    assert_eq!(stats.requests, 128);
    // Exactly one planner run per distinct model, everything else served
    // from cache or single-flight.
    assert_eq!(stats.planner_runs, models.len() as u64, "{stats}");
    assert_eq!(stats.hit_rate(), (128 - models.len()) as f64 / 128.0);
}

#[test]
fn decoded_plans_simulate_identically() {
    // The artifact round trip must preserve not only equality but observable
    // behaviour: simulating the decoded plan yields a byte-identical report.
    let model = zoo::moe(&MoeConfig::tiny());
    let cluster = Cluster::summit_like(4);
    let service = PlanService::new(1, 4);
    let plan = service
        .plan(PlanRequest::new(
            Arc::new(model.clone()),
            cluster.clone(),
            16,
        ))
        .unwrap();
    let text = artifact::encode_plan(&plan, None);
    let (decoded, _) = artifact::decode_plan(&text, model.graph(), &cluster).unwrap();
    let a = gp_sim::simulate(model.graph(), &cluster, &plan.stage_graph, &plan.schedule).unwrap();
    let b = gp_sim::simulate(
        model.graph(),
        &cluster,
        &decoded.stage_graph,
        &decoded.schedule,
    )
    .unwrap();
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

#[test]
fn sequential_strategies_serve_and_round_trip() {
    let service = PlanService::new(2, 8);
    let model = Arc::new(zoo::candle_uno(&CandleUnoConfig::tiny()));
    let cluster = Cluster::summit_like(4);
    let request = PlanRequest::new(Arc::clone(&model), cluster.clone(), 32)
        .with_planner(ServePlanner::PipeDream);
    let plan = service.plan(request.clone()).unwrap();
    let again = service.plan(request).unwrap();
    assert_eq!(plan, again);
    let text = artifact::encode_plan(&plan, None);
    let (decoded, _) = artifact::decode_plan(&text, model.graph(), &cluster).unwrap();
    assert_eq!(&decoded, &*plan);
    let stats = service.shutdown();
    assert_eq!(stats.planner_runs, 1);
}
