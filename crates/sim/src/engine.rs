//! The discrete-event pipeline execution engine.
//!
//! Simulates one training iteration of a strategy: every stage replica is a
//! device executing its task order (from `gp-sched`) in order, non
//! preemptively; activations/gradients hop between stages over the cluster
//! links; data-parallel stages allreduce their gradients at the end of the
//! iteration. Because per-device task orders are fixed and dependencies
//! point backwards in each queue, makespan computation reduces to a
//! longest-path relaxation over the task DAG — no global event queue is
//! needed, and the result is deterministic.
//!
//! # Arena layout
//!
//! The engine is built for 512+ devices and 10k+ micro-batches, so the hot
//! path never hashes and never grows a container:
//!
//! * every task instance has a dense id from [`gp_sched::TaskIndex`]
//!   (`(stage, micro-batch, pass)` → flat offset); completion times, start
//!   times, and watcher lists are flat columns indexed by it;
//! * device queues live in one contiguous slab ([`Prep::tasks`]) cut by
//!   per-device offsets — a device's queue is a slice, not a `Vec`;
//! * dependency edges are per-stage CSR rows with the two possible
//!   transfer times (intra-/inter-node) precomputed per edge, so a
//!   dependency probe is an index walk plus one `max`;
//! * the relaxation itself is event-driven: a device that blocks on a
//!   missing dependency parks itself on that task's watcher list (an
//!   intrusive linked list over two preallocated columns) and is pushed
//!   back on the ready stack when the dependency completes. Total work is
//!   `O(tasks + dependency edges)` — no repeated full-device scans;
//! * activation memory is a running per-device watermark updated as tasks
//!   complete. A device's queue executes serially, so its completions are
//!   already in time order and the old sort-all-events pass is redundant
//!   (equal-time charge/release pairs only arise for zero-duration stages,
//!   which stash zero bytes — see DESIGN.md §"Memory accounting").
//!
//! [`SimOptions::parallelism`] switches on the deterministic parallel mode:
//! device queues are striped over `crossbeam::thread::scope` workers that
//! relax concurrently against shared atomic completion columns, with a
//! barrier per round. Every task's start/completion time is a pure
//! function of its dependencies' times (a unique longest-path fixpoint),
//! so worker interleaving cannot change any value and reports are
//! byte-identical to the sequential engine's (see DESIGN.md
//! §"Determinism").
//!
//! Modeling notes (see DESIGN.md §"The modeling contract"):
//!
//! * replica `r` of a stage with `d` replicas processes micro-batches
//!   `mb % d == r`, matching the planner's memory accounting;
//! * links are delay-only (no contention); same-device transfers are free;
//! * activation memory is charged at forward completion and released at
//!   backward completion, plus static parameter/optimizer state.
//!
//! gp-lint: deterministic — this module's outputs feed plan
//! fingerprints or the artifact codec; `cargo xtask lint` scans it for
//! nondeterminism hazards (DESIGN.md §"Determinism lint").

use crate::report::{SimError, SimReport, TaskSpan};
use gp_cluster::{Cluster, DeviceId};
use gp_cost::{CostModel, Pass};
use gp_ir::Graph;
use gp_obs::Telemetry;
use gp_sched::{covering_micro_batches, PipelineSchedule, StageGraph, StageId, TaskIndex};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Barrier;

/// Tuning knobs for [`simulate_with`].
///
/// The default is the sequential engine. `parallelism > 1` relaxes device
/// queues on that many scoped worker threads; the report is byte-identical
/// either way, so the knob is purely a wall-clock lever for large
/// simulations on idle cores.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimOptions {
    /// Number of relaxation worker threads; `0` and `1` both mean the
    /// sequential engine. Clamped to the device count.
    pub parallelism: usize,
}

impl SimOptions {
    /// Sets [`SimOptions::parallelism`], builder style.
    pub fn with_parallelism(mut self, workers: usize) -> Self {
        self.parallelism = workers;
        self
    }
}

/// One task instance placed on a device queue.
#[derive(Debug, Clone, Copy)]
struct QueuedTask {
    stage: u32,
    mb: u32,
    pass: Pass,
    duration: f64,
}

/// One dependency edge of a stage: the peer stage, its micro-batch size,
/// and the transfer time of the edge payload over each link class
/// (already zero when the payload is zero bytes or the peer shares the
/// device).
#[derive(Debug, Clone, Copy)]
struct DepEdge {
    stage: u32,
    micro_batch: u64,
    t_intra: f64,
    t_inter: f64,
}

/// Everything the relaxation needs, precomputed into flat arenas.
struct Prep {
    n_dev: usize,
    idx: TaskIndex,
    // Per-stage columns (indexed by stage id).
    act_charge: Vec<u64>,
    param_bytes: Vec<u64>,
    first_dev: Vec<u32>,
    dp: Vec<u32>,
    micro_batch: Vec<u64>,
    // Forward/backward dependency CSR rows per stage.
    fdep_off: Vec<usize>,
    fdeps: Vec<DepEdge>,
    bdep_off: Vec<usize>,
    bdeps: Vec<DepEdge>,
    // Device-queue slab: queue of device `d` is `tasks[dev_off[d]..dev_off[d + 1]]`.
    tasks: Vec<QueuedTask>,
    dev_off: Vec<usize>,
    static_mem: Vec<u64>,
    node_of: Vec<u32>,
}

impl Prep {
    fn new(graph: &Graph, cluster: &Cluster, sg: &StageGraph, schedule: &PipelineSchedule) -> Prep {
        let cost = CostModel::new(cluster);
        let n_dev = cluster.device_count();
        let n = sg.len();

        let mut fwd_dur = vec![0.0f64; n];
        let mut bwd_dur = vec![0.0f64; n];
        let mut act_charge = vec![0u64; n];
        let mut param_bytes = vec![0u64; n];
        let mut first_dev = vec![0u32; n];
        let mut dp = vec![1u32; n];
        let mut micro_batch = vec![1u64; n];
        for s in sg.stages() {
            let i = s.id.index();
            fwd_dur[i] = cost.stage_time(graph, &s.ops, s.micro_batch, Pass::Forward);
            bwd_dur[i] = cost.stage_time(graph, &s.ops, s.micro_batch, Pass::Backward);
            act_charge[i] = cost.stage_activation_bytes_per_sample(graph, &s.ops) * s.micro_batch;
            param_bytes[i] = cost.stage_param_bytes(graph, &s.ops);
            first_dev[i] = s.devices.first().0;
            dp[i] = s.dp_degree() as u32;
            micro_batch[i] = s.micro_batch;
        }

        // Dependency CSR rows. The payload of the edge `p -> s` is
        // `crossing_bytes_per_sample * b_consumer`; precomputing the two
        // link-class transfer times per edge removes all link math from
        // the relaxation (and reproduces the legacy float exactly — the
        // same `latency + bytes / bandwidth` expression on the same
        // payload).
        let intra = cluster.intra_link();
        let inter = cluster.inter_link();
        // `owner` is the stage whose dependency row the edge sits on: the
        // payload scales with *its* micro-batch size (a forward receives
        // activations for its own micro-batch; a backward receives the
        // gradient of its own output), exactly as the per-probe legacy
        // engine computed it.
        let edge = |from: StageId, to: StageId, owner: StageId| -> DepEdge {
            let bytes =
                cost.crossing_bytes_per_sample(graph, &sg.stage(from).ops, &sg.stage(to).ops)
                    * sg.stage(owner).micro_batch;
            DepEdge {
                stage: 0, // caller fills the peer
                micro_batch: 0,
                t_intra: if bytes > 0 {
                    intra.transfer_time(bytes)
                } else {
                    0.0
                },
                t_inter: if bytes > 0 {
                    inter.transfer_time(bytes)
                } else {
                    0.0
                },
            }
        };
        let mut fdep_off = Vec::with_capacity(n + 1);
        let mut fdeps = Vec::new();
        let mut bdep_off = Vec::with_capacity(n + 1);
        let mut bdeps = Vec::new();
        for s in sg.stages() {
            fdep_off.push(fdeps.len());
            for &p in sg.preds(s.id) {
                fdeps.push(DepEdge {
                    stage: p.0,
                    micro_batch: sg.stage(p).micro_batch,
                    ..edge(p, s.id, s.id)
                });
            }
            bdep_off.push(bdeps.len());
            for &succ in sg.succs(s.id) {
                bdeps.push(DepEdge {
                    stage: succ.0,
                    micro_batch: sg.stage(succ).micro_batch,
                    ..edge(s.id, succ, s.id)
                });
            }
        }
        fdep_off.push(fdeps.len());
        bdep_off.push(bdeps.len());

        // Device-queue slab. Devices partition across stages (C3), so a
        // device's queue is its stage's task order filtered to the
        // replica's micro-batches — count, cut offsets, fill.
        let mut counts = vec![0usize; n_dev];
        for s in sg.stages() {
            let d = dp[s.id.index()];
            let first = first_dev[s.id.index()];
            for task in &schedule.stage(s.id).tasks {
                counts[(first + task.mb % d) as usize] += 1;
            }
        }
        let mut dev_off = Vec::with_capacity(n_dev + 1);
        let mut total = 0usize;
        for &c in &counts {
            dev_off.push(total);
            total += c;
        }
        dev_off.push(total);
        let mut cursor = dev_off[..n_dev].to_vec();
        let mut tasks = vec![
            QueuedTask {
                stage: 0,
                mb: 0,
                pass: Pass::Forward,
                duration: 0.0,
            };
            total
        ];
        for s in sg.stages() {
            let i = s.id.index();
            for task in &schedule.stage(s.id).tasks {
                let dev = (first_dev[i] + task.mb % dp[i]) as usize;
                tasks[cursor[dev]] = QueuedTask {
                    stage: s.id.0,
                    mb: task.mb,
                    pass: task.pass,
                    duration: match task.pass {
                        Pass::Forward => fwd_dur[i],
                        Pass::Backward => bwd_dur[i],
                    },
                };
                cursor[dev] += 1;
            }
        }

        let mut static_mem = vec![0u64; n_dev];
        for s in sg.stages() {
            let stat = param_bytes[s.id.index()] / gp_ir::BYTES_PER_ELEMENT
                * gp_cost::BYTES_PER_PARAM_STATE;
            for d in s.devices.iter() {
                static_mem[d.index()] += stat;
            }
        }
        let node_of = (0..n_dev as u32)
            .map(|d| cluster.node_of(DeviceId(d)) as u32)
            .collect();

        Prep {
            n_dev,
            idx: TaskIndex::new(sg),
            act_charge,
            param_bytes,
            first_dev,
            dp,
            micro_batch,
            fdep_off,
            fdeps,
            bdep_off,
            bdeps,
            tasks,
            dev_off,
            static_mem,
            node_of,
        }
    }

    /// The device hosting `(stage, mb)` — replica `mb % d`.
    #[inline]
    fn replica_device(&self, stage: u32, mb: u32) -> u32 {
        self.first_dev[stage as usize] + mb % self.dp[stage as usize]
    }

    /// The queue slice of a device.
    #[inline]
    fn queue(&self, dev: usize) -> &[QueuedTask] {
        &self.tasks[self.dev_off[dev]..self.dev_off[dev + 1]]
    }

    /// Transfer delay of `edge`'s payload from `from` to `me` (free on the
    /// same device, zero when the payload is empty).
    #[inline]
    fn hop(&self, edge: &DepEdge, from: u32, me: u32) -> f64 {
        if from == me {
            0.0
        } else if self.node_of[from as usize] == self.node_of[me as usize] {
            edge.t_intra
        } else {
            edge.t_inter
        }
    }

    /// Earliest time every dependency of `t` (on device `me`) has arrived,
    /// or `Err(dep)` with the dense id of the first dependency that has
    /// not completed yet.
    ///
    /// `done_at` returns a task's completion time once it is scheduled.
    /// The accumulated value is a max over per-dependency arrival times,
    /// so it is independent of evaluation order — which is what makes the
    /// parallel mode's answers bit-equal to the sequential engine's.
    #[inline]
    fn ready_time(
        &self,
        t: &QueuedTask,
        me: u32,
        done_at: &mut impl FnMut(usize) -> Option<f64>,
    ) -> Result<f64, usize> {
        let s = t.stage as usize;
        let b_me = self.micro_batch[s];
        let mut ready = 0.0f64;
        // Uniform micro-batch sizes (the overwhelmingly common case) cover
        // exactly the peer's same-numbered micro-batch; skipping the
        // `covering_micro_batches` divisions there is a measurable win at
        // 10k+ micro-batches.
        let cover = |b_peer: u64, mb: u32| -> std::ops::Range<u32> {
            if b_peer == b_me {
                mb..mb + 1
            } else {
                covering_micro_batches(b_peer, b_me, mb)
            }
        };
        match t.pass {
            Pass::Forward => {
                for e in &self.fdeps[self.fdep_off[s]..self.fdep_off[s + 1]] {
                    for mb_p in cover(e.micro_batch, t.mb) {
                        let dep = self.idx.index(StageId(e.stage), mb_p, Pass::Forward);
                        let Some(c) = done_at(dep) else {
                            return Err(dep);
                        };
                        let from = self.replica_device(e.stage, mb_p);
                        ready = ready.max(c + self.hop(e, from, me));
                    }
                }
            }
            Pass::Backward => {
                let own = self.idx.index(StageId(t.stage), t.mb, Pass::Forward);
                let Some(c) = done_at(own) else {
                    return Err(own);
                };
                ready = ready.max(c);
                for e in &self.bdeps[self.bdep_off[s]..self.bdep_off[s + 1]] {
                    for mb_s in cover(e.micro_batch, t.mb) {
                        let dep = self.idx.index(StageId(e.stage), mb_s, Pass::Backward);
                        let Some(c) = done_at(dep) else {
                            return Err(dep);
                        };
                        let from = self.replica_device(e.stage, mb_s);
                        ready = ready.max(c + self.hop(e, from, me));
                    }
                }
            }
        }
        Ok(ready)
    }
}

/// Per-device mutable state of one relaxation (sequential: all devices;
/// parallel: the worker's stripe, indexed by stripe position).
#[derive(Debug, Clone)]
struct DeviceState {
    head: usize,
    busy_until: f64,
    busy_total: f64,
    cur_mem: u64,
    peak_mem: u64,
}

impl DeviceState {
    fn new(static_mem: u64) -> DeviceState {
        DeviceState {
            head: 0,
            busy_until: 0.0,
            busy_total: 0.0,
            cur_mem: static_mem,
            peak_mem: static_mem,
        }
    }

    /// Commits one scheduled task: advances the queue head, the busy
    /// clock, and the activation watermark (charge at forward completion,
    /// release at backward completion).
    #[inline]
    fn commit(&mut self, t: &QueuedTask, end: f64, act_charge: u64) {
        self.busy_until = end;
        self.busy_total += t.duration;
        self.head += 1;
        match t.pass {
            Pass::Forward => {
                self.cur_mem += act_charge;
                self.peak_mem = self.peak_mem.max(self.cur_mem);
            }
            Pass::Backward => self.cur_mem -= act_charge,
        }
    }
}

/// Output of a relaxation, merged across workers in the parallel mode.
struct Relaxed {
    completion: Vec<f64>,
    start: Vec<f64>,
    busy_until: Vec<f64>,
    busy_total: Vec<f64>,
    peak_mem: Vec<u64>,
    /// Engine-mechanics counters for telemetry: deterministic for the
    /// sequential engine; `rounds` for the parallel one (whose count can
    /// vary with interleaving — it never reaches report data). All zero
    /// for whichever engine did not run.
    parks: u64,
    wakes: u64,
    rounds: u64,
}

/// Sequential relaxation: an explicit ready stack of devices plus an
/// intrusive watcher list per task. A blocked device parks on the first
/// missing dependency and is re-pushed exactly when that task completes,
/// so every task is examined `O(1 + its dependency count)` times.
fn relax_sequential(prep: &Prep) -> Result<Relaxed, SimError> {
    let n = prep.idx.len();
    let n_dev = prep.n_dev;
    let mut completion = vec![f64::NAN; n];
    let mut start = vec![f64::NAN; n];
    let mut done = vec![false; n];
    let mut watcher_head = vec![u32::MAX; n];
    let mut watcher_next = vec![u32::MAX; n_dev];
    let mut dev = (0..n_dev)
        .map(|d| DeviceState::new(prep.static_mem[d]))
        .collect::<Vec<_>>();
    let mut stack: Vec<u32> = (0..n_dev as u32).collect();
    let total: usize = prep.tasks.len();
    let mut remaining = total;
    let mut parks = 0u64;
    let mut wakes = 0u64;

    while let Some(d) = stack.pop() {
        let queue = prep.queue(d as usize);
        let state = &mut dev[d as usize];
        while state.head < queue.len() {
            let t = &queue[state.head];
            match prep.ready_time(t, d, &mut |dep| done[dep].then(|| completion[dep])) {
                Err(dep) => {
                    // Park on the missing dependency's watcher list.
                    watcher_next[d as usize] = watcher_head[dep];
                    watcher_head[dep] = d;
                    parks += 1;
                    break;
                }
                Ok(ready) => {
                    let t_start = state.busy_until.max(ready);
                    let t_end = t_start + t.duration;
                    let ti = prep.idx.index(StageId(t.stage), t.mb, t.pass);
                    completion[ti] = t_end;
                    start[ti] = t_start;
                    done[ti] = true;
                    state.commit(t, t_end, prep.act_charge[t.stage as usize]);
                    remaining -= 1;
                    // Wake every device parked on this task.
                    let mut w = watcher_head[ti];
                    watcher_head[ti] = u32::MAX;
                    while w != u32::MAX {
                        stack.push(w);
                        wakes += 1;
                        let next = watcher_next[w as usize];
                        watcher_next[w as usize] = u32::MAX;
                        w = next;
                    }
                }
            }
        }
    }
    if remaining > 0 {
        return Err(SimError::Deadlock {
            completed: total - remaining,
            total,
        });
    }
    Ok(Relaxed {
        completion,
        start,
        busy_until: dev.iter().map(|s| s.busy_until).collect(),
        busy_total: dev.iter().map(|s| s.busy_total).collect(),
        peak_mem: dev.iter().map(|s| s.peak_mem).collect(),
        parks,
        wakes,
        rounds: 0,
    })
}

/// Round states of the parallel relaxation.
const RUN: u8 = 0;
const FINISHED: u8 = 1;
const DEADLOCKED: u8 = 2;

/// Parallel relaxation: devices stripe over `workers` scoped threads
/// (`dev % workers`), each sweeping its own queues against shared atomic
/// completion columns. Rounds are separated by barriers; the leader calls
/// the iteration finished when all tasks are scheduled and deadlocked when
/// a whole round makes no progress anywhere (the done-set is then a
/// fixpoint). Every value a worker publishes is the unique longest-path
/// solution for that task, so the merged result is byte-identical to
/// [`relax_sequential`]'s regardless of thread interleaving.
fn relax_parallel(prep: &Prep, workers: usize) -> Result<Relaxed, SimError> {
    let n = prep.idx.len();
    let n_dev = prep.n_dev;
    let total: usize = prep.tasks.len();
    let done: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    let completion: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(f64::NAN.to_bits())).collect();
    let start: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(f64::NAN.to_bits())).collect();
    let barrier = Barrier::new(workers);
    let round_progress = AtomicUsize::new(0);
    let scheduled_total = AtomicUsize::new(0);
    let state_flag = AtomicU8::new(RUN);
    let rounds = AtomicUsize::new(0);

    let worker = |w: usize| -> Vec<(usize, DeviceState)> {
        let mut owned: Vec<(usize, DeviceState)> = (w..n_dev)
            .step_by(workers)
            .map(|d| (d, DeviceState::new(prep.static_mem[d])))
            .collect();
        loop {
            let mut local = 0usize;
            // Sweep owned devices to a local fixpoint; peers may publish
            // new completions mid-sweep, which only adds progress.
            loop {
                let mut sweep = 0usize;
                for (d, state) in owned.iter_mut() {
                    let queue = prep.queue(*d);
                    while state.head < queue.len() {
                        let t = &queue[state.head];
                        let ready = prep.ready_time(t, *d as u32, &mut |dep| {
                            done[dep]
                                .load(Ordering::Acquire)
                                .then(|| f64::from_bits(completion[dep].load(Ordering::Relaxed)))
                        });
                        let Ok(ready) = ready else { break };
                        let t_start = state.busy_until.max(ready);
                        let t_end = t_start + t.duration;
                        let ti = prep.idx.index(StageId(t.stage), t.mb, t.pass);
                        completion[ti].store(t_end.to_bits(), Ordering::Relaxed);
                        start[ti].store(t_start.to_bits(), Ordering::Relaxed);
                        done[ti].store(true, Ordering::Release);
                        state.commit(t, t_end, prep.act_charge[t.stage as usize]);
                        sweep += 1;
                    }
                }
                local += sweep;
                if sweep == 0 {
                    break;
                }
            }
            round_progress.fetch_add(local, Ordering::SeqCst);
            barrier.wait();
            if w == 0 {
                rounds.fetch_add(1, Ordering::SeqCst);
                let progress = round_progress.swap(0, Ordering::SeqCst);
                let scheduled = scheduled_total.fetch_add(progress, Ordering::SeqCst) + progress;
                let next = if scheduled == total {
                    FINISHED
                } else if progress == 0 {
                    DEADLOCKED
                } else {
                    RUN
                };
                state_flag.store(next, Ordering::SeqCst);
            }
            barrier.wait();
            if state_flag.load(Ordering::SeqCst) != RUN {
                return owned;
            }
        }
    };

    let worker = &worker;
    let per_worker: Vec<Vec<(usize, DeviceState)>> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..workers).map(|w| s.spawn(move |_| worker(w))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("relaxation workers do not panic"))
            .collect()
    })
    .expect("scope does not fail");

    if state_flag.load(Ordering::SeqCst) == DEADLOCKED {
        return Err(SimError::Deadlock {
            completed: scheduled_total.load(Ordering::SeqCst),
            total,
        });
    }
    let mut busy_until = vec![0.0f64; n_dev];
    let mut busy_total = vec![0.0f64; n_dev];
    let mut peak_mem = vec![0u64; n_dev];
    for (d, state) in per_worker.into_iter().flatten() {
        busy_until[d] = state.busy_until;
        busy_total[d] = state.busy_total;
        peak_mem[d] = state.peak_mem;
    }
    Ok(Relaxed {
        completion: completion
            .into_iter()
            .map(|c| f64::from_bits(c.into_inner()))
            .collect(),
        start: start
            .into_iter()
            .map(|s| f64::from_bits(s.into_inner()))
            .collect(),
        busy_until,
        busy_total,
        peak_mem,
        parks: 0,
        wakes: 0,
        rounds: rounds.load(Ordering::SeqCst) as u64,
    })
}

/// Simulates one synchronous training iteration of a strategy with the
/// default [`SimOptions`] (sequential engine).
///
/// # Errors
///
/// Returns [`SimError::Deadlock`] when the task orders are mutually
/// inconsistent (e.g. a hand-crafted schedule with insufficient warm-up),
/// and [`SimError::MissingSchedule`] when the schedule does not cover every
/// stage.
pub fn simulate(
    graph: &Graph,
    cluster: &Cluster,
    sg: &StageGraph,
    schedule: &PipelineSchedule,
) -> Result<SimReport, SimError> {
    simulate_with(graph, cluster, sg, schedule, &SimOptions::default())
}

/// Simulates one synchronous training iteration of a strategy.
///
/// The report is byte-identical for any [`SimOptions::parallelism`]; the
/// option only moves wall-clock time (see the module docs for the
/// determinism argument).
///
/// # Errors
///
/// Same as [`simulate`].
pub fn simulate_with(
    graph: &Graph,
    cluster: &Cluster,
    sg: &StageGraph,
    schedule: &PipelineSchedule,
    options: &SimOptions,
) -> Result<SimReport, SimError> {
    simulate_traced(
        graph,
        cluster,
        sg,
        schedule,
        options,
        &Telemetry::disabled(),
    )
}

/// [`simulate_with`], emitting spans (`sim.prep` / `sim.relax` /
/// `sim.finalize`) and engine counters (`sim.tasks`,
/// `sim.watcher_parks`, `sim.watcher_wakes`, `sim.relax_rounds`) into
/// `telemetry`.
///
/// Telemetry is write-only: the returned report — including its
/// [`SimReport::fingerprint`](crate::SimReport::fingerprint) — is
/// byte-identical whether `telemetry` is enabled, disabled, or absent
/// (the golden sim tests assert this).
pub fn simulate_traced(
    graph: &Graph,
    cluster: &Cluster,
    sg: &StageGraph,
    schedule: &PipelineSchedule,
    options: &SimOptions,
    telemetry: &Telemetry,
) -> Result<SimReport, SimError> {
    if schedule.per_stage.len() != sg.len() {
        return Err(SimError::MissingSchedule {
            stages: sg.len(),
            schedules: schedule.per_stage.len(),
        });
    }
    let cost = CostModel::new(cluster);
    let n_dev = cluster.device_count();
    let mini_batch = sg.mini_batch();
    let prep_span = telemetry.span("sim.prep");
    let prep = Prep::new(graph, cluster, sg, schedule);
    drop(prep_span);
    let total_tasks = prep.tasks.len();

    let workers = options.parallelism.min(n_dev);
    let relax_span = telemetry.span_with("sim.relax", total_tasks as u64);
    let relaxed = if workers > 1 {
        relax_parallel(&prep, workers)?
    } else {
        relax_sequential(&prep)?
    };
    drop(relax_span);
    if telemetry.is_enabled() {
        telemetry.counter_add("sim.tasks", total_tasks as u64);
        telemetry.counter_add("sim.watcher_parks", relaxed.parks);
        telemetry.counter_add("sim.watcher_wakes", relaxed.wakes);
        telemetry.counter_add("sim.relax_rounds", relaxed.rounds);
        telemetry.gauge_set("sim.devices", n_dev as i64);
    }
    let _finalize_span = telemetry.span("sim.finalize");
    let Relaxed {
        completion,
        start: start_time,
        busy_until,
        mut busy_total,
        peak_mem: peak_memory,
        ..
    } = relaxed;

    // Gradient allreduce per data-parallel stage, after its last backward.
    let mut device_end = busy_until.clone();
    for s in sg.stages() {
        let ar = cost.allreduce_time(prep.param_bytes[s.id.index()], &s.devices);
        if ar > 0.0 {
            let stage_last = s
                .devices
                .iter()
                .map(|d| busy_until[d.index()])
                .fold(0.0f64, f64::max);
            for d in s.devices.iter() {
                device_end[d.index()] = device_end[d.index()].max(stage_last + ar);
                busy_total[d.index()] += ar;
            }
        }
    }
    let iteration_time = device_end.iter().copied().fold(0.0f64, f64::max);

    // Timeline spans for rendering, straight out of the columns, sorted
    // by the total key `(start, device, stage, mb, pass)` — ties on start
    // time are broken structurally rather than by construction order, so
    // the timeline (and everything rendered from it, e.g. Gantt charts)
    // is byte-for-byte deterministic for a given strategy. The key is
    // unique per span ((stage, mb, pass) alone already is), so any sort
    // has a single valid output.
    //
    // Fast path: start times are non-negative, so `f64::total_cmp` order
    // equals unsigned bit-pattern order, and when the id spaces fit their
    // bit budgets (devices/stages < 2^20, micro-batches < 2^23 — far
    // beyond any simulated strategy) the whole key packs into one `u128`.
    // Sorting primitive keys and materializing spans afterwards is ~2x
    // faster than sorting 40-byte spans with a comparator.
    let max_mbs = sg
        .stages()
        .map(|s| s.num_micro_batches(mini_batch))
        .max()
        .unwrap_or(0);
    let packable = n_dev < (1 << 20) && sg.len() < (1 << 20) && max_mbs < (1 << 23);
    let timeline = if packable {
        let mut keys: Vec<u128> = Vec::with_capacity(total_tasks);
        for s in sg.stages() {
            let m = s.num_micro_batches(mini_batch) as u32;
            for mb in 0..m {
                let dev = prep.replica_device(s.id.0, mb) as u64;
                let tie_fwd = (dev << 44) | ((s.id.0 as u64) << 24) | ((mb as u64) << 1);
                for pass in [Pass::Forward, Pass::Backward] {
                    let ti = prep.idx.index(s.id, mb, pass);
                    let tie = tie_fwd | pass as u64;
                    keys.push(((start_time[ti].to_bits() as u128) << 64) | tie as u128);
                }
            }
        }
        keys.sort_unstable();
        keys.into_iter()
            .map(|key| {
                let tie = key as u64;
                let device = DeviceId((tie >> 44) as u32);
                let stage = StageId(((tie >> 24) & 0xf_ffff) as u32);
                let mb = ((tie >> 1) & 0x7f_ffff) as u32;
                let pass = if tie & 1 == 0 {
                    Pass::Forward
                } else {
                    Pass::Backward
                };
                let ti = prep.idx.index(stage, mb, pass);
                TaskSpan {
                    device,
                    stage,
                    mb,
                    pass,
                    start: f64::from_bits((key >> 64) as u64),
                    end: completion[ti],
                }
            })
            .collect()
    } else {
        let mut timeline = Vec::with_capacity(total_tasks);
        for s in sg.stages() {
            let m = s.num_micro_batches(mini_batch) as u32;
            for mb in 0..m {
                let device = DeviceId(prep.replica_device(s.id.0, mb));
                for pass in [Pass::Forward, Pass::Backward] {
                    let ti = prep.idx.index(s.id, mb, pass);
                    timeline.push(TaskSpan {
                        device,
                        stage: s.id,
                        mb,
                        pass,
                        start: start_time[ti],
                        end: completion[ti],
                    });
                }
            }
        }
        timeline.sort_unstable_by(|a, b| {
            let ka = (a.device, a.stage, a.mb, a.pass as u8);
            let kb = (b.device, b.stage, b.mb, b.pass as u8);
            a.start.total_cmp(&b.start).then(ka.cmp(&kb))
        });
        timeline
    };

    // Warm-up: the moment every stage has begun working — the max over
    // stages of the min start time, read straight off the start column
    // (each stage owns a contiguous block of it).
    let warmup_time = sg
        .stages()
        .map(|s| {
            start_time[prep.idx.stage_tasks(s.id)]
                .iter()
                .copied()
                .fold(f64::INFINITY, f64::min)
        })
        .fold(0.0f64, f64::max);

    let busy_sum: f64 = busy_total.iter().sum();
    let utilization = if iteration_time > 0.0 {
        busy_sum / (iteration_time * n_dev as f64)
    } else {
        0.0
    };

    Ok(SimReport {
        iteration_time,
        throughput: mini_batch as f64 / iteration_time,
        utilization,
        bubble_fraction: 1.0 - utilization,
        warmup_time,
        per_device_busy: busy_total,
        peak_memory_bytes: peak_memory,
        timeline,
        mini_batch,
    })
}
